"""Per-statement execution governance: deadlines, cancellation, memory.

PR 1 bounded the *optimize* stage (DetourGuard, CompileBudget, circuit
breaker) but left execution unbounded: a runaway hash join could buffer
rows until the process died, and nothing could stop a statement once it
started.  This module is the execution-stage counterpart — one
:class:`ExecutionGovernor` per statement, threaded through both the row
Volcano interpreter and the batch engine, enforcing three bounds at
cooperative checkpoints:

* a **wall-clock deadline** (``timeout_seconds``) checked at every
  checkpoint, raising :class:`repro.errors.DeadlineExceededError`;
* a **cooperative cancel token** (:class:`CancelToken`) another thread
  (or ``db.cancel(statement_id)``) can set at any time, surfaced as
  :class:`repro.errors.StatementCancelledError` at the next checkpoint;
* a **memory accountant** (:class:`MemoryAccountant`) that
  pipeline-breaking operators charge as they buffer rows, raising
  :class:`repro.errors.ResourceExhaustedError` on breach.

Checkpoint cadence
------------------

Checkpoints are cheap (two compares) but not free, so they are
amortised:

* the batch engine checkpoints once per emitted batch (≤1024 rows),
  inside ``ExecutionRuntime.note_batch``;
* row-mode leaf scans wrap their row iterators with :meth:`wrap_rows`,
  which checkpoints every ``check_interval`` rows (default 256);
* nested-loop joins call :meth:`tick` per outer row, which folds into a
  full checkpoint every ``check_interval`` ticks;
* the compile pipeline checkpoints at stage boundaries (parse, prepare,
  optimize, refine) and caps the Orca :class:`CompileBudget` to the
  remaining deadline via :meth:`cap_compile_budget`.

Memory-charging contract
------------------------

Operators that buffer an unbounded number of rows (hash join build
side, hash aggregate, sort, materialize/CTE) charge an *estimate* of
what they hold: the per-row byte width is sampled once per operator
with :func:`approx_row_bytes` (``sys.getsizeof`` one level deep) and
multiplied by the buffered row count, charged in chunks so the charge
itself stays off the per-row hot path.  Charges are released when the
operator's buffer dies (try/finally), so ``tracked_bytes`` returns to
zero after the statement and ``peak_bytes`` records the high-water
mark.  This is deliberately an estimate, not an allocator hook: it is
deterministic, cheap, and close enough to bound the buffering
operators that actually run away.

A charge may be marked *spillable*: instead of raising on breach it is
counted as a spill event.  The reduced-memory retry path uses this for
the sort a forced streaming aggregate inserts — the retry must not be
killed by the very operator the degradation introduced.
"""

from __future__ import annotations

import sys
import time
from typing import Callable, Dict, Iterable, Iterator, Optional

from repro.errors import (
    DeadlineExceededError,
    ResourceExhaustedError,
    StatementCancelledError,
)

#: Rows between cooperative checkpoints on row-mode paths.  256 keeps
#: the per-row overhead to one integer compare while still bounding the
#: reaction latency to a few microseconds of work.
DEFAULT_CHECK_INTERVAL = 256

#: Fallback per-row estimate when a sample row cannot be sized.
_DEFAULT_ROW_BYTES = 64

#: Estimated bookkeeping bytes per hash-table bucket / dict entry.
BUCKET_OVERHEAD_BYTES = 64

#: Estimated bytes per aggregate accumulator (object + running state).
ACCUMULATOR_BYTES = 120


def approx_row_bytes(row: object) -> int:
    """A cheap size estimate for one buffered row.

    ``sys.getsizeof`` on the container plus its direct elements — one
    level deep, no recursion.  Sampled once per operator and multiplied
    by row count, so precision matters less than determinism and cost.
    """
    if row is None:
        return _DEFAULT_ROW_BYTES
    try:
        total = sys.getsizeof(row)
        if isinstance(row, (tuple, list)):
            for value in row:
                if value is not None:
                    total += sys.getsizeof(value)
    except TypeError:  # pragma: no cover — exotic objects without sizeof
        return _DEFAULT_ROW_BYTES
    return total


class CancelToken:
    """Cooperative cancellation flag shared with the running statement.

    ``cancel()`` only sets a flag; the statement notices at its next
    governor checkpoint and unwinds with
    :class:`~repro.errors.StatementCancelledError`.  For deterministic
    tests, ``cancel_after_checks=N`` self-cancels the token on the Nth
    checkpoint — no threads or timing needed.
    """

    __slots__ = ("_cancelled", "_cancel_after_checks", "reason", "_shared")

    def __init__(self, cancel_after_checks: Optional[int] = None,
                 reason: str = "cancelled") -> None:
        if cancel_after_checks is not None and cancel_after_checks < 1:
            raise ValueError("cancel_after_checks must be >= 1")
        self._cancelled = False
        self._cancel_after_checks = cancel_after_checks
        self.reason = reason
        #: Fork-inheritable shared flag, created lazily by
        #: :meth:`enable_cross_process` when parallel execution forks
        #: workers: a plain attribute set in the parent after the fork
        #: would be invisible to the children.
        self._shared = None

    @property
    def cancelled(self) -> bool:
        if self._cancelled:
            return True
        shared = self._shared
        if shared is not None and shared.value:
            self._cancelled = True
            return True
        return False

    def cancel(self, reason: Optional[str] = None) -> None:
        if reason is not None:
            self.reason = reason
        self._cancelled = True
        if self._shared is not None:
            self._shared.value = 1

    def enable_cross_process(self) -> None:
        """Back the flag with shared memory before forking workers."""
        if self._shared is None:
            import multiprocessing

            self._shared = multiprocessing.get_context("fork").RawValue(
                "b", 1 if self._cancelled else 0)

    def _note_check(self) -> None:
        """Called by the governor once per checkpoint (test support)."""
        remaining = self._cancel_after_checks
        if remaining is not None:
            remaining -= 1
            self._cancel_after_checks = remaining
            if remaining <= 0:
                self._cancelled = True


class MemoryAccountant:
    """Tracks estimated bytes buffered by pipeline-breaking operators."""

    __slots__ = ("limit_bytes", "tracked_bytes", "peak_bytes", "charges",
                 "releases", "spill_events", "spilled_bytes",
                 "breach_operator")

    def __init__(self, limit_bytes: Optional[int] = None) -> None:
        if limit_bytes is not None and limit_bytes < 1:
            raise ValueError("memory limit must be >= 1 byte")
        self.limit_bytes = limit_bytes
        self.tracked_bytes = 0
        self.peak_bytes = 0
        self.charges = 0
        self.releases = 0
        self.spill_events = 0
        self.spilled_bytes = 0
        self.breach_operator: Optional[str] = None

    def charge(self, nbytes: int, operator: str,
               spillable: bool = False) -> None:
        """Add ``nbytes`` to the tracked total; raise on breach.

        A *spillable* charge over the limit is counted as a spill event
        instead of raising — the operator is declaring it could shed
        the buffer (the low-memory retry's sort does).
        """
        if nbytes <= 0:
            return
        self.charges += 1
        self.tracked_bytes += nbytes
        if self.tracked_bytes > self.peak_bytes:
            self.peak_bytes = self.tracked_bytes
        if self.limit_bytes is not None \
                and self.tracked_bytes > self.limit_bytes:
            if spillable:
                self.spill_events += 1
                self.spilled_bytes += nbytes
                return
            self.breach_operator = operator
            raise ResourceExhaustedError(operator, self.tracked_bytes,
                                         self.limit_bytes)

    def release(self, nbytes: int) -> None:
        """Return ``nbytes`` previously charged (buffer freed)."""
        if nbytes <= 0:
            return
        self.releases += 1
        self.tracked_bytes = max(0, self.tracked_bytes - nbytes)


class ExecutionGovernor:
    """All three per-statement bounds behind one checkpoint API.

    Created by the Database facade for every governed statement and
    handed to the executor runtime; operators never construct one.  A
    governor with no deadline, no memory cap, and an unset token costs
    one attribute read plus two compares per checkpoint.
    """

    def __init__(self, timeout_seconds: Optional[float] = None,
                 memory_limit_bytes: Optional[int] = None,
                 cancel_token: Optional[CancelToken] = None,
                 fault_injector=None,
                 check_interval: int = DEFAULT_CHECK_INTERVAL,
                 clock: Callable[[], float] = time.perf_counter,
                 spill_sorts: bool = False,
                 low_memory: bool = False) -> None:
        if timeout_seconds is not None and timeout_seconds < 0:
            raise ValueError("timeout_seconds must be >= 0")
        if check_interval < 1:
            raise ValueError("check_interval must be >= 1")
        self._clock = clock
        self.started_at = clock()
        self.timeout_seconds = timeout_seconds
        self.deadline_at = (self.started_at + timeout_seconds
                            if timeout_seconds is not None else None)
        self.cancel_token = cancel_token or CancelToken()
        self.memory = MemoryAccountant(memory_limit_bytes)
        self.fault_injector = fault_injector
        self.check_interval = check_interval
        #: The retry path sets this so the sort a forced streaming agg
        #: inserts charges as spillable instead of re-breaching.
        self.spill_sorts = spill_sorts
        #: True on the reduced-memory retry governor (reported in stats).
        self.low_memory = low_memory
        self.checkpoints = 0
        #: Stage label of the most recent named checkpoint — what the
        #: statement was last seen doing (``db.top()``'s "stage" column).
        self.last_stage: Optional[str] = None
        self._ticks = 0

    # -- control ----------------------------------------------------------------

    def cancel(self, reason: Optional[str] = None) -> None:
        """Request cooperative cancellation (honoured at next checkpoint)."""
        self.cancel_token.cancel(reason)

    def elapsed_seconds(self) -> float:
        return self._clock() - self.started_at

    def remaining_seconds(self) -> Optional[float]:
        """Deadline budget left, or None when no deadline is set."""
        if self.deadline_at is None:
            return None
        return max(0.0, self.deadline_at - self._clock())

    def cap_compile_budget(self, budget) -> object:
        """Shrink a :class:`CompileBudget` to the remaining deadline.

        The optimize stage must not consume wall-clock the deadline no
        longer has; whichever bound is tighter wins.
        """
        remaining = self.remaining_seconds()
        if remaining is not None and (budget.seconds is None
                                      or remaining < budget.seconds):
            budget.seconds = remaining
        return budget

    # -- checkpoints ------------------------------------------------------------

    def checkpoint(self, stage: Optional[str] = None) -> None:
        """The cooperative bound check; raises a typed GovernorError.

        Cancellation wins over the deadline when both have tripped, so
        an explicit ``db.cancel()`` is never misreported as a timeout.
        """
        self.checkpoints += 1
        if stage is not None:
            self.last_stage = stage
        token = self.cancel_token
        if token._cancel_after_checks is not None:
            token._note_check()
        if not token._cancelled and token._shared is not None \
                and token._shared.value:
            token._cancelled = True
        if token._cancelled:
            raise StatementCancelledError(token.reason, stage)
        if self.deadline_at is not None:
            now = self._clock()
            if now > self.deadline_at:
                raise DeadlineExceededError(now - self.started_at,
                                            self.timeout_seconds, stage)

    def note_worker_checkpoints(self, n: int) -> None:
        """Fold checkpoints run by *forked* morsel workers into this
        governor's count.  Forked children inherit a copy-on-write
        governor, so their checkpoint counts never reach the parent by
        themselves; the parallel coordinator ships them back with the
        worker telemetry.  Thread workers share this object and need no
        folding."""
        self.checkpoints += int(n)

    def tick(self) -> None:
        """Amortised checkpoint: full check every ``check_interval`` calls."""
        self._ticks += 1
        if self._ticks >= self.check_interval:
            self._ticks = 0
            self.checkpoint()

    def wrap_rows(self, rows: Iterable) -> Iterator:
        """Yield from ``rows``, checkpointing every ``check_interval`` rows.

        Row-mode leaf scans wrap their storage iterators with this so a
        deadline or cancel is noticed even in a plan with no batches.
        """
        interval = self.check_interval
        since_check = 0
        for row in rows:
            since_check += 1
            if since_check >= interval:
                since_check = 0
                self.checkpoint()
            yield row

    # -- memory -----------------------------------------------------------------

    def charge(self, nbytes: int, operator: str,
               spillable: bool = False) -> None:
        """Charge buffered bytes; an armed alloc-spike inflates them."""
        injector = self.fault_injector
        if injector is not None:
            nbytes += injector.fire_spike("alloc_spike")
        self.memory.charge(int(nbytes), operator, spillable)

    def release(self, nbytes: int) -> None:
        self.memory.release(int(nbytes))

    # -- reporting ---------------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """Snapshot for StatementResult / the EXPLAIN ANALYZE footer."""
        elapsed = self.elapsed_seconds()
        used_fraction = None
        if self.timeout_seconds:
            used_fraction = min(1.0, elapsed / self.timeout_seconds)
        return {
            "timeout_seconds": self.timeout_seconds,
            "elapsed_seconds": elapsed,
            "deadline_used_fraction": used_fraction,
            "checkpoints": self.checkpoints,
            "last_stage": self.last_stage,
            "cancelled": self.cancel_token.cancelled,
            "memory_limit_bytes": self.memory.limit_bytes,
            "peak_tracked_bytes": self.memory.peak_bytes,
            "tracked_bytes": self.memory.tracked_bytes,
            "mem_charges": self.memory.charges,
            "spill_events": self.memory.spill_events,
            "low_memory": self.low_memory,
        }
