"""Skeleton plans: the interchange format between optimization and refinement.

"The result of the cost-based optimization is a *skeleton plan* in which
join orders, join methods, and the tree structure have been finalized"
(Section 2.2).  Both optimizers produce skeletons: the MySQL optimizer
directly, and Orca through the plan converter (Section 4.2), which fills
MySQL's *best-position arrays*.  Plan refinement consumes skeletons without
knowing which optimizer produced them — "oblivious of this Orca detour"
(Section 4.3).

A best-position array entry normally names a single table, its access
method, cost, and row estimate (Fig. 7).  To execute Orca's bushy plans the
array "was slightly extended to handle bushy trees" (Section 7, lesson 1):
a :class:`PositionEntry` may instead hold a nested ``branch`` list that
refinement joins as a unit.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.executor.plan import AccessMethod, JoinKind
from repro.sql import ast
from repro.sql.blocks import QueryBlock, StatementContext


class JoinMethod(enum.Enum):
    NLJ = "nested_loop"
    HASH = "hash"


class AggStrategy(enum.Enum):
    STREAM = "stream"
    HASH = "hash"


@dataclass
class AccessPlan:
    """The chosen access path for one table position.

    ``consumed_conjuncts`` are the predicates the access path itself
    evaluates (range bounds, lookup keys); plan refinement removes them
    from the predicate pool so they are not re-checked.
    """

    method: AccessMethod
    index_name: Optional[str] = None
    # INDEX_RANGE bounds (constant key prefixes):
    low: Optional[tuple] = None
    high: Optional[tuple] = None
    low_inclusive: bool = True
    high_inclusive: bool = True
    # INDEX_LOOKUP (ref access) keys, evaluated against the outer context:
    key_exprs: List[ast.Expr] = field(default_factory=list)
    consumed_conjuncts: List[ast.Expr] = field(default_factory=list)
    descending: bool = False
    #: Estimated rows produced per probe/scan and access cost.
    est_rows: float = 0.0
    est_cost: float = 0.0


@dataclass
class PositionEntry:
    """One slot of a best-position array.

    Exactly one of ``entry_id`` / ``branch`` is set.  ``join_method`` and
    ``join_kind`` describe how the slot joins to the plan prefix (both are
    meaningless for the first slot).  ``fanout`` and ``cost`` are the
    cumulative estimates after this position, copied into EXPLAIN output
    (Section 4.2.2).
    """

    entry_id: Optional[int] = None
    branch: Optional[List["PositionEntry"]] = None
    access: Optional[AccessPlan] = None
    join_method: JoinMethod = JoinMethod.NLJ
    join_kind: JoinKind = JoinKind.INNER
    nest_id: Optional[int] = None
    fanout: float = 0.0
    cost: float = 0.0

    @property
    def is_branch(self) -> bool:
        return self.branch is not None

    def all_entry_ids(self) -> List[int]:
        if self.entry_id is not None:
            return [self.entry_id]
        ids: List[int] = []
        for inner in self.branch or ():
            ids.extend(inner.all_entry_ids())
        return ids


@dataclass
class BlockSkeleton:
    """The finalized skeleton for one query block."""

    block: QueryBlock
    positions: List[PositionEntry]
    total_cost: float = 0.0
    total_rows: float = 0.0
    agg_strategy: AggStrategy = AggStrategy.STREAM
    #: True when the chosen access order already delivers ORDER BY order,
    #: so refinement skips the sort (Section 2.2: "a sort is avoided if an
    #: index scan already delivers rows in the expected sorted order").
    order_satisfied: bool = False


@dataclass
class SkeletonPlan:
    """Skeletons for every block of one statement."""

    context: StatementContext
    top_block: QueryBlock
    blocks: Dict[int, BlockSkeleton] = field(default_factory=dict)
    #: Which optimizer produced the skeleton: "mysql" or "orca".
    origin: str = "mysql"

    def skeleton_for(self, block: QueryBlock) -> BlockSkeleton:
        return self.blocks[block.block_id]

    def add(self, skeleton: BlockSkeleton) -> None:
        self.blocks[skeleton.block.block_id] = skeleton
