"""The MySQL-style cost model.

Constants follow the spirit of MySQL's server cost model
(``row_evaluate_cost`` = 0.1, sequential scans benefiting from prefetch —
the paper notes this for Q16's table-scan strategy).  The decisive
reproduction detail is what is *not* here: there is no hash-join cost
formula, because "hash join selection is not cost-based" in MySQL
(Section 3.1).  Join ordering costs every non-index join as a rescan per
outer row, which is why the MySQL optimizer steers toward index
nested-loop plans.
"""

from __future__ import annotations

import math

from repro.storage.engine import ROWS_PER_PAGE

#: CPU cost of evaluating one row (MySQL's row_evaluate_cost).
ROW_EVAL = 0.1
#: Cost of one sequentially prefetched page read.
SEQ_PAGE = 0.25
#: Cost of one random page read.
RANDOM_PAGE = 1.0
#: B-tree descent cost for one index lookup.
LOOKUP_BASE = 0.35
#: Per-row cost of fetching through a secondary index (random-ish I/O).
INDEX_ROW = 0.55
#: Per-comparison sort factor.
SORT_FACTOR = 0.015


class MySQLCostModel:
    """Cost formulas used by greedy join ordering and EXPLAIN estimates."""

    def table_scan_cost(self, rows: float) -> float:
        pages = max(1.0, rows / ROWS_PER_PAGE)
        return pages * SEQ_PAGE + rows * ROW_EVAL

    def index_range_cost(self, matched_rows: float) -> float:
        return LOOKUP_BASE + matched_rows * (INDEX_ROW + ROW_EVAL)

    def index_lookup_cost(self, matched_rows: float) -> float:
        return LOOKUP_BASE + matched_rows * (INDEX_ROW + ROW_EVAL)

    def rescan_cost(self, inner_scan_cost: float) -> float:
        """Cost the join optimizer charges for a non-index join step,
        per outer row.  This is deliberately the full inner access cost —
        the legacy NLJ costing that makes MySQL's search avoid such
        joins when an index alternative exists."""
        return inner_scan_cost

    def sort_cost(self, rows: float) -> float:
        if rows <= 1:
            return 0.0
        return rows * math.log2(rows) * SORT_FACTOR

    def materialize_cost(self, rows: float) -> float:
        return rows * ROW_EVAL * 0.5

    def aggregate_cost(self, rows: float) -> float:
        return rows * ROW_EVAL * 0.5
