"""Access-path analysis: table scan vs index range vs ref lookups.

This module is shared by the MySQL optimizer (with the heuristic
estimator) and by Orca's implementation rules (with the histogram-backed
estimator): both need to know which indexes can serve constant ranges and
which can serve join-dependent lookups, and what they would cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.catalog.schema import Index
from repro.executor.plan import AccessMethod
from repro.mysql_optimizer.cost import MySQLCostModel
from repro.mysql_optimizer.skeleton import AccessPlan
from repro.selectivity import SelectivityEstimator
from repro.sql import ast
from repro.sql.blocks import EntryKind, QueryBlock, TableEntry, \
    referenced_entries


@dataclass
class _RangeBound:
    """A constant bound extracted from one conjunct on one column."""

    conjunct: ast.Expr
    low: Optional[object] = None
    high: Optional[object] = None
    low_inclusive: bool = True
    high_inclusive: bool = True


def is_constant_expr(expr: ast.Expr) -> bool:
    return all(not isinstance(node, ast.ColumnRef) for node in expr.walk())


def _literal_value(expr: ast.Expr):
    """Constant value of an expression, or None when not a plain literal."""
    if isinstance(expr, ast.Literal):
        return expr.value
    return None


def extract_range(conjunct: ast.Expr, entry_id: int,
                  column_position: int) -> Optional[_RangeBound]:
    """Extract a constant bound on (entry, column) from one conjunct."""
    if isinstance(conjunct, ast.BinaryExpr) and \
            conjunct.op in ast.COMPARISON_OPS:
        left, right, op = conjunct.left, conjunct.right, conjunct.op
        if isinstance(right, ast.ColumnRef) and _matches(right, entry_id,
                                                         column_position):
            left, right = right, left
            op = ast.COMMUTED_COMPARISON[op]
        if not (isinstance(left, ast.ColumnRef)
                and _matches(left, entry_id, column_position)):
            return None
        value = _literal_value(right)
        if value is None:
            return None
        if op is ast.BinOp.EQ:
            return _RangeBound(conjunct, low=value, high=value)
        if op is ast.BinOp.LT:
            return _RangeBound(conjunct, high=value, high_inclusive=False)
        if op is ast.BinOp.LE:
            return _RangeBound(conjunct, high=value)
        if op is ast.BinOp.GT:
            return _RangeBound(conjunct, low=value, low_inclusive=False)
        if op is ast.BinOp.GE:
            return _RangeBound(conjunct, low=value)
        return None
    if isinstance(conjunct, ast.BetweenExpr) and not conjunct.negated:
        if isinstance(conjunct.operand, ast.ColumnRef) and \
                _matches(conjunct.operand, entry_id, column_position):
            low = _literal_value(conjunct.low)
            high = _literal_value(conjunct.high)
            if low is not None and high is not None:
                return _RangeBound(conjunct, low=low, high=high)
    return None


def _matches(ref: ast.ColumnRef, entry_id: int, position: int) -> bool:
    return ref.entry_id == entry_id and ref.position == position


def best_local_access(block: QueryBlock, entry: TableEntry,
                      conjuncts: List[ast.Expr],
                      estimator: SelectivityEstimator,
                      cost_model: MySQLCostModel) -> AccessPlan:
    """Best access path using only constants: scan or index range.

    ``conjuncts`` should be the predicates local to the entry (refs only
    to it); the returned plan's ``est_rows`` already accounts for the
    bounds consumed, and the caller applies the remaining local
    selectivity separately.
    """
    table_rows = estimator.table_rows(block, entry.entry_id)
    scan = AccessPlan(
        method=AccessMethod.TABLE_SCAN,
        est_rows=table_rows,
        est_cost=cost_model.table_scan_cost(table_rows),
    )
    if entry.kind is not EntryKind.BASE or entry.table_schema is None:
        return scan
    # Range bounds are estimated with histogram accuracy regardless of the
    # caller's estimator: MySQL performs *index dives* for range access,
    # which are accurate even when the rest of its estimation is not.
    dive = estimator
    if not estimator.use_histograms:
        dive = SelectivityEstimator(estimator.catalog, use_histograms=True)
    best = scan
    for index in entry.table_schema.indexes:
        candidate = _range_plan(block, entry, index, conjuncts, table_rows,
                                dive, cost_model)
        if candidate is not None and candidate.est_cost < best.est_cost:
            best = candidate
    return best


def _range_plan(block: QueryBlock, entry: TableEntry, index: Index,
                conjuncts: List[ast.Expr], table_rows: float,
                estimator: SelectivityEstimator,
                cost_model: MySQLCostModel) -> Optional[AccessPlan]:
    """Range plan over an index: constant eq prefix plus one range column."""
    consumed: List[ast.Expr] = []
    consumed_ids = set()
    eq_prefix: List[object] = []
    selectivity = 1.0
    range_bound: Optional[_RangeBound] = None
    for column_name in index.column_names:
        position = entry.table_schema.column_position(column_name)
        eq_bound = None
        column_bounds: List[_RangeBound] = []
        for conjunct in conjuncts:
            if id(conjunct) in consumed_ids:
                continue
            bound = extract_range(conjunct, entry.entry_id, position)
            if bound is None:
                continue
            if bound.low == bound.high and bound.low is not None:
                eq_bound = bound
                break
            column_bounds.append(bound)
        if eq_bound is not None:
            consumed.append(eq_bound.conjunct)
            consumed_ids.add(id(eq_bound.conjunct))
            eq_prefix.append(eq_bound.low)
            selectivity *= estimator.conjunct_selectivity(
                block, eq_bound.conjunct)
            continue
        if column_bounds:
            merged = column_bounds[0]
            for extra in column_bounds[1:]:
                merged = _merge_bounds(merged, extra)
            for bound in column_bounds:
                consumed.append(bound.conjunct)
                consumed_ids.add(id(bound.conjunct))
                selectivity *= estimator.conjunct_selectivity(
                    block, bound.conjunct)
            range_bound = merged
        break
    if not consumed:
        return None
    matched = max(1.0, table_rows * selectivity)
    prefix = tuple(eq_prefix)
    if range_bound is None:
        low = high = prefix
        low_inclusive = high_inclusive = True
    else:
        if range_bound.low is not None:
            low = prefix + (range_bound.low,)
            low_inclusive = range_bound.low_inclusive
        else:
            low = prefix if prefix else None
            low_inclusive = True
        if range_bound.high is not None:
            high = prefix + (range_bound.high,)
            high_inclusive = range_bound.high_inclusive
        else:
            high = prefix if prefix else None
            high_inclusive = True
    return AccessPlan(
        method=AccessMethod.INDEX_RANGE,
        index_name=index.name,
        low=low,
        high=high,
        low_inclusive=low_inclusive,
        high_inclusive=high_inclusive,
        consumed_conjuncts=consumed,
        est_rows=matched,
        est_cost=cost_model.index_range_cost(matched),
    )


def _merge_bounds(a: _RangeBound, b: _RangeBound) -> _RangeBound:
    """Merge two bounds on the same column (e.g. >= lo AND < hi)."""
    merged = _RangeBound(conjunct=a.conjunct)
    merged.low, merged.low_inclusive = a.low, a.low_inclusive
    merged.high, merged.high_inclusive = a.high, a.high_inclusive
    if b.low is not None and (merged.low is None or b.low > merged.low):
        merged.low, merged.low_inclusive = b.low, b.low_inclusive
    if b.high is not None and (merged.high is None or b.high < merged.high):
        merged.high, merged.high_inclusive = b.high, b.high_inclusive
    return merged


def ref_access(block: QueryBlock, entry: TableEntry,
               conjuncts: List[ast.Expr], available: frozenset,
               estimator: SelectivityEstimator,
               cost_model: MySQLCostModel) -> Optional[AccessPlan]:
    """Best join-dependent index lookup (MySQL ``ref``/``eq_ref`` access).

    ``available`` is the set of entry ids whose slots are bound when the
    lookup runs (the placed prefix plus correlation sources).  Equality
    conjuncts of the form ``entry.col = expr(available)`` matching an
    index prefix become lookup keys.
    """
    if entry.kind is not EntryKind.BASE or entry.table_schema is None:
        return None
    equalities = _join_equalities(entry, conjuncts, available)
    if not equalities:
        return None
    table_rows = estimator.table_rows(block, entry.entry_id)
    best: Optional[AccessPlan] = None
    for index in entry.table_schema.indexes:
        key_exprs: List[ast.Expr] = []
        consumed: List[ast.Expr] = []
        for column_name in index.column_names:
            position = entry.table_schema.column_position(column_name)
            found = equalities.get(position)
            if found is None:
                break
            conjunct, expr = found
            key_exprs.append(expr)
            consumed.append(conjunct)
        if not key_exprs:
            continue
        if index.unique and len(key_exprs) == len(index.column_names):
            matched = 1.0
        else:
            ndv = 1.0
            for column_name in index.column_names[:len(key_exprs)]:
                position = entry.table_schema.column_position(column_name)
                ref = ast.ColumnRef(entry.alias, column_name,
                                    entry.entry_id, position)
                ndv *= estimator.column_ndv(block, ref)
            matched = max(1.0, table_rows / max(1.0, ndv))
        candidate = AccessPlan(
            method=AccessMethod.INDEX_LOOKUP,
            index_name=index.name,
            key_exprs=key_exprs,
            consumed_conjuncts=consumed,
            est_rows=matched,
            est_cost=cost_model.index_lookup_cost(matched),
        )
        if best is None or candidate.est_cost < best.est_cost:
            best = candidate
    return best


def _join_equalities(entry: TableEntry, conjuncts: List[ast.Expr],
                     available: frozenset):
    """Map column position -> (conjunct, outer expr) for usable equalities."""
    result = {}
    for conjunct in conjuncts:
        if not (isinstance(conjunct, ast.BinaryExpr)
                and conjunct.op is ast.BinOp.EQ):
            continue
        left, right = conjunct.left, conjunct.right
        for own, other in ((left, right), (right, left)):
            if not isinstance(own, ast.ColumnRef):
                continue
            if own.entry_id != entry.entry_id:
                continue
            other_refs = referenced_entries(other)
            if entry.entry_id in other_refs:
                continue
            if not other_refs.issubset(available):
                continue
            if own.position not in result:
                result[own.position] = (conjunct, other)
            break
    return result


def ordered_index_access(entry: TableEntry, order_items: List[ast.OrderItem]
                         ) -> Optional[Tuple[str, bool]]:
    """An index able to supply the requested order on this entry.

    Returns (index name, descending) when the leading index columns match
    the ORDER BY items (all same direction) — the order-supplying index
    scan Orca was extended with (Section 7, lesson 4).
    """
    if entry.kind is not EntryKind.BASE or entry.table_schema is None:
        return None
    if not order_items:
        return None
    directions = {item.descending for item in order_items}
    if len(directions) != 1:
        return None
    descending = directions.pop()
    wanted: List[int] = []
    for item in order_items:
        if not isinstance(item.expr, ast.ColumnRef) or \
                item.expr.entry_id != entry.entry_id:
            return None
        wanted.append(item.expr.position)
    for index in entry.table_schema.indexes:
        positions = [entry.table_schema.column_position(name)
                     for name in index.column_names]
        if positions[:len(wanted)] == wanted:
            return index.name, descending
    return None
