"""MySQL-style join-order selection.

Reproduces the decisive properties of MySQL's search (Sections 1 and 2.2):

* **left-deep only** — no bushy trees;
* **NLJ-biased costing** — index (``ref``) access is costed properly, but
  any non-index join step is charged a full inner rescan per outer row,
  because "hash join selection is not cost-based" (Section 3.1).  Hash
  execution is still *used* for index-less equi joins (MySQL 8.0 replaces
  BNL with hash join), but the order search never credits it;
* **greedy fallback** — small blocks are ordered by left-deep dynamic
  programming with a cartesian-product-avoidance restriction (MySQL's
  pruned best-first search behaves this way for small joins); blocks wider
  than ``GREEDY_THRESHOLD`` units use the pure greedy algorithm the paper
  calls out, which "does not guarantee optimality".

Semi-join nests are ordered as atomic units; MySQL's FirstMatch and
Materialization strategies are both costed, which is how the Q16 behaviour
arises (materialise + probe beats per-row lookups).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.errors import MySQLOptimizerError
from repro.executor.plan import AccessMethod, JoinKind
from repro.mysql_optimizer.access_path import best_local_access, ref_access
from repro.mysql_optimizer.cost import ROW_EVAL, MySQLCostModel
from repro.mysql_optimizer.skeleton import AccessPlan, JoinMethod, \
    PositionEntry
from repro.selectivity import SelectivityEstimator
from repro.sql import ast
from repro.sql.blocks import (
    EntryKind,
    NestKind,
    QueryBlock,
    TableEntry,
    correlation_sources,
    referenced_entries,
)

#: Blocks with more than this many join units fall back to pure greedy.
GREEDY_THRESHOLD = 12


@dataclass
class SubBlockEstimate:
    """Output estimate for a derived/CTE sub-block (from its skeleton)."""

    rows: float
    cost: float


@dataclass
class _Unit:
    index: int
    entries: List[TableEntry]
    nest_kind: Optional[NestKind] = None
    nest_id: Optional[int] = None
    deps: FrozenSet[int] = frozenset()

    @property
    def entry_ids(self) -> FrozenSet[int]:
        return frozenset(entry.entry_id for entry in self.entries)

    @property
    def is_nest(self) -> bool:
        return self.nest_kind is not None


@dataclass
class _State:
    cost: float
    rows: float
    positions: List[PositionEntry]


class JoinOrderSearch:
    """Join ordering for one query block."""

    def __init__(self, block: QueryBlock, estimator: SelectivityEstimator,
                 cost_model: MySQLCostModel,
                 sub_estimates: Dict[int, SubBlockEstimate]) -> None:
        self.block = block
        self.estimator = estimator
        self.cost_model = cost_model
        self.sub_estimates = sub_estimates
        self.corr = frozenset(correlation_sources(block))
        self.pool = list(block.where_conjuncts)
        self.units = self._build_units()

    # -- unit construction ---------------------------------------------------------

    def _build_units(self) -> List[_Unit]:
        units: List[_Unit] = []
        nest_units: Dict[int, _Unit] = {}
        for entry in self.block.entries:
            if entry.semijoin_nest is not None:
                unit = nest_units.get(entry.semijoin_nest)
                if unit is None:
                    nest = self.block.nest(entry.semijoin_nest)
                    unit = _Unit(len(units), [],
                                 nest_kind=nest.kind,
                                 nest_id=nest.nest_id)
                    nest_units[entry.semijoin_nest] = unit
                    units.append(unit)
                unit.entries.append(entry)
            else:
                units.append(_Unit(len(units), [entry]))
        self._compute_deps(units)
        return units

    def _compute_deps(self, units: List[_Unit]) -> None:
        entry_to_unit: Dict[int, int] = {}
        for unit in units:
            for entry in unit.entries:
                entry_to_unit[entry.entry_id] = unit.index
        for unit in units:
            deps = set()
            own = unit.entry_ids
            for entry in unit.entries:
                # LEFT-joined entries follow everything their ON refers to.
                if entry.outer_join_conjuncts:
                    for conjunct in entry.outer_join_conjuncts:
                        for ref in referenced_entries(conjunct):
                            other = entry_to_unit.get(ref)
                            if other is not None and other != unit.index:
                                deps.add(other)
                # Correlated derived tables follow their sources.
                if entry.kind in (EntryKind.DERIVED, EntryKind.CTE) and \
                        entry.sub_block is not None:
                    for ref in correlation_sources(entry.sub_block):
                        other = entry_to_unit.get(ref)
                        if other is not None and other != unit.index:
                            deps.add(other)
            if unit.is_nest:
                # Outer entries co-referenced with the nest must precede it
                # so the semi-join condition is fully bound at nest close.
                for conjunct in self.pool:
                    refs = referenced_entries(conjunct)
                    if refs & own:
                        for ref in refs - own:
                            other = entry_to_unit.get(ref)
                            if other is not None:
                                deps.add(other)
            unit.deps = frozenset(deps)

    # -- conjunct bookkeeping --------------------------------------------------------

    def _local_conjuncts(self, entry: TableEntry) -> List[ast.Expr]:
        target = frozenset({entry.entry_id})
        if entry.outer_join_conjuncts is not None:
            return [c for c in entry.outer_join_conjuncts
                    if referenced_entries(c) and
                    referenced_entries(c).issubset(target | self.corr)]
        return [c for c in self.pool
                if referenced_entries(c) == target]

    def _cross_conjuncts(self, placed: FrozenSet[int],
                         new_ids: FrozenSet[int]) -> List[ast.Expr]:
        """Pool conjuncts that become evaluable when new_ids join placed."""
        result = []
        visible = placed | new_ids | self.corr
        for conjunct in self.pool:
            refs = referenced_entries(conjunct)
            if not refs & new_ids:
                continue
            if refs.issubset(visible) and (refs & placed or
                                           not refs.issubset(new_ids
                                                             | self.corr)):
                result.append(conjunct)
        return result

    def _cross_selectivity(self, conjuncts: List[ast.Expr]) -> float:
        selectivity = 1.0
        for conjunct in conjuncts:
            selectivity *= self.estimator.join_selectivity(
                self.block, conjunct)
        return max(1e-9, selectivity)

    def _has_equi_conjunct(self, conjuncts: List[ast.Expr],
                           placed: FrozenSet[int],
                           new_ids: FrozenSet[int]) -> bool:
        for conjunct in conjuncts:
            if _is_equi_between(conjunct, placed | self.corr, new_ids):
                return True
        return False

    # -- local (standalone) unit plans --------------------------------------------------

    def _entry_local(self, entry: TableEntry
                     ) -> Tuple[AccessPlan, float, float]:
        """(access, rows after local filters, standalone cost)."""
        local = self._local_conjuncts(entry)
        if entry.kind is EntryKind.BASE:
            access = best_local_access(self.block, entry, local,
                                       self.estimator, self.cost_model)
            residual = 1.0
            consumed_ids = {id(c) for c in access.consumed_conjuncts}
            for conjunct in local:
                if id(conjunct) not in consumed_ids:
                    residual *= self.estimator.conjunct_selectivity(
                        self.block, conjunct)
            rows = max(0.5, access.est_rows * residual)
            return access, rows, access.est_cost
        estimate = self._sub_estimate(entry)
        residual = 1.0
        for conjunct in local:
            residual *= self.estimator.conjunct_selectivity(
                self.block, conjunct)
        rows = max(0.5, estimate.rows * residual)
        method = AccessMethod.CTE_SCAN if entry.kind is EntryKind.CTE \
            else AccessMethod.MATERIALIZE
        access = AccessPlan(method=method, est_rows=estimate.rows,
                            est_cost=estimate.cost
                            + estimate.rows * ROW_EVAL * 0.5)
        return access, rows, access.est_cost

    def _sub_estimate(self, entry: TableEntry) -> SubBlockEstimate:
        sub = entry.sub_block
        if sub is not None and sub.block_id in self.sub_estimates:
            return self.sub_estimates[sub.block_id]
        return SubBlockEstimate(rows=1000.0, cost=1000.0)

    # -- transitions ---------------------------------------------------------------

    def _first_position(self, unit: _Unit) -> Optional[_State]:
        if unit.is_nest:
            return None
        entry = unit.entries[0]
        if entry.outer_join_conjuncts is not None:
            return None  # a LEFT inner can never drive the join
        access, rows, cost = self._entry_local(entry)
        # Inside a correlated subquery, equalities against the outer query
        # can drive an index lookup even for the first table (the paper's
        # Q17 subquery probes lineitem_fk2 with part.p_partkey).
        if self.corr:
            ref = ref_access(self.block, entry, self.pool, self.corr,
                             self.estimator, self.cost_model)
            if ref is not None and ref.est_cost < cost:
                residual = 1.0
                consumed = {id(c) for c in ref.consumed_conjuncts}
                for conjunct in self._local_conjuncts(entry):
                    if id(conjunct) not in consumed:
                        residual *= self.estimator.conjunct_selectivity(
                            self.block, conjunct)
                access = ref
                cost = ref.est_cost
                rows = max(0.5, ref.est_rows * residual)
        position = PositionEntry(entry_id=entry.entry_id, access=access,
                                 join_method=JoinMethod.NLJ,
                                 join_kind=JoinKind.INNER,
                                 fanout=rows, cost=cost)
        return _State(cost=cost, rows=rows, positions=[position])

    def _extend(self, state: _State, placed: FrozenSet[int],
                unit: _Unit) -> Optional[_State]:
        if unit.is_nest:
            return self._extend_with_nest(state, placed, unit)
        entry = unit.entries[0]
        new_ids = unit.entry_ids
        cross = self._cross_conjuncts(placed, new_ids)
        join_kind = JoinKind.LEFT if entry.outer_join_conjuncts is not None \
            else JoinKind.INNER

        # Candidate A: ref (index lookup) access driven by the prefix.
        source = entry.outer_join_conjuncts if join_kind is JoinKind.LEFT \
            else self.pool
        ref = ref_access(self.block, entry, list(source),
                         placed | self.corr, self.estimator, self.cost_model)

        # Candidate B: rescan costing (executed as hash join when an equi
        # conjunct exists, but costed as a repeated inner access).
        access, local_rows, local_cost = self._entry_local(entry)
        cross_sel = self._cross_selectivity(cross)
        scan_cost = state.cost + state.rows * self.cost_model.rescan_cost(
            local_cost)
        scan_rows = state.rows * local_rows * cross_sel

        best_access = access
        best_cost = scan_cost
        best_rows = scan_rows
        method = JoinMethod.HASH if self._has_equi_conjunct(
            cross, placed, new_ids) else JoinMethod.NLJ
        if ref is not None:
            consumed_ids = {id(c) for c in ref.consumed_conjuncts}
            residual = 1.0
            for conjunct in self._local_conjuncts(entry):
                if id(conjunct) not in consumed_ids:
                    residual *= self.estimator.conjunct_selectivity(
                        self.block, conjunct)
            for conjunct in cross:
                if id(conjunct) not in consumed_ids:
                    residual *= self.estimator.join_selectivity(
                        self.block, conjunct)
            ref_cost = state.cost + state.rows * ref.est_cost
            ref_rows = state.rows * ref.est_rows * residual
            if ref_cost < best_cost:
                best_access = ref
                best_cost = ref_cost
                best_rows = ref_rows
                method = JoinMethod.NLJ
        if join_kind is JoinKind.LEFT:
            best_rows = max(best_rows, state.rows)
        best_rows = max(0.5, best_rows)
        position = PositionEntry(entry_id=entry.entry_id, access=best_access,
                                 join_method=method, join_kind=join_kind,
                                 fanout=best_rows, cost=best_cost)
        return _State(cost=best_cost, rows=best_rows,
                      positions=state.positions + [position])

    def _extend_with_nest(self, state: _State, placed: FrozenSet[int],
                          unit: _Unit) -> Optional[_State]:
        """Cost FirstMatch (NLJ) vs Materialization (hash) for the nest.

        The two strategies plan the nest's inner chain under different
        visibility: FirstMatch sees the outer prefix (index lookups keyed
        on outer columns are legal), while Materialization computes the
        inner side standalone, so it is planned with an empty prefix.
        """
        fm_positions, fm_probe_rows, fm_probe_cost = \
            self._order_nest(placed, unit)
        match_prob = min(1.0, fm_probe_rows)
        if unit.nest_kind is NestKind.SEMI:
            out_rows = max(0.5, state.rows * max(match_prob, 1e-3))
        else:
            out_rows = max(0.5, state.rows * max(0.02, 1.0 - match_prob))

        firstmatch_cost = state.cost + state.rows * fm_probe_cost
        kind = JoinKind.SEMI if unit.nest_kind is NestKind.SEMI \
            else JoinKind.ANTI
        best_cost = firstmatch_cost
        best_positions = fm_positions
        method = JoinMethod.NLJ
        if self._materialization_possible(unit):
            sa_positions, sa_rows, sa_cost = self._order_nest(
                frozenset(), unit)
            materialize_cost = (state.cost + sa_cost
                                + sa_rows * ROW_EVAL
                                + state.rows * ROW_EVAL * 1.5)
            if materialize_cost < firstmatch_cost:
                best_cost = materialize_cost
                best_positions = sa_positions
                method = JoinMethod.HASH
        for position in best_positions:
            position.nest_id = unit.nest_id
            position.join_kind = kind
            position.join_method = method
        best_positions[0].fanout = out_rows
        best_positions[0].cost = best_cost
        return _State(cost=best_cost, rows=out_rows,
                      positions=state.positions + best_positions)

    def _materialization_possible(self, unit: _Unit) -> bool:
        """Hash materialisation needs every outer bridge to be an equality."""
        own = unit.entry_ids
        for conjunct in self.pool:
            refs = referenced_entries(conjunct)
            if refs & own and refs - own - self.corr:
                if not _is_equi_between(conjunct, refs - own, own):
                    return False
        return True

    def _order_nest(self, placed: FrozenSet[int], unit: _Unit):
        """Greedy order of the nest's entries relative to a prefix.

        With a non-empty ``placed`` this plans the FirstMatch strategy
        (per-probe cost, outer columns available for lookups); with an
        empty prefix it plans the standalone inner computation used by the
        Materialization strategy.  Returns (positions, fanout, cost).
        """
        remaining = list(unit.entries)
        ordered: List[PositionEntry] = []
        probe_rows = 1.0
        probe_cost = 0.0
        inner_placed: FrozenSet[int] = frozenset()
        while remaining:
            best = None
            for entry in remaining:
                candidate = self._nest_step(placed, inner_placed, entry,
                                            probe_rows)
                if best is None or candidate[0] < best[0]:
                    best = candidate + (entry,)
            step_cost, step_rows, position, entry = best
            probe_cost += step_cost
            probe_rows = step_rows
            ordered.append(position)
            inner_placed = inner_placed | {entry.entry_id}
            remaining.remove(entry)
        return ordered, probe_rows, probe_cost

    def _nest_step(self, placed: FrozenSet[int], inner_placed: FrozenSet[int],
                   entry: TableEntry, probe_rows: float):
        available = placed | inner_placed | self.corr
        ref = ref_access(self.block, entry, self.pool, available,
                         self.estimator, self.cost_model)
        access, local_rows, local_cost = self._entry_local(entry)
        cross = self._cross_conjuncts(placed | inner_placed,
                                      frozenset({entry.entry_id}))
        cross_sel = self._cross_selectivity(cross)
        scan_cost = probe_rows * local_cost
        scan_rows = probe_rows * local_rows * cross_sel
        if ref is not None:
            ref_cost = probe_rows * ref.est_cost
            if ref_cost < scan_cost:
                position = PositionEntry(entry_id=entry.entry_id, access=ref,
                                         fanout=scan_rows, cost=ref_cost)
                return ref_cost, max(1e-6, probe_rows * ref.est_rows
                                     * cross_sel), position
        position = PositionEntry(entry_id=entry.entry_id, access=access,
                                 fanout=scan_rows, cost=scan_cost)
        return scan_cost, max(1e-6, scan_rows), position

    # -- search drivers ------------------------------------------------------------

    def search(self) -> Tuple[List[PositionEntry], float, float]:
        if not self.units:
            return [], 0.0, 1.0
        if len(self.units) <= GREEDY_THRESHOLD:
            return self._search_dp()
        return self._search_greedy()

    def _eligible(self, placed_units: FrozenSet[int]) -> List[_Unit]:
        out = []
        for unit in self.units:
            if unit.index in placed_units:
                continue
            if unit.deps.issubset(placed_units):
                out.append(unit)
        return out

    def _connected_first(self, candidates: List[_Unit],
                         placed: FrozenSet[int]) -> List[_Unit]:
        """Prefer units linked to the prefix by a conjunct (avoid cartesian)."""
        if not placed:
            return candidates
        connected = []
        for unit in candidates:
            own = unit.entry_ids
            for conjunct in self.pool:
                refs = referenced_entries(conjunct)
                if refs & own and refs & placed:
                    connected.append(unit)
                    break
            else:
                for entry in unit.entries:
                    if entry.outer_join_conjuncts:
                        for conjunct in entry.outer_join_conjuncts:
                            if referenced_entries(conjunct) & placed:
                                connected.append(unit)
                                break
                        else:
                            continue
                        break
        return connected or candidates

    def _search_dp(self) -> Tuple[List[PositionEntry], float, float]:
        """Left-deep DP over unit subsets with cartesian avoidance."""
        states: Dict[FrozenSet[int], _State] = {}
        entry_sets: Dict[FrozenSet[int], FrozenSet[int]] = {}
        for unit in self._eligible(frozenset()):
            first = self._first_position(unit)
            if first is None:
                continue
            key = frozenset({unit.index})
            if key not in states or first.cost < states[key].cost:
                states[key] = first
                entry_sets[key] = unit.entry_ids
        if not states:
            raise MySQLOptimizerError("no valid driving table for block")
        total_units = len(self.units)
        for size in range(1, total_units):
            layer = [key for key in states if len(key) == size]
            for key in layer:
                state = states[key]
                placed_entries = entry_sets[key]
                candidates = self._connected_first(
                    self._eligible(key), placed_entries)
                for unit in candidates:
                    extended = self._extend(state, placed_entries, unit)
                    if extended is None:
                        continue
                    new_key = key | {unit.index}
                    existing = states.get(new_key)
                    if existing is None or extended.cost < existing.cost:
                        states[new_key] = extended
                        entry_sets[new_key] = placed_entries | unit.entry_ids
        full = frozenset(range(total_units))
        final = states.get(full)
        if final is None:
            # Dependencies may have made some interleavings unreachable via
            # the connected-first pruning; fall back to greedy.
            return self._search_greedy()
        return final.positions, final.cost, final.rows

    def _search_greedy(self) -> Tuple[List[PositionEntry], float, float]:
        placed_units: FrozenSet[int] = frozenset()
        placed_entries: FrozenSet[int] = frozenset()
        state: Optional[_State] = None
        while len(placed_units) < len(self.units):
            candidates = self._eligible(placed_units)
            if state is not None:
                candidates = self._connected_first(candidates,
                                                   placed_entries)
            best: Optional[Tuple[float, _State, _Unit]] = None
            for unit in candidates:
                if state is None:
                    trial = self._first_position(unit)
                else:
                    trial = self._extend(state, placed_entries, unit)
                if trial is None:
                    continue
                if best is None or trial.cost < best[0]:
                    best = (trial.cost, trial, unit)
            if best is None:
                raise MySQLOptimizerError(
                    "greedy join ordering could not place all tables")
            __, state, unit = best
            placed_units = placed_units | {unit.index}
            placed_entries = placed_entries | unit.entry_ids
        assert state is not None
        return state.positions, state.cost, state.rows


def _is_equi_between(conjunct: ast.Expr, side_a: FrozenSet[int],
                     side_b: FrozenSet[int]) -> bool:
    """Whether the conjunct is ``expr(side_a) = expr(side_b)``."""
    if not (isinstance(conjunct, ast.BinaryExpr)
            and conjunct.op is ast.BinOp.EQ):
        return False
    left_refs = referenced_entries(conjunct.left)
    right_refs = referenced_entries(conjunct.right)
    if not left_refs or not right_refs:
        return False
    if left_refs.issubset(side_a) and right_refs.issubset(side_b):
        return True
    return left_refs.issubset(side_b) and right_refs.issubset(side_a)
