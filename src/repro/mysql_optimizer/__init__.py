"""The MySQL-style cost-based optimizer and plan refinement."""

from repro.mysql_optimizer.skeleton import (
    AccessPlan,
    BlockSkeleton,
    JoinMethod,
    PositionEntry,
    SkeletonPlan,
)
from repro.mysql_optimizer.optimizer import MySQLOptimizer
from repro.mysql_optimizer.refinement import PlanBuilder

__all__ = [
    "AccessPlan",
    "BlockSkeleton",
    "JoinMethod",
    "MySQLOptimizer",
    "PlanBuilder",
    "PositionEntry",
    "SkeletonPlan",
]
