"""MySQL plan refinement: skeleton plans to executable plans.

"Plan refinement, which converts a skeleton plan to an executable physical
plan, accomplishes four things: predicate placement; aggregation; row
ordering; and row limit enforcement" (Section 3).  This module is exactly
that phase, and — as in the paper — it is *oblivious of the Orca detour*:
it consumes best-position arrays regardless of which optimizer filled
them.  The single Orca-specific concession from Section 4.3 is honoured
structurally: the skeleton's hash-join decisions are always obeyed, never
overridden.

Predicate placement walks the best-position array attaching each WHERE
conjunct at the earliest position where all of its referenced tables are
bound; LEFT JOIN ON conditions drive their joins and WHERE conditions on
outer-joined tables apply after null-extension; semi-join nests close with
SEMI/ANTI joins.  Aggregation rewrites post-GROUP BY expressions onto the
aggregation pseudo-entry (the paper's SELECT (1) / SELECT (2) split from
Section 4.1), then window functions, ordering, and limits follow.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.catalog.catalog import Catalog
from repro.errors import ExecutionError, MySQLOptimizerError
from repro.executor.executor import Executor
from repro.executor.expression import ExpressionCompiler
from repro.executor.plan import (
    AccessMethod,
    AggregateNode,
    AggregateStrategy,
    AggSpec,
    CompiledWindow,
    CteScanNode,
    DerivedMaterializeNode,
    FilterNode,
    HashJoinNode,
    IndexLookupNode,
    IndexOrderedScanNode,
    IndexRangeScanNode,
    JoinKind,
    NestedLoopJoinNode,
    PlanNode,
    QueryPlan,
    SortNode,
    TableScanNode,
    WindowNode,
)
from repro.mysql_optimizer.skeleton import (
    AccessPlan,
    AggStrategy,
    BlockSkeleton,
    JoinMethod,
    PositionEntry,
    SkeletonPlan,
)
from repro.sql import ast
from repro.sql.blocks import (
    EntryKind,
    NestKind,
    QueryBlock,
    TableEntry,
    correlation_sources,
    referenced_entries,
)
from repro.sql.rewrite import expr_key


class PlanBuilder:
    """Builds an executable :class:`Executor` from a skeleton plan."""

    def __init__(self, skeleton: SkeletonPlan, catalog: Catalog,
                 storage, force_stream_agg: bool = False) -> None:
        self.skeleton = skeleton
        self.catalog = catalog
        self.context = skeleton.context
        self.executor = Executor(storage, self.context)
        self.compiler = ExpressionCompiler(self.executor)
        #: The reduced-memory retry path: every aggregate builds as
        #: STREAM (sort-then-stream) regardless of the skeleton's
        #: choice, trading the hash table's footprint for a sort whose
        #: charges the retry governor treats as spillable.
        self.force_stream_agg = force_stream_agg

    def build(self) -> Executor:
        top = self.skeleton.top_block
        plan = self.build_block_plan(top)
        self.executor.register_plan(top, plan, top=True)
        return self.executor

    # -- per-block plan construction -------------------------------------------------

    def build_block_plan(self, block: QueryBlock) -> QueryPlan:
        if self.executor.has_plan(block):
            return self.executor.plan_for(block)
        sk = self.skeleton.blocks.get(block.block_id)
        if sk is None:
            raise MySQLOptimizerError(
                f"no skeleton for block #{block.block_id}")
        pool = list(block.where_conjuncts)
        corr = frozenset(correlation_sources(block))
        root: Optional[PlanNode] = None
        if sk.positions:
            root = self._build_chain(sk.positions, pool, corr)
        if pool:
            leftovers = list(pool)
            pool.clear()
            if root is None:
                raise MySQLOptimizerError(
                    "predicates remain but the block has no tables")
            root = FilterNode(root, leftovers,
                              self._compile_filter(leftovers))
            root.cost, root.rows = sk.total_cost, sk.total_rows

        select_items = [ast.SelectItem(item.expr, item.alias)
                        for item in block.select_items]
        having = list(block.having_conjuncts)
        order_items = [ast.OrderItem(item.expr, item.descending)
                       for item in block.order_by]
        window_slots: Dict[int, int] = {}

        root, select_items, having, order_items = self._apply_aggregation(
            block, sk, root, select_items, having, order_items)
        root, select_items, order_items = self._apply_windows(
            block, root, select_items, order_items)

        if having:
            root = FilterNode(root, having, self._compile_filter(having))
            root.cost, root.rows = sk.total_cost, sk.total_rows

        if order_items and not block.set_ops and not sk.order_satisfied:
            live = self._live_entries(block)
            key_fns = [self._compile(item.expr) for item in order_items]
            root = SortNode(root, order_items, key_fns, live)
            root.cost, root.rows = sk.total_cost, sk.total_rows

        select_fns = [self._compile(item.expr) for item in select_items]
        plan = QueryPlan(block, root,
                         [item.expr for item in select_items], select_fns)
        plan.distinct = block.distinct
        plan.limit = block.limit
        plan.offset = block.offset
        plan.origin = self.skeleton.origin
        plan.total_cost = sk.total_cost
        plan.total_rows = sk.total_rows
        self.executor.register_plan(block, plan)

        for op, side in block.set_ops:
            plan.union_parts.append((op, self.build_block_plan(side)))
        if block.set_ops and order_items:
            plan.union_order = self._union_order_positions(
                select_items, order_items)
        return plan

    # -- join chain -------------------------------------------------------------------

    def _build_chain(self, positions: List[PositionEntry],
                     pool: List[ast.Expr],
                     outer_visible: frozenset) -> PlanNode:
        node: Optional[PlanNode] = None
        placed: frozenset = frozenset()
        index = 0
        while index < len(positions):
            position = positions[index]
            if position.nest_id is not None:
                run = [position]
                index += 1
                while index < len(positions) and \
                        positions[index].nest_id == position.nest_id:
                    run.append(positions[index])
                    index += 1
                node, placed = self._join_nest(node, placed, run, pool,
                                               outer_visible)
                continue
            index += 1
            unit_ids = frozenset(position.all_entry_ids())
            if node is None:
                node = self._build_unit(position, placed, pool,
                                        outer_visible, inner_of_nlj=True)
                placed = unit_ids
                # Conjuncts referencing only correlation sources attach to
                # the first node.
                self._attach_filter(node, self._pop_evaluable(
                    pool, placed | outer_visible))
                node.cost, node.rows = position.cost, position.fanout
                continue
            node, placed = self._join_step(node, placed, position, pool,
                                           outer_visible)
        if node is None:
            raise MySQLOptimizerError("empty best-position array")
        return node

    def _join_step(self, node: PlanNode, placed: frozenset,
                   position: PositionEntry, pool: List[ast.Expr],
                   outer_visible: frozenset) -> Tuple[PlanNode, frozenset]:
        unit_ids = frozenset(position.all_entry_ids())
        entry = (self.context.entry(position.entry_id)
                 if position.entry_id is not None else None)
        is_left = (entry is not None
                   and entry.outer_join_conjuncts is not None)
        if is_left:
            joined = self._join_left(node, placed, position, entry, pool,
                                     outer_visible)
        elif position.join_method is JoinMethod.NLJ:
            inner = self._build_unit(position, placed, pool, outer_visible,
                                     inner_of_nlj=True)
            joined = NestedLoopJoinNode(node, inner, JoinKind.INNER, [],
                                        _TRUE)
        else:
            inner = self._build_unit(position, placed, pool, outer_visible,
                                     inner_of_nlj=False)
            cross = self._pop_cross(pool, placed | outer_visible, unit_ids)
            joined = self._make_hash_join(node, inner, JoinKind.INNER,
                                          cross, placed | outer_visible,
                                          unit_ids)
        new_placed = placed | unit_ids
        # Attach anything newly evaluable that was not consumed (e.g. OR
        # predicates spanning both sides under an NLJ).
        self._attach_filter(joined, self._pop_evaluable(
            pool, new_placed | outer_visible))
        joined.cost, joined.rows = position.cost, position.fanout
        return joined, new_placed

    def _join_left(self, node: PlanNode, placed: frozenset,
                   position: PositionEntry, entry: TableEntry,
                   pool: List[ast.Expr],
                   outer_visible: frozenset) -> PlanNode:
        on_conjuncts = list(entry.outer_join_conjuncts or [])
        unit_ids = frozenset(position.all_entry_ids())
        if position.join_method is JoinMethod.NLJ:
            inner = self._build_unit(position, placed, on_conjuncts,
                                     outer_visible, inner_of_nlj=True)
            condition = list(on_conjuncts)
            on_conjuncts.clear()
            joined: PlanNode = NestedLoopJoinNode(
                node, inner, JoinKind.LEFT, condition,
                self._compile_filter(condition))
        else:
            inner = self._build_unit(position, placed, on_conjuncts,
                                     outer_visible, inner_of_nlj=False)
            cross = list(on_conjuncts)
            on_conjuncts.clear()
            joined = self._make_hash_join(node, inner, JoinKind.LEFT, cross,
                                          placed | outer_visible, unit_ids)
        return joined

    def _join_nest(self, node: Optional[PlanNode], placed: frozenset,
                   run: List[PositionEntry], pool: List[ast.Expr],
                   outer_visible: frozenset) -> Tuple[PlanNode, frozenset]:
        if node is None:
            raise MySQLOptimizerError(
                "a semi-join nest cannot drive a query block")
        first = run[0]
        block = self.context.entry(first.all_entry_ids()[0]).block
        nest_obj = block.nest(first.nest_id)
        kind = JoinKind.SEMI if nest_obj.kind is NestKind.SEMI \
            else JoinKind.ANTI
        unit_ids = frozenset(eid for position in run
                             for eid in position.all_entry_ids())
        # Strip nest markers so the inner chain builds as a plain join.
        inner_positions = [_without_nest(position) for position in run]
        if first.join_method is JoinMethod.NLJ:
            # FirstMatch: inner chain sees the outer prefix, so all cross
            # conjuncts become inner-side filters and the join condition is
            # trivially true once an inner row survives.
            inner = self._build_chain(inner_positions, pool,
                                      outer_visible | placed)
            joined: PlanNode = NestedLoopJoinNode(node, inner, kind, [],
                                                  _TRUE)
        else:
            # Materialisation: inner computed standalone, cross equalities
            # become hash keys.
            inner = self._build_chain(inner_positions, pool, outer_visible)
            cross = self._pop_cross(pool, placed | outer_visible, unit_ids)
            joined = self._make_hash_join(node, inner, kind, cross,
                                          placed | outer_visible, unit_ids)
        new_placed = placed | unit_ids
        self._attach_filter(joined, self._pop_evaluable(
            pool, new_placed | outer_visible))
        joined.cost, joined.rows = first.cost, first.fanout
        return joined, new_placed

    def _make_hash_join(self, probe: PlanNode, build: PlanNode,
                        kind: JoinKind, cross: List[ast.Expr],
                        probe_side: frozenset,
                        build_side: frozenset) -> HashJoinNode:
        probe_keys: List[ast.Expr] = []
        build_keys: List[ast.Expr] = []
        residual: List[ast.Expr] = []
        for conjunct in cross:
            pair = _split_equi(conjunct, probe_side, build_side)
            if pair is not None:
                probe_keys.append(pair[0])
                build_keys.append(pair[1])
            else:
                residual.append(conjunct)
        return HashJoinNode(
            probe, build, kind,
            probe_keys, [self._compile(k) for k in probe_keys],
            build_keys, [self._compile(k) for k in build_keys],
            residual, self._compile_filter(residual))

    # -- units and leaves ---------------------------------------------------------------

    def _build_unit(self, position: PositionEntry, placed: frozenset,
                    pool: List[ast.Expr], outer_visible: frozenset,
                    inner_of_nlj: bool) -> PlanNode:
        visible = outer_visible | (placed if inner_of_nlj else frozenset())
        if position.is_branch:
            return self._build_chain(position.branch, pool, visible)
        return self._build_leaf(position, visible, pool)

    def _build_leaf(self, position: PositionEntry, visible: frozenset,
                    pool: List[ast.Expr]) -> PlanNode:
        entry = self.context.entry(position.entry_id)
        access = position.access or AccessPlan(
            method=AccessMethod.TABLE_SCAN)
        node = self._access_node(entry, access)
        _remove_by_identity(pool, access.consumed_conjuncts)
        own = frozenset({entry.entry_id})
        conjuncts = self._pop_evaluable(pool, visible | own,
                                        must_touch=own)
        self._attach_filter(node, conjuncts)
        node.cost, node.rows = access.est_cost, access.est_rows
        return node

    def _access_node(self, entry: TableEntry,
                     access: AccessPlan) -> PlanNode:
        if entry.kind is EntryKind.BASE:
            table_name = entry.table_schema.name
            if access.method is AccessMethod.TABLE_SCAN:
                return TableScanNode(entry.entry_id, table_name, entry.alias)
            if access.method is AccessMethod.INDEX_RANGE:
                return IndexRangeScanNode(
                    entry.entry_id, table_name, entry.alias,
                    access.index_name, access.low, access.high,
                    access.low_inclusive, access.high_inclusive)
            if access.method is AccessMethod.INDEX_LOOKUP:
                key_fns = [self._compile(k) for k in access.key_exprs]
                return IndexLookupNode(entry.entry_id, table_name,
                                       entry.alias, access.index_name,
                                       access.key_exprs, key_fns)
            if access.method is AccessMethod.INDEX_SCAN:
                return IndexOrderedScanNode(entry.entry_id, table_name,
                                            entry.alias, access.index_name,
                                            access.descending)
            raise MySQLOptimizerError(
                f"bad access method {access.method} for base table")
        if entry.kind is EntryKind.DERIVED:
            subplan = self.build_block_plan(entry.sub_block)
            sources = correlation_sources(entry.sub_block)
            return DerivedMaterializeNode(entry.entry_id, entry.alias,
                                          subplan, sources)
        if entry.kind is EntryKind.CTE:
            subplan = self.build_block_plan(entry.cte.block)
            return CteScanNode(entry.entry_id, entry.alias,
                               entry.cte.cte_id, entry.cte.name, subplan)
        raise MySQLOptimizerError(f"cannot build access for {entry!r}")

    # -- predicate pool helpers ------------------------------------------------------------

    def _pop_evaluable(self, pool: List[ast.Expr], visible: frozenset,
                       must_touch: Optional[frozenset] = None
                       ) -> List[ast.Expr]:
        taken: List[ast.Expr] = []
        remaining: List[ast.Expr] = []
        for conjunct in pool:
            refs = referenced_entries(conjunct)
            if refs.issubset(visible) and \
                    (must_touch is None or refs & must_touch):
                taken.append(conjunct)
            else:
                remaining.append(conjunct)
        pool[:] = remaining
        return taken

    def _pop_cross(self, pool: List[ast.Expr], probe_side: frozenset,
                   build_side: frozenset) -> List[ast.Expr]:
        taken: List[ast.Expr] = []
        remaining: List[ast.Expr] = []
        visible = probe_side | build_side
        for conjunct in pool:
            refs = referenced_entries(conjunct)
            if refs.issubset(visible) and refs & build_side:
                taken.append(conjunct)
            else:
                remaining.append(conjunct)
        pool[:] = remaining
        return taken

    def _attach_filter(self, node: PlanNode,
                       conjuncts: List[ast.Expr]) -> None:
        if not conjuncts:
            return
        combined = node.filter_conjuncts + conjuncts
        node.filter_conjuncts = combined
        node.filter_fn = self._compile_filter(combined)

    # -- aggregation ------------------------------------------------------------------------

    def _apply_aggregation(self, block: QueryBlock, sk: BlockSkeleton,
                           root: Optional[PlanNode],
                           select_items: List[ast.SelectItem],
                           having: List[ast.Expr],
                           order_items: List[ast.OrderItem]):
        if not block.aggregated:
            return root, select_items, having, order_items
        group_exprs = list(block.group_by)
        agg_calls = self._collect_aggregates(select_items, having,
                                             order_items, block)
        agg_entry = self.context.new_entry(EntryKind.PSEUDO, "aggregate",
                                           f"agg_{block.block_id}", block)
        block.agg_entry = agg_entry

        strategy = AggregateStrategy.STREAM \
            if (sk.agg_strategy is AggStrategy.STREAM
                or self.force_stream_agg) \
            else AggregateStrategy.HASH
        if root is not None and group_exprs and \
                strategy is AggregateStrategy.STREAM:
            sort_items = [ast.OrderItem(g) for g in group_exprs]
            key_fns = [self._compile(g) for g in group_exprs]
            root = SortNode(root, sort_items, key_fns,
                            self._live_entries(block, pre_agg=True))
            root.cost, root.rows = sk.total_cost, sk.total_rows
        specs = []
        for call in agg_calls:
            arg_fn = self._compile(call.arg) if call.arg is not None else None
            specs.append(AggSpec(call.func, arg_fn, call.distinct,
                                 call.star, arg_expr=call.arg))
        group_fns = [self._compile(g) for g in group_exprs]
        root = AggregateNode(root, group_fns, group_exprs, specs, strategy,
                             agg_entry.entry_id)
        root.cost, root.rows = sk.total_cost, sk.total_rows

        rewriter = _PostAggRewriter(group_exprs, agg_calls, agg_entry)
        new_items = [ast.SelectItem(rewriter.rewrite(item.expr), item.alias)
                     for item in select_items]
        new_having = [rewriter.rewrite(c) for c in having]
        new_order = [ast.OrderItem(rewriter.rewrite(item.expr),
                                   item.descending)
                     for item in order_items]
        return root, new_items, new_having, new_order

    def _collect_aggregates(self, select_items, having, order_items,
                            block: QueryBlock) -> List[ast.AggCall]:
        calls: List[ast.AggCall] = []
        seen = set()
        exprs: List[ast.Expr] = [item.expr for item in select_items]
        exprs.extend(having)
        exprs.extend(item.expr for item in order_items)
        for expr in exprs:
            for node in expr.walk():
                if isinstance(node, ast.AggCall):
                    key = expr_key(node)
                    if key not in seen:
                        seen.add(key)
                        calls.append(node)
        return calls

    # -- windows ------------------------------------------------------------------------------

    def _apply_windows(self, block: QueryBlock, root: Optional[PlanNode],
                       select_items: List[ast.SelectItem],
                       order_items: List[ast.OrderItem]):
        window_calls: List[ast.WindowCall] = []
        for item in select_items:
            for node in item.expr.walk():
                if isinstance(node, ast.WindowCall):
                    window_calls.append(node)
        if not window_calls:
            return root, select_items, order_items
        if root is None:
            raise MySQLOptimizerError("window functions need a FROM clause")
        window_entry = self.context.new_entry(
            EntryKind.PSEUDO, "window", f"win_{block.block_id}", block)
        block.window_entry = window_entry
        live = self._live_entries(block)
        specs: List[CompiledWindow] = []
        slot_by_id: Dict[int, int] = {}
        for call in window_calls:
            if id(call) in slot_by_id:
                continue
            slot_by_id[id(call)] = len(specs)
            specs.append(CompiledWindow(
                call.func,
                [self._compile(arg) for arg in call.args],
                [self._compile(part) for part in call.partition_by],
                [self._compile(item.expr) for item in call.order_by],
                call.order_by))
        root = WindowNode(root, specs, window_entry.entry_id, live)

        def replace(expr: ast.Expr) -> ast.Expr:
            if isinstance(expr, ast.WindowCall):
                slot = slot_by_id[id(expr)]
                ref = ast.ColumnRef(None, f"window_{slot}",
                                    window_entry.entry_id, slot)
                return ref
            return _rebuild_with(expr, replace)

        new_items = [ast.SelectItem(replace(item.expr), item.alias)
                     for item in select_items]
        new_order = [ast.OrderItem(replace(item.expr), item.descending)
                     for item in order_items]
        return root, new_items, new_order

    # -- misc helpers -----------------------------------------------------------------------------

    def _live_entries(self, block: QueryBlock,
                      pre_agg: bool = False) -> List[int]:
        live = [entry.entry_id for entry in block.entries]
        if not pre_agg:
            if block.agg_entry is not None:
                live.append(block.agg_entry.entry_id)
            if block.window_entry is not None:
                live.append(block.window_entry.entry_id)
        return live

    def _union_order_positions(self, select_items, order_items
                               ) -> List[Tuple[int, bool]]:
        positions: List[Tuple[int, bool]] = []
        keys = [expr_key(item.expr) for item in select_items]
        for order in order_items:
            key = expr_key(order.expr)
            if key not in keys:
                raise MySQLOptimizerError(
                    "ORDER BY of a UNION must name output columns")
            positions.append((keys.index(key), order.descending))
        return positions

    def _compile(self, expr: ast.Expr) -> Callable:
        self._ensure_subplans(expr)
        return self.compiler.compile(expr)

    def _compile_filter(self, conjuncts: List[ast.Expr]) -> Callable:
        for conjunct in conjuncts:
            self._ensure_subplans(conjunct)
        return self.compiler.compile_filter(conjuncts)

    def _ensure_subplans(self, expr: ast.Expr) -> None:
        for node in expr.walk():
            sub = getattr(node, "block", None)
            if isinstance(sub, QueryBlock) and \
                    not self.executor.has_plan(sub):
                self.build_block_plan(sub)


def _TRUE(ctx) -> bool:
    return True


class _PostAggRewriter:
    """Rewrites post-aggregation expressions onto the agg pseudo-entry."""

    def __init__(self, group_exprs: List[ast.Expr],
                 agg_calls: List[ast.AggCall],
                 agg_entry: TableEntry) -> None:
        self.group_map = {expr_key(g): position
                          for position, g in enumerate(group_exprs)}
        self.agg_map = {expr_key(call): len(group_exprs) + position
                        for position, call in enumerate(agg_calls)}
        self.entry_id = agg_entry.entry_id

    def rewrite(self, expr: ast.Expr) -> ast.Expr:
        key = expr_key(expr)
        slot = self.group_map.get(key)
        if slot is None:
            slot = self.agg_map.get(key)
        if slot is not None:
            from repro.executor.explain import expr_text

            return ast.ColumnRef(None, expr_text(expr), self.entry_id, slot)
        if isinstance(expr, ast.AggCall):
            raise ExecutionError("aggregate not collected during rewriting")
        return _rebuild_with(expr, self.rewrite)


def _rebuild_with(expr: ast.Expr, fn) -> ast.Expr:
    """Rebuild one level of an expression with ``fn`` applied to children.

    Unlike :func:`repro.sql.rewrite.map_expr`, this is *top-down*: the
    caller tries to replace the whole node first and only recurses when it
    did not match (required for matching whole GROUP BY expressions).
    """
    if isinstance(expr, ast.BinaryExpr):
        return ast.BinaryExpr(expr.op, fn(expr.left), fn(expr.right))
    if isinstance(expr, ast.NotExpr):
        return ast.NotExpr(fn(expr.operand))
    if isinstance(expr, ast.NegExpr):
        return ast.NegExpr(fn(expr.operand))
    if isinstance(expr, ast.IsNullExpr):
        return ast.IsNullExpr(fn(expr.operand), expr.negated)
    if isinstance(expr, ast.BetweenExpr):
        return ast.BetweenExpr(fn(expr.operand), fn(expr.low),
                               fn(expr.high), expr.negated)
    if isinstance(expr, ast.LikeExpr):
        return ast.LikeExpr(fn(expr.operand), fn(expr.pattern), expr.negated)
    if isinstance(expr, ast.InListExpr):
        return ast.InListExpr(fn(expr.operand),
                              [fn(item) for item in expr.items],
                              expr.negated)
    if isinstance(expr, ast.FuncCall):
        return ast.FuncCall(expr.name, [fn(arg) for arg in expr.args])
    if isinstance(expr, ast.CaseExpr):
        return ast.CaseExpr([(fn(c), fn(v)) for c, v in expr.whens],
                            fn(expr.else_value)
                            if expr.else_value is not None else None)
    if isinstance(expr, ast.WindowCall):
        return ast.WindowCall(expr.func, [fn(arg) for arg in expr.args],
                              [fn(part) for part in expr.partition_by],
                              [ast.OrderItem(fn(item.expr), item.descending)
                               for item in expr.order_by])
    if isinstance(expr, ast.GroupingCall):
        return ast.GroupingCall(fn(expr.arg))
    if isinstance(expr, ast.AggCall) and expr.arg is not None:
        return ast.AggCall(expr.func, fn(expr.arg), expr.distinct, expr.star)
    return expr


def _split_equi(conjunct: ast.Expr, probe_side: frozenset,
                build_side: frozenset
                ) -> Optional[Tuple[ast.Expr, ast.Expr]]:
    """Split ``a = b`` into (probe expr, build expr) when sides separate."""
    if not (isinstance(conjunct, ast.BinaryExpr)
            and conjunct.op is ast.BinOp.EQ):
        return None
    left_refs = referenced_entries(conjunct.left)
    right_refs = referenced_entries(conjunct.right)
    if not left_refs or not right_refs:
        return None
    if left_refs.issubset(probe_side) and right_refs.issubset(build_side):
        return conjunct.left, conjunct.right
    if right_refs.issubset(probe_side) and left_refs.issubset(build_side):
        return conjunct.right, conjunct.left
    return None


def _without_nest(position: PositionEntry) -> PositionEntry:
    """A copy of a position entry with nest markers cleared.

    Inside the nest, entries join as plain inner joins; the semi/anti
    semantics apply only where the nest meets the outer prefix.
    """
    return PositionEntry(
        entry_id=position.entry_id,
        branch=position.branch,
        access=position.access,
        join_method=JoinMethod.NLJ,
        join_kind=JoinKind.INNER,
        nest_id=None,
        fanout=position.fanout,
        cost=position.cost,
    )


def _remove_by_identity(pool: List[ast.Expr],
                        remove: List[ast.Expr]) -> None:
    remove_ids = {id(conjunct) for conjunct in remove}
    pool[:] = [conjunct for conjunct in pool
               if id(conjunct) not in remove_ids]
