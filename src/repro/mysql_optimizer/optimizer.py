"""The MySQL-style cost-based optimizer driver.

Optimizes one SELECT block at a time (Section 2.2) in bottom-up order:
derived-table, CTE, and subquery blocks first so the parent block's join
ordering can use their output estimates.  The result is a
:class:`SkeletonPlan` — join order, join methods, and access methods
finalized; everything else left to plan refinement.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.catalog.catalog import Catalog
from repro.mysql_optimizer.cost import MySQLCostModel
from repro.mysql_optimizer.join_order import (
    JoinOrderSearch,
    SubBlockEstimate,
)
from repro.mysql_optimizer.skeleton import (
    AggStrategy,
    BlockSkeleton,
    SkeletonPlan,
)
from repro.selectivity import SelectivityEstimator
from repro.sql import ast
from repro.sql.blocks import EntryKind, QueryBlock, StatementContext


class MySQLOptimizer:
    """Produces skeleton plans the MySQL way: greedy, left-deep, NLJ-first."""

    def __init__(self, catalog: Catalog) -> None:
        self.catalog = catalog
        # MySQL's classic estimation: NDV-based, no histogram ranges.
        self.estimator = SelectivityEstimator(catalog, use_histograms=False)
        self.cost_model = MySQLCostModel()

    def optimize(self, top_block: QueryBlock,
                 context: StatementContext) -> SkeletonPlan:
        plan = SkeletonPlan(context, top_block, origin="mysql")
        self._optimize_block(top_block, plan, set())
        return plan

    # -- recursion ------------------------------------------------------------------

    def _optimize_block(self, block: QueryBlock, plan: SkeletonPlan,
                        in_progress: Set[int]) -> BlockSkeleton:
        existing = plan.blocks.get(block.block_id)
        if existing is not None:
            return existing
        if block.block_id in in_progress:
            raise RuntimeError("cyclic block structure")
        in_progress.add(block.block_id)

        sub_estimates: Dict[int, SubBlockEstimate] = {}
        for sub in self._sub_blocks(block):
            skeleton = self._optimize_block(sub, plan, in_progress)
            sub_estimates[sub.block_id] = SubBlockEstimate(
                rows=skeleton.total_rows, cost=skeleton.total_cost)

        skeleton = self._optimize_one(block, sub_estimates)
        plan.add(skeleton)
        in_progress.discard(block.block_id)
        return skeleton

    def _sub_blocks(self, block: QueryBlock) -> List[QueryBlock]:
        subs: List[QueryBlock] = []
        for binding in block.cte_bindings:
            subs.append(binding.block)
        for entry in block.entries:
            if entry.kind in (EntryKind.DERIVED, EntryKind.CTE) and \
                    entry.sub_block is not None:
                subs.append(entry.sub_block)
        subs.extend(block.all_subquery_blocks())
        for __, side in block.set_ops:
            subs.append(side)
        return subs

    # -- per-block optimization ---------------------------------------------------------

    def _optimize_one(self, block: QueryBlock,
                      sub_estimates: Dict[int, SubBlockEstimate]
                      ) -> BlockSkeleton:
        if block.entries:
            search = JoinOrderSearch(block, self.estimator, self.cost_model,
                                     sub_estimates)
            positions, cost, rows = search.search()
        else:
            positions, cost, rows = [], 0.0, 1.0

        if block.aggregated:
            group_rows = self._group_estimate(block, rows)
            cost += self.cost_model.sort_cost(rows)
            cost += self.cost_model.aggregate_cost(rows)
            rows = group_rows
        if block.having_conjuncts:
            rows = max(1.0, rows * 0.5)
        if block.windows:
            cost += self.cost_model.sort_cost(rows) * len(block.windows)
        if block.order_by:
            cost += self.cost_model.sort_cost(rows)
        if block.distinct:
            rows = max(1.0, rows * 0.5)
        if block.limit is not None:
            rows = min(rows, float(block.limit))

        return BlockSkeleton(
            block=block,
            positions=positions,
            total_cost=cost,
            total_rows=max(1.0, rows),
            # MySQL's classic plan: sort the join output, then stream
            # aggregate (both paper Q72 plans end this way).
            agg_strategy=AggStrategy.STREAM,
            order_satisfied=False,
        )

    def _group_estimate(self, block: QueryBlock, input_rows: float) -> float:
        if not block.group_by:
            return 1.0
        groups = 1.0
        for expr in block.group_by:
            if isinstance(expr, ast.ColumnRef):
                groups *= self.estimator.column_ndv(block, expr)
            else:
                groups *= 10.0
        return max(1.0, min(groups, input_rows * 0.7 + 1.0))
