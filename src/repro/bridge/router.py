"""Query routing: which optimizer compiles a statement (Sections 3, 4.1).

The router implements the paper's conservative policy:

* only SELECT statements are ever routed to Orca (the parser already
  restricts this reproduction to SELECT);
* only "complex" queries qualify — complexity is the total number of table
  references, and the threshold defaults to 3 (checked by the Database
  facade for ``optimizer="auto"``);
* recursive CTEs and multi-column GROUPING are rejected before Orca
  (the SQL frontend already refuses them, mirroring Section 4.1);
* any :class:`OrcaFallbackError` during conversion or optimization makes
  the router return ``None``, and the caller "resorts to the usual MySQL
  query optimization".
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.catalog.catalog import Catalog
from repro.errors import OrcaError, OrcaFallbackError
from repro.bridge.metadata_provider import MySQLMetadataProvider
from repro.bridge.parse_tree_converter import ParseTreeConverter
from repro.bridge.plan_converter import OrcaPlanConverter
from repro.mysql_optimizer.skeleton import SkeletonPlan
from repro.orca.joinorder import JoinSearchMode, SubEstimates
from repro.orca.mdcache import MDAccessor
from repro.orca.optimizer import OrcaBlockPlan, OrcaConfig, OrcaOptimizer
from repro.orca.preprocess import preprocess_block, push_cte_predicates
from repro.selectivity import SelectivityEstimator
from repro.sql import ast
from repro.sql.blocks import EntryKind, QueryBlock, StatementContext


class OrcaRouter:
    """Drives the full Orca detour for one statement."""

    def __init__(self, catalog: Catalog, config,
                 orca_config: Optional[OrcaConfig] = None) -> None:
        self.catalog = catalog
        self.config = config
        if orca_config is not None:
            self.orca_config = orca_config
        else:
            self.orca_config = OrcaConfig(
                search=JoinSearchMode[config.orca_search])
        #: Populated on every successful optimization, for observability.
        self.last_provider: Optional[MySQLMetadataProvider] = None
        self.last_accessor: Optional[MDAccessor] = None
        self.last_converter: Optional[ParseTreeConverter] = None

    def optimize(self, stmt: ast.SelectStmt, block: QueryBlock,
                 context: StatementContext) -> Optional[SkeletonPlan]:
        """Optimize with Orca; None means fall back to MySQL."""
        try:
            return self._optimize(block, context)
        except (OrcaFallbackError, OrcaError):
            return None

    # -- the detour -----------------------------------------------------------------

    def _optimize(self, block: QueryBlock,
                  context: StatementContext) -> SkeletonPlan:
        provider = MySQLMetadataProvider(self.catalog)
        accessor = MDAccessor(provider)
        converter = ParseTreeConverter(accessor)
        estimator = SelectivityEstimator(accessor, use_histograms=True)
        optimizer = OrcaOptimizer(estimator, self.orca_config)
        self.last_provider = provider
        self.last_accessor = accessor
        self.last_converter = converter

        # Preprocessing rewrites (OR factorization, scalar-subquery ->
        # derived table, CTE predicate pushdown) mutate the blocks; the
        # plan refinement that later consumes the skeleton sees the
        # rewritten predicates, as the real integration's broadened MySQL
        # did (Section 7, lessons 3-4).
        preprocess_block(
            block,
            enable_or_factorization=self.orca_config
            .enable_or_factorization,
            enable_derived_subqueries=self.orca_config
            .enable_derived_subqueries)
        if self.orca_config.enable_cte_pushdown:
            push_cte_predicates(block)

        block_plans: Dict[int, OrcaBlockPlan] = {}
        estimates = SubEstimates()
        self._optimize_block(block, converter, optimizer, block_plans,
                             estimates, set())
        return OrcaPlanConverter(context).convert(block_plans, block)

    def _optimize_block(self, block: QueryBlock,
                        converter: ParseTreeConverter,
                        optimizer: OrcaOptimizer,
                        block_plans: Dict[int, OrcaBlockPlan],
                        estimates: SubEstimates,
                        in_progress: Set[int]) -> OrcaBlockPlan:
        existing = block_plans.get(block.block_id)
        if existing is not None:
            return existing
        if block.block_id in in_progress:
            raise OrcaFallbackError("cyclic block structure")
        in_progress.add(block.block_id)
        for sub in self._sub_blocks(block):
            sub_plan = self._optimize_block(sub, converter, optimizer,
                                            block_plans, estimates,
                                            in_progress)
            estimates.add(sub.block_id, sub_plan.rows, sub_plan.cost)
        logical = converter.convert_block(block)
        block_plan = optimizer.optimize_block(logical, estimates)
        block_plans[block.block_id] = block_plan
        in_progress.discard(block.block_id)
        return block_plan

    def _sub_blocks(self, block: QueryBlock):
        subs = []
        for binding in block.cte_bindings:
            subs.append(binding.block)
        for entry in block.entries:
            if entry.kind in (EntryKind.DERIVED, EntryKind.CTE) and \
                    entry.sub_block is not None:
                subs.append(entry.sub_block)
        subs.extend(block.all_subquery_blocks())
        for __, side in block.set_ops:
            subs.append(side)
        return subs
