"""Query routing: which optimizer compiles a statement (Sections 3, 4.1).

The router implements the paper's conservative policy:

* only SELECT statements are ever routed to Orca (the parser already
  restricts this reproduction to SELECT);
* only "complex" queries qualify — complexity is the total number of table
  references, and the threshold defaults to 3 (checked by the Database
  facade for ``optimizer="auto"``);
* recursive CTEs and multi-column GROUPING are rejected before Orca
  (the SQL frontend already refuses them, mirroring Section 4.1);
* the whole detour runs under a :class:`repro.resilience.DetourGuard`:
  typed aborts (:class:`OrcaFallbackError`), compile-budget overruns,
  and *any* unexpected exception make the router fall back, and the
  caller "resorts to the usual MySQL query optimization" — the outcome
  (reason + error details) is reported so the facade can log it and
  feed the circuit breaker.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.catalog.catalog import Catalog
from repro.errors import OrcaFallbackError, ReproError
from repro.bridge.metadata_provider import MySQLMetadataProvider
from repro.bridge.parse_tree_converter import ParseTreeConverter
from repro.bridge.plan_converter import OrcaPlanConverter
from repro.mysql_optimizer.skeleton import SkeletonPlan
from repro.orca.joinorder import JoinSearchMode, SubEstimates
from repro.orca.mdcache import MDAccessor
from repro.orca.optimizer import OrcaBlockPlan, OrcaConfig, OrcaOptimizer
from repro.orca.preprocess import preprocess_block, push_cte_predicates
from repro.resilience import CompileBudget, DetourGuard, DetourOutcome
from repro.selectivity import SelectivityEstimator
from repro.sql import ast
from repro.sql.blocks import EntryKind, QueryBlock, StatementContext


def _search_mode(config) -> JoinSearchMode:
    """Validate ``config.orca_search`` instead of dying on a raw KeyError."""
    name = config.orca_search
    try:
        return JoinSearchMode[name]
    except KeyError:
        valid = ", ".join(mode.name for mode in JoinSearchMode)
        raise ReproError(
            f"unknown orca_search {name!r}; valid choices: {valid}"
        ) from None


class OrcaRouter:
    """Drives the full Orca detour for one statement."""

    def __init__(self, catalog: Catalog, config,
                 orca_config: Optional[OrcaConfig] = None,
                 tracer=None, metrics=None, governor=None) -> None:
        self.catalog = catalog
        self.config = config
        #: Per-statement :class:`repro.governor.ExecutionGovernor` (or
        #: None).  The detour honours it two ways: the compile budget is
        #: capped to the statement's remaining deadline, and cooperative
        #: cancellation fires at the budget's own check sites.
        self.governor = governor
        if orca_config is not None:
            self.orca_config = orca_config
        else:
            self.orca_config = OrcaConfig(
                search=_search_mode(config),
                enable_cost_bound_pruning=getattr(
                    config, "orca_cost_bound_pruning", True),
                join_strategy=getattr(
                    config, "orca_join_strategy", "adaptive"),
                lindp_threshold=getattr(
                    config, "orca_lindp_threshold", 12),
                goo_threshold=getattr(
                    config, "orca_goo_threshold", 25))
        if tracer is None:
            from repro.observability import NOOP_TRACER
            tracer = NOOP_TRACER
        #: Tracer and metrics sink shared by every bridge component the
        #: detour constructs (spans: preprocess, parse_tree_convert,
        #: memo_search, plan_convert, metadata_lookup).
        self.tracer = tracer
        self.metrics = metrics
        #: Populated on every successful optimization, for observability.
        self.last_provider: Optional[MySQLMetadataProvider] = None
        self.last_accessor: Optional[MDAccessor] = None
        self.last_converter: Optional[ParseTreeConverter] = None
        #: The guarded result of the most recent :meth:`optimize` call.
        self.last_outcome: Optional[DetourOutcome] = None

    def optimize(self, stmt: ast.SelectStmt, block: QueryBlock,
                 context: StatementContext) -> Optional[SkeletonPlan]:
        """Optimize with Orca; None means fall back to MySQL."""
        return self.optimize_guarded(stmt, block, context).skeleton

    def optimize_guarded(self, stmt: ast.SelectStmt, block: QueryBlock,
                         context: StatementContext) -> DetourOutcome:
        """Run the detour under full containment.

        Every exception the detour raises — not just the typed Orca
        aborts — becomes a :class:`DetourOutcome` carrying the fallback
        reason and error details.  With
        ``config.contain_unexpected_errors`` false (a debugging aid),
        non-Orca exceptions surface to the caller instead.
        """
        guard = DetourGuard(contain_unexpected=getattr(
            self.config, "contain_unexpected_errors", True))
        outcome = guard.run(lambda: self._optimize(block, context))
        self.last_outcome = outcome
        return outcome

    # -- the detour -----------------------------------------------------------------

    def _optimize(self, block: QueryBlock,
                  context: StatementContext) -> SkeletonPlan:
        budget = CompileBudget.from_config(self.config)
        if self.governor is not None:
            # The optimize stage must not spend wall-clock the
            # statement deadline no longer has: whichever bound is
            # tighter becomes the compile budget, so an overrun aborts
            # the detour (BUDGET_EXCEEDED -> MySQL fallback) before the
            # statement's own deadline fires mid-search.
            budget = self.governor.cap_compile_budget(budget)
            self.governor.checkpoint(stage="orca_detour")
        injector = getattr(self.config, "fault_injector", None)
        provider = MySQLMetadataProvider(self.catalog,
                                         fault_injector=injector,
                                         metrics=self.metrics)
        accessor = MDAccessor(provider, tracer=self.tracer,
                              metrics=self.metrics,
                              capacity=getattr(self.config,
                                               "mdcache_capacity", None))
        converter = ParseTreeConverter(accessor, fault_injector=injector,
                                       tracer=self.tracer)
        estimator = SelectivityEstimator(accessor, use_histograms=True)
        optimizer = OrcaOptimizer(estimator, self.orca_config,
                                  budget=budget, fault_injector=injector,
                                  tracer=self.tracer, metrics=self.metrics)
        self.last_provider = provider
        self.last_accessor = accessor
        self.last_converter = converter

        # Preprocessing rewrites (OR factorization, scalar-subquery ->
        # derived table, CTE predicate pushdown) mutate the blocks; the
        # plan refinement that later consumes the skeleton sees the
        # rewritten predicates, as the real integration's broadened MySQL
        # did (Section 7, lessons 3-4).
        with self.tracer.span("preprocess"):
            preprocess_block(
                block,
                enable_or_factorization=self.orca_config
                .enable_or_factorization,
                enable_derived_subqueries=self.orca_config
                .enable_derived_subqueries)
            if self.orca_config.enable_cte_pushdown:
                push_cte_predicates(block)

        block_plans: Dict[int, OrcaBlockPlan] = {}
        estimates = SubEstimates()
        self._optimize_block(block, converter, optimizer, block_plans,
                             estimates, set())
        budget.check()
        skeleton = OrcaPlanConverter(context, fault_injector=injector,
                                     tracer=self.tracer) \
            .convert(block_plans, block)
        # A final check so compile work done during conversion (or a
        # sleep injected there) still honours the budget.
        budget.check()
        return skeleton

    def _optimize_block(self, block: QueryBlock,
                        converter: ParseTreeConverter,
                        optimizer: OrcaOptimizer,
                        block_plans: Dict[int, OrcaBlockPlan],
                        estimates: SubEstimates,
                        in_progress: Set[int]) -> OrcaBlockPlan:
        existing = block_plans.get(block.block_id)
        if existing is not None:
            return existing
        if block.block_id in in_progress:
            raise OrcaFallbackError("cyclic block structure")
        in_progress.add(block.block_id)
        for sub in self._sub_blocks(block):
            sub_plan = self._optimize_block(sub, converter, optimizer,
                                            block_plans, estimates,
                                            in_progress)
            estimates.add(sub.block_id, sub_plan.rows, sub_plan.cost)
        logical = converter.convert_block(block)
        block_plan = optimizer.optimize_block(logical, estimates)
        block_plans[block.block_id] = block_plan
        in_progress.discard(block.block_id)
        return block_plan

    def _sub_blocks(self, block: QueryBlock):
        subs = []
        for binding in block.cte_bindings:
            subs.append(binding.block)
        for entry in block.entries:
            if entry.kind in (EntryKind.DERIVED, EntryKind.CTE) and \
                    entry.sub_block is not None:
                subs.append(entry.sub_block)
        subs.extend(block.all_subquery_blocks())
        for __, side in block.set_ops:
            subs.append(side)
        return subs
