"""Metadata OID layout (Sections 5.2, 5.3, and 5.6).

The metadata provider identifies every object by an OID.  Objects whose
counts are known in advance (types, expressions, functions) are laid out
consecutively from fixed base values ("base + enumeration ID"); relations
and their sub-objects, whose counts are open-ended, live far above in
per-relation strides so collisions are impossible (Fig. 9).

Expression OIDs follow the paper's cube scheme:

* arithmetic: 12 left categories x 12 right categories x 5 operators
  = **720** expressions;
* comparison: 12 x 12 x 6 = **864** expressions;
* aggregation: unary, over the 14 categories (12 scalar + STAR/ANY)
  x 6 aggregates = **84** expressions.

Commutator and inverse OIDs are computed with the exact 5-step procedure
of Section 5.3: decode the OID to its enumeration id, decode that to the
type-category expression, rewrite it, re-encode, and return — or return
:data:`INVALID_OID` when no rewrite exists.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.errors import InvalidOidError
from repro.mysql_types import (
    AGGREGATE_CATEGORIES,
    SCALAR_CATEGORIES,
    MySQLType,
    TypeCategory,
)
from repro.sql import ast

#: Returned for expressions without a commutator/inverse (Section 5.3:
#: "a special invalid OID is returned").
INVALID_OID = 0

TYPE_BASE = 1_000
ARITHMETIC_BASE = 10_000
COMPARISON_BASE = 20_000
AGGREGATE_BASE = 30_000
FUNCTION_BASE = 40_000
RELATION_BASE = 1_000_000
RELATION_STRIDE = 10_000
COLUMN_OFFSET = 1
INDEX_OFFSET = 500
HISTOGRAM_OFFSET = 600
STATISTICS_OFFSET = 900

#: Operator enumerations fix the cube's third axis.
ARITHMETIC_OPS = (ast.BinOp.ADD, ast.BinOp.SUB, ast.BinOp.MUL,
                  ast.BinOp.DIV, ast.BinOp.MOD)
COMPARISON_OPS = (ast.BinOp.LT, ast.BinOp.LE, ast.BinOp.GT,
                  ast.BinOp.GE, ast.BinOp.EQ, ast.BinOp.NE)
AGGREGATE_FUNCS = (ast.AggFunc.COUNT, ast.AggFunc.MIN, ast.AggFunc.MAX,
                   ast.AggFunc.SUM, ast.AggFunc.AVG, ast.AggFunc.STDDEV)

ARITHMETIC_COUNT = (len(SCALAR_CATEGORIES) * len(SCALAR_CATEGORIES)
                    * len(ARITHMETIC_OPS))           # 720
COMPARISON_COUNT = (len(SCALAR_CATEGORIES) * len(SCALAR_CATEGORIES)
                    * len(COMPARISON_OPS))           # 864
AGGREGATE_COUNT = (len(AGGREGATE_CATEGORIES)
                   * len(AGGREGATE_FUNCS))           # 84

_TYPES = tuple(MySQLType)
_SCALAR_INDEX = {category: index
                 for index, category in enumerate(SCALAR_CATEGORIES)}
_AGG_INDEX = {category: index
              for index, category in enumerate(AGGREGATE_CATEGORIES)}

#: Regular (non-mapped) functions the provider enumerates (Section 5.4).
REGULAR_FUNCTIONS = (
    "EXTRACT", "SUBSTRING", "CAST", "ROUND", "UPPER", "CONCAT", "ABS",
    "LOWER", "TRIM", "LTRIM", "RTRIM", "LENGTH", "FLOOR", "CEIL", "SQRT",
    "MOD", "POWER", "YEAR", "MONTH", "DAYOFMONTH", "DAYOFWEEK",
    "COALESCE", "IFNULL", "NULLIF", "GREATEST", "LEAST",
)
_FUNCTION_INDEX = {name: index
                   for index, name in enumerate(REGULAR_FUNCTIONS)}


# ---------------------------------------------------------------------------
# Types
# ---------------------------------------------------------------------------

def type_oid(mysql_type: MySQLType) -> int:
    return TYPE_BASE + _TYPES.index(mysql_type)


def decode_type(oid: int) -> MySQLType:
    index = oid - TYPE_BASE
    if 0 <= index < len(_TYPES):
        return _TYPES[index]
    raise InvalidOidError(f"{oid} is not a type OID")


# ---------------------------------------------------------------------------
# Expression cubes
# ---------------------------------------------------------------------------

def arithmetic_oid(left: TypeCategory, right: TypeCategory,
                   op: ast.BinOp) -> int:
    """OID of an arithmetic expression: one point in the 12x12x5 cube."""
    i = _SCALAR_INDEX[left]
    j = _SCALAR_INDEX[right]
    k = ARITHMETIC_OPS.index(op)
    enum_id = (i * len(SCALAR_CATEGORIES) + j) * len(ARITHMETIC_OPS) + k
    return ARITHMETIC_BASE + enum_id


def decode_arithmetic(oid: int
                      ) -> Tuple[TypeCategory, TypeCategory, ast.BinOp]:
    enum_id = oid - ARITHMETIC_BASE
    if not 0 <= enum_id < ARITHMETIC_COUNT:
        raise InvalidOidError(f"{oid} is not an arithmetic expression OID")
    pair, k = divmod(enum_id, len(ARITHMETIC_OPS))
    i, j = divmod(pair, len(SCALAR_CATEGORIES))
    return SCALAR_CATEGORIES[i], SCALAR_CATEGORIES[j], ARITHMETIC_OPS[k]


def comparison_oid(left: TypeCategory, right: TypeCategory,
                   op: ast.BinOp) -> int:
    """OID of a comparison expression: one point in the 12x12x6 cube."""
    i = _SCALAR_INDEX[left]
    j = _SCALAR_INDEX[right]
    k = COMPARISON_OPS.index(op)
    enum_id = (i * len(SCALAR_CATEGORIES) + j) * len(COMPARISON_OPS) + k
    return COMPARISON_BASE + enum_id


def decode_comparison(oid: int
                      ) -> Tuple[TypeCategory, TypeCategory, ast.BinOp]:
    enum_id = oid - COMPARISON_BASE
    if not 0 <= enum_id < COMPARISON_COUNT:
        raise InvalidOidError(f"{oid} is not a comparison expression OID")
    pair, k = divmod(enum_id, len(COMPARISON_OPS))
    i, j = divmod(pair, len(SCALAR_CATEGORIES))
    return SCALAR_CATEGORIES[i], SCALAR_CATEGORIES[j], COMPARISON_OPS[k]


def aggregate_oid(category: TypeCategory, func: ast.AggFunc) -> int:
    """OID of an aggregate expression: the 14x6 two-dimensional array.

    COUNT(*) uses the STAR category and COUNT(expr) the ANY category
    (Section 5.2); the other aggregates use the operand's category.
    """
    i = _AGG_INDEX[category]
    k = AGGREGATE_FUNCS.index(func)
    enum_id = i * len(AGGREGATE_FUNCS) + k
    return AGGREGATE_BASE + enum_id


def decode_aggregate(oid: int) -> Tuple[TypeCategory, ast.AggFunc]:
    enum_id = oid - AGGREGATE_BASE
    if not 0 <= enum_id < AGGREGATE_COUNT:
        raise InvalidOidError(f"{oid} is not an aggregate expression OID")
    i, k = divmod(enum_id, len(AGGREGATE_FUNCS))
    return AGGREGATE_CATEGORIES[i], AGGREGATE_FUNCS[k]


# ---------------------------------------------------------------------------
# Commutators and inverses (Section 5.3)
# ---------------------------------------------------------------------------

def commutator_oid(oid: int) -> int:
    """OID of the commuted expression, or INVALID_OID when none exists.

    Implements the 5-step procedure of Section 5.3: classify by OID slot,
    convert to the enumeration id, decode to the type-category expression,
    rewrite, and re-encode.
    """
    # Step 1: determine the expression type from the OID's slot.
    if ARITHMETIC_BASE <= oid < ARITHMETIC_BASE + ARITHMETIC_COUNT:
        # Steps 2-3: decode.
        left, right, op = decode_arithmetic(oid)
        # Step 4: only + and * commute.
        if op not in (ast.BinOp.ADD, ast.BinOp.MUL):
            return INVALID_OID
        # Step 5: re-encode with operands swapped.
        return arithmetic_oid(right, left, op)
    if COMPARISON_BASE <= oid < COMPARISON_BASE + COMPARISON_COUNT:
        left, right, op = decode_comparison(oid)
        return comparison_oid(right, left, ast.COMMUTED_COMPARISON[op])
    return INVALID_OID


def inverse_oid(oid: int) -> int:
    """OID of the negated comparison (a < b -> a >= b), else INVALID_OID.

    "Inverse expressions exist only for comparison expressions"
    (Section 5.3).
    """
    if COMPARISON_BASE <= oid < COMPARISON_BASE + COMPARISON_COUNT:
        left, right, op = decode_comparison(oid)
        return comparison_oid(left, right, ast.INVERSE_COMPARISON[op])
    return INVALID_OID


# ---------------------------------------------------------------------------
# Functions
# ---------------------------------------------------------------------------

def function_oid(name: str) -> int:
    """OID of a regular function, or INVALID_OID for unknown names."""
    index = _FUNCTION_INDEX.get(name.upper())
    if index is None:
        return INVALID_OID
    return FUNCTION_BASE + index


# ---------------------------------------------------------------------------
# Relations and their sub-objects
# ---------------------------------------------------------------------------

def relation_oid(relation_index: int) -> int:
    return RELATION_BASE + relation_index * RELATION_STRIDE


def column_oid(relation_index: int, position: int) -> int:
    return relation_oid(relation_index) + COLUMN_OFFSET + position


def index_oid(relation_index: int, index_position: int) -> int:
    return relation_oid(relation_index) + INDEX_OFFSET + index_position


def histogram_oid(relation_index: int, position: int) -> int:
    return relation_oid(relation_index) + HISTOGRAM_OFFSET + position


def statistics_oid(relation_index: int) -> int:
    return relation_oid(relation_index) + STATISTICS_OFFSET


def decode_relation_oid(oid: int) -> Tuple[int, str, Optional[int]]:
    """Decode a relation-space OID to (relation index, kind, sub-index)."""
    if oid < RELATION_BASE:
        raise InvalidOidError(f"{oid} is below the relation OID space")
    offset = oid - RELATION_BASE
    relation_index, rest = divmod(offset, RELATION_STRIDE)
    if rest == 0:
        return relation_index, "relation", None
    if COLUMN_OFFSET <= rest < INDEX_OFFSET:
        return relation_index, "column", rest - COLUMN_OFFSET
    if INDEX_OFFSET <= rest < HISTOGRAM_OFFSET:
        return relation_index, "index", rest - INDEX_OFFSET
    if HISTOGRAM_OFFSET <= rest < STATISTICS_OFFSET:
        return relation_index, "histogram", rest - HISTOGRAM_OFFSET
    if rest == STATISTICS_OFFSET:
        return relation_index, "statistics", None
    raise InvalidOidError(f"{oid} does not decode to a relation object")
