"""The MySQL metadata provider: Orca's plug-in view of the data dictionary.

Section 5: "Orca's integration with a target DBMS uses the plug-in
approach of a DBMS-specific metadata provider".  The provider answers
OID-based requests with DXL documents for relations, statistics (with
histograms — including the ones on UNIQUE columns that MySQL normally
refuses to build, Section 5.5), and types; it computes expression OIDs by
the cube scheme of Section 5.2 and their commutators/inverses per
Section 5.3.

One deliberate difference from the PostgreSQL provider is reproduced
faithfully (Section 5): queries execute inside MySQL, so this provider
never hands out function *pointers* — where Orca's API contract expects
executable metadata, stubs are returned (:meth:`get_function_pointer`).

Request counters expose how often each API is hit, which the tests use to
verify Orca's metadata cache actually prevents repeated requests.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.bridge import dxl, oid_layout
from repro.catalog.catalog import Catalog
from repro.errors import InvalidOidError, MetadataProviderError
from repro.mysql_types import MySQLType, TypeCategory, TypeInstance
from repro.sql import ast


class MySQLMetadataProvider:
    """Serves MySQL dictionary objects to Orca over DXL."""

    def __init__(self, catalog: Catalog, fault_injector=None,
                 metrics=None) -> None:
        self.catalog = catalog
        self.fault_injector = fault_injector
        #: Optional :class:`repro.observability.MetricsRegistry`; every
        #: provider request is counted as ``metadata.requests`` so the
        #: per-statement report shows how often Orca's cache missed all
        #: the way through to the provider.
        self.metrics = metrics
        self._relation_index: Dict[str, int] = {}
        self._relation_names: List[str] = []
        #: Synthetic relation indexes for derived tables / CTEs (they have
        #: OIDs so table descriptors are uniform, but no dictionary entry).
        self._synthetic: Dict[str, int] = {}
        self.request_counts: Dict[str, int] = {}

    def _count(self, api: str) -> None:
        self.request_counts[api] = self.request_counts.get(api, 0) + 1
        if self.metrics is not None:
            self.metrics.inc("metadata.requests")
            self.metrics.inc(f"metadata.requests.{api}")

    # -- relation OIDs -------------------------------------------------------------

    def _relation_index_for(self, name: str) -> int:
        key = name.lower()
        index = self._relation_index.get(key)
        if index is None:
            if not self.catalog.has_table(name):
                raise MetadataProviderError(f"unknown relation {name!r}")
            index = len(self._relation_names)
            self._relation_index[key] = index
            self._relation_names.append(name)
        return index

    def get_table_oid(self, qualified_name: str) -> int:
        """OID for a (possibly schema-qualified) table name.

        This is the converter's "typical interaction" from Section 5.7:
        send 'tpch.lineitem', receive the table's unique OID.
        """
        self._count("table_oid")
        if self.fault_injector is not None:
            self.fault_injector.fire("metadata_provider")
        name = qualified_name.rsplit(".", 1)[-1]
        return oid_layout.relation_oid(self._relation_index_for(name))

    def get_synthetic_oid(self, alias: str) -> int:
        """OID for a derived table or CTE reference (no dictionary entry)."""
        self._count("synthetic_oid")
        key = alias.lower()
        index = self._synthetic.get(key)
        if index is None:
            # Synthetic relations live after all dictionary relations.
            index = 100_000 + len(self._synthetic)
            self._synthetic[key] = index
        return oid_layout.relation_oid(index)

    def get_column_oid(self, table_name: str, column_name: str) -> int:
        self._count("column_oid")
        index = self._relation_index_for(table_name)
        schema = self.catalog.table(table_name)
        return oid_layout.column_oid(index,
                                     schema.column_position(column_name))

    # -- DXL object bodies ------------------------------------------------------------

    def _relation_name_for_oid(self, oid: int) -> str:
        relation_index, kind, __ = oid_layout.decode_relation_oid(oid)
        if kind != "relation":
            raise InvalidOidError(f"{oid} is not a relation OID")
        if relation_index >= 100_000:
            raise MetadataProviderError(
                "synthetic relations have no dictionary metadata")
        try:
            return self._relation_names[relation_index]
        except IndexError:
            raise InvalidOidError(
                f"relation OID {oid} was never handed out") from None

    def get_relation_dxl(self, oid: int) -> str:
        """Relation metadata (name, columns, types, indexes) as DXL."""
        self._count("relation_dxl")
        name = self._relation_name_for_oid(oid)
        index = self._relation_index_for(name)
        schema = self.catalog.table(name)
        column_oids = [oid_layout.column_oid(index, position)
                       for position in range(len(schema.columns))]
        index_oids = [oid_layout.index_oid(index, position)
                      for position in range(len(schema.indexes))]
        return dxl.relation_to_dxl(schema, oid, column_oids, index_oids)

    def get_statistics_dxl(self, oid: int) -> str:
        """Statistics (cardinality, NDVs, nulls, histograms) as DXL.

        Histograms for UNIQUE columns are included — the restriction MySQL
        normally applies was lifted for the integration (Section 5.5).
        """
        self._count("statistics_dxl")
        relation_index, kind, __ = oid_layout.decode_relation_oid(oid)
        if kind == "relation":
            stats_oid = oid_layout.statistics_oid(relation_index)
        elif kind == "statistics":
            stats_oid = oid
        else:
            raise InvalidOidError(f"{oid} is not a statistics OID")
        name = self._relation_names[relation_index]
        statistics = self.catalog.statistics(name)
        return dxl.statistics_to_dxl(statistics, stats_oid)

    def get_type_dxl(self, oid: int) -> str:
        self._count("type_dxl")
        mysql_type = oid_layout.decode_type(oid)
        return dxl.type_to_dxl(mysql_type, oid)

    # -- expression OIDs (Section 5.2) ---------------------------------------------------

    def get_arithmetic_oid(self, left: TypeCategory, right: TypeCategory,
                           op: ast.BinOp) -> int:
        self._count("arithmetic_oid")
        return oid_layout.arithmetic_oid(left, right, op)

    def get_comparison_oid(self, left: TypeCategory, right: TypeCategory,
                           op: ast.BinOp) -> int:
        self._count("comparison_oid")
        return oid_layout.comparison_oid(left, right, op)

    def get_aggregate_oid(self, category: TypeCategory,
                          func: ast.AggFunc) -> int:
        self._count("aggregate_oid")
        return oid_layout.aggregate_oid(category, func)

    def get_commutator_oid(self, oid: int) -> int:
        self._count("commutator_oid")
        return oid_layout.commutator_oid(oid)

    def get_inverse_oid(self, oid: int) -> int:
        self._count("inverse_oid")
        return oid_layout.inverse_oid(oid)

    def get_expression_oid(self, expr: ast.Expr) -> int:
        """OID of a binary expression node, classified by operand types."""
        from repro.sql.blocks import infer_type

        self._count("expression_oid")
        if isinstance(expr, ast.BinaryExpr):
            left = infer_type(expr.left).category
            right = infer_type(expr.right).category
            if expr.op in ast.COMPARISON_OPS:
                return oid_layout.comparison_oid(left, right, expr.op)
            if expr.op in ast.ARITHMETIC_OPS:
                return oid_layout.arithmetic_oid(left, right, expr.op)
        if isinstance(expr, ast.AggCall):
            if expr.star:
                return oid_layout.aggregate_oid(TypeCategory.STAR,
                                                expr.func)
            if expr.func is ast.AggFunc.COUNT:
                return oid_layout.aggregate_oid(TypeCategory.ANY, expr.func)
            category = infer_type(expr.arg).category
            return oid_layout.aggregate_oid(category, expr.func)
        return oid_layout.INVALID_OID

    # -- functions (Section 5.4) -------------------------------------------------------------

    def get_function_oid(self, name: str) -> int:
        self._count("function_oid")
        return oid_layout.function_oid(name)

    def get_function_pointer(self, oid: int) -> None:
        """Stub: the MySQL provider never returns executable callbacks.

        "the MySQL metadata provider avoids [function pointers] because a
        query executes inside MySQL ... but it still has to fulfil all of
        the Orca API contracts — even if sometimes by providing stubs"
        (Section 5).
        """
        self._count("function_pointer")
        return None
