"""DXL: the XML-based exchange format between Orca and the provider.

"Orca uses an XML-based data format called DXL for the three information
exchanges" (Section 4); in this integration, only the *metadata* exchange
uses DXL — the two tree converters exchange in-memory trees directly, as
the paper's implementation does.  This module serialises relation
metadata, statistics (including both histogram kinds), and type metadata
to DXL documents and parses them back; the MD cache on the Orca side only
ever sees the parsed-from-DXL form, so round-trip fidelity is load-bearing
and is covered by tests.
"""

from __future__ import annotations

import datetime
import xml.etree.ElementTree as ET
from typing import List, Optional

from repro.catalog.histogram import (
    EquiHeightHistogram,
    Histogram,
    SingletonHistogram,
)
from repro.catalog.schema import Column, Index, TableSchema
from repro.catalog.statistics import ColumnStatistics, TableStatistics
from repro.mysql_types import (
    MySQLType,
    TypeInstance,
    is_pass_by_value,
    is_text_related,
)

#: The DXL namespace URI, declared on every document root.
DXL_NS = "http://greenplum.org/dxl/2010/12/"
_NS = {"dxl": DXL_NS}
ET.register_namespace("dxl", DXL_NS)


def _qualify(tag: str) -> str:
    return f"{{{DXL_NS}}}{tag}"


def _element(tag: str, **attributes) -> ET.Element:
    element = ET.Element(_qualify(tag))
    for key, value in attributes.items():
        element.set(key, str(value))
    return element


def _sub(parent: ET.Element, tag: str, **attributes) -> ET.Element:
    element = _element(tag, **attributes)
    parent.append(element)
    return element


# ---------------------------------------------------------------------------
# Value encoding (type-tagged for round trips)
# ---------------------------------------------------------------------------

def encode_value(value) -> str:
    if value is None:
        return "null:"
    if isinstance(value, bool):
        return f"bool:{int(value)}"
    if isinstance(value, int):
        return f"int:{value}"
    if isinstance(value, float):
        return f"float:{value!r}"
    if isinstance(value, datetime.datetime):
        return f"datetime:{value.isoformat()}"
    if isinstance(value, datetime.date):
        return f"date:{value.isoformat()}"
    return f"str:{value}"


def decode_value(text: str):
    tag, __, body = text.partition(":")
    if tag == "null":
        return None
    if tag == "bool":
        return bool(int(body))
    if tag == "int":
        return int(body)
    if tag == "float":
        return float(body)
    if tag == "date":
        return datetime.date.fromisoformat(body)
    if tag == "datetime":
        return datetime.datetime.fromisoformat(body)
    return body


# ---------------------------------------------------------------------------
# Relation metadata
# ---------------------------------------------------------------------------

def relation_to_dxl(schema: TableSchema, relation_oid: int,
                    column_oids: List[int], index_oids: List[int]) -> str:
    root = _element("Relation", Mdid=relation_oid, Name=schema.name,
                    Schema=schema.schema)
    columns = _sub(root, "Columns")
    for column, oid in zip(schema.columns, column_oids):
        _sub(columns, "Column", Mdid=oid, Name=column.name,
             TypeName=column.type.base.value,
             TypeModifier=column.type.modifier
             if column.type.modifier is not None else "",
             Nullable=int(column.nullable))
    indexes = _sub(root, "Indexes")
    for index, oid in zip(schema.indexes, index_oids):
        _sub(indexes, "Index", Mdid=oid, Name=index.name,
             Columns=",".join(index.column_names),
             Unique=int(index.unique), Primary=int(index.primary))
    return ET.tostring(root, encoding="unicode")


def relation_from_dxl(text: str) -> TableSchema:
    root = ET.fromstring(text)
    columns: List[Column] = []
    for element in root.find("dxl:Columns", _NS):
        modifier_text = element.get("TypeModifier", "")
        modifier = int(modifier_text) if modifier_text else None
        columns.append(Column(
            element.get("Name"),
            TypeInstance(MySQLType[element.get("TypeName")], modifier),
            bool(int(element.get("Nullable"))),
        ))
    indexes: List[Index] = []
    for element in root.find("dxl:Indexes", _NS):
        indexes.append(Index(
            element.get("Name"),
            tuple(element.get("Columns").split(",")),
            unique=bool(int(element.get("Unique"))),
            primary=bool(int(element.get("Primary"))),
        ))
    return TableSchema(root.get("Name"), columns, indexes,
                       schema=root.get("Schema"))


# ---------------------------------------------------------------------------
# Statistics
# ---------------------------------------------------------------------------

def statistics_to_dxl(statistics: TableStatistics,
                      statistics_oid: int) -> str:
    root = _element("Statistics", Mdid=statistics_oid,
                    Rows=statistics.row_count)
    for name, column in statistics.columns.items():
        element = _sub(root, "ColumnStatistics", Name=name,
                       Nulls=column.null_count,
                       Distinct=column.distinct_count,
                       Unique=int(column.unique),
                       Min=encode_value(column.min_value),
                       Max=encode_value(column.max_value))
        if column.histogram is not None:
            element.append(_histogram_to_element(column.histogram))
    return ET.tostring(root, encoding="unicode")


def statistics_from_dxl(text: str) -> TableStatistics:
    root = ET.fromstring(text)
    statistics = TableStatistics(row_count=int(root.get("Rows")))
    for element in root:
        histogram: Optional[Histogram] = None
        histogram_element = element.find("dxl:Histogram", _NS)
        if histogram_element is not None:
            histogram = _histogram_from_element(histogram_element)
        statistics.columns[element.get("Name")] = ColumnStatistics(
            null_count=int(element.get("Nulls")),
            distinct_count=int(element.get("Distinct")),
            min_value=decode_value(element.get("Min")),
            max_value=decode_value(element.get("Max")),
            histogram=histogram,
            unique=bool(int(element.get("Unique"))),
        )
    return statistics


def _histogram_to_element(histogram: Histogram) -> ET.Element:
    element = _element("Histogram", Kind=histogram.kind)
    if isinstance(histogram, SingletonHistogram):
        for value, fraction in histogram.frequencies.items():
            _sub(element, "Bucket", Value=encode_value(value),
                 Fraction=repr(fraction))
        return element
    if isinstance(histogram, EquiHeightHistogram):
        for i in range(histogram.bucket_count):
            _sub(element, "Bucket", Lower=repr(histogram.lowers[i]),
                 Upper=repr(histogram.uppers[i]),
                 Cumulative=repr(histogram.cumulative[i]),
                 Ndv=repr(histogram.bucket_ndv[i]))
        return element
    raise ValueError(f"unknown histogram kind {histogram.kind!r}")


def _histogram_from_element(element: ET.Element) -> Histogram:
    kind = element.get("Kind")
    if kind == "singleton":
        frequencies = {}
        for bucket in element:
            frequencies[decode_value(bucket.get("Value"))] = \
                float(bucket.get("Fraction"))
        return SingletonHistogram(frequencies)
    lowers: List[float] = []
    uppers: List[float] = []
    cumulative: List[float] = []
    bucket_ndv: List[float] = []
    for bucket in element:
        lowers.append(float(bucket.get("Lower")))
        uppers.append(float(bucket.get("Upper")))
        cumulative.append(float(bucket.get("Cumulative")))
        bucket_ndv.append(float(bucket.get("Ndv")))
    return EquiHeightHistogram(lowers, uppers, cumulative, bucket_ndv)


# ---------------------------------------------------------------------------
# Type metadata (Section 5.1's per-type information)
# ---------------------------------------------------------------------------

def type_to_dxl(mysql_type: MySQLType, oid: int) -> str:
    from repro.mysql_types import TYPE_LENGTHS, category_of

    length = TYPE_LENGTHS[mysql_type]
    root = _element("Type", Mdid=oid, Name=mysql_type.value,
                    Category=category_of(mysql_type).value,
                    Length=length if length is not None else "variable",
                    PassByValue=int(is_pass_by_value(mysql_type)),
                    TextRelated=int(is_text_related(mysql_type)))
    return ET.tostring(root, encoding="unicode")


def type_from_dxl(text: str) -> dict:
    root = ET.fromstring(text)
    return {
        "mdid": int(root.get("Mdid")),
        "name": root.get("Name"),
        "category": root.get("Category"),
        "length": root.get("Length"),
        "pass_by_value": bool(int(root.get("PassByValue"))),
        "text_related": bool(int(root.get("TextRelated"))),
    }
