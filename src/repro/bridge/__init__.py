"""The MySQL<->Orca bridge: the paper's three integration components.

* :mod:`repro.bridge.parse_tree_converter` — MySQL AST -> Orca logical tree
* :mod:`repro.bridge.metadata_provider` — the MySQL metadata provider
* :mod:`repro.bridge.plan_converter` — Orca physical plan -> skeleton plan
* :mod:`repro.bridge.router` — complex-query threshold routing + fallback
"""

from repro.bridge.metadata_provider import MySQLMetadataProvider
from repro.bridge.parse_tree_converter import ParseTreeConverter
from repro.bridge.plan_converter import OrcaPlanConverter
from repro.bridge.router import OrcaRouter

__all__ = [
    "MySQLMetadataProvider",
    "OrcaPlanConverter",
    "OrcaRouter",
    "ParseTreeConverter",
]
