"""MySQL parse tree -> Orca logical operator tree (Section 4.1).

Converts one *prepared* query block into an :class:`OrcaLogicalBlock`.
The conversion is clause-wise, in the order the paper lists:

    FROM; WHERE (1); window functions (1); WHERE (2); SELECT (1);
    GROUP BY; SELECT (2); HAVING; window functions (2); ORDER BY;
    SELECT (3); LIMIT

Here: ``FROM`` produces the join units; ``WHERE (1)`` performs *predicate
segregation* — the crucial step the paper motivates with TPC-H Q4
(Listings 2-4): conjuncts local to one table attach to its LogicalGet so
Orca's pipeline benefits from selection pushdown, conjuncts bridging
tables go to the join operators, and the remainder becomes a residual
selection (``WHERE (2)``).  GROUP BY / HAVING / ORDER BY / LIMIT fill the
agg and limit operators; the SELECT splits (1)/(2)/(3) surface during plan
refinement as the pre-/post-aggregation expression rewrite.

While converting, table descriptors are embellished with OIDs from the
metadata provider (through the MD accessor), and comparison / arithmetic
expressions get their expression OIDs — including commutator and inverse
OIDs where they exist, as in the Section 5.7 trace for
``p_container = 'SM_PKG'``.  Each descriptor also carries its TABLE_LIST
entry pointer for the plan converter's reverse mapping.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.bridge.oid_layout import INVALID_OID
from repro.errors import OrcaFallbackError
from repro.orca.mdcache import MDAccessor
from repro.orca.operators import (
    LogicalGbAgg,
    LogicalGet,
    LogicalLimit,
    LogicalNAryJoin,
    LogicalOuterJoinSpec,
    LogicalSelect,
    LogicalSemiJoinSpec,
    OrcaLogicalBlock,
    TableDescriptor,
)
from repro.sql import ast
from repro.sql.blocks import (
    EntryKind,
    QueryBlock,
    TableEntry,
    contains_subquery,
    correlation_sources,
    referenced_entries,
)
from repro.sql.rewrite import expr_key


class ParseTreeConverter:
    """Converts prepared MySQL query blocks to Orca logical blocks."""

    def __init__(self, accessor: MDAccessor, fault_injector=None,
                 tracer=None) -> None:
        self.accessor = accessor
        self.fault_injector = fault_injector
        if tracer is None:
            from repro.observability import NOOP_TRACER
            tracer = NOOP_TRACER
        self.tracer = tracer
        #: Expression OIDs assigned during conversion, keyed by structural
        #: expression key: (oid, commutator oid, inverse oid).
        self.expression_oids: Dict[tuple, Tuple[int, int, int]] = {}

    def convert_block(self, block: QueryBlock) -> OrcaLogicalBlock:
        with self.tracer.span("parse_tree_convert",
                              block_id=block.block_id) as span:
            logical = self._convert_block(block)
            span.set(units=len(logical.core.units))
            return logical

    def _convert_block(self, block: QueryBlock) -> OrcaLogicalBlock:
        if self.fault_injector is not None:
            self.fault_injector.fire("parse_tree_converter")
        corr = frozenset(correlation_sources(block))

        # --- FROM: build units and classify entries --------------------------
        core_units: List[LogicalGet] = []
        unit_by_entry: Dict[int, LogicalGet] = {}
        outer_specs: List[LogicalOuterJoinSpec] = []
        nest_specs: Dict[int, LogicalSemiJoinSpec] = {}
        dependent_units: List[LogicalGet] = []
        left_entries: set = set()
        nest_entries: set = set()
        dependent_entries: set = set()

        for entry in block.entries:
            unit = LogicalGet(self._descriptor(entry))
            unit_by_entry[entry.entry_id] = unit
            if entry.semijoin_nest is not None:
                nest = block.nest(entry.semijoin_nest)
                spec = nest_specs.get(nest.nest_id)
                if spec is None:
                    spec = LogicalSemiJoinSpec(nest.kind, nest.nest_id,
                                               [], [])
                    nest_specs[nest.nest_id] = spec
                spec.inners.append(unit)
                nest_entries.add(entry.entry_id)
            elif entry.outer_join_conjuncts is not None:
                spec = LogicalOuterJoinSpec(unit, [])
                for conjunct in entry.outer_join_conjuncts:
                    self._annotate(conjunct)
                    refs = referenced_entries(conjunct) - corr
                    if refs == frozenset({entry.entry_id}):
                        unit.conjuncts.append(conjunct)
                    else:
                        spec.on_conjuncts.append(conjunct)
                outer_specs.append(spec)
                left_entries.add(entry.entry_id)
            elif self._is_dependent(block, entry):
                dependent_units.append(unit)
                dependent_entries.add(entry.entry_id)
            else:
                core_units.append(unit)

        # --- WHERE (1): predicate segregation ----------------------------------
        core_conjuncts: List[ast.Expr] = []
        residual: List[ast.Expr] = []
        dependent_conjuncts: List[ast.Expr] = []
        for conjunct in block.where_conjuncts:
            self._annotate(conjunct)
            refs = referenced_entries(conjunct)
            bare = refs - corr
            nest_hit = self._nest_of(bare, block)
            if nest_hit is not None:
                spec = nest_specs.get(nest_hit)
                if spec is not None:
                    inner_ids = {unit.descriptor.entry.entry_id
                                 for unit in spec.inners}
                    if bare.issubset(inner_ids | corr) and len(bare) == 1 \
                            and not contains_subquery(conjunct):
                        unit_by_entry[next(iter(bare))].conjuncts.append(
                            conjunct)
                    else:
                        spec.conjuncts.append(conjunct)
                    continue
            if bare & dependent_entries:
                dependent_conjuncts.append(conjunct)
                continue
            if bare & left_entries:
                # WHERE conditions on outer-joined tables apply after
                # null-extension; they stay residual (WHERE (2)).
                residual.append(conjunct)
                continue
            if contains_subquery(conjunct):
                residual.append(conjunct)
                continue
            if len(bare) == 1:
                entry_id = next(iter(bare))
                unit = unit_by_entry.get(entry_id)
                if unit is not None and unit in core_units:
                    unit.conjuncts.append(conjunct)
                    continue
                residual.append(conjunct)
                continue
            if len(bare) >= 2:
                core_conjuncts.append(conjunct)
                continue
            residual.append(conjunct)

        # --- GROUP BY / SELECT (2) / HAVING: the aggregation operator ------------
        agg: Optional[LogicalGbAgg] = None
        if block.aggregated:
            agg_calls = self._collect_aggregates(block)
            for call in agg_calls:
                self._annotate(call)
            agg = LogicalGbAgg(list(block.group_by), agg_calls)

        # --- ORDER BY / LIMIT ------------------------------------------------------
        limit = LogicalLimit(list(block.order_by), block.limit,
                             block.offset)

        return OrcaLogicalBlock(
            block=block,
            core=LogicalNAryJoin(core_units, core_conjuncts),
            outer_joins=outer_specs,
            semi_joins=list(nest_specs.values()),
            residual=LogicalSelect(residual),
            agg=agg,
            limit=limit,
            dependent_units=dependent_units,
            dependent_conjuncts=dependent_conjuncts,
        )

    # -- helpers -------------------------------------------------------------------

    def _descriptor(self, entry: TableEntry) -> TableDescriptor:
        if entry.kind is EntryKind.BASE:
            mdid = self.accessor.table_oid(entry.table_schema.name)
            # Pull relation metadata through the cache once, so the DXL
            # path is exercised for every referenced relation.
            self.accessor.relation(entry.table_schema.name)
            name = entry.table_schema.name
        else:
            mdid = self.accessor.synthetic_oid(entry.alias)
            name = entry.alias
        return TableDescriptor(mdid=mdid, name=name, alias=entry.alias,
                               entry=entry)

    def _is_dependent(self, block: QueryBlock, entry: TableEntry) -> bool:
        if entry.kind is not EntryKind.DERIVED or entry.sub_block is None:
            return False
        local_ids = {e.entry_id for e in block.entries}
        return bool(set(correlation_sources(entry.sub_block)) & local_ids)

    def _nest_of(self, refs: frozenset, block: QueryBlock) -> Optional[int]:
        for nest in block.semijoin_nests:
            if refs & set(nest.entry_ids):
                return nest.nest_id
        return None

    def _collect_aggregates(self, block: QueryBlock) -> List[ast.AggCall]:
        calls: List[ast.AggCall] = []
        seen = set()
        exprs: List[ast.Expr] = [item.expr for item in block.select_items]
        exprs.extend(block.having_conjuncts)
        exprs.extend(item.expr for item in block.order_by)
        for expr in exprs:
            for node in expr.walk():
                if isinstance(node, ast.AggCall):
                    key = expr_key(node)
                    if key not in seen:
                        seen.add(key)
                        calls.append(node)
        return calls

    def _annotate(self, expr: ast.Expr) -> None:
        """Attach expression OIDs (and commutators/inverses) to a tree."""
        provider = self.accessor.provider
        for node in expr.walk():
            if isinstance(node, (ast.BinaryExpr, ast.AggCall)):
                key = expr_key(node)
                if key in self.expression_oids:
                    node.mdid = self.expression_oids[key][0]
                    continue
                oid = provider.get_expression_oid(node)
                commutator = provider.get_commutator_oid(oid) \
                    if oid != INVALID_OID else INVALID_OID
                inverse = provider.get_inverse_oid(oid) \
                    if oid != INVALID_OID else INVALID_OID
                self.expression_oids[key] = (oid, commutator, inverse)
                node.mdid = oid
