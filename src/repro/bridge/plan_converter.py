"""Orca physical plan -> MySQL skeleton plan (Section 4.2).

Translation happens in two passes over each block's physical tree, exactly
as the paper describes:

**First pass** (Section 4.2.1): a pre-order traversal groups physical
leaves into query blocks using the TABLE_LIST pointer each table
descriptor carries ("each leaf node contains a TABLE_LIST object which
contains ... a link to the leaf's containing query block").  If a leaf
turns out to belong to a different block than the plan being converted —
i.e. Orca changed the query-block structure — conversion aborts with
:class:`OrcaFallbackError` and "the system resorts to the usual MySQL
query optimization".

**Second pass** (Section 4.2.2): the tree is linearised into MySQL's
*best-position arrays*: spine positions in pre-order, each entry holding
the table, its access method, its cost, and its output-row estimate —
which is how Orca's estimates end up in MySQL's EXPLAIN.  Bushy subtrees
become nested ``branch`` entries, the best-position extension of
Section 7, lesson 1.

Two conventions from the lessons-learned section are honoured here:

* the **build/probe flip** for MySQL inner hash joins (lesson 2): Orca
  emits HashJoin(probe, build) with the build on the right; a skeleton
  position *is* the build side and refinement probes with the prefix,
  which realises MySQL's reversed convention;
* **CTE one-producer -> n-consumer copies** (Section 4.2.3): every CTE
  consumer becomes its own CTE-scan position (its own "producer plan" in
  MySQL terms); at run time the first one to execute materialises the
  shared result, so exactly one producer executes.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import OrcaFallbackError, SkeletonInvalidError
from repro.executor.plan import JoinKind
from repro.mysql_optimizer.skeleton import (
    AggStrategy,
    BlockSkeleton,
    JoinMethod,
    PositionEntry,
    SkeletonPlan,
)
from repro.orca.operators import (
    JoinVariant,
    PhysicalGbAgg,
    PhysicalGet,
    PhysicalHashJoin,
    PhysicalLimit,
    PhysicalNLJoin,
    PhysicalOp,
    PhysicalSort,
)
from repro.orca.optimizer import OrcaBlockPlan
from repro.sql.blocks import QueryBlock, StatementContext

_VARIANT_TO_KIND = {
    JoinVariant.INNER: JoinKind.INNER,
    JoinVariant.LEFT: JoinKind.LEFT,
    JoinVariant.SEMI: JoinKind.SEMI,
    JoinVariant.ANTI: JoinKind.ANTI,
}


class OrcaPlanConverter:
    """Converts per-block Orca physical plans into one skeleton plan."""

    def __init__(self, context: StatementContext,
                 fault_injector=None, tracer=None) -> None:
        self.context = context
        self.fault_injector = fault_injector
        if tracer is None:
            from repro.observability import NOOP_TRACER
            tracer = NOOP_TRACER
        self.tracer = tracer

    def convert(self, block_plans: Dict[int, OrcaBlockPlan],
                top_block: QueryBlock) -> SkeletonPlan:
        with self.tracer.span("plan_convert",
                              blocks=len(block_plans)) as span:
            if self.fault_injector is not None:
                self.fault_injector.fire("plan_converter")
            plan = SkeletonPlan(self.context, top_block, origin="orca")
            positions = 0
            for block_plan in block_plans.values():
                skeleton = self._convert_block(block_plan)
                positions += len(skeleton.positions)
                plan.add(skeleton)
            span.set(positions=positions)
            return plan

    # -- per-block conversion -----------------------------------------------------

    def _convert_block(self, block_plan: OrcaBlockPlan) -> BlockSkeleton:
        root = block_plan.root
        # Strip block-level operators: aggregation/sort/limit decisions are
        # carried as skeleton attributes, not positions.
        while isinstance(root, (PhysicalLimit, PhysicalSort, PhysicalGbAgg)):
            root = root.children()[0] if root.children() else None
        self._first_pass(root, block_plan.block)
        positions: List[PositionEntry] = []
        if root is not None:
            positions = self._linearize(root, block_plan.block)
        self._check_coverage(positions, block_plan.block)
        return BlockSkeleton(
            block=block_plan.block,
            positions=positions,
            total_cost=block_plan.cost,
            total_rows=block_plan.rows,
            agg_strategy=AggStrategy.STREAM if block_plan.agg_streaming
            else AggStrategy.HASH,
            order_satisfied=block_plan.order_satisfied,
        )

    # -- pass 1: query-block discovery and validation ---------------------------------

    def _first_pass(self, root: PhysicalOp, block: QueryBlock) -> None:
        if root is None:
            return
        for leaf in root.leaves():
            if not isinstance(leaf, PhysicalGet):
                raise OrcaFallbackError(
                    f"unexpected physical leaf {leaf.name()!r}")
            entry = leaf.descriptor.entry
            if entry.block is not block:
                # Orca changed the query block structure: abort and let
                # the router fall back to the MySQL optimizer.
                raise SkeletonInvalidError(
                    f"leaf {leaf.descriptor.alias!r} belongs to block "
                    f"#{entry.block.block_id}, expected "
                    f"#{block.block_id}")

    # -- pass 2: fill the best-position arrays -------------------------------------------

    def _linearize(self, op: PhysicalOp,
                   block: QueryBlock) -> List[PositionEntry]:
        if isinstance(op, PhysicalGet):
            return [self._leaf_position(op)]
        if isinstance(op, PhysicalNLJoin):
            positions = self._linearize(op.outer, block)
            positions.extend(self._attach_side(
                op.inner, block, JoinMethod.NLJ,
                _VARIANT_TO_KIND[op.variant], op))
            return positions
        if isinstance(op, PhysicalHashJoin):
            # Build/probe flip (lesson 2): the spine continues through the
            # probe side; the build side becomes the array position, which
            # refinement will feed to MySQL's reversed-convention hash
            # join as its build input.
            positions = self._linearize(op.probe, block)
            positions.extend(self._attach_side(
                op.build, block, JoinMethod.HASH,
                _VARIANT_TO_KIND[op.variant], op))
            return positions
        raise OrcaFallbackError(
            f"cannot linearise physical operator {op.name()!r}")

    def _attach_side(self, side: PhysicalOp, block: QueryBlock,
                     method: JoinMethod, kind: JoinKind,
                     join_op: PhysicalOp) -> List[PositionEntry]:
        if isinstance(side, PhysicalGet):
            position = self._leaf_position(side)
            position.join_method = method
            position.join_kind = kind
            position.fanout = join_op.rows
            position.cost = join_op.cost
            return [position]
        inner_positions = self._linearize(side, block)
        if kind in (JoinKind.SEMI, JoinKind.ANTI):
            # Semi/anti nests stay flat: refinement recognises the run of
            # positions sharing the nest id.
            for position in inner_positions:
                position.join_method = method
                position.join_kind = kind
            inner_positions[0].fanout = join_op.rows
            inner_positions[0].cost = join_op.cost
            return inner_positions
        branch = PositionEntry(
            branch=inner_positions,
            join_method=method,
            join_kind=kind,
            fanout=join_op.rows,
            cost=join_op.cost,
        )
        return [branch]

    def _leaf_position(self, leaf: PhysicalGet) -> PositionEntry:
        entry = leaf.descriptor.entry
        return PositionEntry(
            entry_id=entry.entry_id,
            access=leaf.access,
            nest_id=entry.semijoin_nest,
            join_kind=JoinKind.INNER,
            fanout=leaf.rows,
            cost=leaf.cost,
        )

    # -- safety net ------------------------------------------------------------------------

    def _check_coverage(self, positions: List[PositionEntry],
                        block: QueryBlock) -> None:
        covered: set = set()
        for position in positions:
            covered.update(position.all_entry_ids())
        expected = {entry.entry_id for entry in block.entries}
        if covered != expected:
            missing = expected - covered
            extra = covered - expected
            raise SkeletonInvalidError(
                f"best-position arrays do not cover the block: "
                f"missing={sorted(missing)} extra={sorted(extra)}")
