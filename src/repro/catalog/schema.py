"""Logical schema objects: tables, columns, and indexes.

These model what MySQL's data dictionary stores about each relation and
what the metadata provider ships to Orca (Section 5.5): name, columns,
column types, and index definitions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import CatalogError
from repro.mysql_types import MySQLType, TypeInstance


@dataclass(frozen=True)
class Column:
    """A table column: name, type, and nullability."""

    name: str
    type: TypeInstance
    nullable: bool = True

    @staticmethod
    def of(name: str, base: MySQLType, modifier: Optional[int] = None,
           nullable: bool = True) -> "Column":
        """Convenience constructor used throughout schema definitions."""
        return Column(name, TypeInstance(base, modifier), nullable)


@dataclass(frozen=True)
class Index:
    """An index over one or more columns of a table.

    ``primary`` implies ``unique``.  Secondary indexes point back at the
    primary key, as in InnoDB; the storage layer charges an extra lookup
    for non-covering secondary index access.
    """

    name: str
    column_names: Tuple[str, ...]
    unique: bool = False
    primary: bool = False

    def __post_init__(self) -> None:
        if self.primary and not self.unique:
            object.__setattr__(self, "unique", True)

    def covers(self, needed: Sequence[str]) -> bool:
        """Whether every needed column appears in the index key."""
        available = set(self.column_names)
        return all(name in available for name in needed)


class TableSchema:
    """The dictionary entry for one table.

    Column positions are fixed at creation; expression compilation and row
    storage both rely on them.
    """

    def __init__(self, name: str, columns: Sequence[Column],
                 indexes: Sequence[Index] = (), schema: str = "test") -> None:
        if not columns:
            raise CatalogError(f"table {name!r} must have at least one column")
        self.name = name
        self.schema = schema
        self.columns: List[Column] = list(columns)
        self._positions: Dict[str, int] = {}
        for position, column in enumerate(self.columns):
            if column.name in self._positions:
                raise CatalogError(
                    f"duplicate column {column.name!r} in table {name!r}")
            self._positions[column.name] = position
        self.indexes: List[Index] = []
        for index in indexes:
            self.add_index(index)

    # -- columns -----------------------------------------------------------

    def column_position(self, name: str) -> int:
        try:
            return self._positions[name]
        except KeyError:
            raise CatalogError(
                f"unknown column {name!r} in table {self.name!r}") from None

    def has_column(self, name: str) -> bool:
        return name in self._positions

    def column(self, name: str) -> Column:
        return self.columns[self.column_position(name)]

    @property
    def column_names(self) -> List[str]:
        return [column.name for column in self.columns]

    # -- indexes -----------------------------------------------------------

    def add_index(self, index: Index) -> None:
        if any(existing.name == index.name for existing in self.indexes):
            raise CatalogError(
                f"duplicate index {index.name!r} on table {self.name!r}")
        for column_name in index.column_names:
            self.column_position(column_name)  # validates existence
        self.indexes.append(index)

    @property
    def primary_key(self) -> Optional[Index]:
        for index in self.indexes:
            if index.primary:
                return index
        return None

    def indexes_on_prefix(self, column_name: str) -> List[Index]:
        """All indexes whose leading key column is ``column_name``."""
        return [index for index in self.indexes
                if index.column_names and index.column_names[0] == column_name]

    def unique_columns(self) -> frozenset:
        """Names of columns covered by a single-column unique index."""
        return frozenset(
            index.column_names[0] for index in self.indexes
            if index.unique and len(index.column_names) == 1)

    # -- misc ---------------------------------------------------------------

    @property
    def qualified_name(self) -> str:
        return f"{self.schema}.{self.name}"

    @property
    def row_width(self) -> int:
        """Estimated bytes per row, used by the cost models."""
        return sum(column.type.width for column in self.columns)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TableSchema({self.qualified_name}, {len(self.columns)} cols)"
