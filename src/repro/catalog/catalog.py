"""The data dictionary: every table schema plus its statistics.

This is the structure the MySQL parser/resolver consults for name
resolution, and from which the bridge's metadata provider answers Orca's
requests (Section 5).  It deliberately contains *no* row data — like the
"shell database" technique the related-work section describes, optimization
needs only metadata and statistics.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.catalog.schema import TableSchema
from repro.catalog.statistics import TableStatistics
from repro.errors import CatalogError


class Catalog:
    """A registry of table schemas and their statistics."""

    def __init__(self, schema: str = "test") -> None:
        self.default_schema = schema
        self._tables: Dict[str, TableSchema] = {}
        self._statistics: Dict[str, TableStatistics] = {}
        self._version = 0

    # -- versioning ---------------------------------------------------------

    @property
    def version(self) -> int:
        """A counter bumped by every DDL, ANALYZE, and (via the storage
        engine) DML change.  The statement plan cache records the version
        each plan was compiled against and invalidates on mismatch."""
        return self._version

    def bump_version(self) -> int:
        self._version += 1
        return self._version

    # -- tables -------------------------------------------------------------

    def create_table(self, table: TableSchema) -> None:
        key = table.name.lower()
        if key in self._tables:
            raise CatalogError(f"table {table.name!r} already exists")
        self._tables[key] = table
        self._statistics[key] = TableStatistics()
        self.bump_version()

    def drop_table(self, name: str) -> None:
        key = name.lower()
        if key not in self._tables:
            raise CatalogError(f"unknown table {name!r}")
        del self._tables[key]
        del self._statistics[key]
        self.bump_version()

    def table(self, name: str) -> TableSchema:
        key = name.lower()
        try:
            return self._tables[key]
        except KeyError:
            raise CatalogError(f"unknown table {name!r}") from None

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def tables(self) -> Iterator[TableSchema]:
        return iter(self._tables.values())

    @property
    def table_names(self) -> List[str]:
        return [table.name for table in self._tables.values()]

    # -- statistics ----------------------------------------------------------

    def statistics(self, name: str) -> TableStatistics:
        self.table(name)  # validates existence
        return self._statistics[name.lower()]

    def set_statistics(self, name: str, statistics: TableStatistics) -> None:
        self.table(name)
        self._statistics[name.lower()] = statistics
        self.bump_version()
