"""The MySQL-style data dictionary: schemas, statistics, and histograms."""

from repro.catalog.schema import Column, Index, TableSchema
from repro.catalog.statistics import ColumnStatistics, TableStatistics
from repro.catalog.histogram import (
    EquiHeightHistogram,
    Histogram,
    SingletonHistogram,
    build_histogram,
    encode_string_key,
)
from repro.catalog.catalog import Catalog

__all__ = [
    "Catalog",
    "Column",
    "ColumnStatistics",
    "EquiHeightHistogram",
    "Histogram",
    "Index",
    "SingletonHistogram",
    "TableSchema",
    "TableStatistics",
    "build_histogram",
    "encode_string_key",
]
