"""Table and column statistics served to both optimizers.

The metadata provider (Section 5.5) ships, per relation: cardinality;
per-column null counts; per-column distinct counts; and histograms.  The
paper additionally lifted MySQL's restriction that UNIQUE columns carry no
histogram, so that Orca could see them — ``ColumnStatistics.from_values``
therefore always builds a histogram when asked, and the ``unique`` flag is
carried alongside.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

from repro.catalog.histogram import Histogram, build_histogram


@dataclass
class ColumnStatistics:
    """Statistics for a single column."""

    null_count: int = 0
    distinct_count: int = 0
    min_value: object = None
    max_value: object = None
    histogram: Optional[Histogram] = None
    unique: bool = False

    @staticmethod
    def from_values(values: Iterable, unique: bool = False,
                    with_histogram: bool = True) -> "ColumnStatistics":
        """Compute statistics over a column's values (ANALYZE TABLE).

        ``values`` may be any single-pass iterable — storage hands in
        lazy column iterators so ANALYZE never materialises its own
        copy of every column.
        """
        total = 0
        non_null = []
        append = non_null.append
        for value in values:
            total += 1
            if value is not None:
                append(value)
        distinct = set(non_null)
        histogram = build_histogram(non_null) if with_histogram else None
        return ColumnStatistics(
            null_count=total - len(non_null),
            distinct_count=len(distinct),
            min_value=min(non_null) if non_null else None,
            max_value=max(non_null) if non_null else None,
            histogram=histogram,
            unique=unique,
        )

    def null_fraction(self, row_count: int) -> float:
        if row_count <= 0:
            return 0.0
        return min(1.0, self.null_count / row_count)


@dataclass
class TableStatistics:
    """Statistics for a whole table."""

    row_count: int = 0
    columns: Dict[str, ColumnStatistics] = field(default_factory=dict)
    #: True once ANALYZE computed these statistics; False for the
    #: all-default object a table starts with.  The plan-quality
    #: staleness report uses this to tell "never analyzed" apart from
    #: "analyzed when the table was empty".
    analyzed: bool = False

    def column(self, name: str) -> ColumnStatistics:
        """Statistics for a column; a neutral default if never analyzed."""
        if name not in self.columns:
            self.columns[name] = ColumnStatistics(
                distinct_count=max(1, self.row_count // 10))
        return self.columns[name]

    def ndv(self, name: str) -> float:
        """Distinct-value count with a safe floor of one."""
        return float(max(1, self.column(name).distinct_count))
