"""Singleton and equi-height histograms.

Both optimizers consume histograms.  MySQL supports singleton and
equi-height histograms for every type, including strings; Orca originally
supported only *singleton* string histograms (a non-order-preserving hash
prevents range estimation).  The paper (Sections 5.5 and 7) extends Orca
with equi-height string histograms by encoding string bucket boundaries as
64-bit signed integers with an order-preserving fixed-length prefix code.
:func:`encode_string_key` implements that code, including its documented
weakness: strings sharing a long common prefix become indistinguishable.
"""

from __future__ import annotations

import bisect
import datetime
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

#: Number of leading bytes folded into the 64-bit string key (Section 7:
#: "because of the fixed length, it cannot distinguish between two strings
#: with a long common prefix").
_STRING_KEY_PREFIX_BYTES = 7


def encode_string_key(value: str) -> int:
    """Encode a string as an order-preserving 56-bit non-negative integer.

    The first seven bytes of the string are packed big-endian (fitting
    comfortably in the paper's 64-bit signed integer), so
    ``encode_string_key(a) < encode_string_key(b)`` whenever ``a < b``
    byte-wise *and* the strings differ within the prefix.  Strings that
    agree on the first seven bytes map to the same key — the precise
    limitation the paper reports for its scheme.
    """
    key = 0
    data = value.encode("utf-8", errors="replace")[:_STRING_KEY_PREFIX_BYTES]
    for i in range(_STRING_KEY_PREFIX_BYTES):
        byte = data[i] if i < len(data) else 0
        key = (key << 8) | byte
    return key


def _to_number(value) -> float:
    """Map any histogram-able value onto the real line, order preserved."""
    if value is None:
        raise ValueError("NULL has no histogram position")
    if isinstance(value, bool):
        return float(value)
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, datetime.datetime):
        return value.timestamp()
    if isinstance(value, datetime.date):
        return float(value.toordinal())
    if isinstance(value, datetime.time):
        return value.hour * 3600.0 + value.minute * 60.0 + value.second
    if isinstance(value, str):
        return float(encode_string_key(value))
    raise ValueError(f"cannot place {value!r} on a histogram axis")


class Histogram:
    """Interface shared by both histogram kinds.

    All selectivity results are fractions of the *non-null* rows in
    [0, 1]; callers scale by the null fraction separately.
    """

    kind = "abstract"

    def selectivity_eq(self, value) -> float:
        raise NotImplementedError

    def selectivity_range(self, low, high,
                          low_inclusive: bool = True,
                          high_inclusive: bool = False) -> float:
        """Fraction of rows with low <= value <(=) high; None = unbounded."""
        raise NotImplementedError

    def selectivity_lt(self, value, inclusive: bool = False) -> float:
        return self.selectivity_range(None, value, high_inclusive=inclusive)

    def selectivity_gt(self, value, inclusive: bool = False) -> float:
        return self.selectivity_range(value, None, low_inclusive=inclusive)

    @property
    def distinct_values(self) -> float:
        raise NotImplementedError


@dataclass
class SingletonHistogram(Histogram):
    """One bucket per distinct value: exact equality selectivities.

    MySQL builds these when a column has at most ``histogram buckets``
    distinct values; Orca's native string histograms are of this kind.
    """

    frequencies: Dict[object, float]  # value -> fraction of non-null rows
    kind = "singleton"

    def selectivity_eq(self, value) -> float:
        return self.frequencies.get(value, 0.0)

    def selectivity_range(self, low, high,
                          low_inclusive: bool = True,
                          high_inclusive: bool = False) -> float:
        total = 0.0
        for value, fraction in self.frequencies.items():
            if low is not None:
                cmp = _to_number(value) - _to_number(low)
                if cmp < 0 or (cmp == 0 and not low_inclusive):
                    continue
            if high is not None:
                cmp = _to_number(value) - _to_number(high)
                if cmp > 0 or (cmp == 0 and not high_inclusive):
                    continue
            total += fraction
        return min(1.0, total)

    @property
    def distinct_values(self) -> float:
        return float(len(self.frequencies))


@dataclass
class EquiHeightHistogram(Histogram):
    """Equal-mass buckets: (lower, upper, cumulative_fraction, bucket_ndv).

    Buckets are stored as parallel arrays ordered by upper bound.  The
    cumulative fraction at index ``i`` is the fraction of non-null rows
    with value <= ``uppers[i]``.
    """

    lowers: List[float]
    uppers: List[float]
    cumulative: List[float]
    bucket_ndv: List[float]
    kind = "equi_height"

    def __post_init__(self) -> None:
        if not (len(self.lowers) == len(self.uppers) == len(self.cumulative)
                == len(self.bucket_ndv)):
            raise ValueError("equi-height arrays must have equal lengths")

    @property
    def bucket_count(self) -> int:
        return len(self.uppers)

    @property
    def distinct_values(self) -> float:
        return sum(self.bucket_ndv)

    def _bucket_fraction(self, index: int) -> float:
        previous = self.cumulative[index - 1] if index > 0 else 0.0
        return self.cumulative[index] - previous

    def selectivity_eq(self, value) -> float:
        if not self.uppers:
            return 0.0
        point = _to_number(value)
        index = bisect.bisect_left(self.uppers, point)
        if index >= self.bucket_count or point < self.lowers[index]:
            return 0.0
        ndv = max(1.0, self.bucket_ndv[index])
        return self._bucket_fraction(index) / ndv

    def _cumulative_below(self, point: float, inclusive: bool) -> float:
        """Fraction of rows with value < point (or <= when inclusive)."""
        if not self.uppers:
            return 0.0
        index = bisect.bisect_left(self.uppers, point)
        if index >= self.bucket_count:
            return 1.0
        before = self.cumulative[index - 1] if index > 0 else 0.0
        lower, upper = self.lowers[index], self.uppers[index]
        if point < lower:
            return before
        if upper == lower:
            inside = 1.0 if (point > upper or (inclusive and point == upper)) \
                else 0.0
        else:
            inside = (point - lower) / (upper - lower)
            if inclusive:
                inside += 1.0 / max(1.0, self.bucket_ndv[index])
            inside = min(1.0, max(0.0, inside))
        return before + inside * self._bucket_fraction(index)

    def selectivity_range(self, low, high,
                          low_inclusive: bool = True,
                          high_inclusive: bool = False) -> float:
        upper_mass = (1.0 if high is None
                      else self._cumulative_below(_to_number(high),
                                                  high_inclusive))
        lower_mass = (0.0 if low is None
                      else self._cumulative_below(_to_number(low),
                                                  not low_inclusive))
        return max(0.0, min(1.0, upper_mass - lower_mass))


#: Columns with at most this many distinct values get singleton histograms,
#: matching MySQL's ANALYZE TABLE behaviour.
SINGLETON_NDV_LIMIT = 64
DEFAULT_BUCKETS = 32


def build_histogram(values: Sequence, buckets: int = DEFAULT_BUCKETS,
                    singleton_limit: int = SINGLETON_NDV_LIMIT
                    ) -> Optional[Histogram]:
    """Build the appropriate histogram for a column's non-null values.

    Returns ``None`` for an empty column.  Few distinct values produce a
    :class:`SingletonHistogram`; otherwise an :class:`EquiHeightHistogram`
    is built (numeric axis via :func:`_to_number`, so strings use the
    order-preserving prefix code).
    """
    non_null = [value for value in values if value is not None]
    if not non_null:
        return None
    distinct = set(non_null)
    total = float(len(non_null))
    if len(distinct) <= singleton_limit:
        counts: Dict[object, int] = {}
        for value in non_null:
            counts[value] = counts.get(value, 0) + 1
        return SingletonHistogram(
            {value: count / total for value, count in counts.items()})
    return _build_equi_height(non_null, buckets)


def _build_equi_height(non_null: Sequence, buckets: int) -> EquiHeightHistogram:
    points = sorted(_to_number(value) for value in non_null)
    total = len(points)
    per_bucket = max(1, total // buckets)
    lowers: List[float] = []
    uppers: List[float] = []
    cumulative: List[float] = []
    bucket_ndv: List[float] = []
    start = 0
    while start < total:
        end = min(total, start + per_bucket)
        # Extend the bucket so equal values never straddle a boundary.
        while end < total and points[end] == points[end - 1]:
            end += 1
        segment = points[start:end]
        lowers.append(segment[0])
        uppers.append(segment[-1])
        cumulative.append(end / total)
        bucket_ndv.append(float(len(set(segment))))
        start = end
    return EquiHeightHistogram(lowers, uppers, cumulative, bucket_ndv)
