"""DML execution: INSERT / DELETE / UPDATE.

These statements never take the Orca detour — "the parse tree converter
only sends SELECT queries to Orca" (Section 4.1) — and they need no
cost-based optimization in this engine: they bind against a single table
and run directly against the storage engine.

Statistics are not maintained incrementally; run ``Database.analyze()``
after bulk changes, as with MySQL's ANALYZE TABLE.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.catalog.schema import TableSchema
from repro.errors import ExecutionError, ResolutionError
from repro.executor.expression import ExpressionCompiler, is_true
from repro.mysql_types import coerce
from repro.sql import ast
from repro.sql.rewrite import map_expr


def _bind_to_table(expr: ast.Expr, schema: TableSchema) -> ast.Expr:
    """Resolve column references against a single table (entry slot 0)."""

    def fn(node: ast.Expr) -> Optional[ast.Expr]:
        if isinstance(node, ast.ColumnRef) and node.entry_id is None:
            if node.table is not None and \
                    node.table.lower() != schema.name.lower():
                raise ResolutionError(
                    f"unknown table {node.table!r} in DML expression")
            position = schema.column_position(node.column)
            bound = ast.ColumnRef(schema.name, node.column, 0, position)
            bound.resolved_type = schema.columns[position].type
            return bound
        if isinstance(node, (ast.ScalarSubquery, ast.InSubqueryExpr,
                             ast.ExistsExpr)):
            raise ExecutionError("subqueries are not supported in DML")
        return None

    return map_expr(expr, fn)


def _compile(expr: ast.Expr, schema: TableSchema) -> Callable:
    return ExpressionCompiler().compile(_bind_to_table(expr, schema))


def execute_insert(storage, stmt: ast.InsertStmt) -> int:
    """Evaluate the VALUES rows, coerce to column types, and append."""
    schema = storage.catalog.table(stmt.table)
    if stmt.column_names is None:
        positions = list(range(len(schema.columns)))
    else:
        positions = [schema.column_position(name)
                     for name in stmt.column_names]
    rows: List[tuple] = []
    for value_exprs in stmt.rows:
        if len(value_exprs) != len(positions):
            raise ExecutionError(
                f"INSERT row has {len(value_exprs)} values for "
                f"{len(positions)} columns")
        row: List = [None] * len(schema.columns)
        for position, expr in zip(positions, value_exprs):
            compiled = _compile(expr, schema)
            value = compiled([None])
            column = schema.columns[position]
            if value is None and not column.nullable:
                raise ExecutionError(
                    f"column {column.name!r} cannot be NULL")
            row[position] = coerce(value, column.type.base)
        rows.append(tuple(row))
    storage.load_rows(stmt.table, rows)
    return len(rows)


def execute_delete(storage, stmt: ast.DeleteStmt) -> int:
    """Delete rows matching WHERE; returns the number removed."""
    schema = storage.catalog.table(stmt.table)
    heap = storage.heap(stmt.table)
    if stmt.where is None:
        removed = heap.row_count
        storage.replace_rows(stmt.table, [])
        return removed
    predicate = _compile(stmt.where, schema)
    keep: List[tuple] = []
    removed = 0
    for row in heap.rows:
        if is_true(predicate([row])):
            removed += 1
        else:
            keep.append(row)
    storage.replace_rows(stmt.table, keep)
    return removed


def execute_update(storage, stmt: ast.UpdateStmt) -> int:
    """Apply SET assignments to rows matching WHERE; returns rows changed."""
    schema = storage.catalog.table(stmt.table)
    heap = storage.heap(stmt.table)
    predicate = (_compile(stmt.where, schema)
                 if stmt.where is not None else None)
    compiled = [(schema.column_position(name), schema.column(name),
                 _compile(expr, schema))
                for name, expr in stmt.assignments]
    changed = 0
    new_rows: List[tuple] = []
    for row in heap.rows:
        if predicate is None or is_true(predicate([row])):
            values = list(row)
            # Evaluate every right-hand side against the *old* row, as
            # SQL requires, then assign.
            results = [(position, column, fn([row]))
                       for position, column, fn in compiled]
            for position, column, value in results:
                if value is None and not column.nullable:
                    raise ExecutionError(
                        f"column {column.name!r} cannot be NULL")
                values[position] = coerce(value, column.type.base) \
                    if value is not None else None
            new_rows.append(tuple(values))
            changed += 1
        else:
            new_rows.append(row)
    storage.replace_rows(stmt.table, new_rows)
    return changed
