"""End-to-end optimizer observability: tracing and metrics.

The paper evaluates the integration through timings and plan quality
(Section 7), but a production optimizer lives or dies by its
introspection surface: *where* does a detour spend its time (parse-tree
conversion, metadata fetch, memo search, plan conversion, refinement)
and *why* did a plan win or lose?  This module is the common sink for
both questions:

* :class:`Span` / :class:`Tracer` — hierarchical per-statement spans
  covering every pipeline stage.  Spans are context managers, close in
  LIFO order even when an exception unwinds through them (the aborted
  Orca spans of a contained detour stay in the trace, marked with the
  error), and export as JSON-ready dicts;
* :class:`NullTracer` / :data:`NOOP_TRACER` — the zero-cost default:
  every instrumentation hook degrades to a shared no-op span, so an
  untraced statement pays only an attribute lookup per hook;
* :class:`MetricsRegistry` — process-wide counters, gauges, and
  streaming histograms (p50/p95/p99 over a bounded reservoir) for
  detour rate, fallback reasons, memo effort, cost-model evaluations,
  and metadata-cache hits/misses.  The resilience layer's
  :class:`repro.resilience.FallbackLog` feeds the same registry, so one
  report answers "what happened to this statement and why".

Span taxonomy (names are stable API, used by the bench harness)::

    statement
      parse
      prepare
      route              (plan_cache attribute: hit / miss / bypass)
      orca_detour
        preprocess
        metadata_lookup   (one per metadata-cache miss)
        parse_tree_convert  (one per query block)
        memo_search         (one per query block)
        plan_convert
      mysql_optimize      (fallbacks and simple queries)
      refine
      execute

A statement served from the plan cache emits only ``statement``,
``parse``, ``route`` (with ``plan_cache=hit``), and ``execute`` — the
skipped optimize stages are the saving being traced.  The
``memo_search`` span carries the search-effort counters
(``cost_evaluations``, ``memo_offered``, ``pruned_candidates``,
``best_cost``) the perf benches aggregate.
"""

from __future__ import annotations

import random
import re
import time
from typing import Callable, Dict, Iterator, List, Optional

__all__ = [
    "MetricsDelta",
    "MetricsRegistry",
    "NOOP_TRACER",
    "NullTracer",
    "Span",
    "StreamingHistogram",
    "Tracer",
    "find_spans",
    "graft_span",
    "stage_durations",
]


# -- spans -------------------------------------------------------------------------


class Span:
    """One timed pipeline stage; a context manager node in the trace tree."""

    __slots__ = ("name", "start", "end", "attributes", "children",
                 "_tracer")

    def __init__(self, name: str, tracer: "Tracer",
                 attributes: Optional[dict] = None) -> None:
        self.name = name
        self.start: Optional[float] = None
        self.end: Optional[float] = None
        self.attributes: Dict[str, object] = attributes or {}
        self.children: List["Span"] = []
        self._tracer = tracer

    # -- lifecycle ---------------------------------------------------------------

    def __enter__(self) -> "Span":
        self._tracer._open(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc is not None:
            self.attributes.setdefault("error", type(exc).__name__)
            self.attributes.setdefault("error_message", str(exc))
        self._tracer._close(self)
        return False  # never swallow

    def set(self, **attributes: object) -> "Span":
        """Attach (or overwrite) span attributes."""
        self.attributes.update(attributes)
        return self

    # -- inspection --------------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        """Seconds from open to close (0.0 while the span is open)."""
        if self.start is None or self.end is None:
            return 0.0
        return self.end - self.start

    def walk(self) -> Iterator["Span"]:
        """Pre-order traversal of this span and its descendants."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> dict:
        """Nested JSON-ready representation (children inline).

        A span that never closed (the statement aborted mid-execute, or
        the export happened while the statement is still running) is
        marked ``closed: false`` and carries ``duration: null`` — a
        fabricated 0.0 would read as "instant", which is exactly wrong
        for the span that was open the longest.
        """
        return {
            "name": self.name,
            "start": self.start,
            "duration": self.duration if self.closed else None,
            "closed": self.closed,
            "attributes": dict(self.attributes),
            "children": [child.to_dict() for child in self.children],
        }

    def to_dicts(self) -> List[dict]:
        """Flat JSON trace export: one dict per span, pre-order.

        ``depth`` and ``parent`` (the parent's index in the list) make
        the tree reconstructible without nesting — the format the bench
        harness and external tools consume.  Unclosed spans export with
        ``closed: false`` and a null duration (see :meth:`to_dict`).
        """
        out: List[dict] = []

        def emit(span: "Span", depth: int, parent: Optional[int]) -> None:
            index = len(out)
            out.append({
                "name": span.name,
                "start": span.start,
                "duration": span.duration if span.closed else None,
                "closed": span.closed,
                "depth": depth,
                "parent": parent,
                "attributes": dict(span.attributes),
            })
            for child in span.children:
                emit(child, depth + 1, index)

        emit(self, 0, None)
        return out

    def __repr__(self) -> str:
        return (f"Span({self.name!r}, duration={self.duration:.6f}, "
                f"children={len(self.children)})")


class Tracer:
    """Collects hierarchical spans for one or more statements.

    The tracer owns a LIFO stack of open spans; ``span()`` creates a
    child of the innermost open span (or a new root).  Closing is
    resilient: if a span exits while descendants are still open (an
    exception skipped their ``__exit__``, or a generator was abandoned),
    the stack unwinds to the exiting span so the tree stays consistent.
    """

    enabled = True

    def __init__(self, clock: Callable[[], float] = time.perf_counter
                 ) -> None:
        self._clock = clock
        self.roots: List[Span] = []
        self._stack: List[Span] = []

    def span(self, name: str, /, **attributes: object) -> Span:
        return Span(name, self, attributes or None)

    # -- internal lifecycle (called by Span) ---------------------------------------

    def _open(self, span: Span) -> None:
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        span.start = self._clock()
        self._stack.append(span)

    def _close(self, span: Span) -> None:
        now = self._clock()
        # Unwind to (and including) the exiting span; close any leaked
        # descendants on the way so every span in the tree ends.
        while self._stack:
            top = self._stack.pop()
            if top.end is None:
                top.end = now
            if top is span:
                break

    # -- inspection ------------------------------------------------------------------

    @property
    def current(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    @property
    def last_root(self) -> Optional[Span]:
        return self.roots[-1] if self.roots else None

    def export(self) -> List[dict]:
        """Flat JSON export of every recorded root trace."""
        out: List[dict] = []
        for root in self.roots:
            out.extend(root.to_dicts())
        return out

    def reset(self) -> None:
        self.roots = []
        self._stack = []


class _NullSpan:
    """The shared do-nothing span every disabled hook receives."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attributes: object) -> "_NullSpan":
        return self

    @property
    def duration(self) -> float:
        return 0.0

    attributes: Dict[str, object] = {}
    children: List[Span] = []


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Zero-cost tracer: every hook returns the shared no-op span."""

    enabled = False
    roots: List[Span] = []

    def span(self, name: str, /, **attributes: object) -> _NullSpan:
        return _NULL_SPAN

    @property
    def current(self) -> None:
        return None

    @property
    def last_root(self) -> None:
        return None

    def export(self) -> List[dict]:
        return []

    def reset(self) -> None:
        pass


#: The process-wide default: instrumentation hooks against this tracer
#: cost one attribute lookup and one no-op context switch.
NOOP_TRACER = NullTracer()


def find_spans(root, name: str) -> list:
    """Every span named ``name`` under ``root``, pre-order.

    ``root`` may be a live :class:`Span`, one *exported* nested dict
    (:meth:`Span.to_dict`), or a flat exported list
    (:meth:`Span.to_dicts` / ``StatementResult.trace_export()``) — so
    trace consumers can search a JSON export exactly like a live tree.
    The return items match the input shape (spans in, dicts out of a
    dict export).
    """
    if isinstance(root, Span):
        return [span for span in root.walk() if span.name == name]
    if isinstance(root, dict):
        out: List[dict] = []
        stack = [root]
        while stack:
            node = stack.pop(0)
            if node.get("name") == name:
                out.append(node)
            stack[0:0] = node.get("children", ())
        return out
    return [node for node in root if node.get("name") == name]


def graft_span(parent: Span, name: str, start: float, end: float,
               **attributes: object) -> Span:
    """Attach an already-finished span under ``parent``.

    Used to splice telemetry that was recorded *elsewhere* — a forked
    morsel worker, a remote process — into a live trace: the child span
    never passes through the tracer's open/close stack, its lifetime is
    whatever the recorder measured.  No-op (returns the parent) when
    the parent is the shared null span of a disabled tracer.
    """
    if not isinstance(parent, Span):
        return parent
    span = Span(name, parent._tracer, attributes or None)
    span.start = start
    span.end = end
    parent.children.append(span)
    return span


def stage_durations(root: Span) -> Dict[str, float]:
    """Total seconds per span name across the tree under ``root``.

    Multiple spans with one name (e.g. ``memo_search`` per query block)
    are summed — this is the per-stage breakdown the bench report prints.
    """
    totals: Dict[str, float] = {}
    for span in root.walk():
        totals[span.name] = totals.get(span.name, 0.0) + span.duration
    return totals


# -- metrics ------------------------------------------------------------------------


class StreamingHistogram:
    """Streaming quantile sketch: exact until the reservoir fills, then a
    uniform reservoir sample (seeded, so runs are reproducible).

    Count / sum / min / max stay exact regardless of sample size; the
    p50/p95/p99 answers come from the reservoir.
    """

    RESERVOIR_SIZE = 512

    def __init__(self, seed: int = 0) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._samples: List[float] = []
        self._rng = random.Random(seed)
        self._sorted = True

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if len(self._samples) < self.RESERVOIR_SIZE:
            self._samples.append(value)
            self._sorted = False
        else:
            slot = self._rng.randrange(self.count)
            if slot < self.RESERVOIR_SIZE:
                self._samples[slot] = value
                self._sorted = False

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Linear-interpolated quantile over the reservoir (0 <= q <= 1)."""
        if not self._samples:
            return 0.0
        if not self._sorted:
            self._samples.sort()
            self._sorted = True
        position = q * (len(self._samples) - 1)
        low = int(position)
        high = min(low + 1, len(self._samples) - 1)
        fraction = position - low
        return (self._samples[low] * (1.0 - fraction)
                + self._samples[high] * fraction)

    def summary(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


class MetricsRegistry:
    """Process-wide named counters, gauges, and streaming histograms.

    Names are dotted strings (``detour.entered``, ``mdcache.hits``,
    ``orca.memo_groups``); unknown names read as zero, so report code
    never KeyErrors on a path that was not exercised.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, StreamingHistogram] = {}
        self._gauge_callbacks: Dict[str, Callable[[], float]] = {}

    # -- counters ---------------------------------------------------------------

    def inc(self, name: str, value: float = 1) -> None:
        self._counters[name] = self._counters.get(name, 0) + value

    def count(self, name: str) -> float:
        return self._counters.get(name, 0)

    # -- gauges -----------------------------------------------------------------

    def set_gauge(self, name: str, value: float) -> None:
        self._gauges[name] = value

    def gauge(self, name: str) -> float:
        self._materialize_gauges()
        return self._gauges.get(name, 0.0)

    def register_gauge(self, name: str,
                       callback: Callable[[], float]) -> None:
        """Register a gauge computed at export time.

        Derived values (hit ratios, live sizes) would need a recompute
        on every event if stored eagerly; a callback is evaluated only
        when an export (``to_dict`` / ``to_prometheus`` / ``report`` /
        ``gauge``) actually wants the number.  Registrations survive
        :meth:`reset` — they describe live objects, not samples.
        """
        self._gauge_callbacks[name] = callback

    def _materialize_gauges(self) -> None:
        for name, callback in self._gauge_callbacks.items():
            self._gauges[name] = float(callback())

    # -- histograms -------------------------------------------------------------

    def observe(self, name: str, value: float) -> None:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = StreamingHistogram()
            self._histograms[name] = histogram
        histogram.observe(value)

    def histogram(self, name: str) -> Optional[StreamingHistogram]:
        return self._histograms.get(name)

    def declare_histogram(self, name: str) -> StreamingHistogram:
        """Register a histogram before any observation arrives.

        Exports must tolerate the empty histogram this creates: a
        zero-sample reservoir has no quantiles, so ``to_prometheus``
        emits only ``_sum``/``_count`` and ``report`` marks it empty
        instead of printing fabricated zeros (or raising)."""
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = StreamingHistogram()
            self._histograms[name] = histogram
        return histogram

    # -- derived ----------------------------------------------------------------

    def ratio(self, numerator: str, denominator: str) -> float:
        """counter(numerator) / counter(denominator), 0.0 when empty."""
        den = self.count(denominator)
        if den <= 0:
            return 0.0
        return self.count(numerator) / den

    def counters_with_prefix(self, prefix: str) -> Dict[str, float]:
        return {name: value for name, value in sorted(self._counters.items())
                if name.startswith(prefix)}

    # -- export -----------------------------------------------------------------

    def to_dict(self) -> dict:
        self._materialize_gauges()
        return {
            "counters": dict(sorted(self._counters.items())),
            "gauges": dict(sorted(self._gauges.items())),
            "histograms": {name: histogram.summary()
                           for name, histogram
                           in sorted(self._histograms.items())},
        }

    def to_prometheus(self, prefix: str = "repro_") -> str:
        """The whole registry in Prometheus text exposition format.

        Counters export as monotonic counters (``_total`` suffix),
        gauges as gauges, and streaming histograms as summaries
        (``quantile`` labels plus ``_sum`` / ``_count``).  Dots and any
        other invalid characters in registry names become underscores.
        """
        self._materialize_gauges()
        lines: List[str] = []
        for name, value in sorted(self._counters.items()):
            metric = _prometheus_name(name, prefix) + "_total"
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric} {_prometheus_value(value)}")
        for name, value in sorted(self._gauges.items()):
            metric = _prometheus_name(name, prefix)
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {_prometheus_value(value)}")
        for name, histogram in sorted(self._histograms.items()):
            metric = _prometheus_name(name, prefix)
            lines.append(f"# TYPE {metric} summary")
            # A declared-but-unobserved histogram has no reservoir to
            # interpolate over; a summary with no quantile lines is
            # valid exposition, a fabricated 0.0 quantile is not.
            if histogram.count > 0:
                for q in ("0.5", "0.95", "0.99"):
                    value = histogram.quantile(float(q))
                    lines.append(f'{metric}{{quantile="{q}"}} '
                                 f"{_prometheus_value(value)}")
            lines.append(
                f"{metric}_sum {_prometheus_value(histogram.total)}")
            lines.append(f"{metric}_count {histogram.count}")
        return "\n".join(lines) + "\n" if lines else ""

    def report(self) -> str:
        self._materialize_gauges()
        lines: List[str] = []
        if self._counters:
            lines.append("counters:")
            for name, value in sorted(self._counters.items()):
                shown = int(value) if float(value).is_integer() else value
                lines.append(f"  {name + ':':<32} {shown}")
        if self._gauges:
            lines.append("gauges:")
            for name, value in sorted(self._gauges.items()):
                lines.append(f"  {name + ':':<32} {value:g}")
        if self._histograms:
            lines.append("histograms (count / p50 / p95 / p99 / max):")
            for name, histogram in sorted(self._histograms.items()):
                if histogram.count == 0:
                    lines.append(f"  {name + ':':<32}      0 / (empty)")
                    continue
                s = histogram.summary()
                lines.append(
                    f"  {name + ':':<32} {s['count']:>6} / "
                    f"{s['p50']:.6g} / {s['p95']:.6g} / "
                    f"{s['p99']:.6g} / {s['max']:.6g}")
        if not lines:
            lines.append("(no metrics recorded)")
        return "\n".join(lines)

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()


class MetricsDelta:
    """A picklable, mergeable slice of registry activity.

    Forked morsel workers cannot write to the parent's
    :class:`MetricsRegistry` (it lives in another process), so each
    worker records into one of these — plain dicts and lists, cheap to
    pickle over the existing result pipes — and the coordinator folds
    it into the real registry with :meth:`merge_into`.  Counter bumps
    add; histogram observations replay one by one, so the parent's
    reservoir sees the same stream it would have seen in-process.
    """

    __slots__ = ("counters", "observations")

    def __init__(self) -> None:
        self.counters: Dict[str, float] = {}
        self.observations: List[tuple] = []

    def inc(self, name: str, value: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    def observe(self, name: str, value: float) -> None:
        self.observations.append((name, float(value)))

    def merge(self, other: "MetricsDelta") -> None:
        """Fold another delta into this one (worker → op aggregation)."""
        for name, value in other.counters.items():
            self.counters[name] = self.counters.get(name, 0) + value
        self.observations.extend(other.observations)

    def merge_into(self, registry: Optional[MetricsRegistry]) -> None:
        """Replay this delta against a real registry (None = drop)."""
        if registry is None:
            return
        for name, value in sorted(self.counters.items()):
            registry.inc(name, value)
        for name, value in self.observations:
            registry.observe(name, value)

    def __getstate__(self) -> tuple:
        return (self.counters, self.observations)

    def __setstate__(self, state: tuple) -> None:
        self.counters, self.observations = state


_PROM_INVALID = re.compile(r"[^a-zA-Z0-9_:]")


def _prometheus_name(name: str, prefix: str) -> str:
    return prefix + _PROM_INVALID.sub("_", name)


def _prometheus_value(value: float) -> str:
    number = float(value)
    if number.is_integer():
        return str(int(number))
    return repr(number)
