"""Exception hierarchy for the repro engine.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch one base class.  The hierarchy mirrors the places
where the real integration can fail: the SQL frontend, the catalog, either
optimizer, the bridge, and execution.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SqlError(ReproError):
    """Base class for SQL frontend errors."""


class LexerError(SqlError):
    """Raised when the lexer encounters an unrecognised character."""

    def __init__(self, message: str, position: int) -> None:
        super().__init__(f"{message} at position {position}")
        self.position = position


class ParseError(SqlError):
    """Raised when the parser cannot parse the token stream."""


class UnsupportedSqlError(SqlError):
    """Raised for SQL the engine deliberately does not support.

    MySQL (and therefore this reproduction) rejects INTERSECT / EXCEPT;
    the paper rewrote TPC-DS queries that used them (Section 6.2).
    """


class ResolutionError(SqlError):
    """Raised for name-resolution failures (unknown table/column, ambiguity)."""


class CatalogError(ReproError):
    """Raised for data-dictionary failures (missing table, duplicate index)."""


class StorageError(ReproError):
    """Raised by the storage engine (bad row shape, missing index)."""


class OptimizerError(ReproError):
    """Base class for optimizer failures."""


class MySQLOptimizerError(OptimizerError):
    """Raised when the greedy MySQL-style optimizer cannot produce a plan."""


class OrcaError(OptimizerError):
    """Raised inside the Orca-style Cascades optimizer."""


class OrcaFallbackError(OrcaError):
    """Raised when Orca optimization must be abandoned for this query.

    The bridge catches this and falls back to the MySQL optimizer, as the
    paper's plan converter does when Orca changed the query-block
    structure (Section 4.2.1) or an unsupported construct is found.
    """


class BudgetExceededError(OrcaError):
    """Raised when a compile budget (wall clock / memo size) is exhausted.

    The containment guard maps it to ``FallbackReason.BUDGET_EXCEEDED``:
    a pathological query aborts the detour instead of hanging
    compilation, and MySQL's fast greedy optimizer takes over.
    """


class SkeletonInvalidError(OrcaFallbackError):
    """Raised when the converted skeleton does not describe the block.

    The plan converter's two safety nets raise this: a leaf that belongs
    to a different query block (Orca changed the structure, Section
    4.2.1) or best-position arrays whose coverage does not match the
    block's entries.
    """


class BridgeError(ReproError):
    """Raised by the MySQL<->Orca bridge components."""


class MetadataProviderError(BridgeError):
    """Raised when the metadata provider cannot serve a requested object."""


class InvalidOidError(MetadataProviderError):
    """Raised when an OID does not decode to any laid-out object (S5.6)."""


class ExecutionError(ReproError):
    """Raised during plan execution."""


class GovernorError(ReproError):
    """Base class for execution-governor aborts.

    Raised at a cooperative checkpoint when a per-statement bound
    (deadline, cancellation, memory cap) is breached.  The Database
    facade maps each subclass onto a :class:`repro.resilience.FallbackReason`
    member, records the abort, and unwinds without mutating storage, the
    plan cache, or the misestimation ledger.
    """


class DeadlineExceededError(GovernorError):
    """Raised when a statement overruns its wall-clock deadline."""

    def __init__(self, elapsed: float, budget: float,
                 stage: str = None) -> None:
        where = f" during {stage}" if stage else ""
        super().__init__(
            f"statement deadline exceeded{where}: {elapsed:.3f}s elapsed "
            f"(budget {budget:.3f}s)")
        self.elapsed = elapsed
        self.budget = budget
        self.stage = stage


class StatementCancelledError(GovernorError):
    """Raised at the first checkpoint after a CancelToken is set."""

    def __init__(self, reason: str = "cancelled",
                 stage: str = None) -> None:
        where = f" during {stage}" if stage else ""
        super().__init__(f"statement cancelled{where}: {reason}")
        self.reason = reason
        self.stage = stage


class ResourceExhaustedError(GovernorError):
    """Raised when tracked operator memory exceeds the statement cap.

    Carries the charging operator (``hash_join_build``, ``hash_agg``,
    ``sort``, ``materialize``) so the facade can pick a degradation
    path — a breached hash aggregate retries once in streaming mode.
    """

    def __init__(self, operator: str, tracked_bytes: int,
                 limit_bytes: int) -> None:
        super().__init__(
            f"statement memory limit exceeded in {operator}: "
            f"{tracked_bytes} tracked bytes (limit {limit_bytes})")
        self.operator = operator
        self.tracked_bytes = tracked_bytes
        self.limit_bytes = limit_bytes
