"""repro — a reproduction of "Integrating the Orca Optimizer into MySQL".

The package implements a complete embedded SQL engine with *two* query
optimizers and the bridge the paper describes between them:

* :class:`repro.Database` — the public facade: create tables, load rows,
  ANALYZE, and run SQL through either optimizer (or let the router decide
  by query complexity, as the paper's integration does);
* :mod:`repro.mysql_optimizer` — the MySQL-style optimizer (greedy
  left-deep join ordering, non-cost-based hash joins, skeleton plans,
  plan refinement);
* :mod:`repro.orca` — the Orca-style Cascades optimizer (memo,
  GREEDY / EXHAUSTIVE / EXHAUSTIVE2 join search, histogram cardinality,
  costed hash joins, preprocessing rewrites);
* :mod:`repro.bridge` — the paper's three integration components: parse
  tree converter, metadata provider (OID layout + DXL), and plan
  converter (best-position arrays);
* :mod:`repro.resilience` — fault containment for the detour: fallback
  reason taxonomy, compile budgets, per-statement circuit breaker,
  fallback telemetry, and seedable fault injection;
* :mod:`repro.governor` — execution-stage resource governance: per-
  statement wall-clock deadlines (``run(sql, timeout_seconds=...)``),
  cooperative cancellation (``db.cancel(statement_id)`` /
  :class:`repro.CancelToken`), and tracked operator-memory limits with
  a graceful streaming-aggregation degradation;
* :mod:`repro.observability` — per-statement span tracing
  (``db.run(sql, trace=True)``), the process-wide metrics registry
  (``db.metrics_report()``), and EXPLAIN ANALYZE stage breakdowns;
* :mod:`repro.workloads` — TPC-H (22 queries) and TPC-DS-style (99
  queries) schemas, data generators, and query suites;
* :mod:`repro.bench` — the harness regenerating the paper's Fig. 10-12
  and Table 1.

Quickstart::

    from repro import Database, DatabaseConfig
    from repro.workloads.tpch import load_tpch, tpch_query

    db = Database(DatabaseConfig(complex_query_threshold=3))
    load_tpch(db, scale=0.5)
    rows = db.execute(tpch_query(4))          # routed automatically
    print(db.explain(tpch_query(4), optimizer="orca"))
"""

from repro.database import Database, DatabaseConfig, StatementResult
from repro.errors import (
    DeadlineExceededError,
    GovernorError,
    ReproError,
    ResourceExhaustedError,
    StatementCancelledError,
)
from repro.governor import CancelToken, ExecutionGovernor
from repro.observability import MetricsRegistry, Span, Tracer
from repro.resilience import (
    CircuitBreaker,
    CompileBudget,
    FallbackLog,
    FallbackReason,
    FaultInjector,
    statement_fingerprint,
)

__version__ = "1.0.0"

__all__ = [
    "CancelToken",
    "CircuitBreaker",
    "CompileBudget",
    "Database",
    "DatabaseConfig",
    "DeadlineExceededError",
    "ExecutionGovernor",
    "FallbackLog",
    "FallbackReason",
    "FaultInjector",
    "GovernorError",
    "MetricsRegistry",
    "ReproError",
    "ResourceExhaustedError",
    "Span",
    "StatementCancelledError",
    "StatementResult",
    "Tracer",
    "statement_fingerprint",
    "__version__",
]
