"""In-memory storage engine standing in for InnoDB/Taurus Page Stores."""

from repro.storage.table import HeapTable
from repro.storage.index import OrderedIndex
from repro.storage.columnstore import ColumnChunk, ColumnStore
from repro.storage.engine import AccessCounters, StorageEngine

__all__ = ["AccessCounters", "ColumnChunk", "ColumnStore", "HeapTable",
           "OrderedIndex", "StorageEngine"]
