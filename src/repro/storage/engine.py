"""The storage engine facade: tables, indexes, ANALYZE, and access counters.

Stands in for InnoDB on top of Taurus Page Stores.  Execution-time access
counts are tracked so benchmarks can report work done (rows read, index
lookups) in addition to wall-clock time; the counters also make failure
diagnosis in tests deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.catalog.catalog import Catalog
from repro.catalog.schema import Index, TableSchema
from repro.catalog.statistics import ColumnStatistics, TableStatistics
from repro.errors import StorageError
from repro.storage.columnstore import DEFAULT_CHUNK_SIZE, ColumnStore
from repro.storage.index import OrderedIndex
from repro.storage.table import HeapTable, Row

#: Rows per page used when converting row counts to page counts.
ROWS_PER_PAGE = 64

#: Simulated B-tree descent cost, in busy-loop iterations, charged once
#: per index lookup / range-scan start.  A purely RAM-resident Python
#: engine has no random-I/O penalty, so without this the nested-loop vs
#: hash-join trade-off the paper's evaluation hinges on would not exist;
#: the loop stands in for InnoDB's random page reads (see DESIGN.md).
#: ~1500 iterations is a few tens of microseconds — roughly the real
#: gap between one buffered random page access and one scanned row.
LOOKUP_PENALTY_LOOPS = 1500


@dataclass
class AccessCounters:
    """Work counters incremented by the execution-time access paths."""

    rows_scanned: int = 0
    index_lookups: int = 0
    index_rows_read: int = 0
    #: Chunks a scan proved dead through zone maps and never
    #: materialised.  Skipped chunks still charge ``rows_scanned`` (the
    #: scan logically covered them), so this counter is the *physical*
    #: saving on top of an unchanged logical scan count — and row/batch
    #: counter parity holds because both engines consult the same zone
    #: maps with the same predicates.
    chunks_skipped: int = 0

    def reset(self) -> None:
        self.rows_scanned = 0
        self.index_lookups = 0
        self.index_rows_read = 0
        self.chunks_skipped = 0

    def snapshot(self) -> Dict[str, int]:
        return {
            "rows_scanned": self.rows_scanned,
            "index_lookups": self.index_lookups,
            "index_rows_read": self.index_rows_read,
            "chunks_skipped": self.chunks_skipped,
        }


class StorageEngine:
    """Owns every heap table and index, keyed by lower-cased table name."""

    def __init__(self, catalog: Catalog,
                 lookup_penalty: int = LOOKUP_PENALTY_LOOPS,
                 batch_size: int = DEFAULT_CHUNK_SIZE,
                 columnstore_enabled: bool = True) -> None:
        if batch_size < 1:
            raise StorageError("batch_size must be >= 1")
        self.catalog = catalog
        self._heaps: Dict[str, HeapTable] = {}
        self._indexes: Dict[str, Dict[str, OrderedIndex]] = {}
        #: Per-table chunked columnar mirrors of the heaps (zone maps,
        #: zero-transposition batched scans); absent entirely when the
        #: column store is disabled.
        self._stores: Dict[str, ColumnStore] = {}
        self.counters = AccessCounters()
        #: Busy-loop iterations simulating one random B-tree descent.
        self.lookup_penalty = lookup_penalty
        #: Rows per column-store chunk == the executor's batch size, so
        #: one chunk is exactly one RowBatch (and one parallel morsel).
        self.batch_size = batch_size
        self.columnstore_enabled = columnstore_enabled

    def _charge_lookup(self) -> None:
        for __ in range(self.lookup_penalty):
            pass

    # -- DDL ------------------------------------------------------------------

    def create_table(self, schema: TableSchema) -> None:
        self.catalog.create_table(schema)
        key = schema.name.lower()
        heap = HeapTable(schema)
        self._heaps[key] = heap
        self._indexes[key] = {
            index.name: OrderedIndex(index, heap) for index in schema.indexes}
        if self.columnstore_enabled:
            self._stores[key] = ColumnStore(len(schema.columns),
                                            self.batch_size)

    def drop_table(self, name: str) -> None:
        self.catalog.drop_table(name)
        key = name.lower()
        self._heaps.pop(key, None)
        self._indexes.pop(key, None)
        self._stores.pop(key, None)

    # -- DML ------------------------------------------------------------------

    def load_rows(self, table_name: str, rows: Sequence[Sequence]) -> None:
        """Bulk-load rows, then rebuild the table's indexes.

        Bumps the catalog version: cached plans were costed against the
        old row counts, so INSERT (and bulk loads) invalidate them.
        """
        heap = self.heap(table_name)
        before = len(heap.rows)
        heap.insert_many(rows)
        store = self._stores.get(table_name.lower())
        if store is not None:
            # Incremental zone-map maintenance: append exactly the rows
            # the heap accepted (insert_many validated each width).
            store.append_rows(heap.rows[before:])
        for index in self._indexes[table_name.lower()].values():
            index.build()
        self.catalog.bump_version()

    def replace_rows(self, table_name: str,
                     rows: Sequence[Sequence]) -> None:
        """Replace the table's contents (DELETE/UPDATE rewrite the heap).

        Bumps the catalog version so cached statement plans invalidate.
        """
        heap = self.heap(table_name)
        heap.rows = [tuple(row) for row in rows]
        store = self._stores.get(table_name.lower())
        if store is not None:
            store.rebuild(heap.rows)
        for index in self._indexes[table_name.lower()].values():
            index.build()
        self.catalog.bump_version()

    # -- access ---------------------------------------------------------------

    def heap(self, table_name: str) -> HeapTable:
        try:
            return self._heaps[table_name.lower()]
        except KeyError:
            raise StorageError(f"no storage for table {table_name!r}") from None

    def index(self, table_name: str, index_name: str) -> OrderedIndex:
        table_indexes = self._indexes.get(table_name.lower(), {})
        try:
            return table_indexes[index_name]
        except KeyError:
            raise StorageError(
                f"no index {index_name!r} on table {table_name!r}") from None

    def store(self, table_name: str) -> Optional[ColumnStore]:
        """The table's column store, resynchronised with its heap.

        Returns None when the column store is disabled.  A store that
        drifted from the heap (rows inserted behind the engine's back,
        e.g. straight onto ``heap.rows`` in a test) is rebuilt here, so
        scans never see a stale chunking.
        """
        store = self._stores.get(table_name.lower())
        if store is None:
            return None
        heap = self.heap(table_name)
        if store.row_count != len(heap.rows):
            store.rebuild(heap.rows)
        return store

    def table_scan(self, table_name: str,
                   zone_predicates: Optional[Sequence[tuple]] = None
                   ) -> Iterator[Row]:
        """Full scan; counts every row read.

        With ``zone_predicates`` (pre-extracted from the scan's filter
        conjuncts) chunks whose zone maps prove no row can pass are
        skipped — still charged to ``rows_scanned`` (the logical scan
        covered them) plus one ``chunks_skipped``.  The row and batch
        engines consult the same store with the same predicates, so
        their counters stay identical.
        """
        heap = self.heap(table_name)
        counters = self.counters
        if zone_predicates:
            store = self.store(table_name)
            if store is not None:
                for chunk_rows, skipped in store.scan_chunks(
                        zone_predicates):
                    counters.rows_scanned += len(chunk_rows)
                    if skipped:
                        counters.chunks_skipped += 1
                    else:
                        yield from chunk_rows
                return
        for row in heap.rows:
            counters.rows_scanned += 1
            yield row

    def index_lookup_rows(self, table_name: str, index_name: str,
                          key: Tuple) -> List[Row]:
        """Fetch rows via an index point/prefix lookup."""
        heap = self.heap(table_name)
        index = self.index(table_name, index_name)
        if len(key) == len(index.definition.column_names):
            row_ids = index.lookup(key)
        else:
            row_ids = index.lookup_prefix(key)
        self._charge_lookup()
        self.counters.index_lookups += 1
        self.counters.index_rows_read += len(row_ids)
        return [heap.rows[row_id] for row_id in row_ids]

    def index_range_rows(self, table_name: str, index_name: str,
                         low: Optional[Tuple], high: Optional[Tuple],
                         low_inclusive: bool = True,
                         high_inclusive: bool = True) -> Iterator[Row]:
        heap = self.heap(table_name)
        index = self.index(table_name, index_name)
        self._charge_lookup()
        self.counters.index_lookups += 1
        for row_id in index.range_scan(low, high, low_inclusive,
                                       high_inclusive):
            self.counters.index_rows_read += 1
            yield heap.rows[row_id]

    def index_ordered_rows(self, table_name: str, index_name: str,
                           descending: bool = False) -> Iterator[Row]:
        """Full ordered scan through an index (supplies sort order)."""
        heap = self.heap(table_name)
        index = self.index(table_name, index_name)
        for row_id in index.ordered_row_ids(descending):
            self.counters.index_rows_read += 1
            yield heap.rows[row_id]

    # -- batched access ---------------------------------------------------------
    #
    # The batch executor's counterparts of the scans above.  Each charges
    # the same AccessCounters totals as its row-at-a-time twin when fully
    # consumed (one lookup per range start, one rows_scanned /
    # index_rows_read per row); the only divergence is granularity — a
    # chunk's rows are charged when the chunk is produced, so early
    # termination (LIMIT) can over-charge by at most one batch.

    def table_scan_batches(self, table_name: str, batch_size: int,
                           zone_predicates: Optional[Sequence[tuple]]
                           = None) -> Iterator[List[Row]]:
        """Full scan emitting chunks of at most ``batch_size`` rows.

        When the requested batch size matches the column store's chunk
        size (always true through the Database, where both come from
        ``config.batch_size``), chunks are the store's pre-built row
        lists — zero slicing or transposition — and zone maps can skip
        dead chunks (charged as in :meth:`table_scan`).
        """
        counters = self.counters
        store = self.store(table_name)
        if store is not None and store.chunk_size == batch_size:
            for chunk_rows, skipped in store.scan_chunks(zone_predicates):
                counters.rows_scanned += len(chunk_rows)
                if skipped:
                    counters.chunks_skipped += 1
                else:
                    yield chunk_rows
            return
        heap = self.heap(table_name)
        rows = heap.rows
        for start in range(0, len(rows), batch_size):
            chunk = rows[start:start + batch_size]
            counters.rows_scanned += len(chunk)
            yield chunk

    def index_range_batches(self, table_name: str, index_name: str,
                            low: Optional[Tuple], high: Optional[Tuple],
                            low_inclusive: bool, high_inclusive: bool,
                            batch_size: int) -> Iterator[List[Row]]:
        heap = self.heap(table_name)
        index = self.index(table_name, index_name)
        self._charge_lookup()
        self.counters.index_lookups += 1
        counters = self.counters
        chunk: List[Row] = []
        for row_id in index.range_scan(low, high, low_inclusive,
                                       high_inclusive):
            counters.index_rows_read += 1
            chunk.append(heap.rows[row_id])
            if len(chunk) >= batch_size:
                yield chunk
                chunk = []
        if chunk:
            yield chunk

    def index_ordered_batches(self, table_name: str, index_name: str,
                              descending: bool,
                              batch_size: int) -> Iterator[List[Row]]:
        heap = self.heap(table_name)
        index = self.index(table_name, index_name)
        counters = self.counters
        chunk: List[Row] = []
        for row_id in index.ordered_row_ids(descending):
            counters.index_rows_read += 1
            chunk.append(heap.rows[row_id])
            if len(chunk) >= batch_size:
                yield chunk
                chunk = []
        if chunk:
            yield chunk

    # -- statistics -------------------------------------------------------------

    def analyze_table(self, table_name: str,
                      with_histograms: bool = True) -> TableStatistics:
        """Recompute statistics (ANALYZE TABLE) and store them in the catalog.

        Histograms are built for *every* column, including UNIQUE ones —
        the restriction MySQL normally applies was lifted for the Orca
        integration (Section 5.5, lesson 5 of Section 7).
        """
        heap = self.heap(table_name)
        schema = heap.schema
        unique_columns = schema.unique_columns()
        statistics = TableStatistics(row_count=heap.row_count,
                                     analyzed=True)
        # One pass serves both consumers: statistics read each column
        # through an iterator (the store's native column lists when
        # available, a lazy per-row gather otherwise — never a second
        # materialised copy), and the zone maps are rebuilt from the
        # same store ANALYZE just walked.
        store = self.store(table_name)
        for column in schema.columns:
            if store is not None:
                values = store.column_values(
                    schema.column_position(column.name))
            else:
                values = heap.column_values(column.name)
            statistics.columns[column.name] = ColumnStatistics.from_values(
                values,
                unique=column.name in unique_columns,
                with_histogram=with_histograms,
            )
        if store is not None:
            store.rebuild_zone_maps()
        self.catalog.set_statistics(table_name, statistics)
        return statistics

    def analyze_all(self, with_histograms: bool = True) -> None:
        for table in self.catalog.tables():
            self.analyze_table(table.name, with_histograms)

    # -- cost-model inputs --------------------------------------------------------

    def page_count(self, table_name: str) -> int:
        return max(1, self.heap(table_name).row_count // ROWS_PER_PAGE)
