"""Native columnar table representation with per-chunk zone maps.

The heap (:class:`repro.storage.table.HeapTable`) remains the source of
truth for row storage — DML rewrites it, indexes point into it — but the
batch engine used to re-chunk ``heap.rows`` with a fresh list slice on
every scan.  The :class:`ColumnStore` keeps the same rows *pre-chunked*
into fixed-size :class:`ColumnChunk` units of ``chunk_size`` rows (the
executor's batch size), so a batched scan hands each chunk's row list to
a ``RowBatch`` with zero copying, plus a native per-column decomposition
of every chunk:

* ``columns[i]`` — the chunk's values for column *i* as a plain list
  (what ANALYZE reads, column at a time, without gathering);
* ``null_bits[i]`` — a null bitmap (bit *r* set when row *r* is NULL);
* ``mins[i]`` / ``maxs[i]`` — the zone map: min/max over the chunk's
  non-NULL values, ``None`` when the chunk has no non-NULL value.

Zone-map maintenance contract: maps are updated incrementally on every
insert (append-only, so min/max only widen) and rebuilt from the column
values on ANALYZE (``rebuild_zone_maps``), which is also when a store
that drifted from its heap (rows inserted behind the engine's back)
resynchronises.

Chunk skipping: scans pass a list of *zone predicates* — pre-extracted
``(kind, position, ...)`` tuples derived from a scan's filter conjuncts
— and :meth:`ColumnChunk.can_skip` reports chunks where no row can
possibly satisfy some conjunct.  The test is deliberately conservative:
a predicate only votes *skip* when the chunk's range/null statistics
*prove* every row fails (SQL semantics: a NULL comparison never passes a
filter), and any type error during the range test keeps the chunk.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

#: Default rows per chunk; mirrors the executor's default batch size so
#: one chunk becomes exactly one RowBatch (and one parallel morsel).
DEFAULT_CHUNK_SIZE = 1024


class ColumnChunk:
    """One fixed-size horizontal slice of a table, stored both ways.

    ``rows`` is the batch-engine payload (row tuples, at most
    ``chunk_size`` of them); ``columns``/``null_bits``/``mins``/``maxs``
    are the per-column decomposition and zone map described in the
    module docstring.
    """

    __slots__ = ("rows", "columns", "null_bits", "mins", "maxs")

    def __init__(self, n_columns: int) -> None:
        self.rows: List[tuple] = []
        self.columns: List[list] = [[] for _ in range(n_columns)]
        self.null_bits: List[int] = [0] * n_columns
        self.mins: List[object] = [None] * n_columns
        self.maxs: List[object] = [None] * n_columns

    def __len__(self) -> int:
        return len(self.rows)

    def append(self, row: tuple) -> None:
        """Add one row, updating columns, null bitmaps, and zone maps."""
        bit = 1 << len(self.rows)
        self.rows.append(row)
        mins = self.mins
        maxs = self.maxs
        for position, value in enumerate(row):
            self.columns[position].append(value)
            if value is None:
                self.null_bits[position] |= bit
            else:
                low = mins[position]
                if low is None:
                    mins[position] = value
                    maxs[position] = value
                else:
                    if value < low:
                        mins[position] = value
                    if value > maxs[position]:
                        maxs[position] = value

    def null_count(self, position: int) -> int:
        return self.null_bits[position].bit_count()

    def rebuild_zone_maps(self) -> None:
        """Recompute min/max/null bitmaps from the column values
        (ANALYZE; insert-time maintenance keeps them fresh, this makes
        them canonical even if values were mutated in place)."""
        for position, column in enumerate(self.columns):
            bits = 0
            low = high = None
            for offset, value in enumerate(column):
                if value is None:
                    bits |= 1 << offset
                elif low is None:
                    low = high = value
                else:
                    if value < low:
                        low = value
                    elif value > high:
                        high = value
            self.null_bits[position] = bits
            self.mins[position] = low
            self.maxs[position] = high

    # -- zone-map predicate test --------------------------------------------------

    def can_skip(self, predicates: Sequence[tuple]) -> bool:
        """True when some predicate provably rejects every row here.

        ``predicates`` entries (see ``plan.zone_predicates``):

        * ``("cmp", position, op, value)`` — column *op* literal with
          ``op`` one of ``= <> < <= > >=``;
        * ``("in", position, values)`` — column IN (literals);
        * ``("notin", position, values)`` — column NOT IN (literals):
          dead only when the chunk is constant on a listed value;
        * ``("notbetween", position, a, b)`` — column NOT BETWEEN a
          AND b: dead when the chunk's [min, max] lies inside [a, b];
        * ``("null", position, negated)`` — IS [NOT] NULL.
        """
        length = len(self.rows)
        for predicate in predicates:
            kind = predicate[0]
            position = predicate[1]
            if kind == "null":
                nulls = self.null_bits[position].bit_count()
                if predicate[2]:  # IS NOT NULL: dead when all NULL
                    if nulls == length:
                        return True
                elif nulls == 0:  # IS NULL: dead when no NULLs
                    return True
                continue
            low = self.mins[position]
            if low is None:
                # Every value is NULL: no comparison ever passes.
                return True
            high = self.maxs[position]
            try:
                if kind == "cmp":
                    op = predicate[2]
                    value = predicate[3]
                    if op == "=":
                        if value < low or value > high:
                            return True
                    elif op == "<":
                        if low >= value:
                            return True
                    elif op == "<=":
                        if low > value:
                            return True
                    elif op == ">":
                        if high <= value:
                            return True
                    elif op == ">=":
                        if high < value:
                            return True
                    elif op == "<>":
                        if low == high == value:
                            return True
                elif kind == "in":
                    if all(value < low or value > high
                           for value in predicate[2]):
                        return True
                elif kind == "notin":
                    if low == high and low in predicate[2]:
                        return True
                elif kind == "notbetween":
                    if predicate[2] <= low and high <= predicate[3]:
                        return True
            except TypeError:
                # Incomparable literal (mixed types): keep the chunk.
                continue
        return False


class ColumnStore:
    """All of one table's chunks, aligned with its heap's row order.

    Chunk *i* holds heap rows ``[i * chunk_size, (i + 1) * chunk_size)``
    in insertion order, so a chunked scan visits exactly the rows a heap
    scan would, in the same order.
    """

    __slots__ = ("chunk_size", "n_columns", "chunks")

    def __init__(self, n_columns: int,
                 chunk_size: int = DEFAULT_CHUNK_SIZE) -> None:
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        self.chunk_size = chunk_size
        self.n_columns = n_columns
        self.chunks: List[ColumnChunk] = []

    @property
    def row_count(self) -> int:
        if not self.chunks:
            return 0
        return (self.chunk_size * (len(self.chunks) - 1)
                + len(self.chunks[-1]))

    def append_rows(self, rows: Sequence[tuple]) -> None:
        """Append rows, filling the last partial chunk first."""
        size = self.chunk_size
        chunks = self.chunks
        chunk = chunks[-1] if chunks and len(chunks[-1]) < size else None
        for row in rows:
            if chunk is None or len(chunk) >= size:
                chunk = ColumnChunk(self.n_columns)
                chunks.append(chunk)
            chunk.append(row)

    def rebuild(self, rows: Sequence[tuple]) -> None:
        """Replace the store's contents (DELETE/UPDATE heap rewrite)."""
        self.chunks = []
        self.append_rows(rows)

    def rebuild_zone_maps(self) -> None:
        for chunk in self.chunks:
            chunk.rebuild_zone_maps()

    def column_values(self, position: int) -> Iterator:
        """All values of one column, chunk by chunk, without a gather
        copy — the iterator-friendly ANALYZE path."""
        for chunk in self.chunks:
            yield from chunk.columns[position]

    def scan_chunks(self, predicates: Optional[Sequence[tuple]] = None
                    ) -> Iterator[Tuple[List[tuple], bool]]:
        """Yield ``(chunk_rows, skipped)`` per chunk, in heap order.

        A skipped chunk's rows are still yielded (the caller charges
        ``rows_scanned`` for them to keep row/batch counter parity) but
        flagged so the scan can avoid materialising a batch.
        """
        if not predicates:
            for chunk in self.chunks:
                yield chunk.rows, False
            return
        for chunk in self.chunks:
            yield chunk.rows, chunk.can_skip(predicates)
