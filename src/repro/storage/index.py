"""Ordered indexes over heap tables.

An :class:`OrderedIndex` keeps ``(key, row_id)`` pairs sorted by key, which
supports the three access patterns both optimizers care about:

* point lookup (``ref`` / ``eq_ref`` access in MySQL terms),
* range scan, and
* full ordered scan (an index scan that supplies a row order — the Orca
  enhancement from Section 7, lesson 4).

NULL keys are excluded from the index, matching SQL lookup semantics.  Keys
within one index are homogeneous tuples, so plain tuple comparison orders
them.
"""

from __future__ import annotations

import bisect
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.catalog.schema import Index
from repro.storage.table import HeapTable


class OrderedIndex:
    """A sorted (key, row_id) structure for one index definition."""

    def __init__(self, definition: Index, table: HeapTable) -> None:
        self.definition = definition
        self.table = table
        self._positions = [table.schema.column_position(name)
                           for name in definition.column_names]
        self._entries: List[Tuple[Tuple, int]] = []
        self._keys: List[Tuple] = []
        self._built = False

    def _key_of(self, row: Sequence) -> Optional[Tuple]:
        key = tuple(row[position] for position in self._positions)
        if any(part is None for part in key):
            return None
        return key

    def build(self) -> None:
        """(Re)build the index from the current heap contents."""
        entries = []
        for row_id, row in enumerate(self.table.rows):
            key = self._key_of(row)
            if key is not None:
                entries.append((key, row_id))
        entries.sort()
        self._entries = entries
        self._keys = [entry[0] for entry in entries]
        self._built = True

    def _ensure_built(self) -> None:
        if not self._built:
            self.build()

    # -- lookups -------------------------------------------------------------

    def lookup(self, key: Tuple) -> List[int]:
        """Row ids whose full index key equals ``key``."""
        self._ensure_built()
        if any(part is None for part in key):
            return []
        left = bisect.bisect_left(self._keys, key)
        result = []
        for i in range(left, len(self._entries)):
            if self._entries[i][0] != key:
                break
            result.append(self._entries[i][1])
        return result

    def lookup_prefix(self, prefix: Tuple) -> List[int]:
        """Row ids whose key starts with ``prefix`` (shorter than the key)."""
        self._ensure_built()
        if any(part is None for part in prefix):
            return []
        width = len(prefix)
        left = bisect.bisect_left(self._keys, prefix)
        result = []
        for i in range(left, len(self._entries)):
            if self._entries[i][0][:width] != prefix:
                break
            result.append(self._entries[i][1])
        return result

    def range_scan(self, low: Optional[Tuple], high: Optional[Tuple],
                   low_inclusive: bool = True,
                   high_inclusive: bool = True) -> Iterator[int]:
        """Row ids whose key prefix lies in [low, high], in key order.

        ``low`` / ``high`` may be shorter than the full key (prefix bounds);
        ``None`` means unbounded on that side.
        """
        self._ensure_built()
        if low is None:
            start = 0
        else:
            start = bisect.bisect_left(self._keys, low)
            if not low_inclusive:
                width = len(low)
                while (start < len(self._keys)
                       and self._keys[start][:width] == low):
                    start += 1
        for i in range(start, len(self._entries)):
            key = self._entries[i][0]
            if high is not None:
                head = key[:len(high)]
                if head > high or (head == high and not high_inclusive):
                    break
            yield self._entries[i][1]

    def ordered_row_ids(self, descending: bool = False) -> Iterator[int]:
        """All row ids in key order — the order-supplying index scan."""
        self._ensure_built()
        entries = reversed(self._entries) if descending else self._entries
        for __, row_id in entries:
            yield row_id

    @property
    def entry_count(self) -> int:
        self._ensure_built()
        return len(self._entries)
