"""Heap storage for a single table.

Rows are Python tuples whose positions match the table schema's column
positions.  The heap stands in for InnoDB's clustered storage; sequential
scans iterate in insertion order, which lets the paper's observation about
"sequential prefetch" on table scans (Section 6.1) be modelled by a lower
per-row scan cost in both cost models.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple

from repro.catalog.schema import TableSchema
from repro.errors import StorageError

Row = Tuple


class HeapTable:
    """Row storage plus the table's schema."""

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        self.rows: List[Row] = []

    def insert(self, row: Sequence) -> int:
        """Append one row; returns its row id (heap position)."""
        if len(row) != len(self.schema.columns):
            raise StorageError(
                f"row width {len(row)} != {len(self.schema.columns)} "
                f"for table {self.schema.name!r}")
        self.rows.append(tuple(row))
        return len(self.rows) - 1

    def insert_many(self, rows: Sequence[Sequence]) -> None:
        for row in rows:
            self.insert(row)

    def fetch(self, row_id: int) -> Row:
        return self.rows[row_id]

    def scan(self) -> Iterator[Row]:
        return iter(self.rows)

    @property
    def row_count(self) -> int:
        return len(self.rows)

    def column_values(self, column_name: str) -> Iterator:
        """All values of one column, lazily, for ANALYZE.

        A generator rather than a list: ANALYZE consumes each column in
        a single pass, and on large tables the eager gather used to
        build a full per-column copy per consumer (statistics *and* the
        zone-map rebuild).  Callers that need a list can materialise it
        themselves."""
        position = self.schema.column_position(column_name)
        return (row[position] for row in self.rows)
