"""The vectorized batch execution layer: RowBatch + expression compiler.

The row engine in :mod:`repro.executor.plan` interprets expression trees
one context at a time: every row pays a Python function call per
expression node plus a generator resumption per operator.  The batch
engine amortises both: operators exchange :class:`RowBatch` chunks of
~1024 rows, and expressions are *compiled* — the interpreted tree is
lowered into Python source code with MySQL's three-valued NULL semantics
spelled out inline, ``compile()``-d once, and evaluated with a single
function call per batch.

The compiler is deliberately conservative: any construct whose batch
semantics are not a provable 1:1 match of the row interpreter (subquery
expressions, window functions, correlated materialisations) raises
:class:`BatchUnsupported`, and the executor degrades the whole statement
to the row engine (recorded as ``FallbackReason.EXEC_BATCH_UNSUPPORTED``).
Correctness is anchored by the equivalence harness in
``tests/test_executor_equivalence.py``.

Layout of a generated evaluator for ``o_totalprice > 100 AND o_status =
'F'`` over entry 0::

    def _eval(_b):
        _col_0 = _b.columns[0]
        _out = []
        _ap = _out.append
        for _r0 in _col_0:
            _t0 = _r0[3] if _r0 is not None else None
            _t1 = (_t0 > 100) if _t0 is not None else None
            if _t1 is not True:
                _t2 = False
            else:
                ...
            _ap(_t2)
        return _out

One function call per batch, zero per-row interpreter dispatch.

Governance checkpoint cadence: every batch an operator emits flows
through ``ExecutionRuntime.note_batch``, which doubles as the batch
engine's cooperative checkpoint — the per-statement
:class:`repro.governor.ExecutionGovernor` (deadline / cancellation) and
the ``mid_batch`` fault-injection site both hook there, so reaction
latency in batch mode is bounded by one batch (≤ ``BATCH_SIZE`` rows).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import ExecutionError
from repro.executor.expression import (
    RAW_SCALARS,
    arith_add,
    arith_sub,
    cast_value,
    extract_value,
    like_regex,
)
from repro.sql import ast

#: Default rows per batch.  Big enough to amortise per-batch dispatch,
#: small enough to keep intermediate columns cache-resident.  The live
#: value is ``DatabaseConfig.batch_size``, carried per execution on the
#: runtime (``ExecutionRuntime.batch_size``); this module-level constant
#: is only the default for components constructed without one.
BATCH_SIZE = 1024


class BatchUnsupported(ExecutionError):
    """The batch engine cannot run this construct; use the row engine.

    Raised during plan lowering (never mid-execution on supported plans);
    the executor catches it and degrades the statement to the row
    interpreter, so this is a routing signal rather than a user error.
    """

    def __init__(self, construct: str) -> None:
        super().__init__(f"batch executor does not support {construct}")
        self.construct = construct


class RowBatch:
    """A columnar chunk of rows flowing between batch operators.

    ``columns`` maps a table-entry id to a list of that entry's current
    row tuples (``None`` for a null-extended outer-join row); every
    column has exactly ``length`` elements.  This mirrors the row
    engine's context array — slot *i* of the context becomes column *i*
    of the batch — so compiled expressions read the same shapes in both
    engines.
    """

    __slots__ = ("columns", "length")

    def __init__(self, columns: Dict[int, list], length: int) -> None:
        self.columns = columns
        self.length = length

    def filter_true(self, mask: Sequence) -> "RowBatch":
        """Keep only rows whose mask value is exactly ``True`` (SQL
        filter semantics: NULL and FALSE both drop the row)."""
        kept = 0
        for value in mask:
            if value is True:
                kept += 1
        if kept == self.length:
            return self
        if kept == 0:
            return RowBatch({entry: [] for entry in self.columns}, 0)
        columns = {
            entry: [row for row, passed in zip(column, mask)
                    if passed is True]
            for entry, column in self.columns.items()}
        return RowBatch(columns, kept)

    def slice(self, start: int, stop: int) -> "RowBatch":
        if start == 0 and stop >= self.length:
            return self
        columns = {entry: column[start:stop]
                   for entry, column in self.columns.items()}
        return RowBatch(columns, max(0, min(stop, self.length) - start))


class BatchAccumulator:
    """Collects produced rows and flushes them as fixed-size batches.

    Rows are stored row-major (one tuple per row, aligned with
    ``entries``) so hot loops pay a single ``append`` per row; the
    column transpose happens once per flush through ``zip(*rows)`` at
    C speed.
    """

    __slots__ = ("entries", "rows", "batch_size")

    def __init__(self, entries: List[int],
                 batch_size: int = BATCH_SIZE) -> None:
        self.entries = entries
        self.rows: List[tuple] = []
        self.batch_size = batch_size

    def add_ctx(self, ctx) -> None:
        self.rows.append(tuple(ctx[entry] for entry in self.entries))

    def add_values(self, values: tuple) -> None:
        self.rows.append(values)

    @property
    def length(self) -> int:
        return len(self.rows)

    @property
    def full(self) -> bool:
        return len(self.rows) >= self.batch_size

    def flush(self) -> RowBatch:
        rows = self.rows
        self.rows = []
        if rows:
            transposed = zip(*rows)
            columns = {entry: list(column)
                       for entry, column in zip(self.entries, transposed)}
        else:
            columns = {entry: [] for entry in self.entries}
        return RowBatch(columns, len(rows))


#: A compiled batch expression: RowBatch -> list of values (length rows).
BatchExpr = Callable[[RowBatch], list]


class _Emitter:
    """Accumulates generated statements with indentation tracking."""

    def __init__(self) -> None:
        self.lines: List[tuple] = []  # (indent level, text)
        self.level = 0

    def emit(self, text: str) -> None:
        self.lines.append((self.level, text))

    def indented(self) -> "_IndentBlock":
        return _IndentBlock(self)

    def render(self, base_indent: int) -> str:
        pad = " " * base_indent
        return "\n".join(pad + "    " * level + text
                         for level, text in self.lines)


class _IndentBlock:
    def __init__(self, emitter: _Emitter) -> None:
        self.emitter = emitter

    def __enter__(self):
        self.emitter.level += 1
        return self

    def __exit__(self, *exc):
        self.emitter.level -= 1
        return False


def _in_eval(value, candidates, negated):
    """Non-constant IN list semantics (mirrors the row interpreter)."""
    if value is None:
        return None
    saw_null = False
    for candidate in candidates:
        if candidate is None:
            saw_null = True
        elif candidate == value:
            return False if negated else True
    if saw_null:
        return None
    return True if negated else False


def _like_dyn(value, pattern):
    """LIKE with a non-literal pattern (mirrors the row interpreter)."""
    if value is None or pattern is None:
        return None
    return like_regex(pattern).match(str(value)) is not None


_COMPARE_SOURCE = {
    ast.BinOp.EQ: "==",
    ast.BinOp.NE: "!=",
    ast.BinOp.LT: "<",
    ast.BinOp.LE: "<=",
    ast.BinOp.GT: ">",
    ast.BinOp.GE: ">=",
}


class BatchExpressionCompiler:
    """Lowers resolved expression trees into per-batch evaluators.

    Each ``compile`` call generates one Python function that evaluates
    the whole expression for every row of a batch in a single loop, with
    NULL propagation and three-valued logic emitted as inline statements
    (no per-row closure dispatch).  Constants and helper callables are
    bound into the function's globals.

    ``compiled_count`` tracks successful compilations for the
    ``exec.compiled_exprs`` metric.
    """

    def __init__(self) -> None:
        self.compiled_count = 0

    # -- public API -------------------------------------------------------------

    def compile(self, expr: ast.Expr,
                available: Optional[frozenset] = None) -> BatchExpr:
        """Compile one expression; ``available`` restricts which entry
        ids it may read (a read outside the batch's columns raises
        :class:`BatchUnsupported` — the row engine's global context could
        serve it, the batch cannot)."""
        emitter = _Emitter()
        state = _GenState()
        result = self._gen(expr, emitter, state)
        if available is not None and not state.entries.issubset(available):
            missing = sorted(state.entries - available)
            raise BatchUnsupported(
                f"expression reading entries {missing} outside its "
                f"operator subtree")
        fn = self._assemble(emitter, state, result)
        self.compiled_count += 1
        return fn

    def compile_many(self, exprs: Sequence[ast.Expr],
                     available: Optional[frozenset] = None
                     ) -> List[BatchExpr]:
        return [self.compile(expr, available) for expr in exprs]

    def compile_filter(self, conjuncts: Sequence[ast.Expr],
                       available: Optional[frozenset] = None
                       ) -> Optional[BatchExpr]:
        """Compile a conjunct list into one strict True/False mask
        evaluator (NULL counts as not-passing, like the row engine's
        ``compile_filter``).  Returns ``None`` for an empty list."""
        if not conjuncts:
            return None
        emitter = _Emitter()
        state = _GenState()
        out = state.temp()
        self._gen_conjunction(list(conjuncts), emitter, state, out)
        if available is not None and not state.entries.issubset(available):
            missing = sorted(state.entries - available)
            raise BatchUnsupported(
                f"filter reading entries {missing} outside its operator "
                f"subtree")
        fn = self._assemble(emitter, state, out)
        self.compiled_count += 1
        return fn

    def _gen_conjunction(self, conjuncts: List[ast.Expr],
                         emitter: _Emitter, state: "_GenState",
                         out: str) -> None:
        head = self._gen(conjuncts[0], emitter, state)
        if len(conjuncts) == 1 and out != head:
            # A single conjunct's value is used as-is; the mask check
            # (`is True`) downstream handles NULL/False identically.
            emitter.emit(f"{out} = {head}")
            return
        if len(conjuncts) == 1:
            return
        emitter.emit(f"if {head} is not True:")
        with emitter.indented():
            emitter.emit(f"{out} = False")
        emitter.emit("else:")
        with emitter.indented():
            self._gen_conjunction(conjuncts[1:], emitter, state, out)

    # -- assembly -------------------------------------------------------------

    def _assemble(self, emitter: _Emitter, state: "_GenState",
                  result: str) -> BatchExpr:
        entries = sorted(state.entries)
        if entries:
            cols = "\n".join(f"    _col_{e} = _b.columns[{e}]"
                             for e in entries)
            row_vars = ", ".join(f"_r{e}" for e in entries)
            col_vars = ", ".join(f"_col_{e}" for e in entries)
            if len(entries) == 1:
                loop = f"    for {row_vars} in {col_vars}:"
            else:
                loop = f"    for {row_vars} in zip({col_vars}):"
            source = (
                "def _eval(_b):\n"
                f"{cols}\n"
                "    _out = []\n"
                "    _ap = _out.append\n"
                f"{loop}\n"
                f"{emitter.render(8)}\n"
                f"        _ap({result})\n"
                "    return _out\n")
        else:
            # Row-invariant expression: evaluate once, replicate.
            source = (
                "def _eval(_b):\n"
                f"{emitter.render(4)}\n"
                f"    return [{result}] * _b.length\n")
        code = compile(source, "<batch-expr>", "exec")
        namespace = dict(state.env)
        exec(code, namespace)
        fn = namespace["_eval"]
        fn._batch_source = source  # debugging aid
        return fn

    # -- codegen dispatch -------------------------------------------------------------

    def _gen(self, expr: ast.Expr, emitter: _Emitter,
             state: "_GenState") -> str:
        method = getattr(self, "_gen_" + type(expr).__name__, None)
        if method is None:
            raise BatchUnsupported(
                f"expression node {type(expr).__name__}")
        return method(expr, emitter, state)

    # -- leaves -------------------------------------------------------------

    def _gen_Literal(self, expr: ast.Literal, emitter, state) -> str:
        # Non-None literals bind as environment constants rather than
        # inline reprs: every atom the generated NULL guards test with
        # ``is`` is then a name, never a literal (and guards on consts
        # short-circuit correctly since only "None" is ever null).
        value = expr.value
        if value is None:
            return "None"
        return state.const(value)

    def _gen_IntervalLiteral(self, expr, emitter, state) -> str:
        return state.const(expr.interval)

    def _gen_ColumnRef(self, expr: ast.ColumnRef, emitter, state) -> str:
        if expr.entry_id is None or expr.position is None:
            raise ExecutionError(
                f"unresolved column reference {expr.display!r}")
        state.entries.add(expr.entry_id)
        out = state.temp()
        emitter.emit(f"{out} = _r{expr.entry_id}[{expr.position}] "
                     f"if _r{expr.entry_id} is not None else None")
        return out

    # -- logic, comparison, arithmetic --------------------------------------------

    def _gen_BinaryExpr(self, expr: ast.BinaryExpr, emitter, state) -> str:
        op = expr.op
        if op is ast.BinOp.AND:
            return self._gen_and(expr, emitter, state)
        if op is ast.BinOp.OR:
            return self._gen_or(expr, emitter, state)
        left = self._gen(expr.left, emitter, state)
        right = self._gen(expr.right, emitter, state)
        out = state.temp()
        if op in _COMPARE_SOURCE:
            emitter.emit(
                f"{out} = ({left} {_COMPARE_SOURCE[op]} {right}) "
                f"if ({left} is not None and {right} is not None) else None")
            return out
        if op is ast.BinOp.MUL:
            body = f"{left} * {right}"
        elif op is ast.BinOp.DIV:
            body = f"(None if {right} == 0 else {left} / {right})"
        elif op is ast.BinOp.MOD:
            body = f"(None if {right} == 0 else {left} % {right})"
        elif op is ast.BinOp.ADD:
            body = f"_arith_add({left}, {right})"
            state.env["_arith_add"] = arith_add
        elif op is ast.BinOp.SUB:
            body = f"_arith_sub({left}, {right})"
            state.env["_arith_sub"] = arith_sub
        else:
            raise ExecutionError(f"bad arithmetic operator {op}")
        emitter.emit(
            f"{out} = {body} "
            f"if ({left} is not None and {right} is not None) else None")
        return out

    def _gen_and(self, expr: ast.BinaryExpr, emitter, state) -> str:
        left = self._gen(expr.left, emitter, state)
        out = state.temp()
        emitter.emit(f"if {left} is False:")
        with emitter.indented():
            emitter.emit(f"{out} = False")
        emitter.emit("else:")
        with emitter.indented():
            right = self._gen(expr.right, emitter, state)
            emitter.emit(f"if {right} is False:")
            with emitter.indented():
                emitter.emit(f"{out} = False")
            emitter.emit(f"elif {left} is None or {right} is None:")
            with emitter.indented():
                emitter.emit(f"{out} = None")
            emitter.emit("else:")
            with emitter.indented():
                emitter.emit(f"{out} = True")
        return out

    def _gen_or(self, expr: ast.BinaryExpr, emitter, state) -> str:
        left = self._gen(expr.left, emitter, state)
        out = state.temp()
        emitter.emit(f"if {left} is True:")
        with emitter.indented():
            emitter.emit(f"{out} = True")
        emitter.emit("else:")
        with emitter.indented():
            right = self._gen(expr.right, emitter, state)
            emitter.emit(f"if {right} is True:")
            with emitter.indented():
                emitter.emit(f"{out} = True")
            emitter.emit(f"elif {left} is None or {right} is None:")
            with emitter.indented():
                emitter.emit(f"{out} = None")
            emitter.emit("else:")
            with emitter.indented():
                emitter.emit(f"{out} = False")
        return out

    def _gen_NotExpr(self, expr: ast.NotExpr, emitter, state) -> str:
        operand = self._gen(expr.operand, emitter, state)
        out = state.temp()
        emitter.emit(f"{out} = (not {operand}) "
                     f"if {operand} is not None else None")
        return out

    def _gen_NegExpr(self, expr: ast.NegExpr, emitter, state) -> str:
        operand = self._gen(expr.operand, emitter, state)
        out = state.temp()
        emitter.emit(f"{out} = -{operand} "
                     f"if {operand} is not None else None")
        return out

    def _gen_IsNullExpr(self, expr: ast.IsNullExpr, emitter, state) -> str:
        operand = self._gen(expr.operand, emitter, state)
        out = state.temp()
        test = "is not None" if expr.negated else "is None"
        emitter.emit(f"{out} = {operand} {test}")
        return out

    def _gen_BetweenExpr(self, expr: ast.BetweenExpr, emitter, state) -> str:
        operand = self._gen(expr.operand, emitter, state)
        low = self._gen(expr.low, emitter, state)
        high = self._gen(expr.high, emitter, state)
        out = state.temp()
        check = f"{low} <= {operand} <= {high}"
        if expr.negated:
            check = f"not ({check})"
        emitter.emit(
            f"{out} = ({check}) if ({operand} is not None and "
            f"{low} is not None and {high} is not None) else None")
        return out

    def _gen_LikeExpr(self, expr: ast.LikeExpr, emitter, state) -> str:
        operand = self._gen(expr.operand, emitter, state)
        out = state.temp()
        if isinstance(expr.pattern, ast.Literal) and \
                isinstance(expr.pattern.value, str):
            regex = state.const(like_regex(expr.pattern.value))
            check = f"{regex}.match(str({operand})) is not None"
            if expr.negated:
                check = f"not ({check})"
            emitter.emit(f"{out} = ({check}) "
                         f"if {operand} is not None else None")
            return out
        pattern = self._gen(expr.pattern, emitter, state)
        state.env["_like_dyn"] = _like_dyn
        emitter.emit(f"{out} = _like_dyn({operand}, {pattern})")
        if expr.negated:
            negated = state.temp()
            emitter.emit(f"{negated} = (not {out}) "
                         f"if {out} is not None else None")
            return negated
        return out

    def _gen_InListExpr(self, expr: ast.InListExpr, emitter, state) -> str:
        operand = self._gen(expr.operand, emitter, state)
        out = state.temp()
        constant_items = all(isinstance(item, ast.Literal)
                             for item in expr.items)
        if constant_items:
            values = state.const(frozenset(
                item.value for item in expr.items
                if item.value is not None))
            has_null = any(item.value is None for item in expr.items)
            found = state.temp()
            emitter.emit(f"if {operand} is None:")
            with emitter.indented():
                emitter.emit(f"{out} = None")
            emitter.emit("else:")
            with emitter.indented():
                emitter.emit(f"{found} = {operand} in {values}")
                if has_null:
                    emitter.emit(f"if not {found}:")
                    with emitter.indented():
                        emitter.emit(f"{out} = None")
                    emitter.emit("else:")
                    with emitter.indented():
                        emitter.emit(f"{out} = "
                                     f"{'not ' if expr.negated else ''}"
                                     f"{found}")
                else:
                    emitter.emit(f"{out} = "
                                 f"{'not ' if expr.negated else ''}{found}")
            return out
        items = [self._gen(item, emitter, state) for item in expr.items]
        state.env["_in_eval"] = _in_eval
        candidates = ", ".join(items)
        emitter.emit(f"{out} = _in_eval({operand}, ({candidates},), "
                     f"{expr.negated})")
        return out

    def _gen_CaseExpr(self, expr: ast.CaseExpr, emitter, state) -> str:
        out = state.temp()

        def gen_branch(index: int) -> None:
            if index >= len(expr.whens):
                if expr.else_value is not None:
                    value = self._gen(expr.else_value, emitter, state)
                    emitter.emit(f"{out} = {value}")
                else:
                    emitter.emit(f"{out} = None")
                return
            condition, result = expr.whens[index]
            cond = self._gen(condition, emitter, state)
            emitter.emit(f"if {cond} is True:")
            with emitter.indented():
                value = self._gen(result, emitter, state)
                emitter.emit(f"{out} = {value}")
            emitter.emit("else:")
            with emitter.indented():
                gen_branch(index + 1)

        gen_branch(0)
        return out

    def _gen_GroupingCall(self, expr, emitter, state) -> str:
        # Plain GROUP BY never produces super-aggregate rows.
        return state.const(0)

    # -- functions -------------------------------------------------------------

    def _gen_FuncCall(self, expr: ast.FuncCall, emitter, state) -> str:
        name = expr.name
        if name in ("COALESCE", "IFNULL"):
            return self._gen_coalesce(expr.args, emitter, state)
        args = [self._gen(arg, emitter, state) for arg in expr.args]
        out = state.temp()
        if name.startswith("CAST_"):
            target = state.const(name[5:])
            state.env["_cast_value"] = cast_value
            body = f"_cast_value({target}, {args[0]})"
        elif name.startswith("EXTRACT_"):
            unit = state.const(name[8:])
            state.env["_extract_value"] = extract_value
            body = f"_extract_value({unit}, {args[0]})"
        else:
            raw = RAW_SCALARS.get(name)
            if raw is None:
                raise ExecutionError(f"unknown function {name!r}")
            fn = state.const(raw)
            body = f"{fn}({', '.join(args)})"
        if args:
            null_check = " or ".join(f"{arg} is None" for arg in args)
            emitter.emit(f"{out} = None if ({null_check}) else {body}")
        else:
            emitter.emit(f"{out} = {body}")
        return out

    def _gen_coalesce(self, args: List[ast.Expr], emitter, state) -> str:
        out = state.temp()

        def gen_chain(index: int) -> None:
            if index >= len(args):
                emitter.emit(f"{out} = None")
                return
            value = self._gen(args[index], emitter, state)
            emitter.emit(f"if {value} is not None:")
            with emitter.indented():
                emitter.emit(f"{out} = {value}")
            emitter.emit("else:")
            with emitter.indented():
                gen_chain(index + 1)

        gen_chain(0)
        return out

    # -- unsupported constructs ------------------------------------------------------

    def _gen_ScalarSubquery(self, expr, emitter, state) -> str:
        raise BatchUnsupported("scalar subquery expressions")

    def _gen_InSubqueryExpr(self, expr, emitter, state) -> str:
        raise BatchUnsupported("IN (subquery) expressions")

    def _gen_ExistsExpr(self, expr, emitter, state) -> str:
        raise BatchUnsupported("EXISTS (subquery) expressions")

    def _gen_AggCall(self, expr, emitter, state) -> str:
        raise ExecutionError(
            "aggregate call reached the batch expression compiler; plan "
            "refinement should have rewritten it")

    def _gen_WindowCall(self, expr, emitter, state) -> str:
        raise ExecutionError(
            "window call reached the batch expression compiler; plan "
            "refinement should have rewritten it")

    def _gen_Star(self, expr, emitter, state) -> str:
        raise ExecutionError("* must be expanded during resolution")


class _GenState:
    """Mutable per-compilation state: temps, consts, referenced entries."""

    def __init__(self) -> None:
        self.counter = 0
        self.env: Dict[str, object] = {}
        self.entries: set = set()

    def temp(self) -> str:
        name = f"_t{self.counter}"
        self.counter += 1
        return name

    def const(self, value) -> str:
        name = f"_c{len(self.env)}"
        self.env[name] = value
        return name


# ---------------------------------------------------------------------------
# Plan lowering
# ---------------------------------------------------------------------------

def lower_executor(executor) -> int:
    """Lower every batch-executed plan of a statement.

    Walks the top plan and all sub-plans reachable through plan nodes
    (derived tables, CTEs, UNION parts), attaching compiled batch
    expressions (``bx_*`` attributes) to each node that will run in
    batch mode.  Inner sides of nested-loop joins are *not* lowered:
    they execute through the row interpreter under a context populated
    from the outer batch, which keeps correlated index lookups and
    pushed-down predicates exact.

    Returns the number of expressions compiled.  Raises
    :class:`BatchUnsupported` when any required construct cannot be
    lowered; the caller then degrades the statement to the row engine.
    """
    compiler = BatchExpressionCompiler()
    _lower_query_plan(executor.top_plan, compiler, set())
    return compiler.compiled_count


def _lower_query_plan(plan, compiler: BatchExpressionCompiler,
                      seen: set) -> None:
    if id(plan) in seen:
        return
    seen.add(id(plan))
    if plan.root is not None:
        _lower_node(plan.root, compiler, seen)
        available = frozenset(plan.root.produced_entries())
    else:
        available = frozenset()
    plan.bx_select = compiler.compile_many(plan.select_exprs, available)
    for __, part in plan.union_parts:
        _lower_query_plan(part, compiler, seen)


def _lower_node(node, compiler: BatchExpressionCompiler,
                seen: set) -> None:
    from repro.executor import plan as p

    if id(node) in seen:
        return
    seen.add(id(node))

    if isinstance(node, p.WindowNode):
        raise BatchUnsupported("window functions")

    if isinstance(node, p.NestedLoopJoinNode):
        # Outer side runs batched; the inner side re-runs per outer row
        # through the row interpreter (it may read outer slots), and the
        # join's condition and filter run row-wise inside run_ctx — so
        # neither the inner side nor the predicates need lowering.
        _lower_node(node.outer, compiler, seen)
        return

    if isinstance(node, p.HashJoinNode):
        _lower_node(node.probe, compiler, seen)
        _lower_node(node.build, compiler, seen)
        probe_avail = frozenset(node.probe.produced_entries())
        build_avail = frozenset(node.build.produced_entries())
        node.bx_probe_keys = compiler.compile_many(
            node.probe_key_exprs, probe_avail)
        node.bx_build_keys = compiler.compile_many(
            node.build_key_exprs, build_avail)
        available = probe_avail | build_avail
        # Residual conjuncts are evaluated per candidate pair through the
        # row interpreter (rare); only validate what the batch reads.
        node.bx_filter = compiler.compile_filter(
            node.filter_conjuncts, available)
        return

    # Sort/aggregate/filter/limit nodes never apply the attached
    # ``filter_fn`` in the row engine, so no ``bx_filter`` is compiled
    # for them — parity means ignoring the same things.

    if isinstance(node, p.FilterNode):
        _lower_node(node.child, compiler, seen)
        available = frozenset(node.produced_entries())
        node.bx_condition = compiler.compile_filter(
            node.conjuncts, available)
        return

    if isinstance(node, p.SortNode):
        _lower_node(node.child, compiler, seen)
        available = frozenset(node.child.produced_entries())
        node.bx_keys = compiler.compile_many(
            [item.expr for item in node.order_items], available)
        return

    if isinstance(node, p.AggregateNode):
        if node.child is not None:
            _lower_node(node.child, compiler, seen)
            available = frozenset(node.child.produced_entries())
        else:
            available = frozenset()
        node.bx_group = compiler.compile_many(node.group_exprs, available)
        node.bx_args = [
            compiler.compile(spec.arg_expr, available)
            if spec.arg_expr is not None and not spec.star else None
            for spec in node.specs]
        return

    if isinstance(node, p.LimitNode):
        _lower_node(node.child, compiler, seen)
        return

    if isinstance(node, p.DerivedMaterializeNode):
        if node.correlation_sources:
            raise BatchUnsupported("correlated materialisation")
        _lower_query_plan(node.subplan, compiler, seen)
        node.bx_filter = compiler.compile_filter(
            node.filter_conjuncts, frozenset({node.entry_id}))
        return

    if isinstance(node, p.CteScanNode):
        _lower_query_plan(node.subplan, compiler, seen)
        node.bx_filter = compiler.compile_filter(
            node.filter_conjuncts, frozenset({node.entry_id}))
        return

    if isinstance(node, p.IndexLookupNode):
        # Reached only as a chain *driver* (never as an NL inner, which
        # stays on the row path); its keys must then be row-invariant.
        node.bx_keys = compiler.compile_many(node.key_exprs, frozenset())
        node.bx_filter = compiler.compile_filter(
            node.filter_conjuncts, frozenset({node.entry_id}))
        return

    if isinstance(node, (p.TableScanNode, p.IndexRangeScanNode,
                         p.IndexOrderedScanNode)):
        node.bx_filter = compiler.compile_filter(
            node.filter_conjuncts, frozenset({node.entry_id}))
        return

    raise BatchUnsupported(f"plan node {type(node).__name__}")
