"""Compilation of resolved expressions into Python closures.

This is the runtime analog of MySQL's ``Item`` evaluation.  Each resolved
expression compiles to a function of the execution context (a list indexed
by table-entry id holding each entry's current row tuple, or ``None`` for
a null-extended outer-join row).

SQL three-valued logic is represented with Python ``True`` / ``False`` /
``None``; a predicate passes a filter only when it evaluates to ``True``.

Aggregate and window calls must have been rewritten into column references
on the block's aggregation/window pseudo-entries before compilation — the
plan-refinement phase guarantees that — so encountering one here is an
internal error.
"""

from __future__ import annotations

import datetime
import math
import re
from typing import Callable, Dict, List, Optional

from repro.errors import ExecutionError
from repro.mysql_types import Interval
from repro.sql import ast

CompiledExpr = Callable[[list], object]


def is_true(value) -> bool:
    """SQL filter semantics: only TRUE passes; NULL and FALSE do not."""
    return value is True


class ExpressionCompiler:
    """Compiles expressions; subquery expressions need a subplan executor.

    ``subplan_runner(block, ctx)`` must return an iterator of projected
    output tuples for a subquery block evaluated under the given context
    (so that correlated references read the outer rows).  The compiler
    memoizes subquery results keyed by the values of their correlation
    sources, mirroring MySQL's subquery result caching.
    """

    def __init__(self, subplan_host=None) -> None:
        #: An object exposing ``current_runtime`` and
        #: ``run_block(block, runtime) -> iterator of tuples`` (the
        #: Executor).  Only needed when compiling subquery expressions.
        self._subplan_host = subplan_host

    # -- public API -------------------------------------------------------------

    def compile(self, expr: ast.Expr) -> CompiledExpr:
        method = getattr(self, "_compile_" + type(expr).__name__, None)
        if method is None:
            raise ExecutionError(
                f"cannot compile expression node {type(expr).__name__}")
        return method(expr)

    def compile_many(self, exprs: List[ast.Expr]) -> List[CompiledExpr]:
        return [self.compile(expr) for expr in exprs]

    def compile_filter(self, conjuncts: List[ast.Expr]) -> CompiledExpr:
        """Compile a conjunct list into a single TRUE/FALSE/None check."""
        compiled = self.compile_many(conjuncts)
        if not compiled:
            return lambda ctx: True
        if len(compiled) == 1:
            return compiled[0]

        def evaluate(ctx):
            for fn in compiled:
                if fn(ctx) is not True:
                    return False
            return True

        return evaluate

    # -- leaves ------------------------------------------------------------------

    def _compile_Literal(self, expr: ast.Literal) -> CompiledExpr:
        value = expr.value
        return lambda ctx: value

    def _compile_IntervalLiteral(self, expr: ast.IntervalLiteral
                                 ) -> CompiledExpr:
        interval = expr.interval
        return lambda ctx: interval

    def _compile_ColumnRef(self, expr: ast.ColumnRef) -> CompiledExpr:
        entry_id = expr.entry_id
        position = expr.position
        if entry_id is None or position is None:
            raise ExecutionError(
                f"unresolved column reference {expr.display!r}")

        def read(ctx):
            row = ctx[entry_id]
            return row[position] if row is not None else None

        return read

    # -- arithmetic and comparison --------------------------------------------------

    def _compile_BinaryExpr(self, expr: ast.BinaryExpr) -> CompiledExpr:
        op = expr.op
        if op is ast.BinOp.AND:
            left = self.compile(expr.left)
            right = self.compile(expr.right)

            def and_eval(ctx):
                lhs = left(ctx)
                if lhs is False:
                    return False
                rhs = right(ctx)
                if rhs is False:
                    return False
                if lhs is None or rhs is None:
                    return None
                return True

            return and_eval
        if op is ast.BinOp.OR:
            left = self.compile(expr.left)
            right = self.compile(expr.right)

            def or_eval(ctx):
                lhs = left(ctx)
                if lhs is True:
                    return True
                rhs = right(ctx)
                if rhs is True:
                    return True
                if lhs is None or rhs is None:
                    return None
                return False

            return or_eval
        left = self.compile(expr.left)
        right = self.compile(expr.right)
        if op in ast.COMPARISON_OPS:
            return _comparison(op, left, right)
        return _arithmetic(op, left, right)

    def _compile_NotExpr(self, expr: ast.NotExpr) -> CompiledExpr:
        operand = self.compile(expr.operand)

        def not_eval(ctx):
            value = operand(ctx)
            if value is None:
                return None
            return not value

        return not_eval

    def _compile_NegExpr(self, expr: ast.NegExpr) -> CompiledExpr:
        operand = self.compile(expr.operand)

        def neg(ctx):
            value = operand(ctx)
            return None if value is None else -value

        return neg

    def _compile_IsNullExpr(self, expr: ast.IsNullExpr) -> CompiledExpr:
        operand = self.compile(expr.operand)
        if expr.negated:
            return lambda ctx: operand(ctx) is not None
        return lambda ctx: operand(ctx) is None

    def _compile_BetweenExpr(self, expr: ast.BetweenExpr) -> CompiledExpr:
        operand = self.compile(expr.operand)
        low = self.compile(expr.low)
        high = self.compile(expr.high)
        negated = expr.negated

        def between(ctx):
            value = operand(ctx)
            lo = low(ctx)
            hi = high(ctx)
            if value is None or lo is None or hi is None:
                return None
            result = lo <= value <= hi
            return (not result) if negated else result

        return between

    def _compile_LikeExpr(self, expr: ast.LikeExpr) -> CompiledExpr:
        operand = self.compile(expr.operand)
        pattern = self.compile(expr.pattern)
        negated = expr.negated

        def like(ctx):
            value = operand(ctx)
            pat = pattern(ctx)
            if value is None or pat is None:
                return None
            result = like_regex(pat).match(str(value)) is not None
            return (not result) if negated else result

        return like

    def _compile_InListExpr(self, expr: ast.InListExpr) -> CompiledExpr:
        operand = self.compile(expr.operand)
        items = self.compile_many(expr.items)
        negated = expr.negated
        constant_items = all(isinstance(item, ast.Literal)
                             for item in expr.items)
        if constant_items:
            values = {item.value for item in expr.items
                      if item.value is not None}
            has_null = any(item.value is None for item in expr.items)

            def in_const(ctx):
                value = operand(ctx)
                if value is None:
                    return None
                found = value in values
                if not found and has_null:
                    return None
                return (not found) if negated else found

            return in_const

        def in_list(ctx):
            value = operand(ctx)
            if value is None:
                return None
            saw_null = False
            for item in items:
                candidate = item(ctx)
                if candidate is None:
                    saw_null = True
                elif candidate == value:
                    return False if negated else True
            if saw_null:
                return None
            return True if negated else False

        return in_list

    def _compile_CaseExpr(self, expr: ast.CaseExpr) -> CompiledExpr:
        whens = [(self.compile(cond), self.compile(value))
                 for cond, value in expr.whens]
        else_value = (self.compile(expr.else_value)
                      if expr.else_value is not None else None)

        def case(ctx):
            for cond, value in whens:
                if cond(ctx) is True:
                    return value(ctx)
            return else_value(ctx) if else_value is not None else None

        return case

    def _compile_GroupingCall(self, expr: ast.GroupingCall) -> CompiledExpr:
        # Plain GROUP BY (no ROLLUP) never produces super-aggregate rows,
        # so GROUPING(col) is always 0 — the single-column support the
        # paper added for TPC-DS (Section 4.1).
        return lambda ctx: 0

    # -- subqueries ----------------------------------------------------------------

    def _subplan(self, block) -> Callable:
        if self._subplan_host is None:
            raise ExecutionError(
                "subquery evaluation requires an executor-backed compiler")
        host = self._subplan_host
        from repro.sql.blocks import correlation_sources

        sources = correlation_sources(block)
        block_id = block.block_id

        def run(ctx) -> list:
            runtime = host.current_runtime
            key = (block_id,) + tuple(ctx[entry_id] for entry_id in sources)
            cache = runtime.subquery_cache
            rows = cache.get(key)
            if rows is None:
                rows = list(host.run_block(block, runtime))
                cache[key] = rows
            return rows

        return run

    def _compile_ScalarSubquery(self, expr: ast.ScalarSubquery
                                ) -> CompiledExpr:
        run = self._subplan(expr.block)

        def scalar(ctx):
            rows = run(ctx)
            if not rows:
                return None
            if len(rows) > 1:
                raise ExecutionError("scalar subquery returned >1 row")
            return rows[0][0]

        return scalar

    def _compile_InSubqueryExpr(self, expr: ast.InSubqueryExpr
                                ) -> CompiledExpr:
        run = self._subplan(expr.block)
        operand = self.compile(expr.operand)
        negated = expr.negated

        def in_subquery(ctx):
            value = operand(ctx)
            if value is None:
                return None
            found = False
            saw_null = False
            for row in run(ctx):
                candidate = row[0]
                if candidate is None:
                    saw_null = True
                elif candidate == value:
                    found = True
                    break
            if found:
                return False if negated else True
            if saw_null:
                return None
            return True if negated else False

        return in_subquery

    def _compile_ExistsExpr(self, expr: ast.ExistsExpr) -> CompiledExpr:
        run = self._subplan(expr.block)
        negated = expr.negated

        def exists(ctx):
            found = bool(run(ctx))
            return (not found) if negated else found

        return exists

    # -- functions ------------------------------------------------------------------

    def _compile_FuncCall(self, expr: ast.FuncCall) -> CompiledExpr:
        args = self.compile_many(expr.args)
        name = expr.name
        if name.startswith("CAST_"):
            return _compile_cast(name[5:], args[0])
        if name.startswith("EXTRACT_"):
            return _compile_extract(name[8:], args[0])
        builder = _FUNCTIONS.get(name)
        if builder is None:
            raise ExecutionError(f"unknown function {name!r}")
        return builder(args)

    def _compile_AggCall(self, expr: ast.AggCall) -> CompiledExpr:
        raise ExecutionError(
            "aggregate call reached the expression compiler; plan "
            "refinement should have rewritten it")

    def _compile_WindowCall(self, expr: ast.WindowCall) -> CompiledExpr:
        raise ExecutionError(
            "window call reached the expression compiler; plan "
            "refinement should have rewritten it")

    def _compile_Star(self, expr: ast.Star) -> CompiledExpr:
        raise ExecutionError("* must be expanded during resolution")


# ---------------------------------------------------------------------------
# Operator helpers
# ---------------------------------------------------------------------------

def _comparison(op: ast.BinOp, left: CompiledExpr,
                right: CompiledExpr) -> CompiledExpr:
    import operator as _op

    table = {
        ast.BinOp.EQ: _op.eq,
        ast.BinOp.NE: _op.ne,
        ast.BinOp.LT: _op.lt,
        ast.BinOp.LE: _op.le,
        ast.BinOp.GT: _op.gt,
        ast.BinOp.GE: _op.ge,
    }
    compare = table[op]

    def evaluate(ctx):
        lhs = left(ctx)
        if lhs is None:
            return None
        rhs = right(ctx)
        if rhs is None:
            return None
        return compare(lhs, rhs)

    return evaluate


def arith_add(lhs, rhs):
    """``lhs + rhs`` with SQL date/interval semantics (non-NULL inputs).

    Shared by the row interpreter and the batch expression compiler so
    both engines agree bit-for-bit on arithmetic results.
    """
    if isinstance(rhs, Interval):
        if not isinstance(lhs, datetime.date):
            raise ExecutionError("interval arithmetic needs a date")
        return rhs.add_to(lhs)
    if isinstance(lhs, datetime.date) and isinstance(rhs, int):
        return lhs + datetime.timedelta(days=rhs)
    return lhs + rhs


def arith_sub(lhs, rhs):
    """``lhs - rhs`` with SQL date/interval semantics (non-NULL inputs)."""
    if isinstance(rhs, Interval):
        if not isinstance(lhs, datetime.date):
            raise ExecutionError("interval arithmetic needs a date")
        return rhs.negate().add_to(lhs)
    if isinstance(lhs, datetime.date) and isinstance(rhs, datetime.date):
        return (lhs - rhs).days
    if isinstance(lhs, datetime.date) and isinstance(rhs, int):
        return lhs - datetime.timedelta(days=rhs)
    return lhs - rhs


def _arithmetic(op: ast.BinOp, left: CompiledExpr,
                right: CompiledExpr) -> CompiledExpr:
    def evaluate(ctx):
        lhs = left(ctx)
        if lhs is None:
            return None
        rhs = right(ctx)
        if rhs is None:
            return None
        if op is ast.BinOp.ADD:
            return arith_add(lhs, rhs)
        if op is ast.BinOp.SUB:
            return arith_sub(lhs, rhs)
        if op is ast.BinOp.MUL:
            return lhs * rhs
        if op is ast.BinOp.DIV:
            return None if rhs == 0 else lhs / rhs
        if op is ast.BinOp.MOD:
            return None if rhs == 0 else lhs % rhs
        raise ExecutionError(f"bad arithmetic operator {op}")

    return evaluate


def _like_to_regex(pattern: str) -> re.Pattern:
    parts: List[str] = []
    for ch in pattern:
        if ch == "%":
            parts.append(".*")
        elif ch == "_":
            parts.append(".")
        else:
            parts.append(re.escape(ch))
    return re.compile("".join(parts) + r"\Z", re.DOTALL)


_LIKE_REGEX_CACHE: Dict[str, re.Pattern] = {}


def like_regex(pattern: str) -> re.Pattern:
    """Cached compiled regex for a LIKE pattern (shared by both engines)."""
    regex = _LIKE_REGEX_CACHE.get(pattern)
    if regex is None:
        regex = _like_to_regex(pattern)
        _LIKE_REGEX_CACHE[pattern] = regex
    return regex


def cast_value(target: str, value):
    """CAST a non-NULL value (shared by both engines)."""
    if target == "DATE":
        if isinstance(value, datetime.datetime):
            return value.date()
        if isinstance(value, datetime.date):
            return value
        return datetime.date.fromisoformat(str(value))
    if target in ("SIGNED", "UNSIGNED", "INTEGER", "INT"):
        return int(value)
    if target in ("DOUBLE", "FLOAT", "DECIMAL"):
        return float(value)
    if target in ("CHAR", "VARCHAR"):
        return str(value)
    raise ExecutionError(f"unsupported CAST target {target}")


def extract_value(unit: str, value):
    """EXTRACT a date part from a non-NULL value (shared by both engines)."""
    if unit == "YEAR":
        return value.year
    if unit == "MONTH":
        return value.month
    if unit == "DAY":
        return value.day
    if unit == "QUARTER":
        return (value.month - 1) // 3 + 1
    if unit == "WEEK":
        return value.isocalendar()[1]
    raise ExecutionError(f"unsupported EXTRACT unit {unit}")


def _compile_cast(target: str, arg: CompiledExpr) -> CompiledExpr:
    def cast(ctx):
        value = arg(ctx)
        if value is None:
            return None
        return cast_value(target, value)

    return cast


def _compile_extract(unit: str, arg: CompiledExpr) -> CompiledExpr:
    def extract(ctx):
        value = arg(ctx)
        if value is None:
            return None
        return extract_value(unit, value)

    return extract


def _null_guard(fn):
    """Wrap an n-ary Python function with NULL-in/NULL-out semantics."""

    def build(args: List[CompiledExpr]) -> CompiledExpr:
        def evaluate(ctx):
            values = [arg(ctx) for arg in args]
            if any(value is None for value in values):
                return None
            return fn(*values)

        return evaluate

    return build


def _build_coalesce(args: List[CompiledExpr]) -> CompiledExpr:
    def coalesce(ctx):
        for arg in args:
            value = arg(ctx)
            if value is not None:
                return value
        return None

    return coalesce


def _substring(value, start, length=None):
    start_index = max(0, int(start) - 1)
    text = str(value)
    if length is None:
        return text[start_index:]
    return text[start_index:start_index + int(length)]


#: Raw scalar implementations, NULL-in/NULL-out applied by the caller.
#: Both the row interpreter (via :func:`_null_guard`) and the batch
#: expression compiler (inline NULL checks in generated code) call these,
#: so the two engines cannot drift apart on function semantics.
RAW_SCALARS = {
    "CONCAT": lambda *parts: "".join(str(p) for p in parts),
    "UPPER": lambda s: str(s).upper(),
    "LOWER": lambda s: str(s).lower(),
    "LENGTH": lambda s: len(str(s)),
    "TRIM": lambda s: str(s).strip(),
    "LTRIM": lambda s: str(s).lstrip(),
    "RTRIM": lambda s: str(s).rstrip(),
    "ABS": abs,
    "ROUND": lambda v, digits=0: round(v, int(digits)),
    "FLOOR": math.floor,
    "CEIL": math.ceil,
    "CEILING": math.ceil,
    "SQRT": math.sqrt,
    "MOD": lambda a, b: None if b == 0 else a % b,
    "POWER": lambda a, b: a ** b,
    "SUBSTRING": _substring,
    "SUBSTR": _substring,
    "YEAR": lambda d: d.year,
    "MONTH": lambda d: d.month,
    "DAYOFMONTH": lambda d: d.day,
    "DAYOFWEEK": lambda d: d.isoweekday() % 7 + 1,
    "NULLIF": lambda a, b: None if a == b else a,
    "GREATEST": max,
    "LEAST": min,
}

_FUNCTIONS = {name: _null_guard(fn) for name, fn in RAW_SCALARS.items()}
_FUNCTIONS["COALESCE"] = _build_coalesce
_FUNCTIONS["IFNULL"] = _build_coalesce
