"""Morsel-driven parallel execution over the column store.

One :class:`ParallelContext` exists per batch-mode execution that
requested more than one worker.  Leaf table scans are split into
*morsels* — one column-store chunk each, so a morsel is exactly one
RowBatch — and dispatched dynamically to a small worker pool: each
worker pulls the next unclaimed chunk index from a shared dispenser
(classic morsel-driven work stealing, so a slow morsel never stalls the
others behind a static partition).  Three operator shapes run this way:

* **scan** — workers apply the scan's compiled filter mask to their
  chunks; the parent re-emits surviving batches *in chunk order*;
* **pre-aggregation** — workers compute per-chunk, per-key partial
  aggregate states; the parent folds them in chunk order through
  ``_Accumulator.fold_partial``, replaying the serial float fold order
  exactly, so results are bit-identical to a serial run;
* **hash-join build** — workers build per-chunk key→rows fragments;
  the parent concatenates buckets in chunk order, preserving the serial
  build table's bucket row order.

Everything nondeterministic (which worker got which morsel, completion
order) is erased at the merge: results are keyed by chunk index and
folded in ascending index order.

Backends
--------

``fork`` (default) uses ``os.fork`` + a pipe per worker: compiled batch
expressions are closures and cannot be pickled, but a forked child
inherits them for free; only plain result tuples travel back through
the pipe.  ``thread`` uses ordinary threads — portable (and what
``fork``-less platforms degrade to) but GIL-bound, so it demonstrates
the machinery rather than a speedup.

Governance
----------

Workers run a governor checkpoint per morsel, so deadlines and
cancellations abort mid-operator; the deadline clock
(``time.perf_counter``) is system-wide and a :class:`CancelToken` is
backed by fork-inheritable shared memory once parallel execution is
requested.  A governor abort inside a forked worker is shipped back as
a typed tuple and re-raised in the parent as the *same* exception type,
so abort classification (deadline / cancelled / memory) is identical to
serial execution.  Memory charging stays in the parent's merge loop —
charging from two processes would double-count.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import threading
from typing import Callable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import (
    DeadlineExceededError,
    ExecutionError,
    ResourceExhaustedError,
    StatementCancelledError,
)
from repro.executor.batch import RowBatch
from repro.governor import BUCKET_OVERHEAD_BYTES, approx_row_bytes

#: Backends a :class:`ParallelContext` accepts.
PARALLEL_BACKENDS = ("fork", "thread")

#: Tables smaller than this stay serial: the pool setup costs more than
#: the scan.  Mirrors ``DatabaseConfig.parallel_min_table_rows``.
DEFAULT_MIN_TABLE_ROWS = 2048

#: Bytes read from a worker pipe per ``os.read`` call.
_PIPE_READ_SIZE = 1 << 20


class ParallelContext:
    """Per-execution parallel state: pool policy plus morsel counters."""

    def __init__(self, workers: int, backend: str = "fork",
                 min_table_rows: int = DEFAULT_MIN_TABLE_ROWS) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if backend not in PARALLEL_BACKENDS:
            raise ValueError(
                f"unknown parallel backend {backend!r}; valid choices: "
                f"{', '.join(PARALLEL_BACKENDS)}")
        self.workers = workers
        #: ``fork`` degrades to ``thread`` where fork is unavailable.
        self.backend = backend if hasattr(os, "fork") else "thread"
        self.min_table_rows = min_table_rows
        #: Chunks dispatched to workers this execution.
        self.morsels = 0
        #: Parallel operators that actually ran (0 after a batch
        #: execution means the plan had no parallel-safe shape — the
        #: facade records ``FallbackReason.EXEC_NOT_PARALLEL_SAFE``).
        self.ops = 0
        #: Largest worker count any single operator used.
        self.workers_spawned = 0

    # -- scan eligibility -------------------------------------------------------

    def _plan_scan(self, scan, runtime,
                   predicates: Sequence[tuple]) -> Optional[tuple]:
        """Zone-skip and morsel-plan one leaf scan.

        Returns ``(store, surviving_chunk_indexes)`` or None when the
        scan cannot run parallel (no column store, chunking misaligned
        with the batch size, or the table is too small to be worth a
        pool).  Charges the storage counters for *every* chunk here —
        including skipped ones — exactly as the serial scan does.
        """
        storage = runtime.storage
        store = storage.store(scan.table_name)
        if store is None or store.chunk_size != runtime.batch_size:
            return None
        if store.row_count < self.min_table_rows \
                or len(store.chunks) < 2:
            return None
        counters = storage.counters
        survivors: List[int] = []
        for index, chunk in enumerate(store.chunks):
            counters.rows_scanned += len(chunk.rows)
            if predicates and chunk.can_skip(predicates):
                counters.chunks_skipped += 1
            else:
                survivors.append(index)
        return store, survivors

    def _note_op(self, n_morsels: int, *nodes) -> int:
        """Account one parallel operator; returns its worker count."""
        n_workers = min(self.workers, max(1, n_morsels))
        self.morsels += n_morsels
        self.ops += 1
        if n_workers > self.workers_spawned:
            self.workers_spawned = n_workers
        for node in nodes:
            node.px_workers = max(node.px_workers, n_workers)
        return n_workers

    # -- operator shapes --------------------------------------------------------

    def scan_batches(self, scan, runtime,
                     predicates: Sequence[tuple]
                     ) -> Optional[Iterator[RowBatch]]:
        """Parallel filtered leaf scan; None when not eligible."""
        planned = self._plan_scan(scan, runtime, predicates)
        if planned is None:
            return None
        store, survivors = planned
        return self._scan_iter(scan, runtime, store, survivors)

    def _scan_iter(self, scan, runtime, store,
                   survivors: List[int]) -> Iterator[RowBatch]:
        scan.actual_loops += 1
        if runtime.injector is not None:
            runtime.injector.fire("scan_io")
        n_workers = self._note_op(len(survivors), scan)
        chunks = store.chunks
        entry_id = scan.entry_id
        mask_fn = scan.bx_filter

        def task(index: int) -> list:
            rows = chunks[index].rows
            batch = RowBatch({entry_id: rows}, len(rows))
            batch = batch.filter_true(mask_fn(batch))
            return batch.columns[entry_id] if batch.length else []

        for rows in self._run_morsels(runtime, survivors, task, n_workers):
            if rows:
                yield scan._note(runtime,
                                 RowBatch({entry_id: rows}, len(rows)))

    def agg_merge(self, agg, scan, runtime, accumulator_cls,
                  charge: bool = True) -> Optional[tuple]:
        """Parallel pre-aggregation over a leaf scan.

        Workers return ``(kept_rows, [(key, [per-spec partials])])`` per
        chunk with keys in first-seen order; the parent replays the
        serial hash-aggregate loop from those partials in chunk order —
        same group creation order, same float fold order, same per-batch
        governor charges.  Returns ``(groups, order, charged)`` or None
        when the scan is not eligible.
        """
        planned = self._plan_scan(scan, runtime, scan.zone_predicates())
        if planned is None:
            return None
        store, survivors = planned
        scan.actual_loops += 1
        if runtime.injector is not None:
            runtime.injector.fire("scan_io")
        n_workers = self._note_op(len(survivors), agg, scan)
        chunks = store.chunks
        entry_id = scan.entry_id
        mask_fn = scan.bx_filter
        specs = agg.specs
        bx_group = agg.bx_group
        bx_args = agg.bx_args
        partial_of = accumulator_cls.partial_of

        def task(index: int) -> tuple:
            rows = chunks[index].rows
            batch = RowBatch({entry_id: rows}, len(rows))
            if mask_fn is not None:
                batch = batch.filter_true(mask_fn(batch))
            length = batch.length
            if not length:
                return 0, []
            group_cols = [fn(batch) for fn in bx_group]
            arg_cols = [fn(batch) if fn is not None else None
                        for fn in bx_args]
            if group_cols:
                keys = list(zip(*group_cols))
            else:
                keys = [()] * length
            index_map: dict = {}
            batch_order: List[tuple] = []
            for i, key in enumerate(keys):
                idxs = index_map.get(key)
                if idxs is None:
                    index_map[key] = [i]
                    batch_order.append(key)
                else:
                    idxs.append(i)
            merged = []
            for key in batch_order:
                idxs = index_map[key]
                whole = len(idxs) == length
                partials = []
                for spec, column in zip(specs, arg_cols):
                    if column is None:  # COUNT(*)
                        partials.append(len(idxs))
                    elif whole:
                        partials.append(partial_of(spec, column))
                    else:
                        partials.append(partial_of(
                            spec, [column[i] for i in idxs]))
                merged.append((key, partials))
            return length, merged

        results = self._run_morsels(runtime, survivors, task, n_workers)
        groups: dict = {}
        order: List[tuple] = []
        gov = runtime.governor
        group_bytes = 0
        charged = 0
        try:
            for length, merged in results:
                if length:
                    scan.actual_batches += 1
                    scan.actual_rows += length
                    runtime.note_counts(length)
                created = 0
                for key, partials in merged:
                    accumulators = groups.get(key)
                    if accumulators is None:
                        accumulators = [accumulator_cls(spec)
                                        for spec in specs]
                        groups[key] = accumulators
                        order.append(key)
                        created += 1
                    for accumulator, partial in zip(accumulators,
                                                    partials):
                        accumulator.fold_partial(partial)
                if charge and gov is not None and created:
                    if group_bytes == 0:
                        group_bytes = agg._group_bytes(order[0])
                    delta = created * group_bytes
                    gov.charge(delta, "hash_agg")
                    charged += delta
        except BaseException:
            if gov is not None and charged:
                gov.release(charged)
            raise
        return groups, order, charged

    def join_build(self, join, scan, runtime) -> Optional[tuple]:
        """Parallel (partitioned) hash-join build over a leaf scan.

        Workers return per-chunk ``{key: [saved rows]}`` fragments; the
        parent extends buckets in chunk order, so every bucket holds its
        rows in exactly the order a serial build inserted them.
        Returns ``(table, charged_bytes)`` or None when not eligible.
        """
        planned = self._plan_scan(scan, runtime, scan.zone_predicates())
        if planned is None:
            return None
        store, survivors = planned
        scan.actual_loops += 1
        if runtime.injector is not None:
            runtime.injector.fire("scan_io")
        n_workers = self._note_op(len(survivors), join, scan)
        chunks = store.chunks
        entry_id = scan.entry_id
        mask_fn = scan.bx_filter
        build_entries = join._build_entries
        bx_build_keys = join.bx_build_keys
        single_key = len(bx_build_keys) == 1

        def task(index: int) -> tuple:
            rows = chunks[index].rows
            batch = RowBatch({entry_id: rows}, len(rows))
            if mask_fn is not None:
                batch = batch.filter_true(mask_fn(batch))
            length = batch.length
            if not length:
                return 0, None, []
            key_cols = [fn(batch) for fn in bx_build_keys]
            saved_cols = [batch.columns[e] for e in build_entries]
            sample = tuple(col[0] for col in saved_cols) \
                if saved_cols else ()
            saved_rows = zip(*saved_cols) if saved_cols \
                else iter([()] * length)
            fragment: dict = {}
            setdefault = fragment.setdefault
            if single_key:
                for key, saved in zip(key_cols[0], saved_rows):
                    if key is not None:
                        setdefault(key, []).append(saved)
            else:
                build_keys = zip(*key_cols) if key_cols \
                    else iter([()] * length)
                for key, saved in zip(build_keys, saved_rows):
                    if None not in key:
                        setdefault(key, []).append(saved)
            return length, sample, list(fragment.items())

        results = self._run_morsels(runtime, survivors, task, n_workers)
        table: dict = {}
        gov = runtime.governor
        charged = 0
        row_bytes = 0
        try:
            for length, sample, items in results:
                if not length:
                    continue
                scan.actual_batches += 1
                scan.actual_rows += length
                runtime.note_counts(length)
                for key, saved_list in items:
                    bucket = table.get(key)
                    if bucket is None:
                        table[key] = saved_list
                    else:
                        bucket.extend(saved_list)
                if gov is not None:
                    # Same sampling as the serial build: the first
                    # non-empty batch's first saved row, in chunk order.
                    if row_bytes == 0:
                        row_bytes = approx_row_bytes(sample) \
                            + BUCKET_OVERHEAD_BYTES
                    delta = length * row_bytes
                    gov.charge(delta, "hash_join_build")
                    charged += delta
        except BaseException:
            if gov is not None and charged:
                gov.release(charged)
            raise
        return table, charged

    # -- dispatch ---------------------------------------------------------------

    def _run_morsels(self, runtime, indices: List[int],
                     task: Callable[[int], object],
                     n_workers: int) -> List[object]:
        """Run ``task`` over every chunk index; results in index order.

        Dispatch is dynamic (a shared next-morsel dispenser) but the
        returned list is ordered like ``indices``, so every downstream
        merge is deterministic regardless of scheduling."""
        if n_workers <= 1 or len(indices) <= 1:
            # Degenerate pool: run inline (still a parallel operator for
            # accounting — eligibility, zone skips, and merges behaved
            # identically, there was just nothing to overlap).
            governor = runtime.governor
            results = []
            for index in indices:
                if governor is not None:
                    governor.checkpoint(stage="parallel")
                results.append(task(index))
            return results
        if self.backend == "fork":
            return self._fork_map(runtime, indices, task, n_workers)
        return self._thread_map(runtime, indices, task, n_workers)

    def _thread_map(self, runtime, indices: List[int],
                    task: Callable[[int], object],
                    n_workers: int) -> List[object]:
        governor = runtime.governor
        next_slot = [0]
        lock = threading.Lock()
        results: List[object] = [None] * len(indices)
        failures: List[BaseException] = []

        def worker_loop() -> None:
            while True:
                with lock:
                    if failures:
                        return
                    slot = next_slot[0]
                    if slot >= len(indices):
                        return
                    next_slot[0] = slot + 1
                try:
                    if governor is not None:
                        governor.checkpoint(stage="parallel")
                    results[slot] = task(indices[slot])
                except BaseException as exc:  # noqa: BLE001 — shipped
                    with lock:
                        failures.append(exc)
                    return

        threads = [threading.Thread(target=worker_loop)
                   for __ in range(n_workers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if failures:
            raise failures[0]
        return results

    def _fork_map(self, runtime, indices: List[int],
                  task: Callable[[int], object],
                  n_workers: int) -> List[object]:
        governor = runtime.governor
        if governor is not None:
            # Back the cancel flag with fork-inheritable shared memory
            # *before* forking, so a parent-side cancel() lands in the
            # children's next checkpoint.
            governor.cancel_token.enable_cross_process()
        mp = multiprocessing.get_context("fork")
        dispenser = mp.RawValue("l", 0)
        lock = mp.Lock()
        pipes: List[int] = []
        pids: List[int] = []
        payloads: List[bytes] = []
        try:
            for __ in range(n_workers):
                read_fd, write_fd = os.pipe()
                pid = os.fork()
                if pid == 0:
                    # Child: compute, write one pickled payload, and
                    # _exit without ever returning into the caller's
                    # generator stack.
                    status = 0
                    try:
                        os.close(read_fd)
                        payload = pickle.dumps(
                            _worker_payload(indices, dispenser, lock,
                                            task, governor),
                            pickle.HIGHEST_PROTOCOL)
                        _write_all(write_fd, payload)
                        os.close(write_fd)
                    except BaseException:  # noqa: BLE001 — exit status
                        status = 1
                    finally:
                        os._exit(status)
                os.close(write_fd)
                pids.append(pid)
                pipes.append(read_fd)
            # Read every pipe to EOF before reaping: a child blocked on
            # a full pipe finishes as soon as its turn to be read comes.
            for read_fd in pipes:
                payloads.append(_read_all(read_fd))
        finally:
            for read_fd in pipes:
                try:
                    os.close(read_fd)
                except OSError:
                    pass
            for pid in pids:
                try:
                    os.waitpid(pid, 0)
                except ChildProcessError:
                    pass
        results: List[object] = [None] * len(indices)
        errors: List[tuple] = []
        for payload in payloads:
            if not payload:
                errors.append(("generic", "WorkerExit",
                               "morsel worker exited before reporting"))
                continue
            worker_results, error = pickle.loads(payload)
            for slot, value in worker_results:
                results[slot] = value
            if error is not None:
                errors.append(error)
        if errors:
            raise _decode_error(_pick_error(errors))
        return results


def _worker_payload(indices: List[int], dispenser, lock,
                    task: Callable[[int], object],
                    governor) -> tuple:
    """One forked worker's whole run: pull morsels until the dispenser
    is empty or a bound trips; returns ``([(slot, result), ...], error)``
    with the error already encoded for transport."""
    results: List[Tuple[int, object]] = []
    error: Optional[tuple] = None
    total = len(indices)
    while error is None:
        with lock:
            slot = dispenser.value
            if slot >= total:
                break
            dispenser.value = slot + 1
        try:
            if governor is not None:
                governor.checkpoint(stage="parallel")
            results.append((slot, task(indices[slot])))
        except BaseException as exc:  # noqa: BLE001 — shipped typed
            error = _encode_error(exc)
    return results, error


def _encode_error(exc: BaseException) -> tuple:
    """Flatten a worker exception into a picklable typed tuple.

    Governor errors have multi-argument constructors, so a naive pickle
    of the exception would not survive the trip; their state is carried
    explicitly and rebuilt with the proper constructor in the parent."""
    if isinstance(exc, StatementCancelledError):
        return ("cancel", exc.reason, exc.stage)
    if isinstance(exc, DeadlineExceededError):
        return ("deadline", exc.elapsed, exc.budget, exc.stage)
    if isinstance(exc, ResourceExhaustedError):
        return ("mem", exc.operator, exc.tracked_bytes, exc.limit_bytes)
    return ("generic", type(exc).__name__, str(exc))


def _decode_error(encoded: tuple) -> BaseException:
    kind = encoded[0]
    if kind == "cancel":
        return StatementCancelledError(encoded[1], encoded[2])
    if kind == "deadline":
        return DeadlineExceededError(encoded[1], encoded[2], encoded[3])
    if kind == "mem":
        return ResourceExhaustedError(encoded[1], encoded[2], encoded[3])
    return ExecutionError(
        f"parallel worker failed: {encoded[1]}: {encoded[2]}")


#: Abort precedence when several workers failed: an explicit cancel is
#: never misreported as a timeout (same rule as the governor itself),
#: and typed governor aborts beat generic worker errors.
_ERROR_PRIORITY = {"cancel": 0, "deadline": 1, "mem": 2, "generic": 3}


def _pick_error(errors: List[tuple]) -> tuple:
    return min(errors, key=lambda error: _ERROR_PRIORITY[error[0]])


def _write_all(fd: int, data: bytes) -> None:
    view = memoryview(data)
    while view:
        written = os.write(fd, view)
        view = view[written:]


def _read_all(fd: int) -> bytes:
    parts: List[bytes] = []
    while True:
        part = os.read(fd, _PIPE_READ_SIZE)
        if not part:
            return b"".join(parts)
        parts.append(part)
