"""Morsel-driven parallel execution over the column store.

One :class:`ParallelContext` exists per batch-mode execution that
requested more than one worker.  Leaf table scans are split into
*morsels* — one column-store chunk each, so a morsel is exactly one
RowBatch — and dispatched dynamically to a small worker pool: each
worker pulls the next unclaimed chunk index from a shared dispenser
(classic morsel-driven work stealing, so a slow morsel never stalls the
others behind a static partition).  Three operator shapes run this way:

* **scan** — workers apply the scan's compiled filter mask to their
  chunks; the parent re-emits surviving batches *in chunk order*;
* **pre-aggregation** — workers compute per-chunk, per-key partial
  aggregate states; the parent folds them in chunk order through
  ``_Accumulator.fold_partial``, replaying the serial float fold order
  exactly, so results are bit-identical to a serial run;
* **hash-join build** — workers build per-chunk key→rows fragments;
  the parent concatenates buckets in chunk order, preserving the serial
  build table's bucket row order.

Everything nondeterministic (which worker got which morsel, completion
order) is erased at the merge: results are keyed by chunk index and
folded in ascending index order.

Backends
--------

``fork`` (default) uses ``os.fork`` + a pipe per worker: compiled batch
expressions are closures and cannot be pickled, but a forked child
inherits them for free; only plain result tuples travel back through
the pipe.  ``thread`` uses ordinary threads — portable (and what
``fork``-less platforms degrade to) but GIL-bound, so it demonstrates
the machinery rather than a speedup.

Governance
----------

Workers run a governor checkpoint per morsel, so deadlines and
cancellations abort mid-operator; the deadline clock
(``time.perf_counter``) is system-wide and a :class:`CancelToken` is
backed by fork-inheritable shared memory once parallel execution is
requested.  A governor abort inside a forked worker is shipped back as
a typed tuple and re-raised in the parent as the *same* exception type,
so abort classification (deadline / cancelled / memory) is identical to
serial execution.  Memory charging stays in the parent's merge loop —
charging from two processes would double-count.

Telemetry
---------

Each worker — forked or threaded — runs a :class:`WorkerTelemetry`: a
lightweight child tracer (per-morsel records: chunk index, rows
produced, wall seconds) plus a
:class:`repro.observability.MetricsDelta`.  Forked workers pickle the
telemetry back over the existing result pipes alongside the results;
the coordinator then

* grafts one ``parallel_worker`` child span per worker under the open
  ``execute`` span (morsel/row counts, busy seconds, governor
  checkpoints, peak result bytes), so ``EXPLAIN ANALYZE`` and
  ``trace_export()`` see through the fork boundary;
* merges the counter/histogram deltas into the parent
  :class:`~repro.observability.MetricsRegistry`
  (``executor.worker_morsels`` / ``executor.worker_rows`` counters,
  per-morsel ``executor.morsel_seconds`` and per-worker
  ``executor.worker_seconds`` histograms);
* folds forked workers' governor-checkpoint counts back into the
  parent governor (thread/inline workers already share it);
* accumulates per-worker utilization (:meth:`ParallelContext.skew`,
  :meth:`ParallelContext.utilization`) for the execute-span skew
  attributes and ``db.top()``.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import sys
import threading
import time
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import (
    DeadlineExceededError,
    ExecutionError,
    ResourceExhaustedError,
    StatementCancelledError,
)
from repro.executor.batch import RowBatch
from repro.governor import BUCKET_OVERHEAD_BYTES, approx_row_bytes
from repro.observability import MetricsDelta, graft_span

#: Backends a :class:`ParallelContext` accepts.
PARALLEL_BACKENDS = ("fork", "thread")

#: Tables smaller than this stay serial: the pool setup costs more than
#: the scan.  Mirrors ``DatabaseConfig.parallel_min_table_rows``.
DEFAULT_MIN_TABLE_ROWS = 2048

#: Bytes read from a worker pipe per ``os.read`` call.
_PIPE_READ_SIZE = 1 << 20


def _count_rows(rows_of: Callable[[object], int], value: object) -> int:
    """Row count of one morsel result, for telemetry only.

    Defensive: a result shape the extractor cannot count (direct
    ``_run_morsels`` callers with scalar tasks) records 0 rows instead
    of failing the morsel — telemetry must never change execution."""
    try:
        return int(rows_of(value))
    except (TypeError, IndexError, KeyError):
        return 0


def _approx_result_bytes(value: object) -> int:
    """Size estimate of one morsel's result (one level deep, sampled).

    Same estimation philosophy as the governor's
    :func:`~repro.governor.approx_row_bytes`: a cheap deterministic
    approximation, not an allocator hook."""
    try:
        total = sys.getsizeof(value)
    except TypeError:  # pragma: no cover — exotic objects
        return 0
    if isinstance(value, (list, tuple)) and value:
        total += len(value) * approx_row_bytes(value[0])
    return total


class WorkerTelemetry:
    """One worker's child tracer + metrics delta for one operator.

    Lives inside the worker (forked process or thread), records one
    entry per morsel, and travels back to the coordinator — over the
    result pipe for forked workers — as plain picklable state.
    """

    __slots__ = ("worker_id", "morsels", "rows", "seconds",
                 "checkpoints", "peak_bytes", "records", "delta")

    def __init__(self, worker_id: int) -> None:
        self.worker_id = worker_id
        self.morsels = 0
        self.rows = 0
        self.seconds = 0.0
        #: Governor checkpoints this worker ran (shipped so forked
        #: workers' counts fold back into the parent governor).
        self.checkpoints = 0
        #: Largest single-morsel result, estimated bytes.
        self.peak_bytes = 0
        #: Per-morsel ``(chunk_index, rows, seconds)`` records.
        self.records: List[Tuple[int, int, float]] = []
        self.delta = MetricsDelta()

    def note_morsel(self, chunk_index: int, rows: int, seconds: float,
                    result_bytes: int) -> None:
        self.morsels += 1
        self.rows += rows
        self.seconds += seconds
        if result_bytes > self.peak_bytes:
            self.peak_bytes = result_bytes
        self.records.append((chunk_index, rows, seconds))
        self.delta.inc("executor.worker_morsels")
        self.delta.inc("executor.worker_rows", rows)
        self.delta.observe("executor.morsel_seconds", seconds)

    def __getstate__(self) -> tuple:
        return (self.worker_id, self.morsels, self.rows, self.seconds,
                self.checkpoints, self.peak_bytes, self.records,
                self.delta)

    def __setstate__(self, state: tuple) -> None:
        (self.worker_id, self.morsels, self.rows, self.seconds,
         self.checkpoints, self.peak_bytes, self.records,
         self.delta) = state


class ParallelContext:
    """Per-execution parallel state: pool policy plus morsel counters."""

    def __init__(self, workers: int, backend: str = "fork",
                 min_table_rows: int = DEFAULT_MIN_TABLE_ROWS,
                 tracer=None, metrics=None) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if backend not in PARALLEL_BACKENDS:
            raise ValueError(
                f"unknown parallel backend {backend!r}; valid choices: "
                f"{', '.join(PARALLEL_BACKENDS)}")
        self.workers = workers
        #: ``fork`` degrades to ``thread`` where fork is unavailable.
        self.backend = backend if hasattr(os, "fork") else "thread"
        self.min_table_rows = min_table_rows
        #: Tracer worker spans are grafted into (None / disabled = skip).
        self.tracer = tracer
        #: Parent :class:`MetricsRegistry` worker deltas merge into.
        self.metrics = metrics
        #: Chunks dispatched to workers this execution.
        self.morsels = 0
        #: Parallel operators that actually ran (0 after a batch
        #: execution means the plan had no parallel-safe shape — the
        #: facade records ``FallbackReason.EXEC_NOT_PARALLEL_SAFE``).
        self.ops = 0
        #: Largest worker count any single operator used.
        self.workers_spawned = 0
        #: Cumulative per-worker utilization across this execution's
        #: operators: worker id -> [morsels, rows, busy seconds].
        self.worker_stats: Dict[int, List[float]] = {}
        #: Every per-morsel record of this execution:
        #: ``(worker_id, chunk_index, rows, seconds)``.
        self.morsel_records: List[Tuple[int, int, int, float]] = []

    # -- scan eligibility -------------------------------------------------------

    def _plan_scan(self, scan, runtime,
                   predicates: Sequence[tuple]) -> Optional[tuple]:
        """Zone-skip and morsel-plan one leaf scan.

        Returns ``(store, surviving_chunk_indexes)`` or None when the
        scan cannot run parallel (no column store, chunking misaligned
        with the batch size, or the table is too small to be worth a
        pool).  Charges the storage counters for *every* chunk here —
        including skipped ones — exactly as the serial scan does.
        """
        storage = runtime.storage
        store = storage.store(scan.table_name)
        if store is None or store.chunk_size != runtime.batch_size:
            return None
        if store.row_count < self.min_table_rows \
                or len(store.chunks) < 2:
            return None
        counters = storage.counters
        survivors: List[int] = []
        for index, chunk in enumerate(store.chunks):
            counters.rows_scanned += len(chunk.rows)
            if predicates and chunk.can_skip(predicates):
                counters.chunks_skipped += 1
            else:
                survivors.append(index)
        return store, survivors

    def _note_op(self, n_morsels: int, *nodes) -> int:
        """Account one parallel operator; returns its worker count."""
        n_workers = min(self.workers, max(1, n_morsels))
        self.morsels += n_morsels
        self.ops += 1
        if n_workers > self.workers_spawned:
            self.workers_spawned = n_workers
        for node in nodes:
            node.px_workers = max(node.px_workers, n_workers)
        return n_workers

    # -- operator shapes --------------------------------------------------------

    def scan_batches(self, scan, runtime,
                     predicates: Sequence[tuple]
                     ) -> Optional[Iterator[RowBatch]]:
        """Parallel filtered leaf scan; None when not eligible."""
        planned = self._plan_scan(scan, runtime, predicates)
        if planned is None:
            return None
        store, survivors = planned
        return self._scan_iter(scan, runtime, store, survivors)

    def _scan_iter(self, scan, runtime, store,
                   survivors: List[int]) -> Iterator[RowBatch]:
        scan.actual_loops += 1
        if runtime.injector is not None:
            runtime.injector.fire("scan_io")
        n_workers = self._note_op(len(survivors), scan)
        chunks = store.chunks
        entry_id = scan.entry_id
        mask_fn = scan.bx_filter

        def task(index: int) -> list:
            rows = chunks[index].rows
            batch = RowBatch({entry_id: rows}, len(rows))
            batch = batch.filter_true(mask_fn(batch))
            return batch.columns[entry_id] if batch.length else []

        for rows in self._run_morsels(runtime, survivors, task, n_workers,
                                      op="scan", rows_of=len):
            if rows:
                yield scan._note(runtime,
                                 RowBatch({entry_id: rows}, len(rows)))

    def agg_merge(self, agg, scan, runtime, accumulator_cls,
                  charge: bool = True) -> Optional[tuple]:
        """Parallel pre-aggregation over a leaf scan.

        Workers return ``(kept_rows, [(key, [per-spec partials])])`` per
        chunk with keys in first-seen order; the parent replays the
        serial hash-aggregate loop from those partials in chunk order —
        same group creation order, same float fold order, same per-batch
        governor charges.  Returns ``(groups, order, charged)`` or None
        when the scan is not eligible.
        """
        planned = self._plan_scan(scan, runtime, scan.zone_predicates())
        if planned is None:
            return None
        store, survivors = planned
        scan.actual_loops += 1
        if runtime.injector is not None:
            runtime.injector.fire("scan_io")
        n_workers = self._note_op(len(survivors), agg, scan)
        chunks = store.chunks
        entry_id = scan.entry_id
        mask_fn = scan.bx_filter
        specs = agg.specs
        bx_group = agg.bx_group
        bx_args = agg.bx_args
        partial_of = accumulator_cls.partial_of

        def task(index: int) -> tuple:
            rows = chunks[index].rows
            batch = RowBatch({entry_id: rows}, len(rows))
            if mask_fn is not None:
                batch = batch.filter_true(mask_fn(batch))
            length = batch.length
            if not length:
                return 0, []
            group_cols = [fn(batch) for fn in bx_group]
            arg_cols = [fn(batch) if fn is not None else None
                        for fn in bx_args]
            if group_cols:
                keys = list(zip(*group_cols))
            else:
                keys = [()] * length
            index_map: dict = {}
            batch_order: List[tuple] = []
            for i, key in enumerate(keys):
                idxs = index_map.get(key)
                if idxs is None:
                    index_map[key] = [i]
                    batch_order.append(key)
                else:
                    idxs.append(i)
            merged = []
            for key in batch_order:
                idxs = index_map[key]
                whole = len(idxs) == length
                partials = []
                for spec, column in zip(specs, arg_cols):
                    if column is None:  # COUNT(*)
                        partials.append(len(idxs))
                    elif whole:
                        partials.append(partial_of(spec, column))
                    else:
                        partials.append(partial_of(
                            spec, [column[i] for i in idxs]))
                merged.append((key, partials))
            return length, merged

        results = self._run_morsels(runtime, survivors, task, n_workers,
                                    op="agg_build",
                                    rows_of=lambda r: r[0])
        groups: dict = {}
        order: List[tuple] = []
        gov = runtime.governor
        group_bytes = 0
        charged = 0
        try:
            for length, merged in results:
                if length:
                    scan.actual_batches += 1
                    scan.actual_rows += length
                    runtime.note_counts(length)
                created = 0
                for key, partials in merged:
                    accumulators = groups.get(key)
                    if accumulators is None:
                        accumulators = [accumulator_cls(spec)
                                        for spec in specs]
                        groups[key] = accumulators
                        order.append(key)
                        created += 1
                    for accumulator, partial in zip(accumulators,
                                                    partials):
                        accumulator.fold_partial(partial)
                if charge and gov is not None and created:
                    if group_bytes == 0:
                        group_bytes = agg._group_bytes(order[0])
                    delta = created * group_bytes
                    gov.charge(delta, "hash_agg")
                    charged += delta
        except BaseException:
            if gov is not None and charged:
                gov.release(charged)
            raise
        return groups, order, charged

    def join_build(self, join, scan, runtime) -> Optional[tuple]:
        """Parallel (partitioned) hash-join build over a leaf scan.

        Workers return per-chunk ``{key: [saved rows]}`` fragments; the
        parent extends buckets in chunk order, so every bucket holds its
        rows in exactly the order a serial build inserted them.
        Returns ``(table, charged_bytes)`` or None when not eligible.
        """
        planned = self._plan_scan(scan, runtime, scan.zone_predicates())
        if planned is None:
            return None
        store, survivors = planned
        scan.actual_loops += 1
        if runtime.injector is not None:
            runtime.injector.fire("scan_io")
        n_workers = self._note_op(len(survivors), join, scan)
        chunks = store.chunks
        entry_id = scan.entry_id
        mask_fn = scan.bx_filter
        build_entries = join._build_entries
        bx_build_keys = join.bx_build_keys
        single_key = len(bx_build_keys) == 1

        def task(index: int) -> tuple:
            rows = chunks[index].rows
            batch = RowBatch({entry_id: rows}, len(rows))
            if mask_fn is not None:
                batch = batch.filter_true(mask_fn(batch))
            length = batch.length
            if not length:
                return 0, None, []
            key_cols = [fn(batch) for fn in bx_build_keys]
            saved_cols = [batch.columns[e] for e in build_entries]
            sample = tuple(col[0] for col in saved_cols) \
                if saved_cols else ()
            saved_rows = zip(*saved_cols) if saved_cols \
                else iter([()] * length)
            fragment: dict = {}
            setdefault = fragment.setdefault
            if single_key:
                for key, saved in zip(key_cols[0], saved_rows):
                    if key is not None:
                        setdefault(key, []).append(saved)
            else:
                build_keys = zip(*key_cols) if key_cols \
                    else iter([()] * length)
                for key, saved in zip(build_keys, saved_rows):
                    if None not in key:
                        setdefault(key, []).append(saved)
            return length, sample, list(fragment.items())

        results = self._run_morsels(runtime, survivors, task, n_workers,
                                    op="join_build",
                                    rows_of=lambda r: r[0])
        table: dict = {}
        gov = runtime.governor
        charged = 0
        row_bytes = 0
        try:
            for length, sample, items in results:
                if not length:
                    continue
                scan.actual_batches += 1
                scan.actual_rows += length
                runtime.note_counts(length)
                for key, saved_list in items:
                    bucket = table.get(key)
                    if bucket is None:
                        table[key] = saved_list
                    else:
                        bucket.extend(saved_list)
                if gov is not None:
                    # Same sampling as the serial build: the first
                    # non-empty batch's first saved row, in chunk order.
                    if row_bytes == 0:
                        row_bytes = approx_row_bytes(sample) \
                            + BUCKET_OVERHEAD_BYTES
                    delta = length * row_bytes
                    gov.charge(delta, "hash_join_build")
                    charged += delta
        except BaseException:
            if gov is not None and charged:
                gov.release(charged)
            raise
        return table, charged

    # -- telemetry --------------------------------------------------------------

    def _merge_telemetry(self, op: str, telemetries: List[WorkerTelemetry],
                         runtime, op_start: float,
                         external_checkpoints: bool) -> None:
        """Fold worker telemetry into the parent-side surfaces.

        ``external_checkpoints`` is True when the workers ran in forked
        processes whose governor-checkpoint counts the parent never saw
        (thread/inline workers share the parent governor, so merging
        theirs would double-count).
        """
        governor = runtime.governor
        tracer = self.tracer
        parent = tracer.current if tracer is not None \
            and tracer.enabled else None
        metrics = self.metrics
        for wt in telemetries:
            stats = self.worker_stats.setdefault(
                wt.worker_id, [0, 0, 0.0])
            stats[0] += wt.morsels
            stats[1] += wt.rows
            stats[2] += wt.seconds
            for chunk_index, rows, seconds in wt.records:
                self.morsel_records.append(
                    (wt.worker_id, chunk_index, rows, seconds))
            if external_checkpoints and governor is not None:
                governor.note_worker_checkpoints(wt.checkpoints)
            if metrics is not None:
                wt.delta.merge_into(metrics)
                metrics.observe("executor.worker_seconds", wt.seconds)
            if parent is not None:
                graft_span(
                    parent, "parallel_worker",
                    start=op_start, end=op_start + wt.seconds,
                    worker=wt.worker_id, op=op, backend=self.backend,
                    morsels=wt.morsels, rows=wt.rows,
                    seconds=wt.seconds, checkpoints=wt.checkpoints,
                    peak_bytes=wt.peak_bytes)

    def skew(self) -> Optional[dict]:
        """Morsel-distribution skew across workers, or None when no
        parallel operator ran.  Idle spawned workers count as zero —
        a worker that never got a morsel *is* the skew story."""
        if not self.ops:
            return None
        counts = [self.worker_stats.get(worker, [0, 0, 0.0])[0]
                  for worker in range(max(1, self.workers_spawned))]
        mean = sum(counts) / len(counts)
        variance = sum((c - mean) ** 2 for c in counts) / len(counts)
        return {
            "workers": len(counts),
            "min_morsels": min(counts),
            "max_morsels": max(counts),
            "mean_morsels": mean,
            "stddev_morsels": variance ** 0.5,
        }

    def utilization(self) -> List[dict]:
        """Per-worker utilization rows (worker id ascending)."""
        return [{"worker": worker, "morsels": int(stats[0]),
                 "rows": int(stats[1]), "seconds": stats[2]}
                for worker, stats in sorted(self.worker_stats.items())]

    # -- dispatch ---------------------------------------------------------------

    def _run_morsels(self, runtime, indices: List[int],
                     task: Callable[[int], object],
                     n_workers: int, op: str = "scan",
                     rows_of: Callable[[object], int] = len
                     ) -> List[object]:
        """Run ``task`` over every chunk index; results in index order.

        Dispatch is dynamic (a shared next-morsel dispenser) but the
        returned list is ordered like ``indices``, so every downstream
        merge is deterministic regardless of scheduling.  ``rows_of``
        extracts the row count from one morsel's result for telemetry
        (each operator shape returns a different result tuple)."""
        op_start = time.perf_counter()
        if n_workers <= 1 or len(indices) <= 1:
            # Degenerate pool: run inline (still a parallel operator for
            # accounting — eligibility, zone skips, merges, *and worker
            # telemetry* behave identically, there was just nothing to
            # overlap).
            governor = runtime.governor
            telemetry = WorkerTelemetry(0)
            results = []
            for index in indices:
                if governor is not None:
                    governor.checkpoint(stage="parallel")
                    telemetry.checkpoints += 1
                started = time.perf_counter()
                value = task(index)
                telemetry.note_morsel(
                    index, _count_rows(rows_of, value),
                    time.perf_counter() - started,
                    _approx_result_bytes(value))
                results.append(value)
            self._merge_telemetry(op, [telemetry], runtime, op_start,
                                  external_checkpoints=False)
            return results
        if self.backend == "fork":
            results, telemetries = self._fork_map(
                runtime, indices, task, n_workers, rows_of)
            self._merge_telemetry(op, telemetries, runtime, op_start,
                                  external_checkpoints=True)
        else:
            results, telemetries = self._thread_map(
                runtime, indices, task, n_workers, rows_of)
            self._merge_telemetry(op, telemetries, runtime, op_start,
                                  external_checkpoints=False)
        return results

    def _thread_map(self, runtime, indices: List[int],
                    task: Callable[[int], object],
                    n_workers: int,
                    rows_of: Callable[[object], int]
                    ) -> Tuple[List[object], List[WorkerTelemetry]]:
        governor = runtime.governor
        next_slot = [0]
        lock = threading.Lock()
        results: List[object] = [None] * len(indices)
        failures: List[BaseException] = []
        telemetries = [WorkerTelemetry(worker)
                       for worker in range(n_workers)]

        def worker_loop(worker_id: int) -> None:
            telemetry = telemetries[worker_id]
            while True:
                with lock:
                    if failures:
                        return
                    slot = next_slot[0]
                    if slot >= len(indices):
                        return
                    next_slot[0] = slot + 1
                try:
                    if governor is not None:
                        governor.checkpoint(stage="parallel")
                        telemetry.checkpoints += 1
                    started = time.perf_counter()
                    value = task(indices[slot])
                    telemetry.note_morsel(
                        indices[slot], _count_rows(rows_of, value),
                        time.perf_counter() - started,
                        _approx_result_bytes(value))
                    results[slot] = value
                except BaseException as exc:  # noqa: BLE001 — shipped
                    with lock:
                        failures.append(exc)
                    return

        threads = [threading.Thread(target=worker_loop, args=(worker,))
                   for worker in range(n_workers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if failures:
            raise failures[0]
        return results, telemetries

    def _fork_map(self, runtime, indices: List[int],
                  task: Callable[[int], object],
                  n_workers: int,
                  rows_of: Callable[[object], int]
                  ) -> Tuple[List[object], List[WorkerTelemetry]]:
        governor = runtime.governor
        if governor is not None:
            # Back the cancel flag with fork-inheritable shared memory
            # *before* forking, so a parent-side cancel() lands in the
            # children's next checkpoint.
            governor.cancel_token.enable_cross_process()
        mp = multiprocessing.get_context("fork")
        dispenser = mp.RawValue("l", 0)
        lock = mp.Lock()
        pipes: List[int] = []
        pids: List[int] = []
        payloads: List[bytes] = []
        try:
            for worker_id in range(n_workers):
                read_fd, write_fd = os.pipe()
                pid = os.fork()
                if pid == 0:
                    # Child: compute, write one pickled payload, and
                    # _exit without ever returning into the caller's
                    # generator stack.
                    status = 0
                    try:
                        os.close(read_fd)
                        payload = pickle.dumps(
                            _worker_payload(worker_id, indices,
                                            dispenser, lock, task,
                                            governor, rows_of),
                            pickle.HIGHEST_PROTOCOL)
                        _write_all(write_fd, payload)
                        os.close(write_fd)
                    except BaseException:  # noqa: BLE001 — exit status
                        status = 1
                    finally:
                        os._exit(status)
                os.close(write_fd)
                pids.append(pid)
                pipes.append(read_fd)
            # Read every pipe to EOF before reaping: a child blocked on
            # a full pipe finishes as soon as its turn to be read comes.
            for read_fd in pipes:
                payloads.append(_read_all(read_fd))
        finally:
            for read_fd in pipes:
                try:
                    os.close(read_fd)
                except OSError:
                    pass
            for pid in pids:
                try:
                    os.waitpid(pid, 0)
                except ChildProcessError:
                    pass
        results: List[object] = [None] * len(indices)
        errors: List[tuple] = []
        telemetries: List[WorkerTelemetry] = []
        for payload in payloads:
            if not payload:
                errors.append(("generic", "WorkerExit",
                               "morsel worker exited before reporting"))
                continue
            worker_results, error, telemetry = pickle.loads(payload)
            for slot, value in worker_results:
                results[slot] = value
            if telemetry is not None:
                telemetries.append(telemetry)
            if error is not None:
                errors.append(error)
        if errors:
            raise _decode_error(_pick_error(errors))
        return results, telemetries


def _worker_payload(worker_id: int, indices: List[int], dispenser, lock,
                    task: Callable[[int], object], governor,
                    rows_of: Callable[[object], int]) -> tuple:
    """One forked worker's whole run: pull morsels until the dispenser
    is empty or a bound trips; returns
    ``([(slot, result), ...], error, telemetry)`` with the error already
    encoded for transport and the telemetry picklable as-is."""
    results: List[Tuple[int, object]] = []
    error: Optional[tuple] = None
    telemetry = WorkerTelemetry(worker_id)
    total = len(indices)
    while error is None:
        with lock:
            slot = dispenser.value
            if slot >= total:
                break
            dispenser.value = slot + 1
        try:
            if governor is not None:
                governor.checkpoint(stage="parallel")
                telemetry.checkpoints += 1
            started = time.perf_counter()
            value = task(indices[slot])
            telemetry.note_morsel(
                indices[slot], _count_rows(rows_of, value),
                time.perf_counter() - started,
                _approx_result_bytes(value))
            results.append((slot, value))
        except BaseException as exc:  # noqa: BLE001 — shipped typed
            error = _encode_error(exc)
    return results, error, telemetry


def _encode_error(exc: BaseException) -> tuple:
    """Flatten a worker exception into a picklable typed tuple.

    Governor errors have multi-argument constructors, so a naive pickle
    of the exception would not survive the trip; their state is carried
    explicitly and rebuilt with the proper constructor in the parent."""
    if isinstance(exc, StatementCancelledError):
        return ("cancel", exc.reason, exc.stage)
    if isinstance(exc, DeadlineExceededError):
        return ("deadline", exc.elapsed, exc.budget, exc.stage)
    if isinstance(exc, ResourceExhaustedError):
        return ("mem", exc.operator, exc.tracked_bytes, exc.limit_bytes)
    return ("generic", type(exc).__name__, str(exc))


def _decode_error(encoded: tuple) -> BaseException:
    kind = encoded[0]
    if kind == "cancel":
        return StatementCancelledError(encoded[1], encoded[2])
    if kind == "deadline":
        return DeadlineExceededError(encoded[1], encoded[2], encoded[3])
    if kind == "mem":
        return ResourceExhaustedError(encoded[1], encoded[2], encoded[3])
    return ExecutionError(
        f"parallel worker failed: {encoded[1]}: {encoded[2]}")


#: Abort precedence when several workers failed: an explicit cancel is
#: never misreported as a timeout (same rule as the governor itself),
#: and typed governor aborts beat generic worker errors.
_ERROR_PRIORITY = {"cancel": 0, "deadline": 1, "mem": 2, "generic": 3}


def _pick_error(errors: List[tuple]) -> tuple:
    return min(errors, key=lambda error: _ERROR_PRIORITY[error[0]])


def _write_all(fd: int, data: bytes) -> None:
    view = memoryview(data)
    while view:
        written = os.write(fd, view)
        view = view[written:]


def _read_all(fd: int) -> bytes:
    parts: List[bytes] = []
    while True:
        part = os.read(fd, _PIPE_READ_SIZE)
        if not part:
            return b"".join(parts)
        parts.append(part)
