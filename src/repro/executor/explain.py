"""EXPLAIN output in MySQL's FORMAT=TREE style.

Orca-assisted plans are tagged ``EXPLAIN (ORCA)`` on the first line, and
cost/row estimates shown on each node are whichever optimizer's estimates
were copied into the plan (Section 4.2.2 / Listing 7).  Correlated
materialisations carry the "(invalidate on row from ...)" annotation.
"""

from __future__ import annotations

from typing import List, Optional

from repro.sql import ast
from repro.executor import plan as p
from repro.plan_quality import per_loop_q


def expr_text(expr: ast.Expr) -> str:
    """Render an expression in compact SQL-ish text for plan labels."""
    if isinstance(expr, ast.Literal):
        value = expr.value
        if isinstance(value, str):
            return f"'{value}'"
        return str(value)
    if isinstance(expr, ast.ColumnRef):
        return expr.display
    if isinstance(expr, ast.BinaryExpr):
        return (f"({expr_text(expr.left)} {expr.op.value} "
                f"{expr_text(expr.right)})")
    if isinstance(expr, ast.NotExpr):
        return f"(not {expr_text(expr.operand)})"
    if isinstance(expr, ast.NegExpr):
        return f"(-{expr_text(expr.operand)})"
    if isinstance(expr, ast.IsNullExpr):
        suffix = "is not null" if expr.negated else "is null"
        return f"({expr_text(expr.operand)} {suffix})"
    if isinstance(expr, ast.BetweenExpr):
        word = "not between" if expr.negated else "between"
        return (f"({expr_text(expr.operand)} {word} {expr_text(expr.low)} "
                f"and {expr_text(expr.high)})")
    if isinstance(expr, ast.LikeExpr):
        word = "not like" if expr.negated else "like"
        return f"({expr_text(expr.operand)} {word} {expr_text(expr.pattern)})"
    if isinstance(expr, ast.InListExpr):
        word = "not in" if expr.negated else "in"
        items = ", ".join(expr_text(item) for item in expr.items)
        return f"({expr_text(expr.operand)} {word} ({items}))"
    if isinstance(expr, ast.InSubqueryExpr):
        word = "not in" if expr.negated else "in"
        return f"({expr_text(expr.operand)} {word} (subquery))"
    if isinstance(expr, ast.ExistsExpr):
        word = "not exists" if expr.negated else "exists"
        return f"{word}(subquery)"
    if isinstance(expr, ast.ScalarSubquery):
        return "(subquery)"
    if isinstance(expr, ast.AggCall):
        if expr.star:
            return "count(*)"
        inner = expr_text(expr.arg) if expr.arg is not None else ""
        distinct = "distinct " if expr.distinct else ""
        return f"{expr.func.value.lower()}({distinct}{inner})"
    if isinstance(expr, ast.CaseExpr):
        return "case ... end"
    if isinstance(expr, ast.FuncCall):
        args = ", ".join(expr_text(arg) for arg in expr.args)
        return f"{expr.name.lower()}({args})"
    if isinstance(expr, ast.WindowCall):
        return f"{expr.func.lower()}(...) over (...)"
    if isinstance(expr, ast.GroupingCall):
        return f"grouping({expr_text(expr.arg)})"
    if isinstance(expr, ast.IntervalLiteral):
        interval = expr.interval
        if interval.months:
            return f"interval {interval.months} month"
        return f"interval {interval.days} day"
    if isinstance(expr, ast.Star):
        return "*"
    return type(expr).__name__


def explain_plan(query_plan: p.QueryPlan, analyze: bool = False,
                 footer: str = "") -> str:
    """Produce the EXPLAIN FORMAT=TREE-style text for a query plan.

    With ``analyze=True``, each node shows the always-on actual-row
    counters from the most recent execution next to the optimizer's
    estimate, plus the resulting Q-error — EXPLAIN ANALYZE style.  A
    non-empty ``footer`` (see :func:`format_stage_footer`) is appended
    verbatim.
    """
    header = "EXPLAIN (ORCA)" if query_plan.origin == "orca" \
        else "EXPLAIN"
    if analyze:
        header += " ANALYZE"
    lines: List[str] = [header]
    if query_plan.limit is not None:
        lines.append(f" > Limit: {query_plan.limit} row(s)")
    if query_plan.root is not None:
        _render(query_plan.root, lines, depth=1, analyze=analyze)
    else:
        lines.append(" -> Rows fetched before execution")
    for op, part in query_plan.union_parts:
        lines.append(f" -> {op.value}")
        if part.root is not None:
            _render(part.root, lines, depth=2, analyze=analyze)
    if footer:
        lines.append(footer)
    return "\n".join(lines)


#: Pipeline-order stage names shown in the stage-breakdown footer (only
#: stages that actually ran appear; ``statement``/``execute`` durations
#: are carried by the optimize/execute split line).
_FOOTER_STAGES = ("parse", "prepare", "route", "preprocess",
                  "metadata_lookup", "parse_tree_convert", "memo_search",
                  "plan_convert", "mysql_optimize", "refine")


def format_stage_footer(optimizer_used: str, optimize_seconds: float,
                        execute_seconds: float,
                        stages: Optional[dict] = None,
                        memo_groups: int = 0,
                        memo_alternatives: int = 0,
                        memo_pruned: int = 0,
                        executor_mode: Optional[str] = None,
                        batches: int = 0,
                        batch_rows: int = 0,
                        compiled_exprs: int = 0,
                        governor_stats: Optional[dict] = None,
                        join_strategy: Optional[str] = None,
                        join_units: int = 0,
                        join_budget_degradations: int = 0,
                        worker_spans: Optional[List[dict]] = None,
                        worker_skew: Optional[dict] = None) -> str:
    """The EXPLAIN ANALYZE "stage breakdown" footer.

    Shows the optimize-vs-execute wall-clock split, the per-stage trace
    durations (when the statement ran traced), and — for Orca plans —
    the memo statistics, mirroring the paper's copy-over of Orca's
    numbers into MySQL's EXPLAIN (Section 6 / Listing 7).  When
    ``executor_mode`` is given, an executor line reports which engine
    ran and — for the batch engine — its batch and compiled-expression
    counts.  ``governor_stats`` (an
    :meth:`repro.governor.ExecutionGovernor.stats` snapshot) adds a
    resource-governance line: peak tracked operator memory, deadline
    budget used, and checkpoints hit.  ``join_strategy`` adds the
    join-order strategy the selector picked for the statement's widest
    joined component (with its relation count and any budget
    degradations).  ``worker_spans`` (exported ``parallel_worker`` span
    dicts from the cross-process telemetry) adds one line per morsel
    worker — morsels, rows, busy milliseconds — and ``worker_skew``
    (:meth:`repro.executor.parallel.ParallelContext.skew`) the
    distribution summary.
    """
    total = optimize_seconds + execute_seconds
    share = 100.0 * optimize_seconds / total if total > 0 else 0.0
    lines = ["", "Stage breakdown", "-" * 15,
             f"optimizer: {optimizer_used}",
             f"optimize:  {optimize_seconds * 1000.0:.3f} ms  "
             f"execute: {execute_seconds * 1000.0:.3f} ms  "
             f"(optimize share {share:.1f}%)"]
    if executor_mode is not None:
        executor_line = f"executor: {executor_mode}"
        if executor_mode == "batch":
            executor_line += (f" (batches={batches}, "
                              f"batch_rows={batch_rows}, "
                              f"compiled_exprs={compiled_exprs})")
        lines.append(executor_line)
    stages = stages or {}
    shown = [(name, stages[name]) for name in _FOOTER_STAGES
             if name in stages]
    for name, seconds in shown:
        lines.append(f"  {name + ':':<20} {seconds * 1000.0:9.3f} ms")
    if memo_groups:
        memo_line = (f"memo: {memo_groups} groups, "
                     f"{memo_alternatives} alternatives costed")
        if memo_pruned:
            memo_line += f", {memo_pruned} candidates pruned"
        lines.append(memo_line)
    if join_strategy is not None:
        strategy_line = (f"join search: {join_strategy} "
                         f"({join_units} relations)")
        if join_budget_degradations:
            strategy_line += (f", budget degradations "
                              f"{join_budget_degradations}")
        lines.append(strategy_line)
    if worker_spans:
        # One worker can contribute several spans (one per parallel
        # operator); fold them so the footer shows totals per worker.
        per_worker: dict = {}
        for span in worker_spans:
            attrs = span.get("attributes", {})
            worker = attrs.get("worker", 0)
            totals = per_worker.setdefault(worker, [0, 0, 0.0])
            totals[0] += attrs.get("morsels", 0)
            totals[1] += attrs.get("rows", 0)
            totals[2] += attrs.get("seconds", 0.0)
        lines.append(f"parallel: {len(per_worker)} workers")
        for worker in sorted(per_worker):
            morsels, rows, seconds = per_worker[worker]
            lines.append(f"  worker {worker}: {morsels} morsels, "
                         f"{rows} rows, {seconds * 1000.0:.3f} ms busy")
        if worker_skew is not None:
            lines.append(
                f"  skew: min {worker_skew['min_morsels']} / "
                f"max {worker_skew['max_morsels']} / "
                f"stddev {worker_skew['stddev_morsels']:.2f} "
                f"morsels per worker")
    if governor_stats is not None:
        peak = governor_stats.get("peak_tracked_bytes", 0)
        gov_line = (f"governor: peak tracked memory "
                    f"{peak / 1024.0:.1f} KiB")
        used = governor_stats.get("deadline_used_fraction")
        if used is not None:
            gov_line += f", deadline budget used {100.0 * used:.1f}%"
        gov_line += (f", checkpoints "
                     f"{governor_stats.get('checkpoints', 0)}")
        if governor_stats.get("spill_events"):
            gov_line += f", spills {governor_stats['spill_events']}"
        if governor_stats.get("low_memory"):
            gov_line += " (low-memory retry)"
        lines.append(gov_line)
    return "\n".join(lines)


def _fmt_estimate(rows: float) -> str:
    """Render a cardinality estimate without clamping.

    The cost model keeps its own >= 1 floors where it needs them; here
    the raw estimate is shown (``rows=0`` is meaningful — it is exactly
    the kind of sub-1-row estimate Q-error must see).  Integral values
    print as integers, fractional ones with two decimals.
    """
    value = float(rows)
    if value.is_integer():
        return str(int(value))
    return f"{value:.2f}"


def _render(node: p.PlanNode, lines: List[str], depth: int,
            analyze: bool = False) -> None:
    indent = "  " * depth
    annotation = f"  (cost={node.cost:.2f} rows={_fmt_estimate(node.rows)})"
    if analyze:
        actual = node.actual_rows
        loops = node.actual_loops
        q = per_loop_q(node.rows, actual, loops)
        annotation += (f" (estimated rows={_fmt_estimate(node.rows)} "
                       f"actual rows={actual} q={q:.2f}")
        if loops != 1:
            annotation += f" loops={loops}"
        annotation += ")"
        if node.actual_batches:
            annotation += f" (batches={node.actual_batches}"
            if node.px_workers:
                annotation += f" workers={node.px_workers}"
            annotation += ")"
    lines.append(f"{indent}-> {node.label()}{annotation}")
    if node.filter_conjuncts:
        text = " and ".join(expr_text(c) for c in node.filter_conjuncts)
        lines.append(f"{indent}     Filter: {text}")
    if isinstance(node, p.DerivedMaterializeNode):
        invalidation = node.invalidation_label()
        rebinds = ""
        if analyze and getattr(node, "actual_rebinds", None) is not None:
            rebinds = f" (rebinds={node.actual_rebinds})"
        if invalidation is None:
            lines.append(f"{indent}    -> Materialize{rebinds}")
        else:
            lines.append(
                f"{indent}    -> Materialize ({invalidation}){rebinds}")
        _render_subplan(node.subplan, lines, depth + 2, analyze)
        return
    if isinstance(node, p.CteScanNode):
        lines.append(f"{indent}    -> Materialize CTE {node.cte_name}")
        _render_subplan(node.subplan, lines, depth + 2, analyze)
        return
    for child in node.children():
        _render(child, lines, depth + 1, analyze)


def _render_subplan(subplan: p.QueryPlan, lines: List[str],
                    depth: int, analyze: bool = False) -> None:
    if subplan.root is not None:
        _render(subplan.root, lines, depth, analyze)
