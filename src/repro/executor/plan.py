"""Physical plan nodes and their Volcano-style execution.

A plan node tree is produced by MySQL plan refinement (for both the MySQL
and the Orca paths — Section 4.3) and executed against the storage engine.
Execution is context-based: the runtime context is a list indexed by
table-entry id; each access-path node writes the entry's current row into
its slot and *yields control* for every produced combination.  Expressions
read slots directly, which makes correlated evaluation (the paper's
"invalidate on row from part" rebinds) natural: a correlated sub-plan
simply reads the outer entry's current slot.

Every node carries `cost` and `rows` estimates copied from whichever
optimizer produced it, so EXPLAIN shows Orca's estimates on Orca plans
(Section 4.2.2).
"""

from __future__ import annotations

import enum
import itertools
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ExecutionError
from repro.executor.batch import (
    BATCH_SIZE,
    BatchAccumulator,
    BatchUnsupported,
    RowBatch,
)
from repro.governor import (
    ACCUMULATOR_BYTES,
    BUCKET_OVERHEAD_BYTES,
    approx_row_bytes,
)
from repro.sql import ast
from repro.sql.blocks import QueryBlock


class JoinKind(enum.Enum):
    INNER = "inner"
    LEFT = "left"
    SEMI = "semi"
    ANTI = "antijoin"


class AccessMethod(enum.Enum):
    TABLE_SCAN = "table_scan"
    INDEX_RANGE = "index_range"
    INDEX_LOOKUP = "index_lookup"
    INDEX_SCAN = "index_scan"
    MATERIALIZE = "materialize"
    CTE_SCAN = "cte_scan"


class ExecutionRuntime:
    """Per-execution state shared across the whole plan tree."""

    def __init__(self, storage, context_size: int, governor=None,
                 injector=None, batch_size: Optional[int] = None,
                 parallel=None) -> None:
        self.storage = storage
        #: Rows per batch for this execution (``DatabaseConfig.batch_size``
        #: through the facade; falls back to the storage engine's chunk
        #: size so batches stay aligned with column-store chunks).
        if batch_size is None:
            batch_size = getattr(storage, "batch_size", None) or BATCH_SIZE
        self.batch_size = batch_size
        #: Morsel-parallel execution context
        #: (:class:`repro.executor.parallel.ParallelContext`) or None for
        #: serial execution — the default and the only mode the row
        #: engine ever uses.
        self.parallel = parallel
        #: Per-statement :class:`repro.governor.ExecutionGovernor` (or
        #: None): deadline/cancel checkpoints and memory charging.
        self.governor = governor
        #: Execution-stage :class:`repro.resilience.FaultInjector` (or
        #: None): scan_io / mid_batch / alloc_spike chaos sites.
        self.injector = injector
        self.ctx: List = [None] * context_size
        #: cte_id -> materialised rows (single execution per statement,
        #: like MySQL's one-producer-executes model).
        self.cte_rows: Dict[int, List[tuple]] = {}
        #: Per-execution materialisation caches for derived tables, keyed
        #: by plan-node identity -> {correlation snapshot -> rows}.  A
        #: changed snapshot invalidates (re-materialises), matching the
        #: paper's "invalidate on row from ..." semantics; previously seen
        #: snapshots are reused like MySQL's subquery result cache.
        self.materializations: Dict[int, Dict[object, List[tuple]]] = {}
        #: Per-execution subquery-result cache, keyed by
        #: (block id, correlation values).
        self.subquery_cache: Dict[tuple, List[tuple]] = {}
        #: Materialisation (rebind) counts per derived node — "the rebind
        #: count is simply the number of rows coming from the outer side"
        #: (Section 7), deduplicated here by the subquery cache.
        self.rebind_counts: Dict[int, int] = {}
        #: Batch-mode accounting: batches/rows exchanged between
        #: operators (feeds executor.batches / executor.batch_rows).
        self.batches = 0
        self.batch_rows = 0

    def note_batch(self, batch: "RowBatch") -> "RowBatch":
        self.batches += 1
        self.batch_rows += batch.length
        # The batch engine's governor checkpoint: every operator-emitted
        # batch (≤1024 rows) passes through here, which bounds how long
        # a deadline or cancel can go unnoticed in batch mode.
        if self.injector is not None:
            self.injector.fire("mid_batch")
        if self.governor is not None:
            self.governor.checkpoint()
        return batch

    def note_counts(self, length: int) -> None:
        """Replay one leaf batch's accounting without the batch.

        The parallel merge paths consumed the leaf's batches inside
        workers; this keeps ``batches`` / ``batch_rows`` / checkpoint
        cadence identical to a serial run of the same plan."""
        self.batches += 1
        self.batch_rows += length
        if self.injector is not None:
            self.injector.fire("mid_batch")
        if self.governor is not None:
            self.governor.checkpoint()


class PlanNode:
    """Base class for physical plan nodes."""

    def __init__(self) -> None:
        self.cost: float = 0.0
        self.rows: float = 0.0
        #: Filter attached during predicate placement (for EXPLAIN).
        self.filter_conjuncts: List[ast.Expr] = []
        #: Compiled filter; identity-true when no conjuncts.
        self.filter_fn: Callable = _always_true
        #: Batch-compiled filter mask (set by batch lowering; None when
        #: no conjuncts or when this node kind never applies one).
        self.bx_filter = None
        #: Always-on actual-row/batch counters, reset per execution by
        #: the Executor; the plan-quality loop reads them against the
        #: optimizer's ``rows`` estimate after every statement.
        self.actual_rows: int = 0
        self.actual_batches: int = 0
        #: How many times this node was (re)started — 1 for a plain
        #: pipeline, N for the inner side of a nested-loop join that
        #: rebinds per outer row.  Q-error compares the per-loop
        #: estimate against ``actual_rows / actual_loops``, mirroring
        #: MySQL's ``(rows=N loops=M)`` EXPLAIN ANALYZE semantics.
        self.actual_loops: int = 0
        #: Worker count of the morsel-parallel operator that ran (part
        #: of) this node in the most recent execution; 0 = serial.
        #: Rendered by EXPLAIN ANALYZE as ``workers=N``.
        self.px_workers: int = 0

    def _note(self, runtime: "ExecutionRuntime",
              batch: "RowBatch") -> "RowBatch":
        """Account one emitted batch on this node and the runtime."""
        self.actual_batches += 1
        self.actual_rows += batch.length
        return runtime.note_batch(batch)

    def children(self) -> Sequence["PlanNode"]:
        return ()

    def produced_entries(self) -> List[int]:
        """Entry ids whose context slots this subtree writes."""
        produced: List[int] = []
        for child in self.children():
            produced.extend(child.produced_entries())
        return produced

    def run(self, runtime: ExecutionRuntime) -> Iterator[None]:
        raise NotImplementedError

    def run_batches(self, runtime: ExecutionRuntime) -> Iterator[RowBatch]:
        """Batch-at-a-time twin of :meth:`run`.

        Yields :class:`RowBatch` chunks whose columns cover this
        subtree's produced entries.  Lowering rejects unsupported nodes
        before execution; this default is a defensive backstop.
        """
        raise BatchUnsupported(f"plan node {type(self).__name__}")

    def touch_exprs(self) -> List[Tuple[str, ast.Expr]]:
        """``(kind, expr)`` pairs of the columns this node touches.

        Kinds: ``predicate`` (filters and range/lookup conditions),
        ``join`` (join keys and join conditions — the workload layer
        downgrades a "join" conjunct to ``predicate`` when all of its
        columns come from one table), ``group``, and ``sort``.  Both
        optimizers' plans expose the same hooks, so column-usage
        tracking sees one vocabulary regardless of routing.
        """
        return [("predicate", expr) for expr in self.filter_conjuncts]

    def label(self) -> str:
        raise NotImplementedError


def _always_true(ctx) -> bool:
    return True


def derive_zone_predicates(conjuncts: Sequence[ast.Expr],
                           entry_id: int) -> List[tuple]:
    """Extract zone-map predicates from a leaf scan's filter conjuncts.

    Only shapes a chunk's min/max/null statistics can refute are kept —
    column-vs-literal comparisons (either orientation), BETWEEN and
    IN over literals (both polarities: a chunk wholly inside a NOT
    BETWEEN window, or constant on a NOT IN value, is provably dead),
    and IS [NOT] NULL; everything else is simply not a zone predicate.
    The tuples match
    :meth:`repro.storage.columnstore.ColumnChunk.can_skip`.
    """
    predicates: List[tuple] = []
    for conjunct in conjuncts:
        if isinstance(conjunct, ast.BinaryExpr) \
                and conjunct.op in ast.COMPARISON_OPS:
            left, right = conjunct.left, conjunct.right
            if isinstance(left, ast.ColumnRef) \
                    and left.entry_id == entry_id \
                    and isinstance(right, ast.Literal) \
                    and right.value is not None:
                predicates.append(("cmp", left.position,
                                   conjunct.op.value, right.value))
            elif isinstance(right, ast.ColumnRef) \
                    and right.entry_id == entry_id \
                    and isinstance(left, ast.Literal) \
                    and left.value is not None:
                predicates.append(
                    ("cmp", right.position,
                     ast.COMMUTED_COMPARISON[conjunct.op].value,
                     left.value))
        elif isinstance(conjunct, ast.BetweenExpr):
            operand = conjunct.operand
            if isinstance(operand, ast.ColumnRef) \
                    and operand.entry_id == entry_id \
                    and isinstance(conjunct.low, ast.Literal) \
                    and conjunct.low.value is not None \
                    and isinstance(conjunct.high, ast.Literal) \
                    and conjunct.high.value is not None:
                if conjunct.negated:
                    predicates.append(("notbetween", operand.position,
                                       conjunct.low.value,
                                       conjunct.high.value))
                else:
                    predicates.append(("cmp", operand.position, ">=",
                                       conjunct.low.value))
                    predicates.append(("cmp", operand.position, "<=",
                                       conjunct.high.value))
        elif isinstance(conjunct, ast.IsNullExpr):
            operand = conjunct.operand
            if isinstance(operand, ast.ColumnRef) \
                    and operand.entry_id == entry_id:
                predicates.append(("null", operand.position,
                                   conjunct.negated))
        elif isinstance(conjunct, ast.InListExpr):
            operand = conjunct.operand
            if isinstance(operand, ast.ColumnRef) \
                    and operand.entry_id == entry_id \
                    and all(isinstance(item, ast.Literal)
                            for item in conjunct.items):
                values = [item.value for item in conjunct.items
                          if item.value is not None]
                if conjunct.negated:
                    # NOT IN with a NULL item never passes, but that is
                    # a planner simplification, not a zone fact — only
                    # derive from an all-literal, NULL-free list.
                    if values and len(values) == len(conjunct.items):
                        predicates.append(("notin", operand.position,
                                           values))
                elif values:
                    predicates.append(("in", operand.position, values))
    return predicates


def _iter_chunks(rows: List[tuple],
                 batch_size: int = BATCH_SIZE) -> Iterator[List[tuple]]:
    for start in range(0, len(rows), batch_size):
        yield rows[start:start + batch_size]


def _leaf_rows(node: "_LeafNode", runtime: ExecutionRuntime,
               rows) -> Iterator[tuple]:
    """Row-mode leaf instrumentation shared by every access path.

    Fires the ``scan_io`` injection site once per scan start and, under
    a governor, wraps the storage iterator so a checkpoint runs every
    ``check_interval`` rows — the row engine's only periodic bound in
    plans with no batches."""
    if runtime.injector is not None:
        runtime.injector.fire("scan_io")
    if runtime.governor is not None:
        return runtime.governor.wrap_rows(rows)
    return rows


def _charge_materialized(runtime: ExecutionRuntime,
                         rows: List[tuple]) -> None:
    """Charge a freshly materialised row buffer (derived table / CTE).

    Charged for the lifetime of the statement — materialisations are
    cached on the runtime and die with it, so there is no release."""
    gov = runtime.governor
    if gov is not None and rows:
        gov.charge(len(rows) * (approx_row_bytes(rows[0]) + 16),
                   "materialize")


def _leaf_batches(node: "_LeafNode", runtime: ExecutionRuntime,
                  chunks: Iterator[List[tuple]]) -> Iterator[RowBatch]:
    """Wrap storage chunks for one table entry, applying the leaf's
    attached filter as a vectorized mask (row twin: ``check(ctx)``)."""
    node.actual_loops += 1
    if runtime.injector is not None:
        runtime.injector.fire("scan_io")
    slot = node.entry_id
    mask_fn = node.bx_filter
    for chunk in chunks:
        batch = RowBatch({slot: chunk}, len(chunk))
        if mask_fn is not None:
            batch = batch.filter_true(mask_fn(batch))
        if batch.length:
            yield node._note(runtime, batch)


def _emit(node: PlanNode, acc: BatchAccumulator, mask_fn,
          runtime: ExecutionRuntime) -> Iterator[RowBatch]:
    """Flush an accumulator through a node's attached filter mask."""
    batch = acc.flush()
    if mask_fn is not None:
        batch = batch.filter_true(mask_fn(batch))
    if batch.length:
        yield node._note(runtime, batch)


# ---------------------------------------------------------------------------
# Access paths
# ---------------------------------------------------------------------------

class _LeafNode(PlanNode):
    def __init__(self, entry_id: int, alias: str) -> None:
        super().__init__()
        self.entry_id = entry_id
        self.alias = alias

    def produced_entries(self) -> List[int]:
        return [self.entry_id]


class TableScanNode(_LeafNode):
    """Sequential heap scan (benefits from prefetch in the cost models)."""

    method = AccessMethod.TABLE_SCAN

    def __init__(self, entry_id: int, table_name: str, alias: str) -> None:
        super().__init__(entry_id, alias)
        self.table_name = table_name
        #: Cached zone predicates (None = not derived yet; filter
        #: conjuncts are attached after construction and never change
        #: once the plan is built, so one derivation serves every
        #: execution of a cached plan).
        self._zone_preds: Optional[List[tuple]] = None

    def zone_predicates(self) -> List[tuple]:
        predicates = self._zone_preds
        if predicates is None:
            predicates = derive_zone_predicates(self.filter_conjuncts,
                                                self.entry_id)
            self._zone_preds = predicates
        return predicates

    def run(self, runtime: ExecutionRuntime) -> Iterator[None]:
        self.actual_loops += 1
        ctx = runtime.ctx
        slot = self.entry_id
        check = self.filter_fn
        # Zone predicates come from this node's own filter conjuncts,
        # which ``check`` applies below — skipping a provably dead chunk
        # is semantics-preserving, and both engines consult the same
        # store with the same predicates (counter parity).
        rows = _leaf_rows(self, runtime, runtime.storage.table_scan(
            self.table_name, self.zone_predicates()))
        for row in rows:
            ctx[slot] = row
            if check(ctx) is True:
                self.actual_rows += 1
                yield

    def run_batches(self, runtime: ExecutionRuntime) -> Iterator[RowBatch]:
        predicates = self.zone_predicates()
        parallel = runtime.parallel
        if parallel is not None and self.bx_filter is not None:
            batches = parallel.scan_batches(self, runtime, predicates)
            if batches is not None:
                yield from batches
                return
        chunks = runtime.storage.table_scan_batches(
            self.table_name, runtime.batch_size, predicates)
        yield from _leaf_batches(self, runtime, chunks)

    def label(self) -> str:
        return f"Table scan on {self.alias}"


class IndexRangeScanNode(_LeafNode):
    """Range scan over an index using constant bounds."""

    method = AccessMethod.INDEX_RANGE

    def __init__(self, entry_id: int, table_name: str, alias: str,
                 index_name: str, low: Optional[tuple], high: Optional[tuple],
                 low_inclusive: bool = True, high_inclusive: bool = True
                 ) -> None:
        super().__init__(entry_id, alias)
        self.table_name = table_name
        self.index_name = index_name
        self.low = low
        self.high = high
        self.low_inclusive = low_inclusive
        self.high_inclusive = high_inclusive

    def run(self, runtime: ExecutionRuntime) -> Iterator[None]:
        self.actual_loops += 1
        ctx = runtime.ctx
        slot = self.entry_id
        check = self.filter_fn
        rows = _leaf_rows(self, runtime, runtime.storage.index_range_rows(
            self.table_name, self.index_name, self.low, self.high,
            self.low_inclusive, self.high_inclusive))
        for row in rows:
            ctx[slot] = row
            if check(ctx) is True:
                self.actual_rows += 1
                yield

    def run_batches(self, runtime: ExecutionRuntime) -> Iterator[RowBatch]:
        chunks = runtime.storage.index_range_batches(
            self.table_name, self.index_name, self.low, self.high,
            self.low_inclusive, self.high_inclusive, runtime.batch_size)
        yield from _leaf_batches(self, runtime, chunks)

    def label(self) -> str:
        return (f"Index range scan on {self.alias} "
                f"using {self.index_name}")


class IndexLookupNode(_LeafNode):
    """Point lookup with keys computed from the current context (ref).

    This is MySQL's ``ref`` / ``eq_ref`` access: the inner side of an
    index nested-loop join.
    """

    method = AccessMethod.INDEX_LOOKUP

    def __init__(self, entry_id: int, table_name: str, alias: str,
                 index_name: str, key_exprs: List[ast.Expr],
                 key_fns: List[Callable]) -> None:
        super().__init__(entry_id, alias)
        self.table_name = table_name
        self.index_name = index_name
        self.key_exprs = key_exprs
        self.key_fns = key_fns

    def run(self, runtime: ExecutionRuntime) -> Iterator[None]:
        self.actual_loops += 1
        ctx = runtime.ctx
        slot = self.entry_id
        check = self.filter_fn
        key = tuple(fn(ctx) for fn in self.key_fns)
        if any(part is None for part in key):
            return
        rows = runtime.storage.index_lookup_rows(
            self.table_name, self.index_name, key)
        for row in rows:
            ctx[slot] = row
            if check(ctx) is True:
                self.actual_rows += 1
                yield

    def run_batches(self, runtime: ExecutionRuntime) -> Iterator[RowBatch]:
        # Only reached as a chain driver, where the lookup keys are
        # row-invariant (lowering enforces it); as a nested-loop inner
        # this node runs through the row path instead.
        probe = RowBatch({}, 1)
        key = tuple(fn(probe)[0] for fn in self.bx_keys)
        if any(part is None for part in key):
            return
        rows = runtime.storage.index_lookup_rows(
            self.table_name, self.index_name, key)
        yield from _leaf_batches(self, runtime,
                                 _iter_chunks(rows, runtime.batch_size))

    def touch_exprs(self) -> List[Tuple[str, ast.Expr]]:
        return super().touch_exprs() \
            + [("join", expr) for expr in self.key_exprs]

    def label(self) -> str:
        keys = ", ".join(_expr_text(expr) for expr in self.key_exprs)
        return (f"Index lookup on {self.alias} using {self.index_name} "
                f"({keys})")


class IndexOrderedScanNode(_LeafNode):
    """Full index scan that supplies rows in key order (Section 7/4)."""

    method = AccessMethod.INDEX_SCAN

    def __init__(self, entry_id: int, table_name: str, alias: str,
                 index_name: str, descending: bool = False) -> None:
        super().__init__(entry_id, alias)
        self.table_name = table_name
        self.index_name = index_name
        self.descending = descending

    def run(self, runtime: ExecutionRuntime) -> Iterator[None]:
        self.actual_loops += 1
        ctx = runtime.ctx
        slot = self.entry_id
        check = self.filter_fn
        rows = _leaf_rows(self, runtime, runtime.storage.index_ordered_rows(
            self.table_name, self.index_name, self.descending))
        for row in rows:
            ctx[slot] = row
            if check(ctx) is True:
                self.actual_rows += 1
                yield

    def run_batches(self, runtime: ExecutionRuntime) -> Iterator[RowBatch]:
        chunks = runtime.storage.index_ordered_batches(
            self.table_name, self.index_name, self.descending,
            runtime.batch_size)
        yield from _leaf_batches(self, runtime, chunks)

    def label(self) -> str:
        direction = " (reverse)" if self.descending else ""
        return f"Index scan on {self.alias} using {self.index_name}{direction}"


class DerivedMaterializeNode(_LeafNode):
    """Materialise a sub-plan into a temporary table and scan it.

    When ``correlation_sources`` is non-empty the materialisation is
    invalidated whenever any source slot changes — the paper's
    "Materialize (invalidate on row from part)" behaviour in Listing 7.
    """

    method = AccessMethod.MATERIALIZE

    def __init__(self, entry_id: int, alias: str, subplan: "QueryPlan",
                 correlation_sources: List[int]) -> None:
        super().__init__(entry_id, alias)
        self.subplan = subplan
        self.correlation_sources = correlation_sources

    def run(self, runtime: ExecutionRuntime) -> Iterator[None]:
        self.actual_loops += 1
        ctx = runtime.ctx
        slot = self.entry_id
        check = self.filter_fn
        if self.correlation_sources:
            key = tuple(ctx[source] for source in self.correlation_sources)
        else:
            key = None
        by_key = runtime.materializations.setdefault(id(self), {})
        rows = by_key.get(key)
        if rows is None:
            rows = list(self.subplan.run(runtime))
            by_key[key] = rows
            _charge_materialized(runtime, rows)
            # Rebind accounting (the paper's Section 7, Orca change 3,
            # concerns exactly these counts): one rebind per distinct
            # outer-row snapshot that forces a re-materialisation.
            runtime.rebind_counts[id(self)] = \
                runtime.rebind_counts.get(id(self), 0) + 1
        for row in rows:
            ctx[slot] = row
            if check(ctx) is True:
                self.actual_rows += 1
                yield

    def run_batches(self, runtime: ExecutionRuntime) -> Iterator[RowBatch]:
        # Lowering rejects correlated materialisations on the batch path
        # (they run row-at-a-time as nested-loop inners), so the
        # materialisation key is always the uncorrelated None snapshot.
        by_key = runtime.materializations.setdefault(id(self), {})
        rows = by_key.get(None)
        if rows is None:
            rows = []
            for chunk in self.subplan.run_batches(runtime):
                rows.extend(chunk)
            by_key[None] = rows
            _charge_materialized(runtime, rows)
            runtime.rebind_counts[id(self)] = \
                runtime.rebind_counts.get(id(self), 0) + 1
        yield from _leaf_batches(self, runtime,
                                 _iter_chunks(rows, runtime.batch_size))

    def label(self) -> str:
        return f"Table scan on {self.alias}"

    def invalidation_label(self) -> Optional[str]:
        if not self.correlation_sources:
            return None
        return "invalidate on row from outer reference"


class _Never:
    pass


_NEVER = _Never()


class CteScanNode(_LeafNode):
    """Scan of a shared CTE materialisation.

    MySQL compiles one producer per consumer but executes only one
    (Section 4.2.3); the runtime keys materialisations by cte id so the
    first consumer executes the producer and the rest reuse its rows.
    """

    method = AccessMethod.CTE_SCAN

    def __init__(self, entry_id: int, alias: str, cte_id: int,
                 cte_name: str, subplan: "QueryPlan") -> None:
        super().__init__(entry_id, alias)
        self.cte_id = cte_id
        self.cte_name = cte_name
        self.subplan = subplan

    def run(self, runtime: ExecutionRuntime) -> Iterator[None]:
        rows = runtime.cte_rows.get(self.cte_id)
        if rows is None:
            rows = list(self.subplan.run(runtime))
            runtime.cte_rows[self.cte_id] = rows
            _charge_materialized(runtime, rows)
        self.actual_loops += 1
        ctx = runtime.ctx
        slot = self.entry_id
        check = self.filter_fn
        for row in rows:
            ctx[slot] = row
            if check(ctx) is True:
                self.actual_rows += 1
                yield

    def run_batches(self, runtime: ExecutionRuntime) -> Iterator[RowBatch]:
        rows = runtime.cte_rows.get(self.cte_id)
        if rows is None:
            rows = []
            for chunk in self.subplan.run_batches(runtime):
                rows.extend(chunk)
            runtime.cte_rows[self.cte_id] = rows
            _charge_materialized(runtime, rows)
        yield from _leaf_batches(self, runtime,
                                 _iter_chunks(rows, runtime.batch_size))

    def label(self) -> str:
        return f"Table scan on {self.alias} (cte {self.cte_name})"


# ---------------------------------------------------------------------------
# Joins
# ---------------------------------------------------------------------------

class NestedLoopJoinNode(PlanNode):
    """Nested-loop join; the inner side restarts per outer combination."""

    def __init__(self, outer: PlanNode, inner: PlanNode, kind: JoinKind,
                 conjuncts: List[ast.Expr], condition_fn: Callable) -> None:
        super().__init__()
        self.outer = outer
        self.inner = inner
        self.kind = kind
        self.conjuncts = conjuncts
        self.condition_fn = condition_fn
        self._inner_entries = inner.produced_entries()

    def children(self) -> Sequence[PlanNode]:
        return (self.outer, self.inner)

    def touch_exprs(self) -> List[Tuple[str, ast.Expr]]:
        return super().touch_exprs() \
            + [("join", expr) for expr in self.conjuncts]

    def run(self, runtime: ExecutionRuntime) -> Iterator[None]:
        self.actual_loops += 1
        ctx = runtime.ctx
        condition = self.condition_fn
        check = self.filter_fn
        kind = self.kind
        inner_entries = self._inner_entries
        gov = runtime.governor
        for __ in self.outer.run(runtime):
            # One tick per outer row: NL chains can spin for a long time
            # without emitting anything (anti/semi joins especially), so
            # progress is bounded here rather than only at emission.
            if gov is not None:
                gov.tick()
            matched = False
            for __ in self.inner.run(runtime):
                if condition(ctx) is not True:
                    continue
                matched = True
                if kind is JoinKind.SEMI or kind is JoinKind.ANTI:
                    break
                if check(ctx) is True:
                    self.actual_rows += 1
                    yield
            if kind is JoinKind.SEMI:
                if matched and check(ctx) is True:
                    self.actual_rows += 1
                    yield
            elif kind is JoinKind.ANTI:
                if not matched:
                    for entry_id in inner_entries:
                        ctx[entry_id] = None
                    if check(ctx) is True:
                        self.actual_rows += 1
                        yield
            elif kind is JoinKind.LEFT and not matched:
                for entry_id in inner_entries:
                    ctx[entry_id] = None
                if check(ctx) is True:
                    self.actual_rows += 1
                    yield

    def _outer_states(self, runtime: ExecutionRuntime) -> Iterator[None]:
        """Drive the outer side, leaving each outer row in the context.

        A nested-loop outer child streams through :meth:`run_ctx` (no
        intermediate batch materialization — a left-deep NL chain
        materializes only at its top); any other child runs batched and
        is unpacked into context slots row by row."""
        outer = self.outer
        if isinstance(outer, NestedLoopJoinNode):
            yield from outer.run_ctx(runtime)
            return
        ctx = runtime.ctx
        for batch in outer.run_batches(runtime):
            cols = list(batch.columns.items())
            for i in range(batch.length):
                for entry_id, column in cols:
                    ctx[entry_id] = column[i]
                yield

    def run_ctx(self, runtime: ExecutionRuntime) -> Iterator[None]:
        """Row-path join loop over a batched outer side.

        Identical to :meth:`run` except the outer side comes from
        :meth:`_outer_states` (batched leaf scans keep their vectorized
        filters); the inner side re-runs per outer row through the row
        interpreter (it may read outer context slots — index lookups,
        pushed-down correlated predicates)."""
        self.actual_loops += 1
        ctx = runtime.ctx
        condition = self.condition_fn
        check = self.filter_fn
        kind = self.kind
        inner = self.inner
        inner_entries = self._inner_entries
        gov = runtime.governor
        for __ in self._outer_states(runtime):
            if gov is not None:
                gov.tick()
            matched = False
            for __ in inner.run(runtime):
                if condition(ctx) is not True:
                    continue
                matched = True
                if kind is JoinKind.SEMI or kind is JoinKind.ANTI:
                    break
                if check(ctx) is True:
                    self.actual_rows += 1
                    yield
            if kind is JoinKind.SEMI:
                if matched and check(ctx) is True:
                    self.actual_rows += 1
                    yield
            elif kind is JoinKind.ANTI:
                if not matched:
                    for entry_id in inner_entries:
                        ctx[entry_id] = None
                    if check(ctx) is True:
                        self.actual_rows += 1
                        yield
            elif kind is JoinKind.LEFT and not matched:
                for entry_id in inner_entries:
                    ctx[entry_id] = None
                if check(ctx) is True:
                    self.actual_rows += 1
                    yield

    def run_batches(self, runtime: ExecutionRuntime) -> Iterator[RowBatch]:
        """Materialize :meth:`run_ctx` output into batches.

        The join's own filter already ran row-wise inside run_ctx, so no
        flush-time mask is needed."""
        ctx = runtime.ctx
        acc = BatchAccumulator(self.produced_entries(), runtime.batch_size)
        add_ctx = acc.add_ctx
        # actual_rows is charged inside run_ctx (where fused NL chains
        # stream); only the batch count is accounted here.
        for __ in self.run_ctx(runtime):
            add_ctx(ctx)
            if acc.full:
                self.actual_batches += 1
                yield runtime.note_batch(acc.flush())
        if acc.length:
            self.actual_batches += 1
            yield runtime.note_batch(acc.flush())

    def label(self) -> str:
        if self.kind is JoinKind.INNER:
            return "Nested loop inner join"
        if self.kind is JoinKind.LEFT:
            return "Nested loop left join"
        if self.kind is JoinKind.SEMI:
            return "Nested loop semijoin"
        return "Nested loop antijoin"


class HashJoinNode(PlanNode):
    """Hash join: materialises the build side, probes with the other.

    The *probe* child is the row-preserving side for LEFT / SEMI / ANTI
    kinds.  Note the paper's lesson 2 (Section 7): MySQL's *inner* hash
    join reverses the usual build/probe convention; the plan converter
    performs that flip before constructing this node, so here build is
    always build.
    """

    def __init__(self, probe: PlanNode, build: PlanNode, kind: JoinKind,
                 probe_key_exprs: List[ast.Expr], probe_key_fns: List[Callable],
                 build_key_exprs: List[ast.Expr], build_key_fns: List[Callable],
                 residual_conjuncts: List[ast.Expr],
                 residual_fn: Callable) -> None:
        super().__init__()
        self.probe = probe
        self.build = build
        self.kind = kind
        self.probe_key_exprs = probe_key_exprs
        self.probe_key_fns = probe_key_fns
        self.build_key_exprs = build_key_exprs
        self.build_key_fns = build_key_fns
        self.residual_conjuncts = residual_conjuncts
        self.residual_fn = residual_fn
        self._build_entries = build.produced_entries()

    def children(self) -> Sequence[PlanNode]:
        return (self.probe, self.build)

    def touch_exprs(self) -> List[Tuple[str, ast.Expr]]:
        return super().touch_exprs() \
            + [("join", expr) for expr in self.probe_key_exprs] \
            + [("join", expr) for expr in self.build_key_exprs] \
            + [("join", expr) for expr in self.residual_conjuncts]

    def _build_table_rows(self, runtime: ExecutionRuntime
                          ) -> Tuple[Dict[tuple, List[tuple]], int]:
        """Materialise the build side, charging the governor as it grows.

        The per-row byte width is sampled from the first saved tuple;
        charges go out in 128-row chunks to stay off the hot path.
        Returns the table plus the total charged bytes (released by the
        caller when the probe finishes or the generator is closed)."""
        ctx = runtime.ctx
        build_entries = self._build_entries
        table: Dict[tuple, List[tuple]] = {}
        build_fns = self.build_key_fns
        gov = runtime.governor
        charged = 0
        row_bytes = 0
        pending = 0
        for __ in self.build.run(runtime):
            key = tuple(fn(ctx) for fn in build_fns)
            if any(part is None for part in key):
                continue
            saved = tuple(ctx[entry_id] for entry_id in build_entries)
            table.setdefault(key, []).append(saved)
            if gov is not None:
                if row_bytes == 0:
                    row_bytes = approx_row_bytes(saved) \
                        + BUCKET_OVERHEAD_BYTES
                pending += 1
                if pending >= 128:
                    delta = pending * row_bytes
                    gov.charge(delta, "hash_join_build")
                    charged += delta
                    pending = 0
        if gov is not None and pending:
            delta = pending * row_bytes
            gov.charge(delta, "hash_join_build")
            charged += delta
        return table, charged

    def run(self, runtime: ExecutionRuntime) -> Iterator[None]:
        self.actual_loops += 1
        ctx = runtime.ctx
        build_entries = self._build_entries
        table, charged = self._build_table_rows(runtime)
        gov = runtime.governor
        try:
            yield from self._probe_rows(runtime, table)
        finally:
            if gov is not None and charged:
                gov.release(charged)

    def _probe_rows(self, runtime: ExecutionRuntime,
                    table: Dict[tuple, List[tuple]]) -> Iterator[None]:
        ctx = runtime.ctx
        build_entries = self._build_entries
        probe_fns = self.probe_key_fns
        residual = self.residual_fn
        check = self.filter_fn
        kind = self.kind
        empty: List[tuple] = []
        for __ in self.probe.run(runtime):
            key = tuple(fn(ctx) for fn in probe_fns)
            bucket = empty if any(part is None for part in key) \
                else table.get(key, empty)
            matched = False
            for saved in bucket:
                for entry_id, row in zip(build_entries, saved):
                    ctx[entry_id] = row
                if residual(ctx) is not True:
                    continue
                matched = True
                if kind is JoinKind.SEMI or kind is JoinKind.ANTI:
                    break
                if check(ctx) is True:
                    self.actual_rows += 1
                    yield
            if kind is JoinKind.SEMI:
                if matched and check(ctx) is True:
                    self.actual_rows += 1
                    yield
            elif kind is JoinKind.ANTI:
                if not matched:
                    for entry_id in build_entries:
                        ctx[entry_id] = None
                    if check(ctx) is True:
                        self.actual_rows += 1
                        yield
            elif kind is JoinKind.LEFT and not matched:
                for entry_id in build_entries:
                    ctx[entry_id] = None
                if check(ctx) is True:
                    self.actual_rows += 1
                    yield

    def _build_table_batches(self, runtime: ExecutionRuntime
                             ) -> Tuple[Dict[object, List[tuple]], int]:
        """Batch twin of :meth:`_build_table_rows` (charge per batch)."""
        parallel = runtime.parallel
        if parallel is not None and isinstance(self.build, TableScanNode):
            built = parallel.join_build(self, self.build, runtime)
            if built is not None:
                return built
        build_entries = self._build_entries
        single_key = len(self.bx_build_keys) == 1
        table: Dict[object, List[tuple]] = {}
        setdefault = table.setdefault
        gov = runtime.governor
        charged = 0
        row_bytes = 0
        for build_batch in self.build.run_batches(runtime):
            key_cols = [fn(build_batch) for fn in self.bx_build_keys]
            saved_cols = [build_batch.columns[e] for e in build_entries]
            saved_rows = zip(*saved_cols) if saved_cols \
                else iter([()] * build_batch.length)
            if single_key:
                for key, saved in zip(key_cols[0], saved_rows):
                    if key is not None:
                        setdefault(key, []).append(saved)
            else:
                build_keys = zip(*key_cols) if key_cols \
                    else iter([()] * build_batch.length)
                for key, saved in zip(build_keys, saved_rows):
                    if None not in key:
                        setdefault(key, []).append(saved)
            if gov is not None and build_batch.length:
                if row_bytes == 0:
                    sample = tuple(col[0] for col in saved_cols) \
                        if saved_cols else ()
                    row_bytes = approx_row_bytes(sample) \
                        + BUCKET_OVERHEAD_BYTES
                delta = build_batch.length * row_bytes
                gov.charge(delta, "hash_join_build")
                charged += delta
        return table, charged

    def run_batches(self, runtime: ExecutionRuntime) -> Iterator[RowBatch]:
        """Build and probe per batch with vectorized key evaluation.

        Residual (non-equi) conjuncts — rare — are evaluated per
        candidate pair through the row-compiled ``residual_fn`` under
        temporary context writes, exactly like the row engine."""
        self.actual_loops += 1
        # Single-key joins (the common case) hash the bare scalar; the
        # dict equality matches 1-tuple keys exactly, without the
        # per-row tuple build.
        table, charged = self._build_table_batches(runtime)
        gov = runtime.governor
        try:
            yield from self._probe_batches(runtime, table)
        finally:
            if gov is not None and charged:
                gov.release(charged)

    def _probe_batches(self, runtime: ExecutionRuntime,
                       table: Dict[object, List[tuple]]
                       ) -> Iterator[RowBatch]:
        ctx = runtime.ctx
        build_entries = self._build_entries
        single_key = len(self.bx_build_keys) == 1
        residual = self.residual_fn
        has_residual = bool(self.residual_conjuncts)
        kind = self.kind
        probe_entries = self.probe.produced_entries()
        acc = BatchAccumulator(probe_entries + list(build_entries),
                               runtime.batch_size)
        mask_fn = self.bx_filter
        nulls = (None,) * len(build_entries)
        empty: List[tuple] = []
        get_bucket = table.get
        inner_fast = kind is JoinKind.INNER and not has_residual
        for probe_batch in self.probe.run_batches(runtime):
            key_cols = [fn(probe_batch) for fn in self.bx_probe_keys]
            probe_cols = [probe_batch.columns[e] for e in probe_entries]
            probe_rows = zip(*probe_cols) if probe_cols \
                else iter([()] * probe_batch.length)
            if single_key:
                keys: Iterator = iter(key_cols[0])
            elif key_cols:
                keys = zip(*key_cols)
            else:  # cross join: every row keys to the () bucket
                keys = iter([()] * probe_batch.length)
            if inner_fast:
                # Inner join without residual: null keys are never in
                # the table, so bucket lookup doubles as the null check;
                # rows append straight into the accumulator's buffer.
                out_rows = acc.rows
                append = out_rows.append
                for key, probe_values in zip(keys, probe_rows):
                    bucket = get_bucket(key)
                    if bucket:
                        for saved in bucket:
                            append(probe_values + saved)
                        if len(out_rows) >= acc.batch_size:
                            yield from _emit(self, acc, mask_fn, runtime)
                            out_rows = acc.rows
                            append = out_rows.append
                continue
            for key, probe_values in zip(keys, probe_rows):
                if single_key:
                    bucket = empty if key is None \
                        else get_bucket(key, empty)
                else:
                    bucket = empty if None in key \
                        else get_bucket(key, empty)
                if has_residual and bucket:
                    for entry_id, value in zip(probe_entries, probe_values):
                        ctx[entry_id] = value
                matched = False
                last_saved = nulls
                for saved in bucket:
                    if has_residual:
                        for entry_id, row in zip(build_entries, saved):
                            ctx[entry_id] = row
                        if residual(ctx) is not True:
                            continue
                    matched = True
                    last_saved = saved
                    if kind is JoinKind.SEMI or kind is JoinKind.ANTI:
                        break
                    acc.add_values(probe_values + saved)
                    if acc.full:
                        yield from _emit(self, acc, mask_fn, runtime)
                if kind is JoinKind.SEMI:
                    if matched:
                        acc.add_values(probe_values + last_saved)
                elif kind is JoinKind.ANTI:
                    if not matched:
                        acc.add_values(probe_values + nulls)
                elif kind is JoinKind.LEFT and not matched:
                    acc.add_values(probe_values + nulls)
                if acc.full:
                    yield from _emit(self, acc, mask_fn, runtime)
        if acc.length:
            yield from _emit(self, acc, mask_fn, runtime)

    def label(self) -> str:
        keys = ", ".join(
            f"{_expr_text(p)} = {_expr_text(b)}"
            for p, b in zip(self.probe_key_exprs, self.build_key_exprs))
        if self.kind is JoinKind.INNER:
            name = "Inner hash join"
        elif self.kind is JoinKind.LEFT:
            name = "Left hash join"
        elif self.kind is JoinKind.SEMI:
            name = "Hash semijoin"
        else:
            name = "Hash antijoin"
        return f"{name} ({keys})" if keys else f"{name} (cross)"


# ---------------------------------------------------------------------------
# Block-level operators
# ---------------------------------------------------------------------------

class FilterNode(PlanNode):
    """Stand-alone filter (used for HAVING and leftover predicates)."""

    def __init__(self, child: PlanNode, conjuncts: List[ast.Expr],
                 condition_fn: Callable) -> None:
        super().__init__()
        self.child = child
        self.conjuncts = conjuncts
        self.condition_fn = condition_fn

    def children(self) -> Sequence[PlanNode]:
        return (self.child,)

    def run(self, runtime: ExecutionRuntime) -> Iterator[None]:
        self.actual_loops += 1
        condition = self.condition_fn
        ctx = runtime.ctx
        for __ in self.child.run(runtime):
            if condition(ctx) is True:
                self.actual_rows += 1
                yield

    def run_batches(self, runtime: ExecutionRuntime) -> Iterator[RowBatch]:
        self.actual_loops += 1
        condition = self.bx_condition
        for batch in self.child.run_batches(runtime):
            if condition is not None:
                batch = batch.filter_true(condition(batch))
            if batch.length:
                yield self._note(runtime, batch)

    def label(self) -> str:
        text = " and ".join(_expr_text(c) for c in self.conjuncts)
        return f"Filter: ({text})"


class SortNode(PlanNode):
    """Materialising sort over the live context slots."""

    def __init__(self, child: PlanNode, order_items: List[ast.OrderItem],
                 key_fns: List[Callable], live_entries: List[int]) -> None:
        super().__init__()
        self.child = child
        self.order_items = order_items
        self.key_fns = key_fns
        self.live_entries = live_entries

    def children(self) -> Sequence[PlanNode]:
        return (self.child,)

    def touch_exprs(self) -> List[Tuple[str, ast.Expr]]:
        return super().touch_exprs() \
            + [("sort", item.expr) for item in self.order_items]

    def run(self, runtime: ExecutionRuntime) -> Iterator[None]:
        self.actual_loops += 1
        ctx = runtime.ctx
        live = self.live_entries
        captured: List[Tuple[tuple, tuple]] = []
        gov = runtime.governor
        # Under the reduced-memory retry the sort a forced streaming
        # aggregate inserted must not re-breach the cap it is there to
        # relieve: its charges spill (counted) instead of raising.
        spillable = gov.spill_sorts if gov is not None else False
        row_bytes = 0
        pending = 0
        charged = 0
        try:
            for __ in self.child.run(runtime):
                keys = tuple(fn(ctx) for fn in self.key_fns)
                captured.append((keys, tuple(ctx[e] for e in live)))
                if gov is not None:
                    if row_bytes == 0:
                        first = captured[0]
                        row_bytes = approx_row_bytes(first[0]) \
                            + approx_row_bytes(first[1])
                    pending += 1
                    if pending >= 256:
                        delta = pending * row_bytes
                        gov.charge(delta, "sort", spillable)
                        charged += delta
                        pending = 0
            if gov is not None and pending:
                delta = pending * row_bytes
                gov.charge(delta, "sort", spillable)
                charged += delta
            sort_rows(captured, self.order_items)
            for __, saved in captured:
                for entry_id, row in zip(live, saved):
                    ctx[entry_id] = row
                self.actual_rows += 1
                yield
        finally:
            if gov is not None and charged:
                gov.release(charged)

    def run_batches(self, runtime: ExecutionRuntime) -> Iterator[RowBatch]:
        self.actual_loops += 1
        captured: List[Tuple[tuple, tuple]] = []
        entries: Optional[List[int]] = None
        gov = runtime.governor
        spillable = gov.spill_sorts if gov is not None else False
        row_bytes = 0
        charged = 0
        try:
            for batch in self.child.run_batches(runtime):
                if entries is None:
                    # Live entries the child actually produces in batch
                    # form (a post-aggregate sort's live list can include
                    # pre-agg entries the row engine merely leaves stale
                    # in ctx).
                    entries = [e for e in self.live_entries
                               if e in batch.columns]
                key_cols = [fn(batch) for fn in self.bx_keys]
                live_cols = [batch.columns[e] for e in entries]
                # Row-wise (key tuple, live tuple) pairs built by zip at
                # C speed; empty-column edge cases fall back to repeat().
                keys = zip(*key_cols) if key_cols else \
                    iter([()] * batch.length)
                saved = zip(*live_cols) if live_cols else \
                    iter([()] * batch.length)
                captured.extend(zip(keys, saved))
                if gov is not None and batch.length:
                    if row_bytes == 0:
                        first = captured[0]
                        row_bytes = approx_row_bytes(first[0]) \
                            + approx_row_bytes(first[1])
                    delta = batch.length * row_bytes
                    gov.charge(delta, "sort", spillable)
                    charged += delta
            if entries is None:
                return
            sort_rows(captured, self.order_items)
            size = runtime.batch_size
            for start in range(0, len(captured), size):
                chunk = captured[start:start + size]
                transposed = list(zip(*(saved for __, saved in chunk)))
                columns = {entry: list(column) for entry, column
                           in zip(entries, transposed)}
                yield self._note(runtime, RowBatch(columns, len(chunk)))
        finally:
            if gov is not None and charged:
                gov.release(charged)

    def label(self) -> str:
        parts = []
        for item in self.order_items:
            text = _expr_text(item.expr)
            parts.append(f"{text} DESC" if item.descending else text)
        return "Sort: " + ", ".join(parts)


def sort_rows(captured: List[Tuple[tuple, tuple]],
              order_items: List[ast.OrderItem]) -> None:
    """Stable multi-key sort with MySQL NULL ordering.

    NULLs sort first ascending and last descending; implemented as one
    stable pass per key from least- to most-significant.
    """
    for index in range(len(order_items) - 1, -1, -1):
        descending = order_items[index].descending

        def key_fn(entry, i=index):
            value = entry[0][i]
            if value is None:
                return (0, 0)
            return (1, value)

        captured.sort(key=key_fn, reverse=descending)


class AggSpec:
    """One aggregate computation within an AggregateNode."""

    def __init__(self, func: ast.AggFunc, arg_fn: Optional[Callable],
                 distinct: bool, star: bool,
                 arg_expr: Optional[ast.Expr] = None) -> None:
        self.func = func
        self.arg_fn = arg_fn
        self.distinct = distinct
        self.star = star
        #: Source expression of the argument (batch lowering re-compiles
        #: it vectorized; None for COUNT(*)).
        self.arg_expr = arg_expr


class AggregateStrategy(enum.Enum):
    HASH = "hash"
    STREAM = "stream"


class AggregateNode(PlanNode):
    """Grouping and aggregation; output goes to the block's agg entry.

    STREAM requires input grouped on the group keys (the builder inserts a
    sort when needed — MySQL's classic sort-then-stream aggregation, which
    the paper's Q72 plans both use).
    """

    def __init__(self, child: Optional[PlanNode], group_fns: List[Callable],
                 group_exprs: List[ast.Expr], specs: List[AggSpec],
                 strategy: AggregateStrategy, output_entry_id: int) -> None:
        super().__init__()
        self.child = child
        self.group_fns = group_fns
        self.group_exprs = group_exprs
        self.specs = specs
        self.strategy = strategy
        self.output_entry_id = output_entry_id

    def children(self) -> Sequence[PlanNode]:
        return (self.child,) if self.child is not None else ()

    def touch_exprs(self) -> List[Tuple[str, ast.Expr]]:
        return super().touch_exprs() \
            + [("group", expr) for expr in self.group_exprs]

    def produced_entries(self) -> List[int]:
        return [self.output_entry_id]

    def run(self, runtime: ExecutionRuntime) -> Iterator[None]:
        self.actual_loops += 1
        if self.strategy is AggregateStrategy.STREAM:
            yield from self._run_stream(runtime)
        else:
            yield from self._run_hash(runtime)

    def run_batches(self, runtime: ExecutionRuntime) -> Iterator[RowBatch]:
        self.actual_loops += 1
        if self.strategy is AggregateStrategy.STREAM:
            yield from self._run_stream_batches(runtime)
        else:
            yield from self._run_hash_batches(runtime)

    def _child_states(self, runtime: ExecutionRuntime) -> Iterator[None]:
        if self.child is None:
            yield  # SELECT without FROM: one empty input state
        else:
            yield from self.child.run(runtime)

    def _child_batches(self, runtime: ExecutionRuntime
                       ) -> Iterator[RowBatch]:
        if self.child is None:
            yield RowBatch({}, 1)  # one empty input state
        else:
            yield from self.child.run_batches(runtime)

    def _input_columns(self, batch: RowBatch
                       ) -> Tuple[List[list], List[Optional[list]]]:
        """Vectorize group keys and aggregate arguments for one batch."""
        group_cols = [fn(batch) for fn in self.bx_group]
        arg_cols = [fn(batch) if fn is not None else None
                    for fn in self.bx_args]
        return group_cols, arg_cols

    def _parallel_merge(self, runtime: ExecutionRuntime, charge: bool):
        """Attempt the morsel-parallel pre-aggregation merge.

        Eligible when the input is a bare table scan and no aggregate is
        DISTINCT (first-occurrence fold order cannot be replayed from
        per-chunk partials).  Returns ``(groups, order, charged)`` or
        None; the workers compute per-chunk per-key partials and the
        parent folds them in chunk order, replaying the serial float
        fold exactly (see ``_Accumulator.partial_of``)."""
        parallel = runtime.parallel
        if parallel is None or not isinstance(self.child, TableScanNode) \
                or any(spec.distinct for spec in self.specs):
            return None
        return parallel.agg_merge(self, self.child, runtime, _Accumulator,
                                  charge=charge)

    def _emit_merged(self, runtime: ExecutionRuntime,
                     groups: Dict[tuple, List["_Accumulator"]],
                     order: List[tuple], charged: int
                     ) -> Iterator[RowBatch]:
        """Emit parallel-merged groups exactly like the serial paths."""
        gov = runtime.governor
        try:
            if not groups and not self.group_fns:
                # Scalar aggregation over empty input yields one row.
                groups[()] = [_Accumulator(spec) for spec in self.specs]
                order.append(())
            acc = BatchAccumulator([self.output_entry_id],
                                   runtime.batch_size)
            for key in order:
                acc.add_values(
                    (key + tuple(a.result() for a in groups[key]),))
                if acc.full:
                    yield self._note(runtime, acc.flush())
            if acc.length:
                yield self._note(runtime, acc.flush())
        finally:
            if gov is not None and charged:
                gov.release(charged)

    def _run_hash_batches(self, runtime: ExecutionRuntime
                          ) -> Iterator[RowBatch]:
        merged = self._parallel_merge(runtime, charge=True)
        if merged is not None:
            yield from self._emit_merged(runtime, *merged)
            return
        groups: Dict[tuple, List[_Accumulator]] = {}
        order: List[tuple] = []
        specs = self.specs
        gov = runtime.governor
        group_bytes = 0
        charged = 0
        try:
            for batch in self._child_batches(runtime):
                group_cols, arg_cols = self._input_columns(batch)
                length = batch.length
                if group_cols:
                    keys = list(zip(*group_cols))
                else:
                    keys = [()] * length
                # Gather each key's row indexes, then fold the gathered
                # argument slices in bulk; within a key the row order (and
                # so the float fold order) matches the row engine's.
                index_map: Dict[tuple, List[int]] = {}
                batch_order: List[tuple] = []
                for i, key in enumerate(keys):
                    idxs = index_map.get(key)
                    if idxs is None:
                        index_map[key] = [i]
                        batch_order.append(key)
                    else:
                        idxs.append(i)
                created = 0
                for key in batch_order:
                    idxs = index_map[key]
                    accumulators = groups.get(key)
                    if accumulators is None:
                        accumulators = [_Accumulator(spec)
                                        for spec in specs]
                        groups[key] = accumulators
                        order.append(key)
                        created += 1
                    whole = len(idxs) == length
                    for accumulator, column in zip(accumulators, arg_cols):
                        if column is None:  # COUNT(*)
                            accumulator.count += len(idxs)
                        elif whole:
                            accumulator.add_many(column)
                        else:
                            accumulator.add_many([column[i] for i in idxs])
                # Charge per batch for the groups it created (same
                # per-group estimate as the row engine's hash path).
                if gov is not None and created:
                    if group_bytes == 0:
                        group_bytes = self._group_bytes(order[0])
                    delta = created * group_bytes
                    gov.charge(delta, "hash_agg")
                    charged += delta
            if not groups and not self.group_fns:
                # Scalar aggregation over empty input yields one row.
                groups[()] = [_Accumulator(spec) for spec in self.specs]
                order.append(())
            acc = BatchAccumulator([self.output_entry_id],
                                   runtime.batch_size)
            for key in order:
                acc.add_values(
                    (key + tuple(a.result() for a in groups[key]),))
                if acc.full:
                    yield self._note(runtime, acc.flush())
            if acc.length:
                yield self._note(runtime, acc.flush())
        finally:
            if gov is not None and charged:
                gov.release(charged)

    def _run_stream_batches(self, runtime: ExecutionRuntime
                            ) -> Iterator[RowBatch]:
        if not self.group_fns:
            # Scalar streaming aggregation folds exactly like scalar
            # hash aggregation (one bulk fold per input batch into the
            # single () group), so the parallel merge covers both.
            # Grouped streams stay serial: their output order depends on
            # the input's run structure, not a hash table.  No governor
            # charge — the serial stream path never charges either.
            merged = self._parallel_merge(runtime, charge=False)
            if merged is not None:
                yield from self._emit_merged(runtime, *merged)
                return
        acc = BatchAccumulator([self.output_entry_id],
                               runtime.batch_size)
        current_key: object = _NEVER
        accumulators: List[_Accumulator] = []
        saw_input = False
        specs = self.specs
        for batch in self._child_batches(runtime):
            length = batch.length
            if not length:
                continue
            saw_input = True
            group_cols, arg_cols = self._input_columns(batch)
            if group_cols:
                keys = list(zip(*group_cols))
            else:
                keys = [()] * length
            # Grouped input arrives in contiguous key runs; fold each
            # run's argument slices in one bulk call per aggregate.
            pos = 0
            for key, run in itertools.groupby(keys):
                start = pos
                pos += sum(1 for __ in run)
                if key != current_key:
                    if not isinstance(current_key, _Never):
                        acc.add_values((current_key + tuple(
                            a.result() for a in accumulators),))
                        if acc.full:
                            yield self._note(runtime, acc.flush())
                    current_key = key
                    accumulators = [_Accumulator(spec) for spec in specs]
                seg_len = pos - start
                for accumulator, column in zip(accumulators, arg_cols):
                    if column is None:  # COUNT(*)
                        accumulator.count += seg_len
                    else:
                        accumulator.add_many(column[start:pos])
        if saw_input:
            acc.add_values((current_key + tuple(
                a.result() for a in accumulators),))
        elif not self.group_fns:
            accumulators = [_Accumulator(spec) for spec in self.specs]
            acc.add_values(
                (tuple(a.result() for a in accumulators),))
        if acc.length:
            yield self._note(runtime, acc.flush())

    def _group_bytes(self, key: tuple) -> int:
        """Per-group charge estimate: key + one accumulator per spec."""
        return (approx_row_bytes(key)
                + ACCUMULATOR_BYTES * len(self.specs)
                + BUCKET_OVERHEAD_BYTES)

    def _run_hash(self, runtime: ExecutionRuntime) -> Iterator[None]:
        ctx = runtime.ctx
        groups: Dict[tuple, List[_Accumulator]] = {}
        order: List[tuple] = []
        gov = runtime.governor
        group_bytes = 0
        charged = 0
        try:
            for __ in self._child_states(runtime):
                key = tuple(fn(ctx) for fn in self.group_fns)
                accumulators = groups.get(key)
                if accumulators is None:
                    accumulators = [_Accumulator(spec)
                                    for spec in self.specs]
                    groups[key] = accumulators
                    order.append(key)
                    # Charged per *group*, not per row: the hash table
                    # grows with distinct keys, which is exactly what a
                    # memory cap must bound.  A breach here is the one
                    # governed abort with a degradation path (the facade
                    # retries once with a forced streaming aggregate).
                    if gov is not None:
                        if group_bytes == 0:
                            group_bytes = self._group_bytes(key)
                        gov.charge(group_bytes, "hash_agg")
                        charged += group_bytes
                for accumulator in accumulators:
                    accumulator.add(ctx)
            if not groups and not self.group_fns:
                # Scalar aggregation over empty input yields one row.
                groups[()] = [_Accumulator(spec) for spec in self.specs]
                order.append(())
            slot = self.output_entry_id
            for key in order:
                ctx[slot] = key + tuple(a.result() for a in groups[key])
                self.actual_rows += 1
                yield
        finally:
            if gov is not None and charged:
                gov.release(charged)

    def _run_stream(self, runtime: ExecutionRuntime) -> Iterator[None]:
        ctx = runtime.ctx
        slot = self.output_entry_id
        current_key: object = _NEVER
        accumulators: List[_Accumulator] = []
        saw_input = False
        for __ in self._child_states(runtime):
            saw_input = True
            key = tuple(fn(ctx) for fn in self.group_fns)
            if isinstance(current_key, _Never):
                current_key = key
                accumulators = [_Accumulator(spec) for spec in self.specs]
            elif key != current_key:
                ctx[slot] = current_key + tuple(
                    a.result() for a in accumulators)
                self.actual_rows += 1
                yield
                current_key = key
                accumulators = [_Accumulator(spec) for spec in self.specs]
            for accumulator in accumulators:
                accumulator.add(ctx)
        if saw_input:
            ctx[slot] = current_key + tuple(a.result() for a in accumulators)
            self.actual_rows += 1
            yield
        elif not self.group_fns:
            accumulators = [_Accumulator(spec) for spec in self.specs]
            ctx[slot] = tuple(a.result() for a in accumulators)
            self.actual_rows += 1
            yield

    def label(self) -> str:
        parts = [f"{spec.func.value.lower()}(...)" for spec in self.specs]
        name = ("Aggregate" if not self.group_fns
                else "Group aggregate")
        mode = "streaming" if self.strategy is AggregateStrategy.STREAM \
            else "hash"
        return f"{name} ({mode}): " + ", ".join(parts)


class _Accumulator:
    """Incremental computation of one aggregate."""

    __slots__ = ("spec", "count", "total", "total_sq", "minimum", "maximum",
                 "distinct_values")

    def __init__(self, spec: AggSpec) -> None:
        self.spec = spec
        self.count = 0
        self.total = None
        self.total_sq = 0.0
        self.minimum = None
        self.maximum = None
        self.distinct_values = set() if spec.distinct else None

    def add(self, ctx) -> None:
        spec = self.spec
        if spec.star:
            self.count += 1
            return
        self.add_value(spec.arg_fn(ctx))

    def add_many(self, values: List) -> None:
        """Fold a run of already-evaluated argument values (batch path).

        Bulk twin of repeated :meth:`add_value` — same fold order, so
        float results are bit-identical to the row engine's."""
        spec = self.spec
        if spec.star:
            self.count += len(values)
            return
        if spec.distinct:
            # Per-value path preserves first-occurrence fold order.
            for value in values:
                self.add_value(value)
            return
        non_null = [value for value in values if value is not None]
        if not non_null:
            return
        self.count += len(non_null)
        func = spec.func
        if func in (ast.AggFunc.SUM, ast.AggFunc.AVG, ast.AggFunc.STDDEV):
            # sum(rest, first) folds left-to-right like the row engine.
            partial = sum(non_null[1:], non_null[0])
            self.total = partial if self.total is None \
                else self.total + partial
            if func is ast.AggFunc.STDDEV:
                self.total_sq += sum(
                    float(value) * float(value) for value in non_null)
        elif func is ast.AggFunc.MIN:
            smallest = min(non_null)
            if self.minimum is None or smallest < self.minimum:
                self.minimum = smallest
        elif func is ast.AggFunc.MAX:
            largest = max(non_null)
            if self.maximum is None or largest > self.maximum:
                self.maximum = largest

    @staticmethod
    def partial_of(spec: "AggSpec", values: List) -> object:
        """One chunk's detached partial state for the parallel merge.

        Folds ``values`` exactly like :meth:`add_many` would — including
        the left-to-right ``sum(rest, first)`` float order — but into a
        plain ``(count, sum, sum_sq, min, max)`` tuple a morsel worker
        can ship back; :meth:`fold_partial` replays it in the parent.
        COUNT(*) partials are a bare int.  DISTINCT specs have no
        partial form (first-occurrence order is global) and are excluded
        from parallel eligibility before this is called."""
        if spec.star:
            return len(values)
        non_null = [value for value in values if value is not None]
        if not non_null:
            return (0, None, 0.0, None, None)
        func = spec.func
        psum = None
        psq = 0.0
        if func in (ast.AggFunc.SUM, ast.AggFunc.AVG, ast.AggFunc.STDDEV):
            psum = sum(non_null[1:], non_null[0])
            if func is ast.AggFunc.STDDEV:
                psq = sum(float(value) * float(value)
                          for value in non_null)
        return (len(non_null), psum, psq,
                min(non_null) if func is ast.AggFunc.MIN else None,
                max(non_null) if func is ast.AggFunc.MAX else None)

    def fold_partial(self, partial) -> None:
        """Replay one chunk's :meth:`partial_of` state (parallel merge).

        Partials are folded in chunk order, so the accumulator goes
        through the same sequence of float additions as a serial run
        that called :meth:`add_many` once per chunk — results stay
        bit-identical."""
        spec = self.spec
        if spec.star:
            self.count += partial
            return
        count, psum, psq, pmin, pmax = partial
        if not count:
            return
        self.count += count
        func = spec.func
        if func in (ast.AggFunc.SUM, ast.AggFunc.AVG, ast.AggFunc.STDDEV):
            self.total = psum if self.total is None \
                else self.total + psum
            if func is ast.AggFunc.STDDEV:
                self.total_sq += psq
        elif func is ast.AggFunc.MIN:
            if self.minimum is None or pmin < self.minimum:
                self.minimum = pmin
        elif func is ast.AggFunc.MAX:
            if self.maximum is None or pmax > self.maximum:
                self.maximum = pmax

    def add_value(self, value) -> None:
        """Fold one already-evaluated argument value (batch path)."""
        spec = self.spec
        if value is None:
            return
        if self.distinct_values is not None:
            if value in self.distinct_values:
                return
            self.distinct_values.add(value)
        self.count += 1
        func = spec.func
        if func in (ast.AggFunc.SUM, ast.AggFunc.AVG, ast.AggFunc.STDDEV):
            self.total = value if self.total is None else self.total + value
            if func is ast.AggFunc.STDDEV:
                self.total_sq += float(value) * float(value)
        elif func is ast.AggFunc.MIN:
            if self.minimum is None or value < self.minimum:
                self.minimum = value
        elif func is ast.AggFunc.MAX:
            if self.maximum is None or value > self.maximum:
                self.maximum = value

    def result(self):
        func = self.spec.func
        if func is ast.AggFunc.COUNT:
            return self.count
        if func is ast.AggFunc.SUM:
            return self.total
        if func is ast.AggFunc.AVG:
            if self.count == 0:
                return None
            return self.total / self.count
        if func is ast.AggFunc.MIN:
            return self.minimum
        if func is ast.AggFunc.MAX:
            return self.maximum
        if func is ast.AggFunc.STDDEV:
            if self.count == 0:
                return None
            mean = self.total / self.count
            variance = max(0.0, self.total_sq / self.count - mean * mean)
            return variance ** 0.5
        raise ExecutionError(f"unknown aggregate {func}")


class WindowNode(PlanNode):
    """Window-function evaluation over materialised child rows."""

    def __init__(self, child: PlanNode, specs: List["CompiledWindow"],
                 output_entry_id: int, live_entries: List[int]) -> None:
        super().__init__()
        self.child = child
        self.specs = specs
        self.output_entry_id = output_entry_id
        self.live_entries = live_entries

    def children(self) -> Sequence[PlanNode]:
        return (self.child,)

    def produced_entries(self) -> List[int]:
        produced = list(self.child.produced_entries())
        produced.append(self.output_entry_id)
        return produced

    def run(self, runtime: ExecutionRuntime) -> Iterator[None]:
        self.actual_loops += 1
        ctx = runtime.ctx
        live = self.live_entries
        rows: List[tuple] = []
        for __ in self.child.run(runtime):
            rows.append(tuple(ctx[e] for e in live))
        outputs = [[None] * len(self.specs) for __ in rows]
        for spec_index, spec in enumerate(self.specs):
            spec.compute(rows, live, ctx, outputs, spec_index)
        slot = self.output_entry_id
        for row, out in zip(rows, outputs):
            for entry_id, value in zip(live, row):
                ctx[entry_id] = value
            ctx[slot] = tuple(out)
            self.actual_rows += 1
            yield

    def label(self) -> str:
        names = ", ".join(spec.func for spec in self.specs)
        return f"Window: {names}"


class CompiledWindow:
    """One compiled window specification."""

    def __init__(self, func: str, arg_fns: List[Callable],
                 partition_fns: List[Callable],
                 order_fns: List[Callable],
                 order_items: List[ast.OrderItem]) -> None:
        self.func = func
        self.arg_fns = arg_fns
        self.partition_fns = partition_fns
        self.order_fns = order_fns
        self.order_items = order_items

    def compute(self, rows: List[tuple], live: List[int], ctx,
                outputs: List[list], spec_index: int) -> None:
        # Evaluate partition/order/arg values per row under a temporary
        # context restore.
        evaluated = []
        for row_index, row in enumerate(rows):
            for entry_id, value in zip(live, row):
                ctx[entry_id] = value
            partition = tuple(fn(ctx) for fn in self.partition_fns)
            order = tuple(fn(ctx) for fn in self.order_fns)
            arg = self.arg_fns[0](ctx) if self.arg_fns else None
            evaluated.append((partition, order, arg, row_index))
        # Group by partition, sort by order keys within each partition.
        partitions: Dict[tuple, List[tuple]] = {}
        for record in evaluated:
            partitions.setdefault(record[0], []).append(record)
        for members in partitions.values():
            keyed = [((record[1]), record) for record in members]
            sort_rows(keyed, self.order_items or
                      [ast.OrderItem(ast.Literal(0))] * 0)
            ordered = [record for __, record in keyed]
            self._fill(ordered, outputs, spec_index)

    def _fill(self, ordered: List[tuple], outputs: List[list],
              spec_index: int) -> None:
        func = self.func
        if func == "ROW_NUMBER":
            for seq, record in enumerate(ordered, start=1):
                outputs[record[3]][spec_index] = seq
            return
        if func in ("RANK", "DENSE_RANK"):
            rank = 0
            dense = 0
            previous = _NEVER
            for seq, record in enumerate(ordered, start=1):
                if record[1] != previous:
                    rank = seq
                    dense += 1
                    previous = record[1]
                value = rank if func == "RANK" else dense
                outputs[record[3]][spec_index] = value
            return
        # Aggregates over the window.  With an ORDER BY the frame is the
        # default RANGE UNBOUNDED PRECEDING .. CURRENT ROW (peers
        # included); without one it is the whole partition.
        if not self.order_items:
            total = self._aggregate([record[2] for record in ordered])
            for record in ordered:
                outputs[record[3]][spec_index] = total
            return
        index = 0
        length = len(ordered)
        running: List[object] = []
        while index < length:
            peer_end = index
            while peer_end + 1 < length and \
                    ordered[peer_end + 1][1] == ordered[index][1]:
                peer_end += 1
            running.extend(record[2] for record in ordered[index:peer_end + 1])
            value = self._aggregate(running)
            for position in range(index, peer_end + 1):
                outputs[ordered[position][3]][spec_index] = value
            index = peer_end + 1

    def _aggregate(self, values: List[object]):
        non_null = [value for value in values if value is not None]
        func = self.func
        if func == "COUNT":
            return len(non_null) if self.arg_fns else len(values)
        if not non_null:
            return None
        if func == "SUM":
            total = non_null[0]
            for value in non_null[1:]:
                total = total + value
            return total
        if func == "AVG":
            total = non_null[0]
            for value in non_null[1:]:
                total = total + value
            return total / len(non_null)
        if func == "MIN":
            return min(non_null)
        if func == "MAX":
            return max(non_null)
        raise ExecutionError(f"unsupported window function {func}")


class LimitNode(PlanNode):
    """Row-limit enforcement inside a block plan."""

    def __init__(self, child: PlanNode, count: int, offset: int = 0) -> None:
        super().__init__()
        self.child = child
        self.count = count
        self.offset = offset

    def children(self) -> Sequence[PlanNode]:
        return (self.child,)

    def run(self, runtime: ExecutionRuntime) -> Iterator[None]:
        self.actual_loops += 1
        produced = 0
        skipped = 0
        for __ in self.child.run(runtime):
            if skipped < self.offset:
                skipped += 1
                continue
            if produced >= self.count:
                return
            produced += 1
            self.actual_rows += 1
            yield

    def run_batches(self, runtime: ExecutionRuntime) -> Iterator[RowBatch]:
        self.actual_loops += 1
        to_skip = self.offset
        remaining = self.count
        for batch in self.child.run_batches(runtime):
            if to_skip:
                if batch.length <= to_skip:
                    to_skip -= batch.length
                    continue
                batch = batch.slice(to_skip, batch.length)
                to_skip = 0
            if batch.length > remaining:
                batch = batch.slice(0, remaining)
            remaining -= batch.length
            if batch.length:
                yield self._note(runtime, batch)
            if remaining <= 0:
                return

    def label(self) -> str:
        return f"Limit: {self.count} row(s)"


# ---------------------------------------------------------------------------
# Query plan (block output)
# ---------------------------------------------------------------------------

class QueryPlan:
    """A complete plan for one query block (plus UNION parts).

    ``run`` yields projected output tuples; DISTINCT, set operations, and
    LIMIT/OFFSET are applied here, after the plan tree has produced its
    context states.
    """

    def __init__(self, block: QueryBlock, root: Optional[PlanNode],
                 select_exprs: List[ast.Expr],
                 select_fns: List[Callable]) -> None:
        self.block = block
        self.root = root
        self.select_exprs = select_exprs
        self.select_fns = select_fns
        self.distinct = False
        self.limit: Optional[int] = None
        self.offset: Optional[int] = None
        self.union_parts: List[Tuple[ast.SetOp, "QueryPlan"]] = []
        #: Output positions to sort a set-operation result by.
        self.union_order: List[Tuple[int, bool]] = []
        #: EXPLAIN header tag: "" or "(ORCA)" (Listing 7's first line).
        self.origin: str = "mysql"
        self.total_cost: float = 0.0
        self.total_rows: float = 0.0
        #: Batch-compiled select expressions (set by batch lowering).
        self.bx_select: Optional[List[Callable]] = None

    def _own_rows(self, runtime: ExecutionRuntime) -> Iterator[tuple]:
        ctx = runtime.ctx
        fns = self.select_fns
        if self.root is None:
            yield tuple(fn(ctx) for fn in fns)
            return
        for __ in self.root.run(runtime):
            yield tuple(fn(ctx) for fn in fns)

    def run(self, runtime: ExecutionRuntime) -> Iterator[tuple]:
        rows = self._own_rows(runtime)
        if self.union_parts:
            rows = self._union_rows(rows, runtime)
        elif self.distinct:
            rows = _dedup(rows)
        if self.offset or self.limit is not None:
            rows = _limited(rows, self.limit, self.offset or 0)
        return rows

    def _own_batch_rows(self, runtime: ExecutionRuntime
                        ) -> Iterator[List[tuple]]:
        """Project plan-tree batches into chunks of output tuples."""
        fns = self.bx_select
        if self.root is None:
            batch = RowBatch({}, 1)
            runtime.note_batch(batch)
            columns = [fn(batch) for fn in fns]
            yield list(zip(*columns)) if columns else [()]
            return
        for batch in self.root.run_batches(runtime):
            columns = [fn(batch) for fn in fns]
            if columns:
                yield list(zip(*columns))
            else:
                yield [()] * batch.length

    def run_batches(self, runtime: ExecutionRuntime
                    ) -> Iterator[List[tuple]]:
        """Batch-mode twin of :meth:`run`: yields chunks of output
        tuples with DISTINCT / set operations / LIMIT applied."""
        chunks = self._own_batch_rows(runtime)
        if self.union_parts:
            chunks = iter([self._union_batch_rows(chunks, runtime)])
        elif self.distinct:
            chunks = _dedup_chunks(chunks)
        if self.offset or self.limit is not None:
            chunks = _limited_chunks(chunks, self.limit, self.offset or 0)
        return chunks

    def _union_batch_rows(self, own: Iterator[List[tuple]],
                          runtime: ExecutionRuntime) -> List[tuple]:
        collected: List[tuple] = []
        for chunk in own:
            collected.extend(chunk)
        dedup_needed = self.distinct
        for op, part in self.union_parts:
            for chunk in part.run_batches(runtime):
                collected.extend(chunk)
            if op is ast.SetOp.UNION:
                dedup_needed = True
        if dedup_needed:
            collected = list(_dedup(iter(collected)))
        if self.union_order:
            for position, descending in reversed(self.union_order):
                def key_fn(row, p=position):
                    value = row[p]
                    return (0, 0) if value is None else (1, value)
                collected.sort(key=key_fn, reverse=descending)
        return collected

    def _union_rows(self, own: Iterator[tuple],
                    runtime: ExecutionRuntime) -> Iterator[tuple]:
        collected = list(own)
        dedup_needed = self.distinct
        for op, part in self.union_parts:
            collected.extend(part.run(runtime))
            if op is ast.SetOp.UNION:
                dedup_needed = True
        if dedup_needed:
            collected = list(_dedup(iter(collected)))
        if self.union_order:
            for position, descending in reversed(self.union_order):
                def key_fn(row, p=position):
                    value = row[p]
                    return (0, 0) if value is None else (1, value)
                collected.sort(key=key_fn, reverse=descending)
        return iter(collected)


def _dedup(rows: Iterator[tuple]) -> Iterator[tuple]:
    seen = set()
    for row in rows:
        if row in seen:
            continue
        seen.add(row)
        yield row


def _dedup_chunks(chunks: Iterator[List[tuple]]
                  ) -> Iterator[List[tuple]]:
    seen = set()
    for chunk in chunks:
        fresh = []
        for row in chunk:
            if row in seen:
                continue
            seen.add(row)
            fresh.append(row)
        if fresh:
            yield fresh


def _limited_chunks(chunks: Iterator[List[tuple]], limit: Optional[int],
                    offset: int) -> Iterator[List[tuple]]:
    remaining = limit
    for chunk in chunks:
        if offset:
            if len(chunk) <= offset:
                offset -= len(chunk)
                continue
            chunk = chunk[offset:]
            offset = 0
        if remaining is not None:
            if len(chunk) > remaining:
                chunk = chunk[:remaining]
            remaining -= len(chunk)
        if chunk:
            yield chunk
        if remaining is not None and remaining <= 0:
            return


def _limited(rows: Iterator[tuple], limit: Optional[int],
             offset: int) -> Iterator[tuple]:
    produced = 0
    skipped = 0
    for row in rows:
        if skipped < offset:
            skipped += 1
            continue
        if limit is not None and produced >= limit:
            return
        produced += 1
        yield row


# ---------------------------------------------------------------------------
# Plan-tree traversal
# ---------------------------------------------------------------------------

def walk_plan_nodes(query_plan: "QueryPlan") -> Iterator[PlanNode]:
    """Every node reachable from a query plan, each exactly once.

    Covers union parts and the sub-plans of derived tables and CTEs —
    the full set of nodes whose ``actual_rows`` counters one execution
    can touch.
    """
    seen: set = set()

    def visit_plan(plan: "QueryPlan") -> Iterator[PlanNode]:
        if id(plan) in seen:
            return
        seen.add(id(plan))
        if plan.root is not None:
            yield from visit_node(plan.root)
        for __, part in plan.union_parts:
            yield from visit_plan(part)

    def visit_node(node: PlanNode) -> Iterator[PlanNode]:
        if id(node) in seen:
            return
        seen.add(id(node))
        yield node
        for child in node.children():
            yield from visit_node(child)
        subplan = getattr(node, "subplan", None)
        if subplan is not None:
            yield from visit_plan(subplan)

    yield from visit_plan(query_plan)


# ---------------------------------------------------------------------------
# Expression rendering for EXPLAIN labels
# ---------------------------------------------------------------------------

def _expr_text(expr: ast.Expr) -> str:
    from repro.executor.explain import expr_text

    return expr_text(expr)
