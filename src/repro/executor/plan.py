"""Physical plan nodes and their Volcano-style execution.

A plan node tree is produced by MySQL plan refinement (for both the MySQL
and the Orca paths — Section 4.3) and executed against the storage engine.
Execution is context-based: the runtime context is a list indexed by
table-entry id; each access-path node writes the entry's current row into
its slot and *yields control* for every produced combination.  Expressions
read slots directly, which makes correlated evaluation (the paper's
"invalidate on row from part" rebinds) natural: a correlated sub-plan
simply reads the outer entry's current slot.

Every node carries `cost` and `rows` estimates copied from whichever
optimizer produced it, so EXPLAIN shows Orca's estimates on Orca plans
(Section 4.2.2).
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ExecutionError
from repro.sql import ast
from repro.sql.blocks import QueryBlock


class JoinKind(enum.Enum):
    INNER = "inner"
    LEFT = "left"
    SEMI = "semi"
    ANTI = "antijoin"


class AccessMethod(enum.Enum):
    TABLE_SCAN = "table_scan"
    INDEX_RANGE = "index_range"
    INDEX_LOOKUP = "index_lookup"
    INDEX_SCAN = "index_scan"
    MATERIALIZE = "materialize"
    CTE_SCAN = "cte_scan"


class ExecutionRuntime:
    """Per-execution state shared across the whole plan tree."""

    def __init__(self, storage, context_size: int) -> None:
        self.storage = storage
        self.ctx: List = [None] * context_size
        #: cte_id -> materialised rows (single execution per statement,
        #: like MySQL's one-producer-executes model).
        self.cte_rows: Dict[int, List[tuple]] = {}
        #: Per-execution materialisation caches for derived tables, keyed
        #: by plan-node identity -> {correlation snapshot -> rows}.  A
        #: changed snapshot invalidates (re-materialises), matching the
        #: paper's "invalidate on row from ..." semantics; previously seen
        #: snapshots are reused like MySQL's subquery result cache.
        self.materializations: Dict[int, Dict[object, List[tuple]]] = {}
        #: Per-execution subquery-result cache, keyed by
        #: (block id, correlation values).
        self.subquery_cache: Dict[tuple, List[tuple]] = {}
        #: Materialisation (rebind) counts per derived node — "the rebind
        #: count is simply the number of rows coming from the outer side"
        #: (Section 7), deduplicated here by the subquery cache.
        self.rebind_counts: Dict[int, int] = {}


class PlanNode:
    """Base class for physical plan nodes."""

    def __init__(self) -> None:
        self.cost: float = 0.0
        self.rows: float = 0.0
        #: Filter attached during predicate placement (for EXPLAIN).
        self.filter_conjuncts: List[ast.Expr] = []
        #: Compiled filter; identity-true when no conjuncts.
        self.filter_fn: Callable = _always_true

    def children(self) -> Sequence["PlanNode"]:
        return ()

    def produced_entries(self) -> List[int]:
        """Entry ids whose context slots this subtree writes."""
        produced: List[int] = []
        for child in self.children():
            produced.extend(child.produced_entries())
        return produced

    def run(self, runtime: ExecutionRuntime) -> Iterator[None]:
        raise NotImplementedError

    def label(self) -> str:
        raise NotImplementedError


def _always_true(ctx) -> bool:
    return True


# ---------------------------------------------------------------------------
# Access paths
# ---------------------------------------------------------------------------

class _LeafNode(PlanNode):
    def __init__(self, entry_id: int, alias: str) -> None:
        super().__init__()
        self.entry_id = entry_id
        self.alias = alias

    def produced_entries(self) -> List[int]:
        return [self.entry_id]


class TableScanNode(_LeafNode):
    """Sequential heap scan (benefits from prefetch in the cost models)."""

    method = AccessMethod.TABLE_SCAN

    def __init__(self, entry_id: int, table_name: str, alias: str) -> None:
        super().__init__(entry_id, alias)
        self.table_name = table_name

    def run(self, runtime: ExecutionRuntime) -> Iterator[None]:
        ctx = runtime.ctx
        slot = self.entry_id
        check = self.filter_fn
        for row in runtime.storage.table_scan(self.table_name):
            ctx[slot] = row
            if check(ctx) is True:
                yield

    def label(self) -> str:
        return f"Table scan on {self.alias}"


class IndexRangeScanNode(_LeafNode):
    """Range scan over an index using constant bounds."""

    method = AccessMethod.INDEX_RANGE

    def __init__(self, entry_id: int, table_name: str, alias: str,
                 index_name: str, low: Optional[tuple], high: Optional[tuple],
                 low_inclusive: bool = True, high_inclusive: bool = True
                 ) -> None:
        super().__init__(entry_id, alias)
        self.table_name = table_name
        self.index_name = index_name
        self.low = low
        self.high = high
        self.low_inclusive = low_inclusive
        self.high_inclusive = high_inclusive

    def run(self, runtime: ExecutionRuntime) -> Iterator[None]:
        ctx = runtime.ctx
        slot = self.entry_id
        check = self.filter_fn
        rows = runtime.storage.index_range_rows(
            self.table_name, self.index_name, self.low, self.high,
            self.low_inclusive, self.high_inclusive)
        for row in rows:
            ctx[slot] = row
            if check(ctx) is True:
                yield

    def label(self) -> str:
        return (f"Index range scan on {self.alias} "
                f"using {self.index_name}")


class IndexLookupNode(_LeafNode):
    """Point lookup with keys computed from the current context (ref).

    This is MySQL's ``ref`` / ``eq_ref`` access: the inner side of an
    index nested-loop join.
    """

    method = AccessMethod.INDEX_LOOKUP

    def __init__(self, entry_id: int, table_name: str, alias: str,
                 index_name: str, key_exprs: List[ast.Expr],
                 key_fns: List[Callable]) -> None:
        super().__init__(entry_id, alias)
        self.table_name = table_name
        self.index_name = index_name
        self.key_exprs = key_exprs
        self.key_fns = key_fns

    def run(self, runtime: ExecutionRuntime) -> Iterator[None]:
        ctx = runtime.ctx
        slot = self.entry_id
        check = self.filter_fn
        key = tuple(fn(ctx) for fn in self.key_fns)
        if any(part is None for part in key):
            return
        rows = runtime.storage.index_lookup_rows(
            self.table_name, self.index_name, key)
        for row in rows:
            ctx[slot] = row
            if check(ctx) is True:
                yield

    def label(self) -> str:
        keys = ", ".join(_expr_text(expr) for expr in self.key_exprs)
        return (f"Index lookup on {self.alias} using {self.index_name} "
                f"({keys})")


class IndexOrderedScanNode(_LeafNode):
    """Full index scan that supplies rows in key order (Section 7/4)."""

    method = AccessMethod.INDEX_SCAN

    def __init__(self, entry_id: int, table_name: str, alias: str,
                 index_name: str, descending: bool = False) -> None:
        super().__init__(entry_id, alias)
        self.table_name = table_name
        self.index_name = index_name
        self.descending = descending

    def run(self, runtime: ExecutionRuntime) -> Iterator[None]:
        ctx = runtime.ctx
        slot = self.entry_id
        check = self.filter_fn
        rows = runtime.storage.index_ordered_rows(
            self.table_name, self.index_name, self.descending)
        for row in rows:
            ctx[slot] = row
            if check(ctx) is True:
                yield

    def label(self) -> str:
        direction = " (reverse)" if self.descending else ""
        return f"Index scan on {self.alias} using {self.index_name}{direction}"


class DerivedMaterializeNode(_LeafNode):
    """Materialise a sub-plan into a temporary table and scan it.

    When ``correlation_sources`` is non-empty the materialisation is
    invalidated whenever any source slot changes — the paper's
    "Materialize (invalidate on row from part)" behaviour in Listing 7.
    """

    method = AccessMethod.MATERIALIZE

    def __init__(self, entry_id: int, alias: str, subplan: "QueryPlan",
                 correlation_sources: List[int]) -> None:
        super().__init__(entry_id, alias)
        self.subplan = subplan
        self.correlation_sources = correlation_sources

    def run(self, runtime: ExecutionRuntime) -> Iterator[None]:
        ctx = runtime.ctx
        slot = self.entry_id
        check = self.filter_fn
        if self.correlation_sources:
            key = tuple(ctx[source] for source in self.correlation_sources)
        else:
            key = None
        by_key = runtime.materializations.setdefault(id(self), {})
        rows = by_key.get(key)
        if rows is None:
            rows = list(self.subplan.run(runtime))
            by_key[key] = rows
            # Rebind accounting (the paper's Section 7, Orca change 3,
            # concerns exactly these counts): one rebind per distinct
            # outer-row snapshot that forces a re-materialisation.
            runtime.rebind_counts[id(self)] = \
                runtime.rebind_counts.get(id(self), 0) + 1
        for row in rows:
            ctx[slot] = row
            if check(ctx) is True:
                yield

    def label(self) -> str:
        return f"Table scan on {self.alias}"

    def invalidation_label(self) -> Optional[str]:
        if not self.correlation_sources:
            return None
        return "invalidate on row from outer reference"


class _Never:
    pass


_NEVER = _Never()


class CteScanNode(_LeafNode):
    """Scan of a shared CTE materialisation.

    MySQL compiles one producer per consumer but executes only one
    (Section 4.2.3); the runtime keys materialisations by cte id so the
    first consumer executes the producer and the rest reuse its rows.
    """

    method = AccessMethod.CTE_SCAN

    def __init__(self, entry_id: int, alias: str, cte_id: int,
                 cte_name: str, subplan: "QueryPlan") -> None:
        super().__init__(entry_id, alias)
        self.cte_id = cte_id
        self.cte_name = cte_name
        self.subplan = subplan

    def run(self, runtime: ExecutionRuntime) -> Iterator[None]:
        rows = runtime.cte_rows.get(self.cte_id)
        if rows is None:
            rows = list(self.subplan.run(runtime))
            runtime.cte_rows[self.cte_id] = rows
        ctx = runtime.ctx
        slot = self.entry_id
        check = self.filter_fn
        for row in rows:
            ctx[slot] = row
            if check(ctx) is True:
                yield

    def label(self) -> str:
        return f"Table scan on {self.alias} (cte {self.cte_name})"


# ---------------------------------------------------------------------------
# Joins
# ---------------------------------------------------------------------------

class NestedLoopJoinNode(PlanNode):
    """Nested-loop join; the inner side restarts per outer combination."""

    def __init__(self, outer: PlanNode, inner: PlanNode, kind: JoinKind,
                 conjuncts: List[ast.Expr], condition_fn: Callable) -> None:
        super().__init__()
        self.outer = outer
        self.inner = inner
        self.kind = kind
        self.conjuncts = conjuncts
        self.condition_fn = condition_fn
        self._inner_entries = inner.produced_entries()

    def children(self) -> Sequence[PlanNode]:
        return (self.outer, self.inner)

    def run(self, runtime: ExecutionRuntime) -> Iterator[None]:
        ctx = runtime.ctx
        condition = self.condition_fn
        check = self.filter_fn
        kind = self.kind
        inner_entries = self._inner_entries
        for __ in self.outer.run(runtime):
            matched = False
            for __ in self.inner.run(runtime):
                if condition(ctx) is not True:
                    continue
                matched = True
                if kind is JoinKind.SEMI or kind is JoinKind.ANTI:
                    break
                if check(ctx) is True:
                    yield
            if kind is JoinKind.SEMI:
                if matched and check(ctx) is True:
                    yield
            elif kind is JoinKind.ANTI:
                if not matched:
                    for entry_id in inner_entries:
                        ctx[entry_id] = None
                    if check(ctx) is True:
                        yield
            elif kind is JoinKind.LEFT and not matched:
                for entry_id in inner_entries:
                    ctx[entry_id] = None
                if check(ctx) is True:
                    yield

    def label(self) -> str:
        if self.kind is JoinKind.INNER:
            return "Nested loop inner join"
        if self.kind is JoinKind.LEFT:
            return "Nested loop left join"
        if self.kind is JoinKind.SEMI:
            return "Nested loop semijoin"
        return "Nested loop antijoin"


class HashJoinNode(PlanNode):
    """Hash join: materialises the build side, probes with the other.

    The *probe* child is the row-preserving side for LEFT / SEMI / ANTI
    kinds.  Note the paper's lesson 2 (Section 7): MySQL's *inner* hash
    join reverses the usual build/probe convention; the plan converter
    performs that flip before constructing this node, so here build is
    always build.
    """

    def __init__(self, probe: PlanNode, build: PlanNode, kind: JoinKind,
                 probe_key_exprs: List[ast.Expr], probe_key_fns: List[Callable],
                 build_key_exprs: List[ast.Expr], build_key_fns: List[Callable],
                 residual_conjuncts: List[ast.Expr],
                 residual_fn: Callable) -> None:
        super().__init__()
        self.probe = probe
        self.build = build
        self.kind = kind
        self.probe_key_exprs = probe_key_exprs
        self.probe_key_fns = probe_key_fns
        self.build_key_exprs = build_key_exprs
        self.build_key_fns = build_key_fns
        self.residual_conjuncts = residual_conjuncts
        self.residual_fn = residual_fn
        self._build_entries = build.produced_entries()

    def children(self) -> Sequence[PlanNode]:
        return (self.probe, self.build)

    def run(self, runtime: ExecutionRuntime) -> Iterator[None]:
        ctx = runtime.ctx
        build_entries = self._build_entries
        table: Dict[tuple, List[tuple]] = {}
        build_fns = self.build_key_fns
        for __ in self.build.run(runtime):
            key = tuple(fn(ctx) for fn in build_fns)
            if any(part is None for part in key):
                continue
            table.setdefault(key, []).append(
                tuple(ctx[entry_id] for entry_id in build_entries))
        probe_fns = self.probe_key_fns
        residual = self.residual_fn
        check = self.filter_fn
        kind = self.kind
        empty: List[tuple] = []
        for __ in self.probe.run(runtime):
            key = tuple(fn(ctx) for fn in probe_fns)
            bucket = empty if any(part is None for part in key) \
                else table.get(key, empty)
            matched = False
            for saved in bucket:
                for entry_id, row in zip(build_entries, saved):
                    ctx[entry_id] = row
                if residual(ctx) is not True:
                    continue
                matched = True
                if kind is JoinKind.SEMI or kind is JoinKind.ANTI:
                    break
                if check(ctx) is True:
                    yield
            if kind is JoinKind.SEMI:
                if matched and check(ctx) is True:
                    yield
            elif kind is JoinKind.ANTI:
                if not matched:
                    for entry_id in build_entries:
                        ctx[entry_id] = None
                    if check(ctx) is True:
                        yield
            elif kind is JoinKind.LEFT and not matched:
                for entry_id in build_entries:
                    ctx[entry_id] = None
                if check(ctx) is True:
                    yield

    def label(self) -> str:
        keys = ", ".join(
            f"{_expr_text(p)} = {_expr_text(b)}"
            for p, b in zip(self.probe_key_exprs, self.build_key_exprs))
        if self.kind is JoinKind.INNER:
            name = "Inner hash join"
        elif self.kind is JoinKind.LEFT:
            name = "Left hash join"
        elif self.kind is JoinKind.SEMI:
            name = "Hash semijoin"
        else:
            name = "Hash antijoin"
        return f"{name} ({keys})" if keys else f"{name} (cross)"


# ---------------------------------------------------------------------------
# Block-level operators
# ---------------------------------------------------------------------------

class FilterNode(PlanNode):
    """Stand-alone filter (used for HAVING and leftover predicates)."""

    def __init__(self, child: PlanNode, conjuncts: List[ast.Expr],
                 condition_fn: Callable) -> None:
        super().__init__()
        self.child = child
        self.conjuncts = conjuncts
        self.condition_fn = condition_fn

    def children(self) -> Sequence[PlanNode]:
        return (self.child,)

    def run(self, runtime: ExecutionRuntime) -> Iterator[None]:
        condition = self.condition_fn
        ctx = runtime.ctx
        for __ in self.child.run(runtime):
            if condition(ctx) is True:
                yield

    def label(self) -> str:
        text = " and ".join(_expr_text(c) for c in self.conjuncts)
        return f"Filter: ({text})"


class SortNode(PlanNode):
    """Materialising sort over the live context slots."""

    def __init__(self, child: PlanNode, order_items: List[ast.OrderItem],
                 key_fns: List[Callable], live_entries: List[int]) -> None:
        super().__init__()
        self.child = child
        self.order_items = order_items
        self.key_fns = key_fns
        self.live_entries = live_entries

    def children(self) -> Sequence[PlanNode]:
        return (self.child,)

    def run(self, runtime: ExecutionRuntime) -> Iterator[None]:
        ctx = runtime.ctx
        live = self.live_entries
        captured: List[Tuple[tuple, tuple]] = []
        for __ in self.child.run(runtime):
            keys = tuple(fn(ctx) for fn in self.key_fns)
            captured.append((keys, tuple(ctx[e] for e in live)))
        sort_rows(captured, self.order_items)
        for __, saved in captured:
            for entry_id, row in zip(live, saved):
                ctx[entry_id] = row
            yield

    def label(self) -> str:
        parts = []
        for item in self.order_items:
            text = _expr_text(item.expr)
            parts.append(f"{text} DESC" if item.descending else text)
        return "Sort: " + ", ".join(parts)


def sort_rows(captured: List[Tuple[tuple, tuple]],
              order_items: List[ast.OrderItem]) -> None:
    """Stable multi-key sort with MySQL NULL ordering.

    NULLs sort first ascending and last descending; implemented as one
    stable pass per key from least- to most-significant.
    """
    for index in range(len(order_items) - 1, -1, -1):
        descending = order_items[index].descending

        def key_fn(entry, i=index):
            value = entry[0][i]
            if value is None:
                return (0, 0)
            return (1, value)

        captured.sort(key=key_fn, reverse=descending)


class AggSpec:
    """One aggregate computation within an AggregateNode."""

    def __init__(self, func: ast.AggFunc, arg_fn: Optional[Callable],
                 distinct: bool, star: bool) -> None:
        self.func = func
        self.arg_fn = arg_fn
        self.distinct = distinct
        self.star = star


class AggregateStrategy(enum.Enum):
    HASH = "hash"
    STREAM = "stream"


class AggregateNode(PlanNode):
    """Grouping and aggregation; output goes to the block's agg entry.

    STREAM requires input grouped on the group keys (the builder inserts a
    sort when needed — MySQL's classic sort-then-stream aggregation, which
    the paper's Q72 plans both use).
    """

    def __init__(self, child: Optional[PlanNode], group_fns: List[Callable],
                 group_exprs: List[ast.Expr], specs: List[AggSpec],
                 strategy: AggregateStrategy, output_entry_id: int) -> None:
        super().__init__()
        self.child = child
        self.group_fns = group_fns
        self.group_exprs = group_exprs
        self.specs = specs
        self.strategy = strategy
        self.output_entry_id = output_entry_id

    def children(self) -> Sequence[PlanNode]:
        return (self.child,) if self.child is not None else ()

    def produced_entries(self) -> List[int]:
        return [self.output_entry_id]

    def run(self, runtime: ExecutionRuntime) -> Iterator[None]:
        if self.strategy is AggregateStrategy.STREAM:
            yield from self._run_stream(runtime)
        else:
            yield from self._run_hash(runtime)

    def _child_states(self, runtime: ExecutionRuntime) -> Iterator[None]:
        if self.child is None:
            yield  # SELECT without FROM: one empty input state
        else:
            yield from self.child.run(runtime)

    def _run_hash(self, runtime: ExecutionRuntime) -> Iterator[None]:
        ctx = runtime.ctx
        groups: Dict[tuple, List[_Accumulator]] = {}
        order: List[tuple] = []
        for __ in self._child_states(runtime):
            key = tuple(fn(ctx) for fn in self.group_fns)
            accumulators = groups.get(key)
            if accumulators is None:
                accumulators = [_Accumulator(spec) for spec in self.specs]
                groups[key] = accumulators
                order.append(key)
            for accumulator in accumulators:
                accumulator.add(ctx)
        if not groups and not self.group_fns:
            # Scalar aggregation over empty input yields one row.
            groups[()] = [_Accumulator(spec) for spec in self.specs]
            order.append(())
        slot = self.output_entry_id
        for key in order:
            ctx[slot] = key + tuple(a.result() for a in groups[key])
            yield

    def _run_stream(self, runtime: ExecutionRuntime) -> Iterator[None]:
        ctx = runtime.ctx
        slot = self.output_entry_id
        current_key: object = _NEVER
        accumulators: List[_Accumulator] = []
        saw_input = False
        for __ in self._child_states(runtime):
            saw_input = True
            key = tuple(fn(ctx) for fn in self.group_fns)
            if isinstance(current_key, _Never):
                current_key = key
                accumulators = [_Accumulator(spec) for spec in self.specs]
            elif key != current_key:
                ctx[slot] = current_key + tuple(
                    a.result() for a in accumulators)
                yield
                current_key = key
                accumulators = [_Accumulator(spec) for spec in self.specs]
            for accumulator in accumulators:
                accumulator.add(ctx)
        if saw_input:
            ctx[slot] = current_key + tuple(a.result() for a in accumulators)
            yield
        elif not self.group_fns:
            accumulators = [_Accumulator(spec) for spec in self.specs]
            ctx[slot] = tuple(a.result() for a in accumulators)
            yield

    def label(self) -> str:
        parts = [f"{spec.func.value.lower()}(...)" for spec in self.specs]
        name = ("Aggregate" if not self.group_fns
                else "Group aggregate")
        mode = "streaming" if self.strategy is AggregateStrategy.STREAM \
            else "hash"
        return f"{name} ({mode}): " + ", ".join(parts)


class _Accumulator:
    """Incremental computation of one aggregate."""

    __slots__ = ("spec", "count", "total", "total_sq", "minimum", "maximum",
                 "distinct_values")

    def __init__(self, spec: AggSpec) -> None:
        self.spec = spec
        self.count = 0
        self.total = None
        self.total_sq = 0.0
        self.minimum = None
        self.maximum = None
        self.distinct_values = set() if spec.distinct else None

    def add(self, ctx) -> None:
        spec = self.spec
        if spec.star:
            self.count += 1
            return
        value = spec.arg_fn(ctx)
        if value is None:
            return
        if self.distinct_values is not None:
            if value in self.distinct_values:
                return
            self.distinct_values.add(value)
        self.count += 1
        func = spec.func
        if func in (ast.AggFunc.SUM, ast.AggFunc.AVG, ast.AggFunc.STDDEV):
            self.total = value if self.total is None else self.total + value
            if func is ast.AggFunc.STDDEV:
                self.total_sq += float(value) * float(value)
        elif func is ast.AggFunc.MIN:
            if self.minimum is None or value < self.minimum:
                self.minimum = value
        elif func is ast.AggFunc.MAX:
            if self.maximum is None or value > self.maximum:
                self.maximum = value

    def result(self):
        func = self.spec.func
        if func is ast.AggFunc.COUNT:
            return self.count
        if func is ast.AggFunc.SUM:
            return self.total
        if func is ast.AggFunc.AVG:
            if self.count == 0:
                return None
            return self.total / self.count
        if func is ast.AggFunc.MIN:
            return self.minimum
        if func is ast.AggFunc.MAX:
            return self.maximum
        if func is ast.AggFunc.STDDEV:
            if self.count == 0:
                return None
            mean = self.total / self.count
            variance = max(0.0, self.total_sq / self.count - mean * mean)
            return variance ** 0.5
        raise ExecutionError(f"unknown aggregate {func}")


class WindowNode(PlanNode):
    """Window-function evaluation over materialised child rows."""

    def __init__(self, child: PlanNode, specs: List["CompiledWindow"],
                 output_entry_id: int, live_entries: List[int]) -> None:
        super().__init__()
        self.child = child
        self.specs = specs
        self.output_entry_id = output_entry_id
        self.live_entries = live_entries

    def children(self) -> Sequence[PlanNode]:
        return (self.child,)

    def produced_entries(self) -> List[int]:
        produced = list(self.child.produced_entries())
        produced.append(self.output_entry_id)
        return produced

    def run(self, runtime: ExecutionRuntime) -> Iterator[None]:
        ctx = runtime.ctx
        live = self.live_entries
        rows: List[tuple] = []
        for __ in self.child.run(runtime):
            rows.append(tuple(ctx[e] for e in live))
        outputs = [[None] * len(self.specs) for __ in rows]
        for spec_index, spec in enumerate(self.specs):
            spec.compute(rows, live, ctx, outputs, spec_index)
        slot = self.output_entry_id
        for row, out in zip(rows, outputs):
            for entry_id, value in zip(live, row):
                ctx[entry_id] = value
            ctx[slot] = tuple(out)
            yield

    def label(self) -> str:
        names = ", ".join(spec.func for spec in self.specs)
        return f"Window: {names}"


class CompiledWindow:
    """One compiled window specification."""

    def __init__(self, func: str, arg_fns: List[Callable],
                 partition_fns: List[Callable],
                 order_fns: List[Callable],
                 order_items: List[ast.OrderItem]) -> None:
        self.func = func
        self.arg_fns = arg_fns
        self.partition_fns = partition_fns
        self.order_fns = order_fns
        self.order_items = order_items

    def compute(self, rows: List[tuple], live: List[int], ctx,
                outputs: List[list], spec_index: int) -> None:
        # Evaluate partition/order/arg values per row under a temporary
        # context restore.
        evaluated = []
        for row_index, row in enumerate(rows):
            for entry_id, value in zip(live, row):
                ctx[entry_id] = value
            partition = tuple(fn(ctx) for fn in self.partition_fns)
            order = tuple(fn(ctx) for fn in self.order_fns)
            arg = self.arg_fns[0](ctx) if self.arg_fns else None
            evaluated.append((partition, order, arg, row_index))
        # Group by partition, sort by order keys within each partition.
        partitions: Dict[tuple, List[tuple]] = {}
        for record in evaluated:
            partitions.setdefault(record[0], []).append(record)
        for members in partitions.values():
            keyed = [((record[1]), record) for record in members]
            sort_rows(keyed, self.order_items or
                      [ast.OrderItem(ast.Literal(0))] * 0)
            ordered = [record for __, record in keyed]
            self._fill(ordered, outputs, spec_index)

    def _fill(self, ordered: List[tuple], outputs: List[list],
              spec_index: int) -> None:
        func = self.func
        if func == "ROW_NUMBER":
            for seq, record in enumerate(ordered, start=1):
                outputs[record[3]][spec_index] = seq
            return
        if func in ("RANK", "DENSE_RANK"):
            rank = 0
            dense = 0
            previous = _NEVER
            for seq, record in enumerate(ordered, start=1):
                if record[1] != previous:
                    rank = seq
                    dense += 1
                    previous = record[1]
                value = rank if func == "RANK" else dense
                outputs[record[3]][spec_index] = value
            return
        # Aggregates over the window.  With an ORDER BY the frame is the
        # default RANGE UNBOUNDED PRECEDING .. CURRENT ROW (peers
        # included); without one it is the whole partition.
        if not self.order_items:
            total = self._aggregate([record[2] for record in ordered])
            for record in ordered:
                outputs[record[3]][spec_index] = total
            return
        index = 0
        length = len(ordered)
        running: List[object] = []
        while index < length:
            peer_end = index
            while peer_end + 1 < length and \
                    ordered[peer_end + 1][1] == ordered[index][1]:
                peer_end += 1
            running.extend(record[2] for record in ordered[index:peer_end + 1])
            value = self._aggregate(running)
            for position in range(index, peer_end + 1):
                outputs[ordered[position][3]][spec_index] = value
            index = peer_end + 1

    def _aggregate(self, values: List[object]):
        non_null = [value for value in values if value is not None]
        func = self.func
        if func == "COUNT":
            return len(non_null) if self.arg_fns else len(values)
        if not non_null:
            return None
        if func == "SUM":
            total = non_null[0]
            for value in non_null[1:]:
                total = total + value
            return total
        if func == "AVG":
            total = non_null[0]
            for value in non_null[1:]:
                total = total + value
            return total / len(non_null)
        if func == "MIN":
            return min(non_null)
        if func == "MAX":
            return max(non_null)
        raise ExecutionError(f"unsupported window function {func}")


class LimitNode(PlanNode):
    """Row-limit enforcement inside a block plan."""

    def __init__(self, child: PlanNode, count: int, offset: int = 0) -> None:
        super().__init__()
        self.child = child
        self.count = count
        self.offset = offset

    def children(self) -> Sequence[PlanNode]:
        return (self.child,)

    def run(self, runtime: ExecutionRuntime) -> Iterator[None]:
        produced = 0
        skipped = 0
        for __ in self.child.run(runtime):
            if skipped < self.offset:
                skipped += 1
                continue
            if produced >= self.count:
                return
            produced += 1
            yield

    def label(self) -> str:
        return f"Limit: {self.count} row(s)"


# ---------------------------------------------------------------------------
# Query plan (block output)
# ---------------------------------------------------------------------------

class QueryPlan:
    """A complete plan for one query block (plus UNION parts).

    ``run`` yields projected output tuples; DISTINCT, set operations, and
    LIMIT/OFFSET are applied here, after the plan tree has produced its
    context states.
    """

    def __init__(self, block: QueryBlock, root: Optional[PlanNode],
                 select_exprs: List[ast.Expr],
                 select_fns: List[Callable]) -> None:
        self.block = block
        self.root = root
        self.select_exprs = select_exprs
        self.select_fns = select_fns
        self.distinct = False
        self.limit: Optional[int] = None
        self.offset: Optional[int] = None
        self.union_parts: List[Tuple[ast.SetOp, "QueryPlan"]] = []
        #: Output positions to sort a set-operation result by.
        self.union_order: List[Tuple[int, bool]] = []
        #: EXPLAIN header tag: "" or "(ORCA)" (Listing 7's first line).
        self.origin: str = "mysql"
        self.total_cost: float = 0.0
        self.total_rows: float = 0.0

    def _own_rows(self, runtime: ExecutionRuntime) -> Iterator[tuple]:
        ctx = runtime.ctx
        fns = self.select_fns
        if self.root is None:
            yield tuple(fn(ctx) for fn in fns)
            return
        for __ in self.root.run(runtime):
            yield tuple(fn(ctx) for fn in fns)

    def run(self, runtime: ExecutionRuntime) -> Iterator[tuple]:
        rows = self._own_rows(runtime)
        if self.union_parts:
            rows = self._union_rows(rows, runtime)
        elif self.distinct:
            rows = _dedup(rows)
        if self.offset or self.limit is not None:
            rows = _limited(rows, self.limit, self.offset or 0)
        return rows

    def _union_rows(self, own: Iterator[tuple],
                    runtime: ExecutionRuntime) -> Iterator[tuple]:
        collected = list(own)
        dedup_needed = self.distinct
        for op, part in self.union_parts:
            collected.extend(part.run(runtime))
            if op is ast.SetOp.UNION:
                dedup_needed = True
        if dedup_needed:
            collected = list(_dedup(iter(collected)))
        if self.union_order:
            for position, descending in reversed(self.union_order):
                def key_fn(row, p=position):
                    value = row[p]
                    return (0, 0) if value is None else (1, value)
                collected.sort(key=key_fn, reverse=descending)
        return iter(collected)


def _dedup(rows: Iterator[tuple]) -> Iterator[tuple]:
    seen = set()
    for row in rows:
        if row in seen:
            continue
        seen.add(row)
        yield row


def _limited(rows: Iterator[tuple], limit: Optional[int],
             offset: int) -> Iterator[tuple]:
    produced = 0
    skipped = 0
    for row in rows:
        if skipped < offset:
            skipped += 1
            continue
        if limit is not None and produced >= limit:
            return
        produced += 1
        yield row


# ---------------------------------------------------------------------------
# Expression rendering for EXPLAIN labels
# ---------------------------------------------------------------------------

def _expr_text(expr: ast.Expr) -> str:
    from repro.executor.explain import expr_text

    return expr_text(expr)
