"""The statement executor: runs a bundle of per-block query plans.

One :class:`Executor` is built per optimized statement.  It owns the plan
for every query block (the top-level block plus derived tables, CTEs, and
subquery blocks), creates a fresh :class:`~repro.executor.plan.ExecutionRuntime`
per execution, and serves as the subplan host for compiled subquery
expressions.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.errors import ExecutionError
from repro.executor.batch import BatchUnsupported, lower_executor
from repro.executor.parallel import DEFAULT_MIN_TABLE_ROWS, ParallelContext
from repro.executor.plan import (
    ExecutionRuntime,
    QueryPlan,
    walk_plan_nodes,
)
from repro.sql.blocks import QueryBlock


class Executor:
    """Executes an optimized statement against a storage engine."""

    def __init__(self, storage, context) -> None:
        self.storage = storage
        #: The statement context; its entry count (read at execution time,
        #: after plan building may have added pseudo entries) sizes the
        #: runtime context array.
        self.context = context
        self._plans: Dict[int, QueryPlan] = {}
        self.top_plan: Optional[QueryPlan] = None
        #: The runtime of the in-flight execution; compiled subquery
        #: closures read this to find per-execution caches.
        self.current_runtime: Optional[ExecutionRuntime] = None
        #: Batch-lowering state, cached per Executor (plans are shared
        #: across executions through the statement plan cache).  None =
        #: not attempted; True = lowered; False = unsupported.
        self._batch_lowered: Optional[bool] = None
        #: Expressions compiled by a successful lowering.
        self.compiled_expr_count = 0
        #: Why batch lowering refused this statement (str or None).
        self.batch_unsupported_reason: Optional[str] = None
        #: Mode the most recent execute() actually ran in.
        self.last_mode = "row"
        #: Governor of the most recent execute(), for post-execution
        #: reporting (EXPLAIN ANALYZE footer, StatementResult stats).
        self.last_governor = None
        #: ParallelContext of the most recent execute(), or None when it
        #: ran serial.  ``last_parallel.ops == 0`` after a multi-worker
        #: batch run means no plan shape was parallel-safe.
        self.last_parallel = None
        #: Workload-intelligence facts of the compiled plan, computed
        #: once and cached here because the plan cache shares one
        #: Executor across executions: the literal-free shape hash and
        #: the (table, column, kind) column touches.  None until the
        #: Database's workload layer first sees this executor.
        self.workload_plan_hash: Optional[str] = None
        self.workload_touches: tuple = ()

    # -- plan registry -----------------------------------------------------------

    def register_plan(self, block: QueryBlock, plan: QueryPlan,
                      top: bool = False) -> None:
        self._plans[block.block_id] = plan
        if top:
            self.top_plan = plan

    def plan_for(self, block: QueryBlock) -> QueryPlan:
        try:
            return self._plans[block.block_id]
        except KeyError:
            raise ExecutionError(
                f"no plan registered for block #{block.block_id}") from None

    def has_plan(self, block: QueryBlock) -> bool:
        return block.block_id in self._plans

    # -- execution ---------------------------------------------------------------

    def run_block(self, block: QueryBlock,
                  runtime: ExecutionRuntime) -> Iterator[tuple]:
        """Run one block's plan under an existing runtime (subqueries)."""
        return self.plan_for(block).run(runtime)

    def iter_plan_nodes(self):
        """Every plan node across all registered block plans, once.

        Registered block plans can share nodes (a derived table's
        sub-plan is both a registered block and reachable through its
        materialize node), so the union is deduplicated by identity.
        """
        seen = set()
        for plan in self._plans.values():
            for node in walk_plan_nodes(plan):
                if id(node) not in seen:
                    seen.add(id(node))
                    yield node

    def reset_actuals(self) -> None:
        """Zero every node's actual-row/batch counters.

        Called at the start of each execution: plan-cached statements
        share one Executor across runs, and the plan-quality loop reads
        per-execution (not cumulative) actuals."""
        for node in self.iter_plan_nodes():
            node.actual_rows = 0
            node.actual_batches = 0
            node.actual_loops = 0
            node.px_workers = 0

    def ensure_batch_lowered(self) -> bool:
        """Lower the statement's plans for batch execution (cached).

        Returns True when the batch path is available; on the first
        refusal records ``batch_unsupported_reason`` and permanently
        routes this statement to the row engine.
        """
        if self._batch_lowered is None:
            try:
                self.compiled_expr_count = lower_executor(self)
                self._batch_lowered = True
            except BatchUnsupported as exc:
                self._batch_lowered = False
                self.batch_unsupported_reason = str(exc)
        return self._batch_lowered

    def execute(self, mode: str = "row",
                metrics=None, governor=None, injector=None,
                workers: int = 1, parallel_backend: str = "fork",
                parallel_min_table_rows: int = DEFAULT_MIN_TABLE_ROWS,
                tracer=None,
                ) -> List[tuple]:
        """Run the statement and return all output rows.

        ``mode`` is the *requested* executor mode; ``last_mode`` reports
        what actually ran (batch requests degrade per-statement to the
        row engine when lowering refuses the plan).  ``governor`` is the
        per-statement :class:`repro.governor.ExecutionGovernor` (or
        None for unbounded execution) and ``injector`` an optional
        execution-stage fault injector; both ride on the runtime.
        ``workers > 1`` enables morsel-driven parallelism for eligible
        operators on the batch path (row mode always runs serial)."""
        if self.top_plan is None:
            raise ExecutionError("no top-level plan registered")
        self.reset_actuals()
        chunks_skipped_before = self.storage.counters.chunks_skipped
        parallel = None
        if workers > 1 and mode == "batch" and self.ensure_batch_lowered():
            parallel = ParallelContext(
                workers, backend=parallel_backend,
                min_table_rows=parallel_min_table_rows,
                tracer=tracer, metrics=metrics)
        runtime = ExecutionRuntime(self.storage, self.context.entry_count,
                                   governor=governor, injector=injector,
                                   parallel=parallel)
        self.last_governor = governor
        self.last_parallel = parallel
        previous = self.current_runtime
        self.current_runtime = runtime
        #: Kept for post-execution inspection (EXPLAIN ANALYZE rebinds).
        self.last_runtime = runtime
        try:
            if mode == "batch" and self.ensure_batch_lowered():
                self.last_mode = "batch"
                rows: List[tuple] = []
                for chunk in self.top_plan.run_batches(runtime):
                    rows.extend(chunk)
                if metrics is not None:
                    metrics.inc("executor.batches", runtime.batches)
                    metrics.inc("executor.batch_rows", runtime.batch_rows)
                    metrics.inc("exec.compiled_exprs",
                                self.compiled_expr_count)
                    if parallel is not None and parallel.ops:
                        metrics.inc("executor.morsels", parallel.morsels)
                        metrics.inc("executor.parallel_workers",
                                    parallel.workers_spawned)
                return rows
            self.last_mode = "row"
            return list(self.top_plan.run(runtime))
        finally:
            self.current_runtime = previous
            if metrics is not None:
                skipped = (self.storage.counters.chunks_skipped
                           - chunks_skipped_before)
                if skipped:
                    metrics.inc("storage.chunks_skipped", skipped)
