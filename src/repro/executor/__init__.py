"""The MySQL-style execution engine: Volcano iterators over heap storage."""

from repro.executor.plan import (
    AccessMethod,
    AggregateNode,
    DerivedMaterializeNode,
    HashJoinNode,
    IndexLookupNode,
    IndexOrderedScanNode,
    IndexRangeScanNode,
    JoinKind,
    LimitNode,
    NestedLoopJoinNode,
    PlanNode,
    QueryPlan,
    SortNode,
    TableScanNode,
    WindowNode,
)
from repro.executor.executor import Executor
from repro.executor.explain import explain_plan

__all__ = [
    "AccessMethod",
    "AggregateNode",
    "DerivedMaterializeNode",
    "Executor",
    "HashJoinNode",
    "IndexLookupNode",
    "IndexOrderedScanNode",
    "IndexRangeScanNode",
    "JoinKind",
    "LimitNode",
    "NestedLoopJoinNode",
    "PlanNode",
    "QueryPlan",
    "SortNode",
    "TableScanNode",
    "WindowNode",
    "explain_plan",
]
