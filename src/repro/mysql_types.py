"""MySQL data types and the type-category scheme used by the bridge.

The paper (Section 5.1) states that MySQL has 31 types which the metadata
provider groups into 12 *type categories* to keep the expression-OID space
manageable; two extra categories, ``STAR`` and ``ANY``, exist only for
aggregations (Section 5.2), for a total of 14.

The lessons-learned section (Section 7) records that an earlier provider
used a single coarse ``INT`` category, which prevented Orca from matching
indexes on integer-like columns, and that it was replaced by the three
refined categories ``INT2`` / ``INT4`` / ``INT8``.  This module implements
the refined scheme directly.
"""

from __future__ import annotations

import datetime
import enum
from dataclasses import dataclass
from typing import Optional


class MySQLType(enum.Enum):
    """The 31 MySQL field types modelled by this reproduction.

    Names follow MySQL's ``MYSQL_TYPE_*`` enumeration (with the historical
    duplicates such as NEWDATE / TIME2 / DATETIME2 / TIMESTAMP2 retained,
    because the 31-type count in the paper includes them).
    """

    TINY = "TINY"
    SHORT = "SHORT"
    INT24 = "INT24"
    LONG = "LONG"
    LONGLONG = "LONGLONG"
    YEAR = "YEAR"
    ENUM = "ENUM"
    SET = "SET"
    BOOL = "BOOL"
    DECIMAL = "DECIMAL"
    NEWDECIMAL = "NEWDECIMAL"
    FLOAT = "FLOAT"
    DOUBLE = "DOUBLE"
    VARCHAR = "VARCHAR"
    VAR_STRING = "VAR_STRING"
    STRING = "STRING"
    TINY_BLOB = "TINY_BLOB"
    MEDIUM_BLOB = "MEDIUM_BLOB"
    LONG_BLOB = "LONG_BLOB"
    BLOB = "BLOB"
    DATE = "DATE"
    NEWDATE = "NEWDATE"
    TIME = "TIME"
    TIME2 = "TIME2"
    DATETIME = "DATETIME"
    DATETIME2 = "DATETIME2"
    TIMESTAMP = "TIMESTAMP"
    TIMESTAMP2 = "TIMESTAMP2"
    BIT = "BIT"
    JSON = "JSON"
    GEOMETRY = "GEOMETRY"


class TypeCategory(enum.Enum):
    """The 12 type categories of Section 5.1 plus STAR/ANY (Section 5.2).

    STAR and ANY exist only as aggregation operands: ``COUNT(*)`` uses STAR
    and ``COUNT(expr)`` uses ANY, because COUNT behaves identically for
    every argument type.
    """

    INT2 = "INT2"
    INT4 = "INT4"
    INT8 = "INT8"
    NUM = "NUM"
    STR = "STR"
    BLB = "BLB"
    DAT = "DAT"
    TIM = "TIM"
    DTM = "DTM"
    BIT = "BIT"
    JSN = "JSN"
    GEO = "GEO"
    # Aggregation-only pseudo-categories:
    STAR = "STAR"
    ANY = "ANY"


#: The 12 categories usable as operands of arithmetic/comparison expressions.
SCALAR_CATEGORIES: tuple = (
    TypeCategory.INT2,
    TypeCategory.INT4,
    TypeCategory.INT8,
    TypeCategory.NUM,
    TypeCategory.STR,
    TypeCategory.BLB,
    TypeCategory.DAT,
    TypeCategory.TIM,
    TypeCategory.DTM,
    TypeCategory.BIT,
    TypeCategory.JSN,
    TypeCategory.GEO,
)

#: All 14 categories usable as aggregation operands.
AGGREGATE_CATEGORIES: tuple = SCALAR_CATEGORIES + (
    TypeCategory.STAR,
    TypeCategory.ANY,
)

#: Mapping of each of the 31 MySQL types to its type category.
TYPE_TO_CATEGORY = {
    MySQLType.TINY: TypeCategory.INT2,
    MySQLType.SHORT: TypeCategory.INT2,
    MySQLType.YEAR: TypeCategory.INT2,
    MySQLType.BOOL: TypeCategory.INT2,
    MySQLType.INT24: TypeCategory.INT4,
    MySQLType.LONG: TypeCategory.INT4,
    MySQLType.ENUM: TypeCategory.INT4,
    MySQLType.LONGLONG: TypeCategory.INT8,
    MySQLType.SET: TypeCategory.INT8,
    MySQLType.DECIMAL: TypeCategory.NUM,
    MySQLType.NEWDECIMAL: TypeCategory.NUM,
    MySQLType.FLOAT: TypeCategory.NUM,
    MySQLType.DOUBLE: TypeCategory.NUM,
    MySQLType.VARCHAR: TypeCategory.STR,
    MySQLType.VAR_STRING: TypeCategory.STR,
    MySQLType.STRING: TypeCategory.STR,
    MySQLType.TINY_BLOB: TypeCategory.BLB,
    MySQLType.MEDIUM_BLOB: TypeCategory.BLB,
    MySQLType.LONG_BLOB: TypeCategory.BLB,
    MySQLType.BLOB: TypeCategory.BLB,
    MySQLType.DATE: TypeCategory.DAT,
    MySQLType.NEWDATE: TypeCategory.DAT,
    MySQLType.TIME: TypeCategory.TIM,
    MySQLType.TIME2: TypeCategory.TIM,
    MySQLType.DATETIME: TypeCategory.DTM,
    MySQLType.DATETIME2: TypeCategory.DTM,
    MySQLType.TIMESTAMP: TypeCategory.DTM,
    MySQLType.TIMESTAMP2: TypeCategory.DTM,
    MySQLType.BIT: TypeCategory.BIT,
    MySQLType.JSON: TypeCategory.JSN,
    MySQLType.GEOMETRY: TypeCategory.GEO,
}

#: Fixed storage width in bytes of each type, or None for variable-length.
TYPE_LENGTHS = {
    MySQLType.TINY: 1,
    MySQLType.SHORT: 2,
    MySQLType.YEAR: 1,
    MySQLType.BOOL: 1,
    MySQLType.INT24: 3,
    MySQLType.LONG: 4,
    MySQLType.ENUM: 2,
    MySQLType.LONGLONG: 8,
    MySQLType.SET: 8,
    MySQLType.DECIMAL: 16,
    MySQLType.NEWDECIMAL: 16,
    MySQLType.FLOAT: 4,
    MySQLType.DOUBLE: 8,
    MySQLType.VARCHAR: None,
    MySQLType.VAR_STRING: None,
    MySQLType.STRING: None,
    MySQLType.TINY_BLOB: None,
    MySQLType.MEDIUM_BLOB: None,
    MySQLType.LONG_BLOB: None,
    MySQLType.BLOB: None,
    MySQLType.DATE: 3,
    MySQLType.NEWDATE: 3,
    MySQLType.TIME: 3,
    MySQLType.TIME2: 3,
    MySQLType.DATETIME: 8,
    MySQLType.DATETIME2: 8,
    MySQLType.TIMESTAMP: 4,
    MySQLType.TIMESTAMP2: 4,
    MySQLType.BIT: 8,
    MySQLType.JSON: None,
    MySQLType.GEOMETRY: None,
}

#: Types whose runtime values are Python ints.
INTEGER_TYPES = frozenset(
    t for t, c in TYPE_TO_CATEGORY.items()
    if c in (TypeCategory.INT2, TypeCategory.INT4, TypeCategory.INT8)
)

#: Types whose runtime values compare as text.
TEXT_TYPES = frozenset(
    t for t, c in TYPE_TO_CATEGORY.items()
    if c in (TypeCategory.STR, TypeCategory.BLB)
)


def category_of(mysql_type: MySQLType) -> TypeCategory:
    """Return the type category a MySQL type belongs to."""
    return TYPE_TO_CATEGORY[mysql_type]


def is_pass_by_value(mysql_type: MySQLType) -> bool:
    """Whether values of this type fit in a machine word (Orca metadata)."""
    length = TYPE_LENGTHS[mysql_type]
    return length is not None and length <= 8


def is_text_related(mysql_type: MySQLType) -> bool:
    """Whether Orca should treat the type as textual (Orca metadata)."""
    return mysql_type in TEXT_TYPES


@dataclass(frozen=True)
class TypeInstance:
    """A concrete use of a type: the type plus its modifier.

    The *type modifier* carries lengths for CHAR/VARCHAR and precision/scale
    for decimals, mirroring what the metadata provider sends to Orca
    (Section 5.1).
    """

    base: MySQLType
    modifier: Optional[int] = None

    @property
    def category(self) -> TypeCategory:
        return TYPE_TO_CATEGORY[self.base]

    @property
    def width(self) -> int:
        """Estimated stored width in bytes, used by both cost models."""
        fixed = TYPE_LENGTHS[self.base]
        if fixed is not None:
            return fixed
        if self.modifier is not None:
            # Variable-length columns are typically about half full.
            return max(1, self.modifier // 2)
        return 16

    def __str__(self) -> str:
        if self.modifier is None:
            return self.base.value
        return f"{self.base.value}({self.modifier})"


@dataclass(frozen=True)
class Interval:
    """A SQL interval literal, e.g. ``INTERVAL '3' MONTH``.

    Date arithmetic with month/year intervals cannot be expressed as a
    plain ``timedelta``, so months and days are tracked separately.
    """

    months: int = 0
    days: int = 0

    def add_to(self, value: datetime.date) -> datetime.date:
        """Return ``value + self`` with calendar-correct month arithmetic."""
        result = value
        if self.months:
            total = result.year * 12 + (result.month - 1) + self.months
            year, month = divmod(total, 12)
            month += 1
            day = min(result.day, _days_in_month(year, month))
            result = result.replace(year=year, month=month, day=day)
        if self.days:
            result = result + datetime.timedelta(days=self.days)
        return result

    def negate(self) -> "Interval":
        return Interval(months=-self.months, days=-self.days)


def _days_in_month(year: int, month: int) -> int:
    if month == 12:
        nxt = datetime.date(year + 1, 1, 1)
    else:
        nxt = datetime.date(year, month + 1, 1)
    return (nxt - datetime.timedelta(days=1)).day


# ---------------------------------------------------------------------------
# Runtime value helpers
# ---------------------------------------------------------------------------

def sql_compare(left, right) -> Optional[int]:
    """Three-way compare two runtime values with SQL NULL semantics.

    Returns -1 / 0 / +1, or ``None`` when either operand is NULL (the SQL
    UNKNOWN truth value).  Mixed numeric types compare numerically; dates
    compare chronologically; strings compare byte-wise (binary collation).
    """
    if left is None or right is None:
        return None
    if isinstance(left, bool):
        left = int(left)
    if isinstance(right, bool):
        right = int(right)
    if left < right:
        return -1
    if left > right:
        return 1
    return 0


def python_type_for(mysql_type: MySQLType):
    """The Python type used at runtime for values of a MySQL type."""
    category = TYPE_TO_CATEGORY[mysql_type]
    if category in (TypeCategory.INT2, TypeCategory.INT4, TypeCategory.INT8,
                    TypeCategory.BIT):
        return int
    if category is TypeCategory.NUM:
        return float
    if category in (TypeCategory.STR, TypeCategory.BLB, TypeCategory.JSN,
                    TypeCategory.GEO):
        return str
    if category is TypeCategory.DAT:
        return datetime.date
    if category is TypeCategory.TIM:
        return datetime.time
    if category is TypeCategory.DTM:
        return datetime.datetime
    raise ValueError(f"no runtime mapping for {mysql_type}")


def coerce(value, mysql_type: MySQLType):
    """Coerce a Python value to the runtime representation of a type.

    ``None`` (SQL NULL) passes through unchanged.
    """
    if value is None:
        return None
    target = python_type_for(mysql_type)
    if isinstance(value, target) and not (
            target is datetime.date and isinstance(value, datetime.datetime)):
        return value
    if target is int:
        return int(value)
    if target is float:
        return float(value)
    if target is str:
        return str(value)
    if target is datetime.date and isinstance(value, datetime.datetime):
        return value.date()
    if target is datetime.date and isinstance(value, str):
        return datetime.date.fromisoformat(value)
    if target is datetime.datetime and isinstance(value, str):
        return datetime.datetime.fromisoformat(value)
    raise ValueError(f"cannot coerce {value!r} to {mysql_type}")
