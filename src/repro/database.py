"""The public facade: a small embedded SQL engine with two optimizers.

Usage::

    db = Database()
    db.create_table(schema)
    db.load("t", rows)
    db.analyze()
    rows = db.execute("SELECT ...")                    # routed per config
    rows = db.execute("SELECT ...", optimizer="mysql") # force a path
    text = db.explain("SELECT ...", optimizer="orca")

Routing follows the paper: only SELECT statements whose table-reference
count reaches ``complex_query_threshold`` take the Orca detour
(Section 4.1); everything else — and any query on which the bridge aborts —
uses the MySQL optimizer.

The detour is *fault contained*: every abort (typed or not) is recorded
in a :class:`repro.resilience.FallbackLog` with a
:class:`repro.resilience.FallbackReason`, compile budgets cap how long
one detour may run, and a per-fingerprint circuit breaker routes
statements that keep crashing the optimizer straight to MySQL.
"""

from __future__ import annotations

import datetime
import json
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.catalog.catalog import Catalog
from repro.catalog.schema import TableSchema
from repro.errors import (
    ExecutionError,
    GovernorError,
    ReproError,
    ResourceExhaustedError,
)
from repro.executor.executor import Executor
from repro.executor.parallel import PARALLEL_BACKENDS
from repro.flight import (
    FlightRecord,
    FlightRecorder,
    format_flight_report,
    format_top_report,
)
from repro.governor import CancelToken, ExecutionGovernor
from repro.executor.explain import explain_plan
from repro.mysql_optimizer.optimizer import MySQLOptimizer
from repro.mysql_optimizer.refinement import PlanBuilder
from repro.mysql_optimizer.skeleton import SkeletonPlan
from repro.observability import (
    NOOP_TRACER,
    MetricsRegistry,
    Span,
    Tracer,
    find_spans,
    stage_durations,
)
from repro.orca.joinorder import JoinSearchMode
from repro.orca.largejoin import STRATEGY_POLICIES
from repro.plan_cache import (
    PlanCache,
    PlanCacheEntry,
    statement_cache_key,
)
from repro.plan_quality import (
    MisestimationLedger,
    StatementQuality,
    format_plan_quality_report,
    statement_quality,
    stats_staleness,
)
from repro.resilience import (
    CircuitBreaker,
    FallbackEvent,
    FallbackLog,
    FallbackReason,
    FaultInjector,
    classify_execution_exception,
    statement_fingerprint,
)
from repro.sql import ast as sql_ast
from repro.workload import (
    Advisor,
    WorkloadRepository,
    compute_plan_hash,
    extract_column_touches,
    format_workload_report,
)
from repro.sql.parser import parse_statement
from repro.sql.prepare import prepare
from repro.sql.resolver import Resolver
from repro.storage.engine import StorageEngine

#: Valid values for ``DatabaseConfig.routing``.
ROUTING_POLICIES = ("threshold", "cost_based")
EXECUTOR_MODES = ("batch", "row")

#: Metric counter bumped per abort reason (satellite: the governor's
#: metric names are part of the documented contract).
_ABORT_COUNTERS = {
    FallbackReason.DEADLINE_EXCEEDED: "governor.deadline_exceeded",
    FallbackReason.STATEMENT_CANCELLED: "governor.cancelled",
    FallbackReason.RESOURCE_EXHAUSTED: "governor.mem_breaches",
    FallbackReason.EXEC_RUNTIME_ERROR: "governor.exec_errors",
}


@dataclass
class DatabaseConfig:
    """Engine configuration knobs used in the paper's experiments."""

    #: Minimum table references for the Orca detour (Section 4.1 default).
    complex_query_threshold: int = 3
    #: Orca's join-order search: "GREEDY", "EXHAUSTIVE", or "EXHAUSTIVE2".
    orca_search: str = "EXHAUSTIVE2"
    #: Master toggle: with False, every query uses the MySQL optimizer.
    orca_enabled: bool = True
    #: Routing policy for ``optimizer="auto"``:
    #: * "threshold" — the paper's shipped heuristic: route when the
    #:   table-reference count reaches ``complex_query_threshold``;
    #: * "cost_based" — the paper's first future-work alternative
    #:   (Section 9): always run MySQL's fast greedy optimization, and
    #:   take the Orca detour only when the MySQL plan's estimated cost
    #:   exceeds ``mysql_cost_threshold`` ("almost certainly ... better
    #:   than our three-table heuristic").
    routing: str = "threshold"
    #: Estimated-cost trigger for cost-based routing.
    mysql_cost_threshold: float = 500.0
    #: Wall-clock budget for one Orca compilation; ``None`` = unlimited.
    #: A detour that overruns aborts with ``BUDGET_EXCEEDED`` and MySQL's
    #: fast greedy optimizer takes over.
    orca_compile_budget_seconds: Optional[float] = None
    #: Memo group-count cap for the Cascades search; ``None`` = unlimited.
    orca_memo_group_budget: Optional[int] = None
    #: Contain non-Orca exceptions escaping the detour (fall back to
    #: MySQL and record the error) instead of crashing the query.  Turn
    #: off only to debug the bridge itself.
    contain_unexpected_errors: bool = True
    #: Unexpected-exception fallbacks for one statement fingerprint
    #: before the circuit breaker quarantines it.
    circuit_breaker_threshold: int = 3
    #: Seconds after the last failure before a quarantined fingerprint
    #: is granted one trial detour again (half-open).
    circuit_breaker_reset_seconds: float = 60.0
    #: Optional :class:`repro.resilience.FaultInjector` — the only way
    #: faults are ever injected; ``None`` costs nothing.
    fault_injector: Optional[FaultInjector] = None
    #: Statement plan cache: repeated statements skip parse-tree
    #: conversion, the memo search, and plan conversion entirely.
    #: ``run(sql, use_plan_cache=False)`` bypasses per statement.
    plan_cache_enabled: bool = True
    #: Maximum cached statement plans (LRU beyond this).
    plan_cache_capacity: int = 128
    #: Branch-and-bound pruning in Orca's DP join search (see
    #: ``OrcaConfig.enable_cost_bound_pruning``); off only to measure
    #: the unpruned search.
    orca_cost_bound_pruning: bool = True
    #: Join-order strategy policy: "adaptive" selects full DP /
    #: linearized DP / GOO / greedy per joined component by size and
    #: remaining compile budget; "dp", "lindp", "goo", or "greedy"
    #: forces that strategy (benchmarks, ablations).
    orca_join_strategy: str = "adaptive"
    #: Adaptive-selector size cutoffs: components up to
    #: ``orca_lindp_threshold`` units run the exponential bushy/zig-zag
    #: DP; up to ``orca_goo_threshold``, DP linearized along the IKKBZ
    #: order; larger ones, greedy operator ordering.
    orca_lindp_threshold: int = 12
    orca_goo_threshold: int = 25
    #: Per-kind LRU capacity of the Orca metadata cache.
    mdcache_capacity: int = 1024
    #: Execution engine: "batch" runs the vectorized batch-at-a-time
    #: executor with compiled expressions (statements whose plans it
    #: cannot lower degrade per-statement to the row engine, recorded as
    #: ``FallbackReason.EXEC_BATCH_UNSUPPORTED``); "row" forces the
    #: tuple-at-a-time Volcano interpreter.  Per-query override via
    #: ``run(sql, executor_mode=...)``.
    executor_mode: str = "batch"
    #: Plan-quality feedback: a statement execution whose worst per-node
    #: Q-error exceeds this is a *breach* (1.0 = perfect estimate).
    planq_q_threshold: float = 16.0
    #: Breaches in a row before the statement's cached plan is
    #: invalidated (forcing re-optimization against current statistics).
    planq_consecutive_breaches: int = 3
    #: Bounded size of the misestimation ledger (LRU beyond this).
    planq_ledger_capacity: int = 256
    #: Fractional live-vs-ANALYZE cardinality drift above which
    #: ``plan_quality_report()`` recommends re-ANALYZE for a table.
    planq_stats_staleness_threshold: float = 0.2
    #: Structured JSONL slow-query log: one record (trace, stage
    #: breakdown, root Q-error) per statement slower than the threshold.
    #: ``None`` disables the log entirely.
    slow_query_log_path: Optional[str] = None
    #: Total statement latency (compile + execute seconds) above which
    #: a statement is logged.
    slow_query_log_threshold_seconds: float = 0.25
    #: Default per-statement wall-clock deadline in seconds; ``None`` =
    #: unbounded.  Overridable per statement via
    #: ``run(sql, timeout_seconds=...)``; breaches abort with
    #: :class:`repro.errors.DeadlineExceededError`.
    statement_timeout_seconds: Optional[float] = None
    #: Default per-statement cap on tracked operator memory (bytes
    #: charged by hash join builds, hash aggregates, sorts, and
    #: materialisations); ``None`` = unbounded.  Overridable via
    #: ``run(sql, memory_limit_bytes=...)``.
    statement_memory_limit_bytes: Optional[int] = None
    #: Create an :class:`repro.governor.ExecutionGovernor` for every
    #: statement (required for ``db.cancel(statement_id)`` to reach
    #: in-flight statements).  With False a governor exists only when a
    #: bound or cancel token is passed explicitly — the pre-governor
    #: zero-overhead path, used to baseline checkpoint overhead.
    governor_enabled: bool = True
    #: Rows between cooperative checkpoints on row-mode paths (batch
    #: mode checkpoints per batch regardless).
    governor_check_interval: int = 256
    #: Graceful degradation: a statement whose hash aggregate breaches
    #: the memory cap retries once with aggregation forced to
    #: sort+stream (the sort's charges spill instead of raising) before
    #: the breach is surfaced.
    governor_stream_agg_retry: bool = True
    #: Workload intelligence: aggregate every completed statement into
    #: the per-fingerprint :class:`repro.workload.WorkloadRepository`
    #: (latency quantiles, plan hash, column touches).  The kill switch
    #: exists so the bookkeeping overhead itself can be measured.
    workload_tracking_enabled: bool = True
    #: Maximum fingerprints the workload repository keeps (LRU beyond).
    workload_repository_capacity: int = 512
    #: Minimum predicate/join executions on an unindexed column before
    #: the advisor emits an index recommendation.
    workload_index_min_usage: int = 8
    #: A plan change counts as a regression when the new plan's p95
    #: latency exceeds this multiple of the previous plan's p95.
    workload_regression_factor: float = 1.5
    #: Latency samples required on *both* sides of a plan change before
    #: the regression check runs.
    workload_regression_min_samples: int = 3
    #: Opt-in apply hook: every ``advisor_interval_statements``
    #: statements, pending re-ANALYZE recommendations are applied
    #: automatically (ANALYZE bumps the catalog version, so cached
    #: plans recompile against the fresh statistics).
    advisor_auto_analyze: bool = False
    #: Statements between auto-apply sweeps.
    advisor_interval_statements: int = 32
    #: Rows per batch-engine RowBatch *and* per column-store chunk (one
    #: chunk is one morsel, so this is also the morsel size).
    batch_size: int = 1024
    #: Maintain the native columnar mirror (per-column arrays + zone
    #: maps) alongside the row heap.  Off = the legacy heap-transpose
    #: scan path, kept as a same-run baseline for benchmarks.
    columnstore_enabled: bool = True
    #: Default worker count for morsel-driven parallel execution; 1 =
    #: serial.  Per-statement override: ``run(sql, executor_workers=N)``.
    executor_workers: int = 1
    #: Worker pool backend: "fork" (processes; real parallelism) or
    #: "thread" (portable, GIL-bound).  Platforms without ``os.fork``
    #: degrade to "thread" automatically.
    parallel_backend: str = "fork"
    #: Tables with fewer rows than this never go parallel — pool setup
    #: would cost more than the scan.
    parallel_min_table_rows: int = 2048
    #: Flight recorder: keep a bounded ring of per-statement telemetry
    #: records (see :mod:`repro.flight`).  Cheap enough to leave on; the
    #: kill switch exists to measure the bookkeeping itself.
    flight_recorder_enabled: bool = True
    #: Statement records the flight ring buffer holds.
    flight_capacity: int = 512
    #: Whole-registry snapshots are taken every this many records.
    flight_snapshot_interval: int = 64
    #: Trailing-window size (statements) for the p95 regression
    #: watchdog; the trailing window is compared against the window
    #: immediately before it.
    flight_watchdog_window: int = 8
    #: A fingerprint is flagged when its trailing-window p95 exceeds
    #: this multiple of the prior window's p95.
    flight_watchdog_factor: float = 2.0
    #: Executions of a fingerprint required in *both* windows before
    #: the watchdog compares them.
    flight_watchdog_min_samples: int = 4

    def __post_init__(self) -> None:
        if self.routing not in ROUTING_POLICIES:
            raise ReproError(
                f"unknown routing {self.routing!r}; valid choices: "
                f"{', '.join(ROUTING_POLICIES)}")
        if self.executor_mode not in EXECUTOR_MODES:
            raise ReproError(
                f"unknown executor_mode {self.executor_mode!r}; valid "
                f"choices: {', '.join(EXECUTOR_MODES)}")
        if self.orca_search not in JoinSearchMode.__members__:
            valid = ", ".join(JoinSearchMode.__members__)
            raise ReproError(
                f"unknown orca_search {self.orca_search!r}; "
                f"valid choices: {valid}")
        if self.orca_join_strategy not in STRATEGY_POLICIES:
            raise ReproError(
                f"unknown orca_join_strategy "
                f"{self.orca_join_strategy!r}; valid choices: "
                f"{', '.join(STRATEGY_POLICIES)}")
        if self.orca_lindp_threshold < 2:
            raise ReproError("orca_lindp_threshold must be >= 2")
        if self.orca_goo_threshold < self.orca_lindp_threshold:
            raise ReproError("orca_goo_threshold must be >= "
                             "orca_lindp_threshold")
        if self.planq_q_threshold < 1.0:
            raise ReproError("planq_q_threshold must be >= 1.0 "
                             "(1.0 is a perfect estimate)")
        if self.planq_consecutive_breaches < 1:
            raise ReproError("planq_consecutive_breaches must be >= 1")
        if self.slow_query_log_threshold_seconds < 0.0:
            raise ReproError(
                "slow_query_log_threshold_seconds must be >= 0")
        if self.statement_timeout_seconds is not None \
                and self.statement_timeout_seconds < 0.0:
            raise ReproError("statement_timeout_seconds must be >= 0")
        if self.statement_memory_limit_bytes is not None \
                and self.statement_memory_limit_bytes < 1:
            raise ReproError("statement_memory_limit_bytes must be >= 1")
        if self.governor_check_interval < 1:
            raise ReproError("governor_check_interval must be >= 1")
        if self.workload_repository_capacity < 1:
            raise ReproError("workload_repository_capacity must be >= 1")
        if self.workload_index_min_usage < 1:
            raise ReproError("workload_index_min_usage must be >= 1")
        if self.workload_regression_factor <= 1.0:
            raise ReproError("workload_regression_factor must be > 1.0")
        if self.workload_regression_min_samples < 1:
            raise ReproError(
                "workload_regression_min_samples must be >= 1")
        if self.advisor_interval_statements < 1:
            raise ReproError("advisor_interval_statements must be >= 1")
        if self.batch_size < 1:
            raise ReproError("batch_size must be >= 1")
        if self.executor_workers < 1:
            raise ReproError("executor_workers must be >= 1")
        if self.parallel_backend not in PARALLEL_BACKENDS:
            raise ReproError(
                f"unknown parallel_backend {self.parallel_backend!r}; "
                f"valid choices: {', '.join(PARALLEL_BACKENDS)}")
        if self.parallel_min_table_rows < 1:
            raise ReproError("parallel_min_table_rows must be >= 1")
        if self.flight_capacity < 1:
            raise ReproError("flight_capacity must be >= 1")
        if self.flight_snapshot_interval < 1:
            raise ReproError("flight_snapshot_interval must be >= 1")
        if self.flight_watchdog_window < 1:
            raise ReproError("flight_watchdog_window must be >= 1")
        if self.flight_watchdog_factor <= 1.0:
            raise ReproError("flight_watchdog_factor must be > 1.0")
        if self.flight_watchdog_min_samples < 1:
            raise ReproError("flight_watchdog_min_samples must be >= 1")


@dataclass
class StatementResult:
    """Rows plus compile/execute timings for benchmark harnesses."""

    rows: List[tuple]
    optimizer_used: str
    compile_seconds: float
    execute_seconds: float
    explain: Optional[str] = None
    #: Why the Orca detour was abandoned (or skipped) for this
    #: statement; ``None`` when Orca succeeded or was never attempted.
    fallback_reason: Optional[FallbackReason] = None
    #: Root of the statement's span tree when the statement ran with
    #: tracing (``run(sql, trace=True)`` or an enabled ``db.tracer``);
    #: ``None`` otherwise.
    trace: Optional[Span] = None
    #: True when the executable plan came from the statement plan cache
    #: (optimization was skipped entirely).
    plan_cache_hit: bool = False
    #: Executor mode the statement actually ran in ("batch" or "row");
    #: may differ from the requested mode when batch lowering refused
    #: the plan and the statement degraded to the row engine.
    executor_mode: str = "row"
    #: Per-node estimated/actual/Q-error snapshot of this execution;
    #: ``None`` only for DML (no plan tree to compare against).
    plan_quality: Optional[StatementQuality] = None
    #: Monotonic id of this statement within the Database instance —
    #: the handle ``db.cancel(statement_id)`` takes.
    statement_id: int = 0
    #: Snapshot of the execution governor (peak tracked bytes, deadline
    #: budget used, checkpoints); ``None`` when the statement ran
    #: ungoverned.
    governor_stats: Optional[dict] = None
    #: True when a hash-agg memory breach degraded this statement to
    #: the reduced-memory streaming retry (results are still exact).
    low_memory_retry: bool = False
    #: Literal-free digest of the executable plan's shape (see
    #: :func:`repro.workload.compute_plan_hash`); ``None`` for DML and
    #: when workload tracking is disabled.
    plan_hash: Optional[str] = None

    def trace_export(self) -> List[dict]:
        """Flat JSON trace: one dict per span (name, start, duration,
        depth, parent, attributes).  Empty when the statement was not
        traced."""
        return [] if self.trace is None else self.trace.to_dicts()

    def stage_seconds(self) -> dict:
        """Total seconds per pipeline stage, aggregated over the trace."""
        return {} if self.trace is None else stage_durations(self.trace)


class Database:
    """An embedded single-schema database with MySQL and Orca optimizers."""

    def __init__(self, config: Optional[DatabaseConfig] = None) -> None:
        self.config = config or DatabaseConfig()
        self.catalog = Catalog()
        self.storage = StorageEngine(
            self.catalog, batch_size=self.config.batch_size,
            columnstore_enabled=self.config.columnstore_enabled)
        #: Process-wide counters / gauges / histograms; always on (a
        #: counter bump per statement costs nothing measurable).
        self.metrics = MetricsRegistry()
        #: Statement tracer.  The no-op default makes every span hook
        #: free; ``run(sql, trace=True)`` installs a real tracer for one
        #: statement, or assign ``db.tracer = Tracer()`` to trace all.
        self.tracer = NOOP_TRACER
        #: Fallback telemetry: counters by reason, per-statement history.
        #: Events are mirrored into :attr:`metrics` so one report covers
        #: routing, resilience, and cache behaviour together.
        self.fallback_log = FallbackLog(metrics=self.metrics)
        #: Quarantine for statements that keep crashing the detour.
        self.circuit_breaker = CircuitBreaker(
            threshold=self.config.circuit_breaker_threshold,
            reset_seconds=self.config.circuit_breaker_reset_seconds)
        #: Statement plan cache, keyed by literal-preserving statement
        #: digest and validated against the catalog version (DDL, DML,
        #: and ANALYZE all invalidate).
        self.plan_cache = PlanCache(
            capacity=self.config.plan_cache_capacity,
            metrics=self.metrics)
        #: Per-statement estimate-accuracy history; breach streaks feed
        #: back into plan-cache invalidation (see plan_quality module).
        self.misestimation_ledger = MisestimationLedger(
            capacity=self.config.planq_ledger_capacity,
            q_threshold=self.config.planq_q_threshold,
            consecutive_threshold=self.config.planq_consecutive_breaches)
        #: Per-fingerprint statement history + column usage; feeds the
        #: advisor (see the workload module docstring).
        self.workload = WorkloadRepository(
            capacity=self.config.workload_repository_capacity,
            regression_factor=self.config.workload_regression_factor,
            regression_min_samples=(
                self.config.workload_regression_min_samples),
            metrics=self.metrics)
        #: Ranked recommendations over the repository; ``apply()`` is
        #: the opt-in mutation path (auto-driven only when
        #: ``config.advisor_auto_analyze`` is set).
        self.advisor = Advisor(
            repository=self.workload, catalog=self.catalog,
            storage=self.storage, plan_cache=self.plan_cache,
            config=self.config, metrics=self.metrics)
        #: Bounded per-statement telemetry ring + regression watchdog
        #: (None when ``config.flight_recorder_enabled`` is off).
        self.flight: Optional[FlightRecorder] = None
        if self.config.flight_recorder_enabled:
            self.flight = FlightRecorder(
                capacity=self.config.flight_capacity,
                snapshot_interval=self.config.flight_snapshot_interval,
                watchdog_window=self.config.flight_watchdog_window,
                watchdog_factor=self.config.flight_watchdog_factor,
                watchdog_min_samples=(
                    self.config.flight_watchdog_min_samples),
                metrics=self.metrics)
        #: ParallelContext of the most recent statement that actually
        #: ran a parallel operator — ``db.top()``'s worker section.
        self._last_parallel = None
        #: The router of the most recent Orca detour, kept so callers can
        #: inspect its bridge components (e.g. ``last_accessor.stats()``
        #: for the metadata-cache hit ratio of one statement).
        self.last_router = None
        #: In-flight statements: statement_id -> (sql, governor).  The
        #: registry exists so ``cancel(statement_id)`` can reach a
        #: statement's cancel token from another thread; entries are
        #: removed in ``run()``'s finally regardless of outcome.
        self._active_statements: Dict[int, Tuple[str, ExecutionGovernor]] \
            = {}
        self._next_statement_id = 1
        # Declared up front so metrics_export() shows the governor
        # histogram from statement one — and so the empty-histogram
        # hardening has a permanent in-tree exercise.
        self.metrics.declare_histogram("governor.peak_bytes")
        # Export-time gauges: ratios derived from live objects are
        # computed only when a scrape/report actually reads them.
        self.metrics.register_gauge(
            "plan_cache.hit_ratio", lambda: self.plan_cache.hit_ratio)
        self.metrics.register_gauge(
            "mdcache.hit_ratio", self._mdcache_hit_ratio)
        self.metrics.register_gauge(
            "workload.fingerprints", lambda: len(self.workload))

    def _mdcache_hit_ratio(self) -> float:
        hits = self.metrics.count("mdcache.hits")
        requests = hits + self.metrics.count("mdcache.misses")
        return hits / requests if requests else 0.0

    # -- DDL / DML ---------------------------------------------------------------

    def create_table(self, schema: TableSchema) -> None:
        self.storage.create_table(schema)

    def load(self, table_name: str, rows: Iterable[Sequence]) -> None:
        self.storage.load_rows(table_name, list(rows))

    def analyze(self, with_histograms: bool = True) -> None:
        """ANALYZE every table (row counts, NDVs, histograms)."""
        self.storage.analyze_all(with_histograms)

    # -- compilation -------------------------------------------------------------

    def _compile(self, sql: str, optimizer: str,
                 governor: Optional[ExecutionGovernor] = None
                 ) -> Tuple[Executor, str, Optional[FallbackReason],
                            SkeletonPlan]:
        """Parse, prepare, optimize, and refine.

        Returns ``(executor, optimizer_used, fallback_reason, skeleton)``.
        """
        with self.tracer.span("parse"):
            stmt = parse_statement(sql)
        if not isinstance(stmt, sql_ast.SelectStmt):
            raise ReproError("only SELECT statements can be compiled; "
                             "DML executes directly")
        return self._compile_select(stmt, optimizer, sql,
                                    governor=governor)

    def _compile_select(self, stmt, optimizer: str, sql: str,
                        cache_status: Optional[str] = None,
                        governor: Optional[ExecutionGovernor] = None
                        ) -> Tuple[Executor, str, Optional[FallbackReason],
                                   SkeletonPlan]:
        tracer = self.tracer
        with tracer.span("prepare"):
            block, context = Resolver(self.catalog).resolve(stmt)
            prepare(block)
        if governor is not None:
            # Stage-boundary checkpoint: a cancelled/expired statement
            # aborts before any optimizer work starts.  Within the Orca
            # detour itself the governor additionally shrinks the
            # CompileBudget to the remaining deadline (see OrcaRouter).
            governor.checkpoint(stage="prepare")

        with tracer.span("route") as route_span:
            route = self._route(stmt, optimizer)
            route_span.set(route=route, policy=self.config.routing,
                           table_references=stmt.table_reference_count())
            if cache_status is not None:
                route_span.set(plan_cache=cache_status)
        used = "mysql"
        fallback_reason: Optional[FallbackReason] = None
        skeleton: Optional[SkeletonPlan] = None
        if route == "cost":
            # Future-work routing (Section 9): greedy-optimize first, and
            # only detour to Orca when the MySQL plan looks expensive.
            with tracer.span("mysql_optimize"):
                skeleton = MySQLOptimizer(self.catalog).optimize(
                    block, context)
            top_cost = skeleton.skeleton_for(block).total_cost
            if top_cost >= self.config.mysql_cost_threshold:
                orca_skeleton, fallback_reason = self._guarded_detour(
                    stmt, block, context, sql, governor)
                if orca_skeleton is not None:
                    # On fallback the greedy skeleton computed above is
                    # reused as-is — no recompute.
                    skeleton = orca_skeleton
                    used = "orca"
        elif route == "orca":
            skeleton, fallback_reason = self._guarded_detour(
                stmt, block, context, sql, governor)
            used = "orca" if skeleton is not None else "mysql"
        if skeleton is None:
            with tracer.span("mysql_optimize"):
                skeleton = MySQLOptimizer(self.catalog).optimize(
                    block, context)
        if governor is not None:
            governor.checkpoint(stage="optimize")
        with tracer.span("refine"):
            executor = PlanBuilder(skeleton, self.catalog,
                                   self.storage).build()
        if governor is not None:
            governor.checkpoint(stage="refine")
        return executor, used, fallback_reason, skeleton

    def _guarded_detour(self, stmt, block, context, sql: str,
                        governor: Optional[ExecutionGovernor] = None
                        ) -> Tuple[Optional[SkeletonPlan],
                                   Optional[FallbackReason]]:
        """Enter the Orca detour under containment.

        Checks the circuit breaker first, records the outcome in the
        fallback log, and feeds unexpected-exception fallbacks back into
        the breaker.  Never raises (unless containment is disabled).
        """
        from repro.bridge.router import OrcaRouter

        fingerprint = statement_fingerprint(sql)
        with self.tracer.span("orca_detour",
                              fingerprint=fingerprint) as span:
            if not self.circuit_breaker.allow(fingerprint):
                self.fallback_log.record_fallback(FallbackEvent(
                    fingerprint=fingerprint,
                    reason=FallbackReason.CIRCUIT_OPEN,
                    sql=sql))
                span.set(outcome="fallback",
                         fallback_reason=FallbackReason.CIRCUIT_OPEN.value)
                return None, FallbackReason.CIRCUIT_OPEN
            router = OrcaRouter(self.catalog, self.config,
                                tracer=self.tracer, metrics=self.metrics,
                                governor=governor)
            self.last_router = router
            self.fallback_log.record_detour_entry()
            outcome = router.optimize_guarded(stmt, block, context)
            if outcome.ok:
                self.fallback_log.record_detour_success()
                self.circuit_breaker.record_success(fingerprint)
                span.set(outcome="ok")
                return outcome.skeleton, None
            self.fallback_log.record_fallback(FallbackEvent(
                fingerprint=fingerprint,
                reason=outcome.reason,
                error_type=outcome.error_type,
                error_message=outcome.error_message,
                sql=sql))
            span.set(outcome="fallback",
                     fallback_reason=outcome.reason.value,
                     error_type=outcome.error_type)
            if outcome.reason is FallbackReason.UNEXPECTED_EXCEPTION:
                self.circuit_breaker.record_failure(fingerprint)
            return None, outcome.reason

    def _route(self, stmt, optimizer: str) -> str:
        if optimizer == "mysql":
            return "mysql"
        if optimizer == "orca":
            return "orca"
        if optimizer != "auto":
            raise ReproError(f"unknown optimizer {optimizer!r}")
        if not self.config.orca_enabled:
            return "mysql"
        if self.config.routing not in ROUTING_POLICIES:
            # The config object is mutable, so a typo like "cost-based"
            # can arrive after construction; refuse to guess.
            raise ReproError(
                f"unknown routing {self.config.routing!r}; valid "
                f"choices: {', '.join(ROUTING_POLICIES)}")
        if self.config.routing == "cost_based":
            return "cost"
        refs = stmt.table_reference_count()
        if refs >= self.config.complex_query_threshold:
            return "orca"
        return "mysql"

    # -- DML ---------------------------------------------------------------------

    def _execute_dml(self, stmt, start: float,
                     governor: Optional[ExecutionGovernor] = None
                     ) -> StatementResult:
        """Run INSERT/DELETE/UPDATE directly (never routed — Section 4.1)."""
        from repro import dml

        compiled = time.perf_counter()
        if governor is not None:
            # DML mutates storage in one shot, so the only safe abort
            # point is *before* the write — a cancellation landing here
            # leaves storage untouched; after this checkpoint the
            # statement runs to completion.
            governor.checkpoint(stage="dml")
        with self.tracer.span("execute"):
            if isinstance(stmt, sql_ast.InsertStmt):
                affected = dml.execute_insert(self.storage, stmt)
            elif isinstance(stmt, sql_ast.DeleteStmt):
                affected = dml.execute_delete(self.storage, stmt)
            else:
                affected = dml.execute_update(self.storage, stmt)
        done = time.perf_counter()
        self.metrics.inc("statements.dml")
        return StatementResult(
            rows=[(affected,)],
            optimizer_used="mysql",
            compile_seconds=compiled - start,
            execute_seconds=done - compiled,
        )

    # -- public query API -----------------------------------------------------------

    def execute(self, sql: str, optimizer: str = "auto") -> List[tuple]:
        return self.run(sql, optimizer).rows

    # -- governance --------------------------------------------------------------

    def _make_governor(self, timeout_seconds: Optional[float],
                       memory_limit_bytes: Optional[int],
                       cancel_token: Optional[CancelToken]
                       ) -> Optional[ExecutionGovernor]:
        """The per-statement governor: explicit bounds beat config
        defaults; None when governance is off and nothing was asked."""
        config = self.config
        timeout = timeout_seconds if timeout_seconds is not None \
            else config.statement_timeout_seconds
        limit = memory_limit_bytes if memory_limit_bytes is not None \
            else config.statement_memory_limit_bytes
        if not config.governor_enabled and timeout is None \
                and limit is None and cancel_token is None:
            return None
        return ExecutionGovernor(
            timeout_seconds=timeout,
            memory_limit_bytes=limit,
            cancel_token=cancel_token,
            fault_injector=config.fault_injector,
            check_interval=config.governor_check_interval)

    def cancel(self, statement_id: int,
               reason: str = "cancelled by client") -> bool:
        """Request cooperative cancellation of an in-flight statement.

        Returns True when the statement is still running — it will
        abort with :class:`repro.errors.StatementCancelledError` at its
        next governor checkpoint — and False when the id is unknown or
        the statement already finished.  Safe to call from another
        thread (it only sets a flag).
        """
        entry = self._active_statements.get(statement_id)
        if entry is None:
            return False
        entry[1].cancel(reason)
        return True

    def active_statements(self) -> Dict[int, str]:
        """statement_id -> SQL text of every in-flight statement."""
        return {sid: sql
                for sid, (sql, __) in self._active_statements.items()}

    def run(self, sql: str, optimizer: str = "auto",
            explain: bool = False, trace: bool = False,
            use_plan_cache: bool = True,
            executor_mode: Optional[str] = None,
            timeout_seconds: Optional[float] = None,
            memory_limit_bytes: Optional[int] = None,
            cancel_token: Optional[CancelToken] = None,
            executor_workers: Optional[int] = None) -> StatementResult:
        """Execute with timing breakdown (used by the benchmark harness).

        DML statements return a single row holding the affected-row
        count; they never take the Orca detour (Section 4.1).  With
        ``explain=True`` the result also carries the plan's EXPLAIN
        text (rendered before execution, so estimates are unperturbed).
        With ``trace=True`` the statement runs under a fresh
        :class:`repro.observability.Tracer` and the result carries the
        span tree (``result.trace``); without it, tracing costs nothing.
        ``use_plan_cache=False`` bypasses the statement plan cache for
        this statement only (no lookup, no store).
        ``executor_mode="batch"|"row"`` overrides
        ``config.executor_mode`` for this statement only.

        ``timeout_seconds`` / ``memory_limit_bytes`` override the
        config-default statement bounds for this statement;
        ``cancel_token`` installs a caller-owned
        :class:`repro.governor.CancelToken`.  A breached bound aborts
        the statement with the matching typed
        :class:`repro.errors.GovernorError` subclass and leaves
        storage, the plan cache, metrics streaks, and the misestimation
        ledger exactly as if the statement never ran — one exception:
        a hash-aggregate memory breach first retries once in streaming
        mode (see ``config.governor_stream_agg_retry``).

        ``executor_workers`` overrides ``config.executor_workers`` for
        this statement (morsel-driven parallelism; batch mode only).
        """
        if executor_mode is not None and executor_mode not in EXECUTOR_MODES:
            raise ReproError(
                f"unknown executor_mode {executor_mode!r}; valid "
                f"choices: {', '.join(EXECUTOR_MODES)}")
        if executor_workers is not None and executor_workers < 1:
            raise ReproError("executor_workers must be >= 1")
        governor = self._make_governor(timeout_seconds, memory_limit_bytes,
                                       cancel_token)
        statement_id = self._next_statement_id
        self._next_statement_id += 1
        if governor is not None:
            self._active_statements[statement_id] = (sql, governor)
        previous = self.tracer
        if trace and not previous.enabled:
            self.tracer = Tracer()
        try:
            result = self._run(sql, optimizer, explain, use_plan_cache,
                               executor_mode, governor, statement_id,
                               executor_workers)
            if self.tracer.enabled:
                result.trace = self.tracer.last_root
            self._log_slow_query(sql, result)
            return result
        finally:
            self._active_statements.pop(statement_id, None)
            self.tracer = previous

    def _run(self, sql: str, optimizer: str, explain: bool,
             use_plan_cache: bool = True,
             executor_mode: Optional[str] = None,
             governor: Optional[ExecutionGovernor] = None,
             statement_id: int = 0,
             executor_workers: Optional[int] = None) -> StatementResult:
        tracer = self.tracer
        self.metrics.inc("statements.total")
        start = time.perf_counter()
        with tracer.span("statement", sql=sql,
                         optimizer=optimizer) as stmt_span:
            try:
                return self._run_governed(sql, optimizer, explain,
                                          use_plan_cache, executor_mode,
                                          governor, statement_id, start,
                                          stmt_span, executor_workers)
            except (GovernorError, ExecutionError) as exc:
                # An aborted statement: classify, count, and unwind.
                # Deliberately skipped: the plan-cache store, the
                # misestimation ledger's streak, planq metrics, and the
                # compile/execute latency observations — the statement
                # must leave the Database as if it never ran.
                self._record_abort(sql, exc, governor, stmt_span,
                                   statement_id, start)
                raise

    def _run_governed(self, sql: str, optimizer: str, explain: bool,
                      use_plan_cache: bool,
                      executor_mode: Optional[str],
                      governor: Optional[ExecutionGovernor],
                      statement_id: int, start: float,
                      stmt_span,
                      executor_workers: Optional[int] = None
                      ) -> StatementResult:
        tracer = self.tracer
        with tracer.span("parse"):
            stmt = parse_statement(sql)
        if governor is not None:
            governor.checkpoint(stage="parse")
        if not isinstance(stmt, sql_ast.SelectStmt):
            result = self._execute_dml(stmt, start, governor)
            stmt_span.set(optimizer_used=result.optimizer_used)
            result.statement_id = statement_id
            self._record_flight(sql, result, workers=1,
                                stmt_span=stmt_span)
            return result
        self.metrics.inc("statements.select")
        cache_enabled = use_plan_cache and \
            self.config.plan_cache_enabled
        cache_key = statement_cache_key(sql, optimizer)
        cached = self.plan_cache.lookup(
            cache_key, self.catalog.version) if cache_enabled else None
        fallback_reason: Optional[FallbackReason] = None
        if cached is not None:
            # Hit: the refined executable plan is reused as-is; the
            # whole optimize pipeline (prepare, route, detour or
            # MySQL optimization, refine) is skipped.
            executor = cached.executor
            used = cached.optimizer_used
            skeleton = cached.skeleton
            with tracer.span("route") as route_span:
                route_span.set(plan_cache="hit", route=used,
                               policy=self.config.routing)
        else:
            status = "miss" if cache_enabled else "bypass"
            executor, used, fallback_reason, skeleton = \
                self._compile_select(stmt, optimizer, sql,
                                     cache_status=status,
                                     governor=governor)
        explain_text = explain_plan(executor.top_plan) \
            if explain else None
        mode = executor_mode or self.config.executor_mode
        workers = executor_workers or self.config.executor_workers
        compiled = time.perf_counter()
        with tracer.span("execute") as exec_span:
            rows, executor, governor, low_memory_retry = \
                self._execute_governed(executor, skeleton, mode,
                                       governor, sql, workers)
            exec_span.set(executor_mode=executor.last_mode)
            if executor.last_mode == "batch":
                runtime = executor.last_runtime
                exec_span.set(batches=runtime.batches,
                              batch_rows=runtime.batch_rows)
            parallel = getattr(executor, "last_parallel", None)
            if parallel is not None and parallel.ops:
                # Worker skew rides on the execute span (the grafted
                # parallel_worker children carry the per-worker detail).
                self._last_parallel = parallel
                skew = parallel.skew()
                exec_span.set(
                    parallel_backend=parallel.backend,
                    parallel_workers=skew["workers"],
                    worker_min_morsels=skew["min_morsels"],
                    worker_max_morsels=skew["max_morsels"],
                    worker_stddev_morsels=skew["stddev_morsels"])
        done = time.perf_counter()
        quality = statement_quality(executor)
        self._record_plan_quality(sql, cache_key, quality, used,
                                  cached is not None, exec_span)
        plan_hash = self._record_workload(
            sql, executor, used, cached is not None, fallback_reason,
            quality, done - start, len(rows))
        if cached is None and cache_enabled and fallback_reason is None \
                and not low_memory_retry:
            # Deferred store — only a statement that *executed to
            # completion* enters the cache.  Never cache a fallen-back
            # detour (circuit open, budget overrun, crash: each run
            # must re-attempt routing and keep feeding the breaker),
            # an aborted statement (the except path above never gets
            # here), or a reduced-memory retry plan (the forced-stream
            # shape is a degradation, not the optimizer's choice).
            self.plan_cache.store(cache_key, PlanCacheEntry(
                executor=executor,
                skeleton=skeleton,
                optimizer_used=used,
                catalog_version=self.catalog.version,
                fingerprint=statement_fingerprint(sql)))
        if mode == "batch" and executor.last_mode == "row":
            # The batch engine refused this plan; record the
            # degradation through the same taxonomy as detour
            # fallbacks so operators see it in one report.
            self.fallback_log.record_fallback(FallbackEvent(
                fingerprint=statement_fingerprint(sql),
                reason=FallbackReason.EXEC_BATCH_UNSUPPORTED,
                error_message=executor.batch_unsupported_reason,
                sql=sql))
        elif workers > 1 and executor.last_mode == "batch" \
                and not low_memory_retry:
            parallel = getattr(executor, "last_parallel", None)
            if parallel is None or parallel.ops == 0:
                # Parallelism was requested but no operator in this
                # plan had a parallel-safe shape (or every eligible
                # table was too small): the statement ran serial.
                self.fallback_log.record_fallback(FallbackEvent(
                    fingerprint=statement_fingerprint(sql),
                    reason=FallbackReason.EXEC_NOT_PARALLEL_SAFE,
                    error_message="no parallel-safe operator in plan",
                    sql=sql))
        self.metrics.inc(f"statements.{used}")
        self.metrics.observe("statement.compile_seconds",
                             compiled - start)
        self.metrics.observe("statement.execute_seconds",
                             done - compiled)
        governor_stats = None
        if governor is not None:
            governor_stats = governor.stats()
            self.metrics.observe("governor.peak_bytes",
                                 governor.memory.peak_bytes)
        stmt_span.set(optimizer_used=used, rows=len(rows),
                      plan_cache_hit=cached is not None,
                      executor_mode=executor.last_mode)
        result = StatementResult(
            rows=rows,
            optimizer_used=used,
            compile_seconds=compiled - start,
            execute_seconds=done - compiled,
            explain=explain_text,
            fallback_reason=fallback_reason,
            plan_cache_hit=cached is not None,
            executor_mode=executor.last_mode,
            plan_quality=quality,
            statement_id=statement_id,
            governor_stats=governor_stats,
            low_memory_retry=low_memory_retry,
            plan_hash=plan_hash,
        )
        self._record_flight(sql, result, workers=workers,
                            stmt_span=stmt_span)
        return result

    def _record_workload(self, sql: str, executor: Executor, used: str,
                         plan_cache_hit: bool,
                         fallback_reason: Optional[FallbackReason],
                         quality: StatementQuality,
                         latency_seconds: float,
                         rows: int) -> Optional[str]:
        """Fold one completed statement into the workload repository.

        The plan hash and column touches are properties of the compiled
        plan, not the execution, so they are computed once and cached on
        the executor — plan-cache hits pay only the aggregate updates.
        Returns the plan hash (None when tracking is off).
        """
        if not self.config.workload_tracking_enabled:
            return None
        plan_hash = getattr(executor, "workload_plan_hash", None)
        if plan_hash is None:
            plan_hash = compute_plan_hash(executor)
            executor.workload_plan_hash = plan_hash
            executor.workload_touches = extract_column_touches(executor)
        self.workload.record(
            fingerprint=statement_fingerprint(sql),
            sql=sql,
            plan_hash=plan_hash,
            touches=executor.workload_touches,
            latency_seconds=latency_seconds,
            rows=rows,
            optimizer_used=used,
            executor_mode=executor.last_mode,
            plan_cache_hit=plan_cache_hit,
            breached=quality.max_q > self.misestimation_ledger.q_threshold,
            fallback=fallback_reason is not None,
        )
        if self.config.advisor_auto_analyze and \
                self.workload.recorded \
                % self.config.advisor_interval_statements == 0:
            with self.tracer.span("advisor_auto_apply"):
                self.advisor.apply(kinds=("reanalyze",))
        return plan_hash

    def _record_flight(self, sql: str, result: StatementResult,
                       workers: int, stmt_span=None) -> None:
        """Append one completed statement to the flight recorder, then
        run the regression watchdog; free when the recorder is off."""
        flight = self.flight
        if flight is None:
            return
        stages: Dict[str, float] = {}
        if isinstance(stmt_span, Span):
            # The statement span is still open here; its closed
            # children (parse, route, execute, ...) are the stages.
            stages = stage_durations(stmt_span)
            stages.pop("statement", None)
        quality = result.plan_quality
        gov = result.governor_stats
        flight.record(FlightRecord(
            seq=0,
            statement_id=result.statement_id,
            fingerprint=statement_fingerprint(sql),
            sql=sql,
            optimizer=result.optimizer_used,
            executor_mode=result.executor_mode,
            workers=workers,
            plan_hash=result.plan_hash,
            plan_cache_hit=result.plan_cache_hit,
            rows=len(result.rows),
            compile_seconds=result.compile_seconds,
            execute_seconds=result.execute_seconds,
            stage_seconds=stages,
            root_q=quality.root_q if quality is not None else None,
            max_q=quality.max_q if quality is not None else None,
            fallback_reason=result.fallback_reason.value
            if result.fallback_reason is not None else None,
            governor_checkpoints=gov.get("checkpoints")
            if gov is not None else None,
            governor_peak_bytes=gov.get("peak_tracked_bytes")
            if gov is not None else None,
            low_memory_retry=result.low_memory_retry,
        ))
        self._run_watchdog()

    def _run_watchdog(self) -> None:
        """Feed fresh watchdog findings into the advisor pipeline.

        A flagged fingerprint becomes a workload-repository regression
        (``from_hash == to_hash``: the *same* plan got slower), which
        the existing Advisor surfaces as a ``plan_regression``
        recommendation and remediates via plan-cache purge on apply.
        """
        for finding in self.flight.watchdog_check():
            if self.config.workload_tracking_enabled:
                self.workload.note_external_regression(
                    finding.fingerprint, finding.sql,
                    before_p95=finding.before_p95,
                    after_p95=finding.after_p95,
                    plan_hash=finding.plan_hash)

    def _execute_governed(self, executor: Executor,
                          skeleton: Optional[SkeletonPlan], mode: str,
                          governor: Optional[ExecutionGovernor],
                          sql: str, workers: int = 1):
        """Run the plan under the governor, with one degradation path.

        A hash-aggregate memory breach — and only that breach — retries
        the statement once with aggregation forced to sort+stream under
        a fresh governor carrying the remaining deadline and the same
        cancel token.  The inserted sorts charge as *spillable* so the
        retry cannot be killed by the operator the degradation added.
        Returns ``(rows, executor, governor, low_memory_retry)``; the
        retry executor replaces the original for quality reporting.
        """
        injector = self.config.fault_injector
        try:
            rows = self._execute_wrapped(executor, mode, governor,
                                         injector, workers)
            return rows, executor, governor, False
        except ResourceExhaustedError as exc:
            if exc.operator != "hash_agg" \
                    or not self.config.governor_stream_agg_retry \
                    or skeleton is None or governor is None:
                raise
            self.metrics.inc("governor.stream_agg_retries")
            self.metrics.inc("governor.mem_breaches")
            self.fallback_log.record_fallback(FallbackEvent(
                fingerprint=statement_fingerprint(sql),
                reason=FallbackReason.RESOURCE_EXHAUSTED,
                error_type=type(exc).__name__,
                error_message=(f"{exc} — degraded to streaming "
                               f"aggregation and retried"),
                sql=sql))
            retry_governor = ExecutionGovernor(
                timeout_seconds=governor.remaining_seconds(),
                memory_limit_bytes=governor.memory.limit_bytes,
                cancel_token=governor.cancel_token,
                check_interval=governor.check_interval,
                spill_sorts=True, low_memory=True)
            with self.tracer.span("low_memory_retry"):
                retry_executor = PlanBuilder(
                    skeleton, self.catalog, self.storage,
                    force_stream_agg=True).build()
                # The retry runs without fault injection: an armed
                # alloc-spike would re-breach the degraded plan too and
                # turn every chaos spike into a hard failure.  It also
                # runs serial — the degraded shape exists to shrink the
                # memory footprint, not to go fast.
                rows = self._execute_wrapped(retry_executor, mode,
                                             retry_governor, None,
                                             workers=1)
            return rows, retry_executor, retry_governor, True

    def _execute_wrapped(self, executor: Executor, mode: str,
                         governor: Optional[ExecutionGovernor],
                         injector, workers: int = 1) -> List[tuple]:
        """Execute, wrapping non-typed escapes as ExecutionError.

        Anything that is not already a ReproError (an injected crash, a
        storage bug) is chained into a typed ExecutionError so every
        abort maps onto the FallbackReason taxonomy."""
        try:
            return executor.execute(
                mode=mode, metrics=self.metrics,
                governor=governor, injector=injector, workers=workers,
                parallel_backend=self.config.parallel_backend,
                parallel_min_table_rows=self.config.parallel_min_table_rows,
                tracer=self.tracer)
        except ReproError:
            raise
        except Exception as exc:
            raise ExecutionError(
                f"execution failed: {type(exc).__name__}: {exc}") from exc

    def _record_abort(self, sql: str, exc: ReproError,
                      governor: Optional[ExecutionGovernor],
                      stmt_span, statement_id: int = 0,
                      start: Optional[float] = None) -> None:
        """Bookkeeping for an aborted statement.

        Records a FallbackEvent with the execution-stage reason and
        bumps the governor counters; deliberately does NOT touch the
        plan cache or the misestimation ledger's streaks (the abort
        must not poison either — the ledger only counts it).
        """
        reason = classify_execution_exception(exc)
        self.fallback_log.record_fallback(FallbackEvent(
            fingerprint=statement_fingerprint(sql),
            reason=reason,
            error_type=type(exc).__name__,
            error_message=str(exc),
            sql=sql))
        self.metrics.inc(_ABORT_COUNTERS[reason])
        self.metrics.inc("statements.aborted")
        self.misestimation_ledger.note_aborted()
        if self.config.workload_tracking_enabled:
            self.workload.record_abort(statement_fingerprint(sql), sql)
        if governor is not None:
            self.metrics.observe("governor.peak_bytes",
                                 governor.memory.peak_bytes)
        stmt_span.set(aborted=True, abort_reason=reason.value,
                      error_type=type(exc).__name__)
        if self.flight is not None:
            # An abort still leaves a flight record — the crash history
            # right before a bad stretch is the recorder's whole point.
            # Latency is elapsed-until-abort (the bound, not the
            # statement), so the watchdog excludes aborted records.
            elapsed = 0.0
            if governor is not None:
                elapsed = governor.elapsed_seconds()
            elif start is not None:
                elapsed = time.perf_counter() - start
            self.flight.record(FlightRecord(
                seq=0,
                statement_id=statement_id,
                fingerprint=statement_fingerprint(sql),
                sql=sql,
                execute_seconds=elapsed,
                aborted=True,
                abort_reason=reason.value,
                governor_checkpoints=governor.checkpoints
                if governor is not None else None,
                governor_peak_bytes=governor.memory.peak_bytes
                if governor is not None else None,
            ))

    def _record_plan_quality(self, sql: str, cache_key: str,
                             quality: StatementQuality, used: str,
                             plan_cache_hit: bool, exec_span) -> None:
        """Fold one execution's estimate accuracy into the feedback loop.

        Records the statement in the misestimation ledger, mirrors the
        aggregates into ``planq.*`` metrics and the ``execute`` span,
        and — when the ledger reports a completed breach streak — drops
        the statement's plan-cache entry so the next run re-optimizes.
        Only cache hits advance the breach streak: invalidation evicts
        a cached plan, so the evidence has to come from executions that
        plan actually served.
        """
        entry, invalidate = self.misestimation_ledger.record(
            cache_key, statement_fingerprint(sql), sql, quality, used,
            cached=plan_cache_hit)
        metrics = self.metrics
        metrics.inc("planq.statements")
        metrics.observe("planq.root_q", quality.root_q)
        metrics.observe("planq.max_q", quality.max_q)
        breached = quality.max_q > self.misestimation_ledger.q_threshold
        if breached:
            metrics.inc("planq.breaches")
        exec_span.set(root_q=quality.root_q, max_q=quality.max_q,
                      worst_operator=quality.worst_operator,
                      planq_breach=breached)
        if invalidate:
            metrics.inc("planq.plan_invalidations")
            self.plan_cache.invalidate(cache_key)

    def explain(self, sql: str, optimizer: str = "auto",
                analyze: bool = False) -> str:
        """EXPLAIN text; with ``analyze=True``, EXPLAIN ANALYZE plus the
        per-stage breakdown footer (optimize-vs-execute split and Orca
        memo statistics)."""
        if analyze:
            return self.explain_analyze(sql, optimizer)
        executor, __, __, __ = self._compile(sql, optimizer)
        return explain_plan(executor.top_plan)

    def explain_analyze(self, sql: str, optimizer: str = "auto",
                        executor_mode: Optional[str] = None,
                        executor_workers: Optional[int] = None) -> str:
        """EXPLAIN ANALYZE: execute with per-operator actual row counts.

        The statement is executed once and rendered with
        ``(estimated rows=E actual rows=N q=Q)`` per node from the
        executor's always-on counters — making estimation errors (the
        histogram story of Section 5.5) visible per operator; batch-
        engine runs additionally show per-node ``(batches=N)`` counts.
        A "stage breakdown" footer shows where the statement spent its
        time (mirroring the paper's EXPLAIN cost copy-over, Section 6),
        which executor engine ran, and, for Orca plans, the memo
        statistics.  With ``executor_workers > 1``, nodes that ran
        morsel-parallel additionally show ``workers=N``.
        """
        from repro.executor.explain import format_stage_footer
        from repro.executor.plan import DerivedMaterializeNode

        mode = executor_mode or self.config.executor_mode
        if mode not in EXECUTOR_MODES:
            raise ReproError(f"unknown executor mode {mode!r}; "
                             f"expected one of {EXECUTOR_MODES}")
        governor = self._make_governor(None, None, None)
        previous = self.tracer
        if not previous.enabled:
            self.tracer = Tracer()
        try:
            with self.tracer.span("statement", sql=sql) as root:
                start = time.perf_counter()
                executor, used, __, __ = self._compile(sql, optimizer,
                                                       governor)
                compiled = time.perf_counter()
                with self.tracer.span("execute"):
                    executor.execute(
                        mode=mode, governor=governor,
                        workers=(executor_workers
                                 or self.config.executor_workers),
                        parallel_backend=self.config.parallel_backend,
                        parallel_min_table_rows=self.config
                        .parallel_min_table_rows,
                        tracer=self.tracer)
                done = time.perf_counter()
        finally:
            self.tracer = previous
        stages = stage_durations(root)
        memo_groups = memo_alternatives = memo_pruned = 0
        join_strategy = None
        join_units = 0
        join_degradations = 0
        for span in find_spans(root, "memo_search"):
            memo_groups += span.attributes.get("memo_groups", 0)
            memo_alternatives += span.attributes.get(
                "memo_alternatives", 0)
            memo_pruned += span.attributes.get("pruned_candidates", 0)
            # Report the strategy of the statement's widest joined
            # component (sub-blocks optimize separately, each with its
            # own memo_search span).
            units = span.attributes.get("join_units", 0)
            if span.attributes.get("join_strategy") is not None \
                    and units >= join_units:
                join_strategy = span.attributes["join_strategy"]
                join_units = units
            join_degradations += span.attributes.get(
                "join_budget_degradations", 0)
        worker_spans = [span.to_dict()
                        for span in find_spans(root, "parallel_worker")]
        parallel = getattr(executor, "last_parallel", None)
        worker_skew = parallel.skew() \
            if parallel is not None and parallel.ops else None
        footer = format_stage_footer(
            optimizer_used=used,
            optimize_seconds=compiled - start,
            execute_seconds=done - compiled,
            stages=stages,
            memo_groups=memo_groups,
            memo_alternatives=memo_alternatives,
            memo_pruned=memo_pruned,
            executor_mode=executor.last_mode,
            batches=executor.last_runtime.batches,
            batch_rows=executor.last_runtime.batch_rows,
            compiled_exprs=executor.compiled_expr_count,
            governor_stats=governor.stats()
            if governor is not None else None,
            join_strategy=join_strategy,
            join_units=join_units,
            join_budget_degradations=join_degradations,
            worker_spans=worker_spans or None,
            worker_skew=worker_skew,
        )
        # Copy rebind counts (Section 7, Orca change 3) onto the
        # materialise nodes so the rendering can show them.
        runtime = executor.last_runtime
        stack = [executor.top_plan]
        seen = set()
        while stack:
            plan = stack.pop()
            if id(plan) in seen or plan.root is None:
                continue
            seen.add(id(plan))
            nodes = [plan.root]
            while nodes:
                node = nodes.pop()
                nodes.extend(node.children())
                if isinstance(node, DerivedMaterializeNode):
                    node.actual_rebinds = runtime.rebind_counts.get(
                        id(node), 0)
                subplan = getattr(node, "subplan", None)
                if subplan is not None:
                    stack.append(subplan)
        return explain_plan(executor.top_plan, analyze=True,
                            footer=footer)

    def compile_only(self, sql: str, optimizer: str = "auto"
                     ) -> StatementResult:
        """Compile (EXPLAIN) without executing — for Table 1 experiments."""
        start = time.perf_counter()
        executor, used, fallback_reason, __ = self._compile(sql, optimizer)
        compiled = time.perf_counter()
        return StatementResult(
            rows=[],
            optimizer_used=used,
            compile_seconds=compiled - start,
            execute_seconds=0.0,
            explain=explain_plan(executor.top_plan),
            fallback_reason=fallback_reason,
        )

    # -- observability -----------------------------------------------------------------

    def _log_slow_query(self, sql: str, result: StatementResult) -> None:
        """Append one JSONL record for a statement over the latency
        threshold; free when ``slow_query_log_path`` is unset."""
        path = self.config.slow_query_log_path
        if path is None:
            return
        total = result.compile_seconds + result.execute_seconds
        if total < self.config.slow_query_log_threshold_seconds:
            return
        quality = result.plan_quality
        record = {
            "ts": datetime.datetime.now().isoformat(),
            "sql": sql,
            "fingerprint": statement_fingerprint(sql),
            "plan_hash": result.plan_hash,
            "optimizer": result.optimizer_used,
            "executor_mode": result.executor_mode,
            "plan_cache_hit": result.plan_cache_hit,
            "total_seconds": total,
            "compile_seconds": result.compile_seconds,
            "execute_seconds": result.execute_seconds,
            "rows": len(result.rows),
            "root_q": quality.root_q if quality is not None else None,
            "max_q": quality.max_q if quality is not None else None,
            "worst_operator": quality.worst_operator
            if quality is not None else None,
            "fallback_reason": result.fallback_reason.value
            if result.fallback_reason is not None else None,
            "stages": result.stage_seconds(),
            "trace": result.trace_export(),
        }
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, default=str) + "\n")
        self.metrics.inc("slow_query_log.records")

    def metrics_export(self) -> str:
        """The whole metrics registry (counters, gauges, histogram
        quantiles) in Prometheus text exposition format."""
        return self.metrics.to_prometheus()

    def plan_quality_report(self) -> dict:
        """The estimate-vs-actual feedback surface, as one payload:

        * ``worst_fingerprints`` — ledger entries ranked by worst-ever
          Q-error (statements the optimizer misestimates hardest);
        * ``worst_operators`` — operator kinds ranked the same way;
        * ``stats_staleness`` — per-table live-vs-ANALYZE cardinality
          drift, worst first;
        * ``reanalyze_recommendations`` — tables whose drift exceeds
          ``config.planq_stats_staleness_threshold`` (or that were
          never analyzed at all);
        * ``ledger`` — breach/invalidation totals and thresholds.

        Render with
        :func:`repro.plan_quality.format_plan_quality_report`.
        """
        staleness = stats_staleness(
            self.catalog, self.storage,
            threshold=self.config.planq_stats_staleness_threshold)
        ledger = self.misestimation_ledger
        return {
            "ledger": ledger.stats(),
            "worst_fingerprints": [
                entry.to_dict() for entry in ledger.worst_fingerprints()],
            "worst_operators": ledger.worst_operators(),
            "stats_staleness": [table.to_dict() for table in staleness],
            "reanalyze_recommendations": [
                table.table for table in staleness
                if table.recommend_analyze],
        }

    def plan_quality_report_text(self) -> str:
        """``plan_quality_report()`` rendered as plain text."""
        return format_plan_quality_report(self.plan_quality_report())

    def workload_report(self, limit: int = 20) -> dict:
        """The workload-intelligence surface, as one payload:

        * ``repository`` — per-fingerprint statement history (execution
          counts, latency p50/p95/p99, plan-cache hit ratio, plan hash
          and phases, confirmed regressions) plus per-column usage;
        * ``recommendations`` — the advisor's ranked advice
          (``reanalyze`` / ``index`` / ``plan_regression``), each with
          a score, a human reason, and machine-readable details;
        * ``advisor`` — apply totals.

        Render with :func:`repro.workload.format_workload_report`.
        """
        return {
            "repository": self.workload.snapshot(limit=limit),
            "recommendations": [
                rec.to_dict() for rec in self.advisor.recommendations()],
            "advisor": {"applied_total": self.advisor.applied_total},
        }

    def workload_report_text(self, limit: int = 20) -> str:
        """``workload_report()`` rendered as plain text."""
        return format_workload_report(self.workload_report(limit=limit))

    def flight_report(self, limit: int = 20) -> dict:
        """The flight recorder's JSON-ready payload (buffer stats plus
        the most recent records, latest first).  Raises when the
        recorder is disabled — a silent empty report would read as "the
        engine did nothing"."""
        if self.flight is None:
            raise ReproError("flight recorder is disabled "
                             "(config.flight_recorder_enabled)")
        return self.flight.report(limit=limit)

    def flight_report_text(self, limit: int = 20) -> str:
        """``flight_report()`` rendered as plain text."""
        return format_flight_report(self.flight_report(limit=limit))

    def flight_export(self, path: str) -> int:
        """Dump the whole flight buffer (records + registry snapshots)
        as JSONL; returns the line count."""
        if self.flight is None:
            raise ReproError("flight recorder is disabled "
                             "(config.flight_recorder_enabled)")
        return self.flight.export_jsonl(path)

    def top_data(self, limit: int = 10) -> dict:
        """The live engine state behind :meth:`top`, JSON-ready:
        in-flight statements (elapsed, last governor stage), hottest
        fingerprints, and per-worker utilization of the most recent
        parallel statement."""
        active = []
        for sid, (sql, governor) in sorted(
                self._active_statements.items()):
            active.append({
                "statement_id": sid,
                "sql": sql,
                "elapsed_seconds": governor.elapsed_seconds(),
                "last_stage": governor.last_stage,
            })
        hottest = [{
            "fingerprint": entry.fingerprint,
            "sql": entry.sample_sql,
            "executions": entry.executions,
            "p95_seconds": entry.latency.quantile(0.95),
        } for entry in self.workload.entries()[:limit]]
        parallel = self._last_parallel
        return {
            "statements_total":
                int(self.metrics.count("statements.total")),
            "statements_aborted":
                int(self.metrics.count("statements.aborted")),
            "active_count": len(active),
            "active": active,
            "hottest": hottest,
            "workers": parallel.utilization()
            if parallel is not None else [],
            "worker_skew": parallel.skew()
            if parallel is not None else None,
        }

    def top(self, limit: int = 10) -> str:
        """Live ``top``-style text report of the engine right now."""
        return format_top_report(self.top_data(limit=limit))

    def metrics_report(self) -> str:
        """One text report answering "what happened and why": routing
        (detour rate), resilience (fallbacks by reason), metadata-cache
        effectiveness, and the raw counter/gauge/histogram dump.

        Every ratio line is empty-safe: after ``metrics.reset()`` (or
        before any statement ran) denominators are zero and each rate
        renders as 0.0% rather than dividing."""

        def pct(numerator: float, denominator: float) -> float:
            return 100.0 * numerator / denominator if denominator \
                else 0.0

        m = self.metrics
        selects = m.count("statements.select")
        entered = m.count("detour.entered")
        lines = ["Optimizer metrics", "=" * 17,
                 f"statements:        "
                 f"{int(m.count('statements.total'))} total, "
                 f"{int(selects)} SELECT",
                 f"detour rate:       {pct(entered, selects):.1f}% "
                 f"({int(entered)}/{int(selects)} SELECTs entered the "
                 f"Orca detour)",
                 f"detours succeeded: {int(m.count('detour.succeeded'))}"]
        fallbacks = m.counters_with_prefix("fallback.")
        lines.append("fallbacks by reason:"
                     if fallbacks else "fallbacks by reason: (none)")
        for name, value in fallbacks.items():
            lines.append(f"  {name[len('fallback.'):]}: {int(value)}")
        hits = m.count("mdcache.hits")
        misses = m.count("mdcache.misses")
        lines.append(f"mdcache hit ratio: "
                     f"{pct(hits, hits + misses):.1f}% "
                     f"({int(hits)} hits / {int(misses)} misses)")
        pc = self.plan_cache.stats()
        lines.append(
            f"plan cache:        "
            f"{pct(pc['hits'], pc['hits'] + pc['misses']):.1f}% hits "
            f"({pc['hits']} hits / {pc['misses']} misses, "
            f"{pc['evictions']} evictions, "
            f"{pc['invalidations']} invalidations, "
            f"{pc['size']} entries)")
        pruned = m.count("orca.pruned_candidates")
        lines.append(f"search pruning:    "
                     f"{int(pruned)} join candidates pruned")
        lines.append("")
        lines.append(m.report())
        return "\n".join(lines)

    # -- resilience observability ------------------------------------------------------

    def resilience_report(self) -> str:
        """Text summary: detour entries, fallbacks by reason, open circuits."""
        lines = [self.fallback_log.report()]
        open_fps = self.circuit_breaker.open_fingerprints
        lines.append(f"open circuits:     {len(open_fps)}")
        for fingerprint in open_fps:
            lines.append(
                f"  {fingerprint}: "
                f"{self.circuit_breaker.failures(fingerprint)} "
                f"consecutive failures")
        return "\n".join(lines)
