"""The public facade: a small embedded SQL engine with two optimizers.

Usage::

    db = Database()
    db.create_table(schema)
    db.load("t", rows)
    db.analyze()
    rows = db.execute("SELECT ...")                    # routed per config
    rows = db.execute("SELECT ...", optimizer="mysql") # force a path
    text = db.explain("SELECT ...", optimizer="orca")

Routing follows the paper: only SELECT statements whose table-reference
count reaches ``complex_query_threshold`` take the Orca detour
(Section 4.1); everything else — and any query on which the bridge aborts —
uses the MySQL optimizer.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.catalog.catalog import Catalog
from repro.catalog.schema import TableSchema
from repro.errors import ReproError
from repro.executor.executor import Executor
from repro.executor.explain import explain_plan
from repro.mysql_optimizer.optimizer import MySQLOptimizer
from repro.mysql_optimizer.refinement import PlanBuilder
from repro.mysql_optimizer.skeleton import SkeletonPlan
from repro.sql import ast as sql_ast
from repro.sql.parser import parse_statement
from repro.sql.prepare import prepare
from repro.sql.resolver import Resolver
from repro.storage.engine import StorageEngine


@dataclass
class DatabaseConfig:
    """Engine configuration knobs used in the paper's experiments."""

    #: Minimum table references for the Orca detour (Section 4.1 default).
    complex_query_threshold: int = 3
    #: Orca's join-order search: "GREEDY", "EXHAUSTIVE", or "EXHAUSTIVE2".
    orca_search: str = "EXHAUSTIVE2"
    #: Master toggle: with False, every query uses the MySQL optimizer.
    orca_enabled: bool = True
    #: Routing policy for ``optimizer="auto"``:
    #: * "threshold" — the paper's shipped heuristic: route when the
    #:   table-reference count reaches ``complex_query_threshold``;
    #: * "cost_based" — the paper's first future-work alternative
    #:   (Section 9): always run MySQL's fast greedy optimization, and
    #:   take the Orca detour only when the MySQL plan's estimated cost
    #:   exceeds ``mysql_cost_threshold`` ("almost certainly ... better
    #:   than our three-table heuristic").
    routing: str = "threshold"
    #: Estimated-cost trigger for cost-based routing.
    mysql_cost_threshold: float = 500.0


@dataclass
class StatementResult:
    """Rows plus compile/execute timings for benchmark harnesses."""

    rows: List[tuple]
    optimizer_used: str
    compile_seconds: float
    execute_seconds: float
    explain: Optional[str] = None


class Database:
    """An embedded single-schema database with MySQL and Orca optimizers."""

    def __init__(self, config: Optional[DatabaseConfig] = None) -> None:
        self.config = config or DatabaseConfig()
        self.catalog = Catalog()
        self.storage = StorageEngine(self.catalog)

    # -- DDL / DML ---------------------------------------------------------------

    def create_table(self, schema: TableSchema) -> None:
        self.storage.create_table(schema)

    def load(self, table_name: str, rows: Iterable[Sequence]) -> None:
        self.storage.load_rows(table_name, list(rows))

    def analyze(self, with_histograms: bool = True) -> None:
        """ANALYZE every table (row counts, NDVs, histograms)."""
        self.storage.analyze_all(with_histograms)

    # -- compilation -------------------------------------------------------------

    def _compile(self, sql: str, optimizer: str
                 ) -> Tuple[Executor, str]:
        """Parse, prepare, optimize, and refine; returns (executor, used)."""
        stmt = parse_statement(sql)
        if not isinstance(stmt, sql_ast.SelectStmt):
            raise ReproError("only SELECT statements can be compiled; "
                             "DML executes directly")
        return self._compile_select(stmt, optimizer)

    def _compile_select(self, stmt, optimizer: str) -> Tuple[Executor, str]:
        block, context = Resolver(self.catalog).resolve(stmt)
        prepare(block)

        route = self._route(stmt, optimizer)
        used = "mysql"
        skeleton: Optional[SkeletonPlan] = None
        if route == "cost":
            # Future-work routing (Section 9): greedy-optimize first, and
            # only detour to Orca when the MySQL plan looks expensive.
            skeleton = MySQLOptimizer(self.catalog).optimize(block, context)
            top_cost = skeleton.skeleton_for(block).total_cost
            if top_cost >= self.config.mysql_cost_threshold:
                orca_skeleton = self._orca_optimize(stmt, block, context)
                if orca_skeleton is not None:
                    skeleton = orca_skeleton
                    used = "orca"
        elif route == "orca":
            skeleton = self._orca_optimize(stmt, block, context)
            used = "orca" if skeleton is not None else "mysql"
        if skeleton is None:
            skeleton = MySQLOptimizer(self.catalog).optimize(block, context)
        executor = PlanBuilder(skeleton, self.catalog, self.storage).build()
        return executor, used

    def _orca_optimize(self, stmt, block, context
                       ) -> Optional[SkeletonPlan]:
        from repro.bridge.router import OrcaRouter

        router = OrcaRouter(self.catalog, self.config)
        return router.optimize(stmt, block, context)

    def _route(self, stmt, optimizer: str) -> str:
        if optimizer == "mysql":
            return "mysql"
        if optimizer == "orca":
            return "orca"
        if optimizer != "auto":
            raise ReproError(f"unknown optimizer {optimizer!r}")
        if not self.config.orca_enabled:
            return "mysql"
        if self.config.routing == "cost_based":
            return "cost"
        refs = stmt.table_reference_count()
        if refs >= self.config.complex_query_threshold:
            return "orca"
        return "mysql"

    # -- DML ---------------------------------------------------------------------

    def _execute_dml(self, stmt, start: float) -> StatementResult:
        """Run INSERT/DELETE/UPDATE directly (never routed — Section 4.1)."""
        from repro import dml

        compiled = time.perf_counter()
        if isinstance(stmt, sql_ast.InsertStmt):
            affected = dml.execute_insert(self.storage, stmt)
        elif isinstance(stmt, sql_ast.DeleteStmt):
            affected = dml.execute_delete(self.storage, stmt)
        else:
            affected = dml.execute_update(self.storage, stmt)
        done = time.perf_counter()
        return StatementResult(
            rows=[(affected,)],
            optimizer_used="mysql",
            compile_seconds=compiled - start,
            execute_seconds=done - compiled,
        )

    # -- public query API -----------------------------------------------------------

    def execute(self, sql: str, optimizer: str = "auto") -> List[tuple]:
        return self.run(sql, optimizer).rows

    def run(self, sql: str, optimizer: str = "auto") -> StatementResult:
        """Execute with timing breakdown (used by the benchmark harness).

        DML statements return a single row holding the affected-row
        count; they never take the Orca detour (Section 4.1).
        """
        start = time.perf_counter()
        stmt = parse_statement(sql)
        if not isinstance(stmt, sql_ast.SelectStmt):
            return self._execute_dml(stmt, start)
        executor, used = self._compile_select(stmt, optimizer)
        compiled = time.perf_counter()
        rows = executor.execute()
        done = time.perf_counter()
        return StatementResult(
            rows=rows,
            optimizer_used=used,
            compile_seconds=compiled - start,
            execute_seconds=done - compiled,
        )

    def explain(self, sql: str, optimizer: str = "auto") -> str:
        executor, __ = self._compile(sql, optimizer)
        return explain_plan(executor.top_plan)

    def explain_analyze(self, sql: str, optimizer: str = "auto") -> str:
        """EXPLAIN ANALYZE: execute with per-operator actual row counts.

        The plan is instrumented, executed once, and rendered with
        ``(actual rows=N)`` next to the optimizer's estimates — making
        estimation errors (the histogram story of Section 5.5) visible
        per operator.
        """
        from repro.executor.explain import instrument_plan
        from repro.executor.plan import DerivedMaterializeNode

        executor, __ = self._compile(sql, optimizer)
        instrument_plan(executor.top_plan)
        executor.execute()
        # Copy rebind counts (Section 7, Orca change 3) onto the
        # materialise nodes so the rendering can show them.
        runtime = executor.last_runtime
        stack = [executor.top_plan]
        seen = set()
        while stack:
            plan = stack.pop()
            if id(plan) in seen or plan.root is None:
                continue
            seen.add(id(plan))
            nodes = [plan.root]
            while nodes:
                node = nodes.pop()
                nodes.extend(node.children())
                if isinstance(node, DerivedMaterializeNode):
                    node.actual_rebinds = runtime.rebind_counts.get(
                        id(node), 0)
                subplan = getattr(node, "subplan", None)
                if subplan is not None:
                    stack.append(subplan)
        return explain_plan(executor.top_plan, analyze=True)

    def compile_only(self, sql: str, optimizer: str = "auto"
                     ) -> StatementResult:
        """Compile (EXPLAIN) without executing — for Table 1 experiments."""
        start = time.perf_counter()
        executor, used = self._compile(sql, optimizer)
        compiled = time.perf_counter()
        return StatementResult(
            rows=[],
            optimizer_used=used,
            compile_seconds=compiled - start,
            execute_seconds=0.0,
            explain=explain_plan(executor.top_plan),
        )
