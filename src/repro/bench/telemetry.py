"""The telemetry-overhead measurement behind ``BENCH_partelemetry``.

The tentpole claim of the parallel-telemetry work is that the
always-on surfaces — the flight recorder's per-statement ring append,
its p95 watchdog, the workload repository bookkeeping, and the worker
telemetry merged after every parallel operator — are cheap enough to
leave on in production.  This module prices the claim: two identically
loaded TPC-H databases run the same warmed query mix, one with every
optional telemetry surface enabled (the defaults) and one with all of
them off; the per-query *minimum* latency (the most noise-robust
estimator) feeds the comparison, and the headline is the suite-median
per-query overhead percentage.

A second pass reruns the scan-heavy subset at ``parallel_workers``
workers, so the artifact also prices the fork-boundary telemetry
(per-worker span grafting is tracer-gated, but the worker records,
metric deltas, and checkpoint folding ride every parallel statement).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.bench.drift import DRIFT_MIX
from repro.bench.harness import _median
from repro.database import Database, DatabaseConfig
from repro.workloads.tpch.datagen import generate_tpch
from repro.workloads.tpch.queries import TPCH_QUERIES

__all__ = [
    "TELEMETRY_MIX",
    "PARALLEL_MIX",
    "measure_telemetry_overhead",
]

#: The serial mix: the drift bench's scan-heavy / selective /
#: join-heavy TPC-H queries, all millisecond-class at bench scale.
TELEMETRY_MIX: Tuple[int, ...] = DRIFT_MIX

#: The parallel pass reruns the scan-heavy queries — the ones whose
#: plans actually parallelize — under a worker pool.
PARALLEL_MIX: Tuple[int, ...] = (1, 6)


def _config(telemetry: bool) -> DatabaseConfig:
    """Identical engines except for the optional telemetry surfaces.

    ``telemetry=True`` is the shipped default: flight recorder (with
    its watchdog) and workload tracking on.  ``telemetry=False``
    strips both.  The slow-query threshold is parked high in *both*
    so a noisy outlier run cannot add log writes to one side only.
    """
    return DatabaseConfig(
        complex_query_threshold=3,
        slow_query_log_threshold_seconds=10.0,
        flight_recorder_enabled=telemetry,
        workload_tracking_enabled=telemetry,
    )


def _load(config: DatabaseConfig, data: Dict[str, list]) -> Database:
    from repro.workloads.tpch.schema import create_tpch_tables

    db = Database(config)
    create_tpch_tables(db)
    for name, rows in data.items():
        db.load(name, rows)
    db.analyze()
    return db


def _minima(db: Database, mix: Tuple[int, ...], runs_per_query: int,
            workers: Optional[int]) -> Dict[int, float]:
    """Per-query minimum latency over ``runs_per_query`` warmed runs."""
    out: Dict[int, float] = {}
    options = {} if workers is None else {"executor_workers": workers}
    for number in mix:
        sql = TPCH_QUERIES[number]
        db.run(sql, **options)  # warm the plan cache out of the timing
        samples = []
        for __ in range(runs_per_query):
            result = db.run(sql, **options)
            samples.append(result.compile_seconds
                           + result.execute_seconds)
        out[number] = min(samples)
    return out


def measure_telemetry_overhead(scale: float = 0.2, seed: int = 42,
                               runs_per_query: int = 5,
                               parallel_workers: int = 4,
                               progress: Optional[Callable[[str], None]]
                               = None) -> dict:
    """Price the always-on telemetry against a stripped engine.

    Returns per-query rows (enabled vs stripped minimum, overhead %)
    for the serial mix and the parallel subset, plus the headline
    ``median_overhead_percent`` over the serial mix and, for the
    artifact's honesty, the flight-recorder state the telemetry run
    ended with (records, snapshots, watchdog findings).
    """
    data = generate_tpch(scale, seed)
    databases: Dict[str, Database] = {}
    serial: Dict[str, Dict[int, float]] = {}
    parallel: Dict[str, Dict[int, float]] = {}
    for label, telemetry in (("telemetry", True), ("stripped", False)):
        db = _load(_config(telemetry), data)
        databases[label] = db
        serial[label] = _minima(db, TELEMETRY_MIX, runs_per_query,
                                workers=None)
        parallel[label] = _minima(db, PARALLEL_MIX, runs_per_query,
                                  workers=parallel_workers)
        if progress is not None:
            progress(f"{label}: serial "
                     f"{sum(serial[label].values()) * 1000:.2f} ms, "
                     f"parallel "
                     f"{sum(parallel[label].values()) * 1000:.2f} ms "
                     f"summed per-query minima")

    def rows(minima: Dict[str, Dict[int, float]]) -> List[dict]:
        out = []
        for number in sorted(minima["telemetry"]):
            enabled = minima["telemetry"][number]
            stripped = minima["stripped"][number]
            overhead = 0.0
            if stripped > 0:
                overhead = 100.0 * (enabled - stripped) / stripped
            out.append({
                "query": number,
                "telemetry_seconds": enabled,
                "stripped_seconds": stripped,
                "overhead_percent": overhead,
            })
        return out

    serial_rows = rows(serial)
    parallel_rows = rows(parallel)
    flight = databases["telemetry"].flight
    metrics = databases["telemetry"].metrics
    return {
        "scale": scale,
        "seed": seed,
        "runs_per_query": runs_per_query,
        "mix": list(TELEMETRY_MIX),
        "parallel_mix": list(PARALLEL_MIX),
        "parallel_workers": parallel_workers,
        "serial": serial_rows,
        "parallel": parallel_rows,
        "median_overhead_percent": _median(
            [row["overhead_percent"] for row in serial_rows]),
        "parallel_median_overhead_percent": _median(
            [row["overhead_percent"] for row in parallel_rows]),
        "flight_state": {
            "records": flight.recorded,
            "snapshots": len(flight.snapshots()),
            "watchdog_findings":
                metrics.count("flight.watchdog_findings"),
        },
    }
