"""The drifting-workload scenario behind ``BENCH_advisor``.

Stages the lifecycle the workload advisor exists for, on TPC-H data:

1. **Baseline** — a database loaded in full and ANALYZEd; the query mix
   runs against fresh statistics (the "well-tuned" reference numbers).
2. **Drift** — a second database is loaded with only a fraction of the
   fact rows, ANALYZEd (statistics now describe the small heap), and
   then grown to full size through the storage load path — which, like
   a steady trickle of single-row DML under sampled stats maintenance,
   leaves the ANALYZE-time statistics badly stale.
3. **Stale phase** — the mix runs against stale statistics: per-node
   Q-errors breach, the misestimation ledger fills, and latency
   degrades wherever the optimizer's tiny-table plans meet big-table
   reality.
4. **Regression staging** — one parameterized statement is rerouted
   mid-workload *out of* the Orca detour and onto the greedy
   optimizer (as a routing-threshold misconfiguration would; every
   run carries fresh literals, so each one cold-compiles, exactly as
   an application interpolating literals behaves).  The statement is
   the paper's OR-factorization pattern: Orca factors the common join
   key out of the disjunction and hash-joins; the greedy path cannot,
   and falls back to filtering the whole cross product.  The plan
   hash changes *and* p95 regresses hard: the repository flags a plan
   regression.
5. **Advice + apply** — the advisor now holds all three recommendation
   kinds (re-ANALYZE, index, plan regression); applying the actionable
   ones re-ANALYZEs the drifted tables (bumping the catalog version,
   so every cached plan recompiles) and purges the regressed
   fingerprint's cached plans.
6. **Recovered phase** — the mix runs again; Q-errors collapse back
   toward 1 and latency returns to the baseline's neighbourhood.

Everything is seeded (datagen, literal choice, reservoir histograms),
so two runs of the scenario produce the same story.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Tuple

from repro.bench.harness import _median
from repro.database import Database, DatabaseConfig
from repro.workloads.tpch.datagen import generate_tpch
from repro.workloads.tpch.queries import TPCH_QUERIES

__all__ = [
    "DRIFT_MIX",
    "REGRESSION_TEMPLATE",
    "measure_tracking_overhead",
    "run_drift_scenario",
]

#: The steady query mix: scan-heavy, selective, and join-heavy TPC-H
#: queries that run in milliseconds at bench scale.
DRIFT_MIX: Tuple[int, ...] = (1, 3, 6, 10, 12)

#: Tables whose statistics the drift stages leave stale (the fact and
#: large dimension tables; tiny fixed dimensions are loaded in full).
DRIFT_TABLES: Tuple[str, ...] = ("lineitem", "orders", "partsupp",
                                 "customer", "part")

#: The statement whose mid-workload reroute stages a plan regression:
#: a lean instance of TPC-H Q19's OR-of-conjuncts pattern, where Orca
#: factors ``s_suppkey = l_suppkey`` out of the disjunction and hash-
#: joins while the greedy optimizer filters the full cross product.
#: Literals are interpolated per run (fresh cache key every time, one
#: shared fingerprint), mirroring an application that does not bind
#: parameters.
REGRESSION_TEMPLATE = """
SELECT SUM(l_extendedprice * (1 - l_discount)) AS revenue
FROM lineitem, supplier
WHERE (s_suppkey = l_suppkey
       AND l_quantity >= {lo} AND l_quantity <= {lo_hi}
       AND l_shipmode IN ('AIR', 'REG AIR'))
   OR (s_suppkey = l_suppkey
       AND l_quantity >= {hi} AND l_quantity <= {hi_hi}
       AND l_shipmode IN ('MAIL', 'SHIP'))
"""


def _phase_metrics(latencies: Dict[int, List[float]],
                   worst_q: Dict[int, List[float]]) -> dict:
    """Per-query and suite-level latency/quality summary of one phase."""
    per_query = {}
    for number in sorted(latencies):
        samples = sorted(latencies[number])
        per_query[str(number)] = {
            "runs": len(samples),
            "min_seconds": samples[0] if samples else 0.0,
            "median_seconds": _median(samples),
            "p95_seconds": samples[max(0, int(0.95 * len(samples)) - 1)]
            if samples else 0.0,
            "max_q_median": _median(worst_q[number]),
        }
    minima = [q["min_seconds"] for q in per_query.values()]
    medians = [q["median_seconds"] for q in per_query.values()]
    p95s = [q["p95_seconds"] for q in per_query.values()]
    qs = [q["max_q_median"] for q in per_query.values()]
    return {
        "queries": per_query,
        "suite_min_seconds": sum(minima),
        "suite_median_seconds": _median(medians),
        "suite_p95_seconds": _median(p95s),
        "suite_max_q_median": _median(qs),
    }


def _run_mix(db: Database, runs_per_query: int,
             progress: Optional[Callable[[str], None]] = None,
             label: str = "") -> dict:
    latencies: Dict[int, List[float]] = {}
    worst_q: Dict[int, List[float]] = {}
    for number in DRIFT_MIX:
        sql = TPCH_QUERIES[number]
        for __ in range(runs_per_query):
            result = db.run(sql)
            total = result.compile_seconds + result.execute_seconds
            latencies.setdefault(number, []).append(total)
            quality = result.plan_quality
            worst_q.setdefault(number, []).append(
                quality.max_q if quality is not None else 1.0)
        if progress is not None:
            progress(f"{label} Q{number}: median "
                     f"{_median(latencies[number]) * 1000:.2f} ms, "
                     f"median max-q {_median(worst_q[number]):.1f}")
    return _phase_metrics(latencies, worst_q)


def _load_fraction(db: Database, data: Dict[str, List[tuple]],
                   fraction: float) -> Dict[str, List[tuple]]:
    """Load the leading ``fraction`` of each drifting table (everything
    else in full); returns the held-back remainder per table."""
    remainder: Dict[str, List[tuple]] = {}
    for name, rows in data.items():
        if name in DRIFT_TABLES:
            keep = max(1, int(len(rows) * fraction))
            db.load(name, rows[:keep])
            remainder[name] = rows[keep:]
        else:
            db.load(name, rows)
    return remainder


def _make_config(**overrides) -> DatabaseConfig:
    config = DatabaseConfig(
        slow_query_log_threshold_seconds=10.0,
        workload_regression_factor=1.5,
    )
    for key, value in overrides.items():
        setattr(config, key, value)
    return config


def run_drift_scenario(scale: float = 0.2, seed: int = 42,
                       runs_per_query: int = 5,
                       initial_fraction: float = 0.05,
                       regression_runs: int = 4,
                       auto_analyze: bool = False,
                       progress: Optional[Callable[[str], None]] = None
                       ) -> dict:
    """Run the full drift story; returns a JSON-ready payload.

    With ``auto_analyze=True`` the recovery is driven by the opt-in
    ``advisor_auto_analyze`` hook (the advisor applies its own
    re-ANALYZE advice on the statement path) instead of an explicit
    ``advisor.apply()`` call — the end-to-end loop the CI smoke job
    exercises.
    """
    from repro.workloads.tpch.schema import create_tpch_tables

    data = generate_tpch(scale, seed)
    rng = random.Random(seed)

    # -- baseline: full data, fresh statistics --------------------------------
    baseline_db = Database(_make_config())
    create_tpch_tables(baseline_db)
    for name, rows in data.items():
        baseline_db.load(name, rows)
    baseline_db.analyze()
    baseline = _run_mix(baseline_db, runs_per_query, progress, "baseline")

    # -- drift: analyze a fraction, then grow under the stats' feet -----------
    db = Database(_make_config(
        advisor_auto_analyze=auto_analyze,
        # One sweep covers the whole stale mix: first auto-apply fires
        # after the stale phase has produced its evidence.
        advisor_interval_statements=len(DRIFT_MIX) * runs_per_query
        + regression_runs * 2,
    ))
    create_tpch_tables(db)
    remainder = _load_fraction(db, data, initial_fraction)
    db.analyze()
    for name, rows in remainder.items():
        db.load(name, rows)

    stale = _run_mix(db, runs_per_query, progress, "stale")

    # -- stage the plan regression: reroute one statement mid-workload --------
    def regression_run(optimizer: str) -> float:
        lo = 1 + rng.randrange(10)
        hi = 15 + rng.randrange(10)
        sql = REGRESSION_TEMPLATE.format(lo=lo, lo_hi=lo + 10,
                                         hi=hi, hi_hi=hi + 10)
        result = db.run(sql, optimizer=optimizer)
        return result.compile_seconds + result.execute_seconds

    fast = [regression_run("orca") for __ in range(regression_runs)]
    slow = [regression_run("mysql") for __ in range(regression_runs)]
    regressions = [r.to_dict()
                   for r in db.workload.unresolved_regressions()]

    # -- advice ----------------------------------------------------------------
    recommendations = [rec.to_dict()
                       for rec in db.advisor.recommendations()]
    kinds = sorted({rec["kind"] for rec in recommendations})

    # -- apply + recovery ------------------------------------------------------
    if auto_analyze:
        # The statement-path hook sweeps pending re-ANALYZE advice on
        # its own cadence; the regression hygiene still needs apply().
        actions = db.advisor.apply(kinds=("plan_regression",))
    else:
        actions = db.advisor.apply(
            kinds=("reanalyze", "plan_regression"))
    recovered = _run_mix(db, runs_per_query, progress, "recovered")

    suite_ratio = 0.0
    if baseline["suite_p95_seconds"] > 0:
        suite_ratio = recovered["suite_p95_seconds"] \
            / baseline["suite_p95_seconds"]
    # Queries the *drift* broke: stale worst-node Q-error both breaches
    # the ledger threshold and clearly exceeds the fresh-stats Q-error
    # (which already absorbs the cost model's inherent selectivity
    # error).  These are the ones re-ANALYZE must heal.
    breached_queries = []
    for number in DRIFT_MIX:
        key = str(number)
        base_q = baseline["queries"][key]["max_q_median"]
        stale_q = stale["queries"][key]["max_q_median"]
        rec_q = recovered["queries"][key]["max_q_median"]
        if stale_q > 16.0 and stale_q > 1.5 * base_q:
            breached_queries.append({
                "query": number,
                "baseline_max_q": base_q,
                "stale_max_q": stale_q,
                "recovered_max_q": rec_q,
            })
    return {
        "scale": scale,
        "seed": seed,
        "runs_per_query": runs_per_query,
        "initial_fraction": initial_fraction,
        "mix": list(DRIFT_MIX),
        "auto_analyze": auto_analyze,
        "baseline": baseline,
        "stale": stale,
        "recovered": recovered,
        "regression_staging": {
            "template": REGRESSION_TEMPLATE.strip(),
            "fast_median_seconds": _median(fast),
            "slow_median_seconds": _median(slow),
            "flagged": regressions,
        },
        "recommendations": recommendations,
        "recommendation_kinds": kinds,
        "actions": actions,
        "auto_applied": int(
            db.metrics.count("advisor.applied.reanalyze")),
        "recovery": {
            "suite_p95_ratio_vs_baseline": suite_ratio,
            "stale_max_q_median": stale["suite_max_q_median"],
            "recovered_max_q_median": recovered["suite_max_q_median"],
            "breached_queries": breached_queries,
        },
        "workload_stats": db.workload.stats(),
    }


def measure_tracking_overhead(scale: float = 0.2, seed: int = 42,
                              runs_per_query: int = 5,
                              progress: Optional[Callable[[str], None]]
                              = None) -> dict:
    """Suite-median cost of the workload bookkeeping itself.

    Two identical databases run the same warmed mix, one with
    ``workload_tracking_enabled`` off; the per-query *minimum* latency
    (the most noise-robust estimator) feeds the comparison.
    """
    from repro.workloads.tpch.schema import create_tpch_tables

    data = generate_tpch(scale, seed)
    totals: Dict[str, float] = {}
    for label, enabled in (("enabled", True), ("disabled", False)):
        db = Database(_make_config(workload_tracking_enabled=enabled))
        create_tpch_tables(db)
        for name, rows in data.items():
            db.load(name, rows)
        db.analyze()
        minima: List[float] = []
        for number in DRIFT_MIX:
            sql = TPCH_QUERIES[number]
            db.run(sql)  # warm the plan cache out of the measurement
            samples = []
            for __ in range(runs_per_query):
                result = db.run(sql)
                samples.append(result.compile_seconds
                               + result.execute_seconds)
            minima.append(min(samples))
        totals[label] = sum(minima)
        if progress is not None:
            progress(f"tracking {label}: {totals[label] * 1000:.2f} ms "
                     f"summed per-query minima")
    overhead = 0.0
    if totals["disabled"] > 0:
        overhead = 100.0 * (totals["enabled"] - totals["disabled"]) \
            / totals["disabled"]
    return {
        "enabled_seconds": totals["enabled"],
        "disabled_seconds": totals["disabled"],
        "overhead_percent": overhead,
    }
