"""Suite runner: executes a workload under both optimizers and times it.

Mirrors the paper's experimental procedure (Section 6): each query runs
with the plan chosen by the MySQL optimizer and with the plan chosen by
Orca; reported run times include optimization time, as in Fig. 11.  A
per-query timeout plays the role of the paper's cancelled MySQL run of
TPC-DS Q1 ("cancelled after 600 sec"): timed-out queries are recorded at
the cap.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.database import Database
from repro.errors import DeadlineExceededError, ExecutionError


@dataclass
class QueryTiming:
    """Both optimizers' timings for one query."""

    number: int
    mysql_seconds: float
    orca_seconds: float
    mysql_rows: int = 0
    orca_rows: int = 0
    results_match: bool = True
    mysql_timed_out: bool = False
    orca_timed_out: bool = False
    #: Why the Orca run fell back to the MySQL optimizer (a
    #: ``FallbackReason.value`` string), or None when Orca compiled.
    orca_fallback_reason: Optional[str] = None
    #: Optimize-vs-execute split of each aggregate number above (the
    #: aggregate still matches Fig. 11's "run times include optimization
    #: time").  Zero when the run timed out before compiling.
    mysql_optimize_seconds: float = 0.0
    mysql_execute_seconds: float = 0.0
    orca_optimize_seconds: float = 0.0
    orca_execute_seconds: float = 0.0
    #: Per-pipeline-stage seconds of the Orca run (span name -> seconds),
    #: populated only when the suite ran with ``collect_stages=True``.
    orca_stages: Dict[str, float] = field(default_factory=dict)
    #: Cardinality-estimate accuracy of each optimizer's plan (root and
    #: worst per-node Q-error; see :mod:`repro.plan_quality`), populated
    #: only when the suite ran with ``collect_plan_quality=True``.
    #: Zero means "not collected" — a real Q-error is always >= 1.
    mysql_root_q: float = 0.0
    mysql_max_q: float = 0.0
    mysql_worst_operator: str = ""
    orca_root_q: float = 0.0
    orca_max_q: float = 0.0
    orca_worst_operator: str = ""

    @property
    def ratio(self) -> float:
        """Orca time / MySQL time (Fig. 12's Y axis)."""
        if self.mysql_seconds <= 0:
            return 1.0
        return self.orca_seconds / self.mysql_seconds

    @property
    def speedup(self) -> float:
        """MySQL time / Orca time (how much faster Orca is)."""
        if self.orca_seconds <= 0:
            return 1.0
        return self.mysql_seconds / self.orca_seconds


@dataclass
class BenchmarkResult:
    """Timings for a whole suite."""

    name: str
    timings: List[QueryTiming] = field(default_factory=list)
    #: The explicit reproducibility seed the suite ran with (threaded
    #: to the fault injector by ``run_suite``), or None.
    seed: Optional[int] = None

    @property
    def total_mysql(self) -> float:
        return sum(t.mysql_seconds for t in self.timings)

    @property
    def total_orca(self) -> float:
        return sum(t.orca_seconds for t in self.timings)

    @property
    def total_reduction_percent(self) -> float:
        """Total run-time reduction with Orca plans (62% for TPC-DS in
        the paper, 16% for TPC-H)."""
        if self.total_mysql <= 0:
            return 0.0
        return 100.0 * (1.0 - self.total_orca / self.total_mysql)

    def wins(self, factor: float = 1.0) -> List[QueryTiming]:
        """Queries where Orca is at least ``factor`` times faster."""
        return [t for t in self.timings if t.speedup >= factor]

    def losses(self, factor: float = 1.0) -> List[QueryTiming]:
        return [t for t in self.timings if t.ratio > factor]

    @property
    def fallback_counts(self) -> Dict[str, int]:
        """How many Orca runs fell back, keyed by reason."""
        counts: Dict[str, int] = {}
        for timing in self.timings:
            if timing.orca_fallback_reason is not None:
                counts[timing.orca_fallback_reason] = counts.get(
                    timing.orca_fallback_reason, 0) + 1
        return counts


def results_match(rows_a: List[tuple], rows_b: List[tuple]) -> bool:
    """Order-insensitive result comparison with float tolerance.

    Different plans accumulate floating-point sums in different orders, so
    aggregates can differ in the last few bits; values are compared with a
    relative tolerance instead of exactly.
    """
    import math

    if len(rows_a) != len(rows_b):
        return False

    def sort_key(row):
        return repr(tuple(round(v, 2) if isinstance(v, float) else v
                          for v in row))

    for row_a, row_b in zip(sorted(rows_a, key=sort_key),
                            sorted(rows_b, key=sort_key)):
        if len(row_a) != len(row_b):
            return False
        for value_a, value_b in zip(row_a, row_b):
            if isinstance(value_a, float) and isinstance(value_b, float):
                if not math.isclose(value_a, value_b,
                                    rel_tol=1e-6, abs_tol=1e-6):
                    return False
            elif value_a != value_b:
                return False
    return True


def run_suite(db: Database, queries: Dict[int, str], name: str,
              timeout_seconds: float = 60.0,
              verify_results: bool = True,
              progress: Optional[Callable[[str], None]] = None,
              collect_stages: bool = False,
              collect_plan_quality: bool = False,
              emit_json: Optional[str] = None,
              seed: Optional[int] = None) -> BenchmarkResult:
    """Run every query under both optimizers; returns all timings.

    Timings include optimization time (compile + execute), matching the
    paper's Fig. 11 methodology.  A query that exceeds the timeout on one
    optimizer is recorded at the cap with ``*_timed_out`` set.

    The comparative runs bypass the statement plan cache — they measure
    the optimizers, and a warm cache would silently zero the optimize
    stage.  Cache behaviour is measured separately by the ``emit_json``
    pass, which writes a JSON artifact with per-query cold/warm
    optimize-and-execute medians, the plan-cache hit ratio, and the
    search-pruning counters (see :func:`plan_cache_report`).

    With ``collect_stages=True`` the Orca run is traced and each
    timing's ``orca_stages`` records per-pipeline-stage seconds (for
    :func:`repro.bench.report.format_stage_breakdown`); tracing adds a
    little overhead, so leave it off for headline timings.

    With ``collect_plan_quality=True`` each timing also records both
    optimizers' root and worst per-node Q-error (estimate accuracy,
    from the executor's always-on counters) — the comparison behind
    ``BENCH_planquality``.

    ``seed`` makes the suite reproducible run-to-run: the configured
    fault injector (if any) is re-seeded before the first query, so
    probabilistic faults land on the same statements regardless of what
    executed earlier in the process, and the seed is recorded on the
    result for the report artifact.
    """
    result = BenchmarkResult(name, seed=seed)
    if seed is not None and db.config.fault_injector is not None:
        db.config.fault_injector.reseed(seed)
    for number in sorted(queries):
        sql = queries[number]
        mysql = _timed_run(db, sql, "mysql", timeout_seconds)
        orca = _timed_run(db, sql, "orca", timeout_seconds,
                          trace=collect_stages)
        match = True
        if verify_results and not mysql.timed_out and not orca.timed_out:
            match = results_match(mysql.rows, orca.rows)
        timing = QueryTiming(
            number=number,
            mysql_seconds=mysql.elapsed,
            orca_seconds=orca.elapsed,
            mysql_rows=len(mysql.rows),
            orca_rows=len(orca.rows),
            results_match=match,
            mysql_timed_out=mysql.timed_out,
            orca_timed_out=orca.timed_out,
            orca_fallback_reason=orca.fallback_reason,
            mysql_optimize_seconds=mysql.optimize_seconds,
            mysql_execute_seconds=mysql.execute_seconds,
            orca_optimize_seconds=orca.optimize_seconds,
            orca_execute_seconds=orca.execute_seconds,
            orca_stages=orca.stages,
        )
        if collect_plan_quality:
            timing.mysql_root_q = mysql.root_q
            timing.mysql_max_q = mysql.max_q
            timing.mysql_worst_operator = mysql.worst_operator
            timing.orca_root_q = orca.root_q
            timing.orca_max_q = orca.max_q
            timing.orca_worst_operator = orca.worst_operator
        result.timings.append(timing)
        if progress is not None:
            note = f" (orca fell back: {orca.fallback_reason})" \
                if orca.fallback_reason else ""
            progress(f"{name} Q{number}: mysql {mysql.elapsed:.2f}s "
                     f"orca {orca.elapsed:.2f}s{note}")
    if emit_json is not None:
        report = plan_cache_report(db, queries, name, progress=progress)
        _write_json(emit_json, report)
    return result


@dataclass
class _RunOutcome:
    """What one timed run produced (internal to the harness)."""

    elapsed: float
    rows: List[tuple]
    timed_out: bool
    fallback_reason: Optional[str]
    optimize_seconds: float = 0.0
    execute_seconds: float = 0.0
    stages: Dict[str, float] = field(default_factory=dict)
    #: Estimate accuracy of the executed plan (0.0 when the run timed
    #: out before producing a quality snapshot).
    root_q: float = 0.0
    max_q: float = 0.0
    worst_operator: str = ""


def _timed_run(db: Database, sql: str, optimizer: str,
               timeout_seconds: float, trace: bool = False) -> _RunOutcome:
    """Run one query with a per-query timeout.

    The timeout is the execution governor's statement deadline
    (``db.run(sql, timeout_seconds=...)``), which aborts cooperatively
    at the next checkpoint; a SIGALRM backstop at several times the
    deadline (where the platform has one) still fires if a statement
    hard-hangs between checkpoints.

    All wall-clock numbers come from ``time.perf_counter()`` — the
    monotonic clock — never the wall-clock ``time.time`` API, which can
    jump under NTP adjustments mid-benchmark.
    """
    import signal

    timed_out = False
    rows: List[tuple] = []
    fallback_reason: Optional[str] = None
    optimize_seconds = 0.0
    execute_seconds = 0.0
    stages: Dict[str, float] = {}
    root_q = max_q = 0.0
    worst_operator = ""
    start = time.perf_counter()

    def _raise_timeout(signum, frame):
        raise _SoftTimeout()

    use_alarm = hasattr(signal, "SIGALRM")
    if use_alarm:
        previous = signal.signal(signal.SIGALRM, _raise_timeout)
        signal.setitimer(signal.ITIMER_REAL,
                         max(timeout_seconds * 5, timeout_seconds + 1.0))
    try:
        result = db.run(sql, optimizer=optimizer, trace=trace,
                        use_plan_cache=False,
                        timeout_seconds=timeout_seconds)
        rows = result.rows
        optimize_seconds = result.compile_seconds
        execute_seconds = result.execute_seconds
        if trace:
            stages = result.stage_seconds()
        if result.plan_quality is not None:
            root_q = result.plan_quality.root_q
            max_q = result.plan_quality.max_q
            worst_operator = result.plan_quality.worst_operator
        if result.fallback_reason is not None:
            fallback_reason = result.fallback_reason.value
    except (DeadlineExceededError, _SoftTimeout):
        timed_out = True
    except ExecutionError as exc:
        # The SIGALRM backstop can fire inside the executor, where the
        # Database wraps foreign exceptions; unwrap it back to a timeout.
        if not isinstance(exc.__cause__, _SoftTimeout):
            raise
        timed_out = True
    finally:
        if use_alarm:
            signal.setitimer(signal.ITIMER_REAL, 0)
            signal.signal(signal.SIGALRM, previous)
    elapsed = time.perf_counter() - start
    if timed_out:
        elapsed = timeout_seconds
    return _RunOutcome(elapsed=elapsed, rows=rows, timed_out=timed_out,
                       fallback_reason=fallback_reason,
                       optimize_seconds=optimize_seconds,
                       execute_seconds=execute_seconds, stages=stages,
                       root_q=root_q, max_q=max_q,
                       worst_operator=worst_operator)


class _SoftTimeout(Exception):
    pass


def _median(values: List[float]) -> float:
    ordered = sorted(values)
    count = len(ordered)
    if count == 0:
        return 0.0
    mid = count // 2
    if count % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def _memo_counters(result) -> tuple:
    """(cost evaluations, pruned candidates) summed over a traced run."""
    from repro.observability import find_spans

    evaluations = pruned = 0
    if result.trace is not None:
        for span in find_spans(result.trace, "memo_search"):
            evaluations += span.attributes.get("cost_evaluations", 0)
            pruned += span.attributes.get("pruned_candidates", 0)
    return evaluations, pruned


def plan_cache_report(db: Database, queries: Dict[int, str], name: str,
                      samples: int = 3,
                      progress: Optional[Callable[[str], None]] = None
                      ) -> dict:
    """Measure what the plan cache and search pruning actually save.

    For each query: ``samples`` cold runs (plan cache bypassed) give the
    before-medians, a priming run populates the cache, and ``samples``
    warm runs give the after-medians (each asserted against
    ``plan_cache_hit``).  One traced run with cost-bound pruning on and
    one with it off give the cost-model evaluation counts the pruning
    comparison needs.  Returns a JSON-serialisable dict.
    """
    per_query = {}
    for number in sorted(queries):
        sql = queries[number]
        cold_optimize: List[float] = []
        cold_execute: List[float] = []
        optimizer_used = "mysql"
        for __ in range(samples):
            run = db.run(sql, use_plan_cache=False)
            optimizer_used = run.optimizer_used
            cold_optimize.append(run.compile_seconds)
            cold_execute.append(run.execute_seconds)

        previous = db.config.orca_cost_bound_pruning
        db.config.orca_cost_bound_pruning = True
        pruned_run = db.run(sql, trace=True, use_plan_cache=False)
        pruned_evaluations, pruned_candidates = _memo_counters(pruned_run)
        db.config.orca_cost_bound_pruning = False
        unpruned_run = db.run(sql, trace=True, use_plan_cache=False)
        unpruned_evaluations, __ = _memo_counters(unpruned_run)
        db.config.orca_cost_bound_pruning = previous

        db.run(sql)  # prime the cache (a miss that stores)
        warm_optimize: List[float] = []
        warm_execute: List[float] = []
        warm_hits = 0
        for __ in range(samples):
            run = db.run(sql)
            warm_hits += int(run.plan_cache_hit)
            warm_optimize.append(run.compile_seconds)
            warm_execute.append(run.execute_seconds)

        reduction = 0.0
        if unpruned_evaluations > 0:
            reduction = 100.0 * (1.0 - pruned_evaluations
                                 / unpruned_evaluations)
        per_query[str(number)] = {
            "optimizer_used": optimizer_used,
            "cold_optimize_median_seconds": _median(cold_optimize),
            "cold_execute_median_seconds": _median(cold_execute),
            "warm_optimize_median_seconds": _median(warm_optimize),
            "warm_execute_median_seconds": _median(warm_execute),
            "warm_hits": warm_hits,
            "warm_runs": samples,
            "cost_evaluations_pruned": pruned_evaluations,
            "cost_evaluations_unpruned": unpruned_evaluations,
            "pruned_candidates": pruned_candidates,
            "evaluation_reduction_percent": reduction,
        }
        if progress is not None:
            progress(f"{name} Q{number}: cold optimize "
                     f"{per_query[str(number)]['cold_optimize_median_seconds'] * 1000:.2f} ms, "
                     f"warm {per_query[str(number)]['warm_optimize_median_seconds'] * 1000:.2f} ms, "
                     f"evaluations {unpruned_evaluations} -> "
                     f"{pruned_evaluations}")
    return {
        "suite": name,
        "samples_per_query": samples,
        "plan_cache": db.plan_cache.stats(),
        "pruned_candidates_total": int(
            db.metrics.count("orca.pruned_candidates")),
        "queries": per_query,
    }


def run_executor_comparison(db: Database, queries: Dict[int, str],
                            name: str,
                            categories: Optional[Dict[str, List[int]]]
                            = None,
                            samples: int = 5,
                            optimizer: str = "auto",
                            progress: Optional[Callable[[str], None]]
                            = None,
                            emit_json: Optional[str] = None) -> dict:
    """Row-vs-batch executor comparison over one workload.

    Each query runs ``samples`` times per executor mode against the
    same compiled plan (the statement plan cache is primed first, so
    the comparison isolates the execute stage); recorded per query are
    the execute-stage medians, the speedup, a result-equivalence check,
    which engine actually ran (batch requests can degrade), and the
    batch engine's work counters (batches, batch rows, compiled
    expressions) for the final batch run.

    ``categories`` maps a label (e.g. ``"scan_heavy"``) to query
    numbers; the report carries each category's median speedup — the
    number the acceptance gate asserts on.  Returns a
    JSON-serialisable dict, also written to ``emit_json`` when given.
    """
    metrics = db.metrics
    per_query = {}
    for number in sorted(queries):
        sql = queries[number]
        db.run(sql, optimizer=optimizer)  # prime the plan cache
        medians: Dict[str, float] = {}
        rows: Dict[str, List[tuple]] = {}
        ran_as = "row"
        counters = {"batches": 0, "batch_rows": 0, "compiled_exprs": 0}
        counter_names = {"batches": "executor.batches",
                         "batch_rows": "executor.batch_rows",
                         "compiled_exprs": "exec.compiled_exprs"}
        for mode in ("row", "batch"):
            times: List[float] = []
            for __ in range(samples):
                before = {key: metrics.count(metric)
                          for key, metric in counter_names.items()}
                run = db.run(sql, optimizer=optimizer,
                             executor_mode=mode)
                times.append(run.execute_seconds)
            rows[mode] = run.rows
            medians[mode] = _median(times)
            if mode == "batch":
                ran_as = run.executor_mode
                # Work counters of the final batch run alone.
                counters = {
                    key: int(metrics.count(metric) - before[key])
                    for key, metric in counter_names.items()}
        speedup = (medians["row"] / medians["batch"]
                   if medians["batch"] > 0 else 1.0)
        per_query[str(number)] = {
            "row_execute_median_seconds": medians["row"],
            "batch_execute_median_seconds": medians["batch"],
            "speedup": speedup,
            "results_match": results_match(rows["row"], rows["batch"]),
            "ran_as": ran_as,
            "batches": counters["batches"],
            "batch_rows": counters["batch_rows"],
            "compiled_exprs": counters["compiled_exprs"],
        }
        if progress is not None:
            progress(f"{name} Q{number}: row "
                     f"{medians['row'] * 1000:.2f} ms, batch "
                     f"{medians['batch'] * 1000:.2f} ms "
                     f"({speedup:.2f}x, ran as {ran_as})")
    category_rows = {}
    for label, numbers in (categories or {}).items():
        speedups = [per_query[str(n)]["speedup"] for n in numbers
                    if str(n) in per_query]
        category_rows[label] = {
            "queries": list(numbers),
            "median_speedup": _median(speedups) if speedups else 1.0,
        }
    payload = {
        "suite": name,
        "samples_per_query": samples,
        "optimizer": optimizer,
        "batch_size": _batch_size(),
        "queries": per_query,
        "categories": category_rows,
    }
    if emit_json is not None:
        _write_json(emit_json, payload)
    return payload


def _batch_size() -> int:
    from repro.executor.batch import BATCH_SIZE
    return BATCH_SIZE


def _write_json(path: str, payload: dict) -> None:
    import json
    import os

    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def run_compile_suite(db: Database, queries: Dict[int, str],
                      configurations: Dict[str, Callable[[], None]],
                      ) -> Dict[str, float]:
    """Total EXPLAIN (compile-only) time per configuration — Table 1.

    ``configurations`` maps a label to a setup callable that mutates the
    database config before the pass (e.g. switching the Orca search mode);
    the MySQL-only pass uses ``optimizer="mysql"``.
    """
    totals: Dict[str, float] = {}
    for label, setup in configurations.items():
        setup()
        optimizer = "mysql" if label == "MySQL" else "orca"
        start = time.perf_counter()
        for number in sorted(queries):
            db.compile_only(queries[number], optimizer=optimizer)
        totals[label] = time.perf_counter() - start
    return totals


def run_parallel_scaling(db: Database, queries: Dict[int, str],
                         name: str,
                         worker_counts: List[int] = (1, 2, 4, 8),
                         samples: int = 5,
                         optimizer: str = "orca",
                         zone_query: Optional[str] = None,
                         baseline_db: Optional[Database] = None,
                         progress: Optional[Callable[[str], None]] = None,
                         emit_json: Optional[str] = None) -> dict:
    """Morsel-parallel scaling curve over one workload.

    Each query runs ``samples`` times per worker count against the same
    compiled plan (cache primed first, batch mode); recorded per query
    are the execute-stage medians per worker count, the speedup of each
    count over workers=1, a *bit-exact* result-identity check against
    the serial run, and the morsel/zone-map work counters of the last
    run at the highest worker count.

    ``zone_query`` (optional) is a selective query run once to record
    the zone-map chunk-skip rate.  ``baseline_db`` (optional) is a
    database loaded identically but with ``columnstore_enabled=False``
    — its serial batch medians quantify what the columnar mirror itself
    costs or saves against the legacy heap-transpose scan path.

    The host's usable core count is recorded; a speedup gate should be
    conditioned on it (a single-core container cannot show one).
    """
    import os as _os

    try:
        cores = len(_os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover — non-Linux
        cores = _os.cpu_count() or 1
    metrics = db.metrics
    per_query = {}
    for number in sorted(queries):
        sql = queries[number]
        db.run(sql, optimizer=optimizer, executor_mode="batch")  # prime
        medians: Dict[str, float] = {}
        serial_rows: Optional[List[tuple]] = None
        identical = True
        morsels = 0
        for workers in worker_counts:
            times: List[float] = []
            for __ in range(samples):
                before_morsels = metrics.count("executor.morsels")
                run = db.run(sql, optimizer=optimizer,
                             executor_mode="batch",
                             executor_workers=workers)
                times.append(run.execute_seconds)
            medians[str(workers)] = _median(times)
            if workers == min(worker_counts):
                serial_rows = run.rows
            elif run.rows != serial_rows:
                identical = False
            if workers == max(worker_counts):
                morsels = int(metrics.count("executor.morsels")
                              - before_morsels)
        serial_median = medians[str(min(worker_counts))]
        speedups = {
            key: (serial_median / value if value > 0 else 1.0)
            for key, value in medians.items()}
        entry = {
            "execute_median_seconds": medians,
            "speedup_vs_serial": speedups,
            "results_identical": identical,
            "morsels_at_max_workers": morsels,
        }
        if baseline_db is not None:
            baseline_db.run(sql, optimizer=optimizer,
                            executor_mode="batch")  # prime
            times = []
            for __ in range(samples):
                run = baseline_db.run(sql, optimizer=optimizer,
                                      executor_mode="batch")
                times.append(run.execute_seconds)
            baseline_median = _median(times)
            entry["heap_baseline_median_seconds"] = baseline_median
            entry["serial_vs_baseline"] = (
                serial_median / baseline_median
                if baseline_median > 0 else 1.0)
        per_query[str(number)] = entry
        if progress is not None:
            curve = " ".join(
                f"{key}w={value * 1000:.1f}ms"
                for key, value in medians.items())
            progress(f"{name} Q{number}: {curve}")
    zone = None
    if zone_query is not None:
        counters = db.storage.counters
        before_skipped = counters.chunks_skipped
        run = db.run(zone_query, optimizer=optimizer,
                     executor_mode="batch", use_plan_cache=False)
        zone = {
            "sql": zone_query,
            "chunks_skipped": counters.chunks_skipped - before_skipped,
            "rows_returned": len(run.rows),
        }
    payload = {
        "suite": name,
        "samples_per_query": samples,
        "optimizer": optimizer,
        "worker_counts": list(worker_counts),
        "host_cores": cores,
        "batch_size": db.config.batch_size,
        "parallel_backend": db.config.parallel_backend,
        "queries": per_query,
        "zone_map": zone,
    }
    if emit_json is not None:
        _write_json(emit_json, payload)
    return payload
