"""Large-join search benchmark: compile time, optimality, budgets.

Drives the :mod:`repro.workloads.joins` topologies through the join
strategies of :mod:`repro.orca.largejoin` and records the three things
the adaptive selector promises:

* **curves** — median optimize-stage time per (topology, relation
  count, strategy): the polynomial strategies stay flat where full DP
  blows up;
* **optimality** — forced LINDP/GOO/greedy plan cost relative to the
  full-DP reference on every DP-feasible (n <= ``lindp_threshold``)
  topology;
* **budget** — wide joins under a tight ``CompileBudget``: every run
  must stay on an Orca plan (best-incumbent degradation), never escape
  to the MySQL fallback;
* **dp_comparison** — at 20+ relations, adaptive selection versus
  forcing full DP into its budget-abort path: the selector's plan
  arrives an order of magnitude faster and returns identical results.

Strategies are forced through ``db.config.orca_join_strategy`` (the
router re-reads the config every statement) with the plan cache
bypassed, so each sample re-runs the search it claims to measure.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.bench.harness import _median, _write_json, results_match
from repro.database import Database, DatabaseConfig
from repro.observability import find_spans
from repro.workloads.joins import JoinTopology, load_topology, make_topology

#: Forced-strategy policies measured by the compile-time curves.
CURVE_STRATEGIES = ("adaptive", "dp", "lindp", "goo", "greedy")


def _fresh_db(topology: JoinTopology, **config) -> Database:
    db = Database(DatabaseConfig(complex_query_threshold=3,
                                 plan_cache_enabled=False, **config))
    load_topology(db, topology)
    return db


def _search_attrs(result) -> Dict[str, object]:
    """Join-search facts of a traced run's widest memo_search span."""
    attrs: Dict[str, object] = {"join_strategy": None, "join_units": 0,
                                "join_budget_degradations": 0,
                                "best_cost": 0.0}
    if result.trace is None:
        return attrs
    for span in find_spans(result.trace, "memo_search"):
        units = span.attributes.get("join_units", 0)
        if span.attributes.get("join_strategy") is not None \
                and units >= attrs["join_units"]:
            attrs["join_strategy"] = span.attributes["join_strategy"]
            attrs["join_units"] = units
            attrs["best_cost"] = span.attributes.get("best_cost", 0.0)
        attrs["join_budget_degradations"] += span.attributes.get(
            "join_budget_degradations", 0)
    return attrs


def _timed_strategy(db: Database, sql: str, strategy: str,
                    samples: int) -> Dict[str, object]:
    """Median optimize time + search facts for one forced strategy."""
    db.config.orca_join_strategy = strategy
    optimize: List[float] = []
    result = None
    for __ in range(samples):
        result = db.run(sql, optimizer="orca", trace=True,
                        use_plan_cache=False)
        optimize.append(result.compile_seconds)
    attrs = _search_attrs(result)
    return {
        "optimize_median_seconds": _median(optimize),
        "strategy_used": attrs["join_strategy"],
        "join_units": attrs["join_units"],
        "best_cost": attrs["best_cost"],
        "budget_degradations": attrs["join_budget_degradations"],
        "optimizer_used": result.optimizer_used,
        "fallback_reason": (result.fallback_reason.value
                            if result.fallback_reason else None),
        "rows": len(result.rows),
    }


def run_joinorder_bench(
        curve_points: Sequence[Tuple[str, int]],
        optimality_points: Sequence[Tuple[str, int]],
        budget_points: Sequence[Tuple[str, int]],
        dp_comparison_point: Tuple[str, int] = ("chain", 20),
        samples: int = 3,
        scale: float = 1.0,
        seed: int = 1234,
        tight_budget_seconds: float = 0.25,
        dp_reference_budget_seconds: float = 2.5,
        progress: Optional[Callable[[str], None]] = None,
        emit_json: Optional[str] = None) -> dict:
    """Run the whole large-join benchmark; returns a JSON-able payload.

    ``curve_points`` / ``optimality_points`` / ``budget_points`` are
    ``(topology_kind, relation_count)`` pairs.  Full DP only joins the
    compile-time curves at DP-feasible widths; past the selector cutoff
    its cost is measured once, head-to-head, at ``dp_comparison_point``:
    forced ``dp`` under ``dp_reference_budget_seconds`` (it exhausts the
    budget, then degrades to its seeded incumbent) versus ``adaptive``
    under the same budget.
    """
    curves: List[dict] = []
    for kind, relations in curve_points:
        topology = make_topology(kind, relations, seed=seed, scale=scale)
        db = _fresh_db(topology)
        lindp_threshold = db.config.orca_lindp_threshold
        entry: Dict[str, object] = {"topology": kind,
                                    "relations": relations,
                                    "strategies": {}}
        for strategy in CURVE_STRATEGIES:
            if strategy == "dp" and relations > lindp_threshold:
                continue  # measured head-to-head under a budget below
            entry["strategies"][strategy] = _timed_strategy(
                db, topology.query, strategy, samples)
        curves.append(entry)
        if progress is not None:
            shown = " ".join(
                f"{name}="
                f"{row['optimize_median_seconds'] * 1000:.1f}ms"
                for name, row in entry["strategies"].items())
            progress(f"curve {kind}{relations}: {shown}")

    optimality: List[dict] = []
    for kind, relations in optimality_points:
        topology = make_topology(kind, relations, seed=seed, scale=scale)
        db = _fresh_db(topology)
        rows: Dict[str, dict] = {}
        for strategy in CURVE_STRATEGIES:
            if strategy == "adaptive":
                continue
            rows[strategy] = _timed_strategy(db, topology.query,
                                             strategy, 1)
        reference = rows["dp"]["best_cost"]
        entry = {"topology": kind, "relations": relations,
                 "dp_cost": reference,
                 "cost_ratio_vs_dp": {
                     name: (row["best_cost"] / reference
                            if reference else 1.0)
                     for name, row in rows.items() if name != "dp"}}
        optimality.append(entry)
        if progress is not None:
            shown = " ".join(f"{name}={ratio:.3f}x" for name, ratio
                             in entry["cost_ratio_vs_dp"].items())
            progress(f"optimality {kind}{relations}: {shown}")

    budget: List[dict] = []
    for kind, relations in budget_points:
        topology = make_topology(kind, relations, seed=seed, scale=scale)
        db = _fresh_db(topology,
                       orca_compile_budget_seconds=tight_budget_seconds)
        row = _timed_strategy(db, topology.query, "adaptive", 1)
        row.update(topology=kind, relations=relations,
                   budget_seconds=tight_budget_seconds)
        budget.append(row)
        if progress is not None:
            progress(f"budget {kind}{relations}: used "
                     f"{row['optimizer_used']} via "
                     f"{row['strategy_used']} in "
                     f"{row['optimize_median_seconds'] * 1000:.1f}ms "
                     f"(degradations {row['budget_degradations']})")

    kind, relations = dp_comparison_point
    topology = make_topology(kind, relations, seed=seed, scale=scale)
    db = _fresh_db(topology,
                   orca_compile_budget_seconds=dp_reference_budget_seconds)
    db.config.orca_join_strategy = "dp"
    start = time.perf_counter()
    dp_run = db.run(topology.query, optimizer="orca", trace=True,
                    use_plan_cache=False)
    dp_seconds = time.perf_counter() - start
    dp_attrs = _search_attrs(dp_run)
    adaptive = _timed_strategy(db, topology.query, "adaptive", samples)
    adaptive_seconds = adaptive["optimize_median_seconds"]
    dp_comparison = {
        "topology": kind,
        "relations": relations,
        "dp_budget_seconds": dp_reference_budget_seconds,
        "dp_total_seconds": dp_seconds,
        "dp_optimize_seconds": dp_run.compile_seconds,
        "dp_optimizer_used": dp_run.optimizer_used,
        "dp_budget_degradations": dp_attrs["join_budget_degradations"],
        "adaptive_optimize_seconds": adaptive_seconds,
        "adaptive_strategy": adaptive["strategy_used"],
        "speedup": (dp_run.compile_seconds / adaptive_seconds
                    if adaptive_seconds > 0 else float("inf")),
        "results_identical": results_match(dp_run.rows, db.run(
            topology.query, optimizer="orca", use_plan_cache=False).rows),
    }
    if progress is not None:
        progress(f"dp comparison {kind}{relations}: forced dp "
                 f"{dp_run.compile_seconds * 1000:.0f}ms vs adaptive "
                 f"{adaptive_seconds * 1000:.1f}ms "
                 f"({dp_comparison['speedup']:.1f}x)")

    payload = {
        "suite": "joinorder",
        "samples": samples,
        "scale": scale,
        "seed": seed,
        "curves": curves,
        "optimality": optimality,
        "budget": budget,
        "dp_comparison": dp_comparison,
    }
    if emit_json is not None:
        _write_json(emit_json, payload)
    return payload
