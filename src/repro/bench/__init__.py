"""Benchmark harness reproducing the paper's tables and figures."""

from repro.bench.drift import measure_tracking_overhead, run_drift_scenario
from repro.bench.telemetry import measure_telemetry_overhead
from repro.bench.harness import (
    BenchmarkResult,
    QueryTiming,
    plan_cache_report,
    results_match,
    run_compile_suite,
    run_executor_comparison,
    run_parallel_scaling,
    run_suite,
)
from repro.bench.joinorder import run_joinorder_bench
from repro.bench.report import (
    format_executor_report,
    format_figure10,
    format_figure11,
    format_figure12,
    format_joinorder_report,
    format_parallel_report,
    format_plan_cache_report,
    format_plan_quality_bench,
    format_table1,
    summarize,
    summarize_plan_quality,
)

__all__ = [
    "BenchmarkResult",
    "QueryTiming",
    "format_executor_report",
    "format_figure10",
    "format_figure11",
    "format_figure12",
    "format_joinorder_report",
    "format_parallel_report",
    "format_plan_cache_report",
    "format_plan_quality_bench",
    "format_table1",
    "measure_telemetry_overhead",
    "measure_tracking_overhead",
    "plan_cache_report",
    "results_match",
    "run_compile_suite",
    "run_drift_scenario",
    "run_executor_comparison",
    "run_joinorder_bench",
    "run_parallel_scaling",
    "run_suite",
    "summarize",
    "summarize_plan_quality",
]
