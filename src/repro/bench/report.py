"""Report formatting: the same rows/series the paper's figures show.

``format_figure10`` / ``format_figure11`` print per-query bar-chart data
(MySQL vs Orca execution time); ``format_figure12`` prints the scatter of
Orca/MySQL ratio against MySQL run time; ``format_table1`` prints the
compile-overhead table.  All output is plain text so the benches can tee
it into logs.
"""

from __future__ import annotations

from typing import Dict, List

from repro.bench.harness import BenchmarkResult, QueryTiming


def _bar(seconds: float, scale: float, width: int = 30) -> str:
    if scale <= 0:
        return ""
    filled = int(round(width * min(1.0, seconds / scale)))
    return "#" * max(0, filled)


def _per_query_chart(result: BenchmarkResult, title: str) -> str:
    scale = max((t.mysql_seconds for t in result.timings), default=1.0)
    scale = max(scale, max((t.orca_seconds for t in result.timings),
                           default=1.0))
    lines = [title, "=" * len(title),
             f"{'query':>6} | {'MySQL(s)':>9} | {'Orca(s)':>9} | "
             f"{'speedup':>8} |"]
    for timing in result.timings:
        mark = ""
        if timing.mysql_timed_out:
            mark = " (mysql cancelled)"
        if timing.orca_timed_out:
            mark += " (orca cancelled)"
        if timing.orca_fallback_reason is not None:
            mark += f" (orca fell back: {timing.orca_fallback_reason})"
        lines.append(
            f"Q{timing.number:>5} | {timing.mysql_seconds:>9.3f} | "
            f"{timing.orca_seconds:>9.3f} | {timing.speedup:>7.1f}X |"
            f" {_bar(timing.mysql_seconds, scale)}{mark}")
    lines.append("")
    lines.append(f"total MySQL: {result.total_mysql:.2f}s   "
                 f"total Orca: {result.total_orca:.2f}s   "
                 f"reduction: {result.total_reduction_percent:.0f}%")
    ten_x = sorted(t.number for t in result.wins(10.0))
    hundred_x = sorted(t.number for t in result.wins(100.0))
    lines.append(f">=10X faster with Orca: {ten_x}")
    lines.append(f">=100X faster with Orca: {hundred_x}")
    fallbacks = result.fallback_counts
    if fallbacks:
        detail = ", ".join(f"{reason}: {count}"
                           for reason, count in sorted(fallbacks.items()))
        lines.append(f"orca fallbacks: {sum(fallbacks.values())} "
                     f"({detail})")
    return "\n".join(lines)


def format_figure10(result: BenchmarkResult) -> str:
    """Fig. 10: execution time for the TPC-H queries."""
    return _per_query_chart(
        result, "Figure 10 - Execution time for the TPC-H queries")


def format_figure11(result: BenchmarkResult) -> str:
    """Fig. 11: execution time for the TPC-DS queries."""
    return _per_query_chart(
        result, "Figure 11 - Execution time for the TPC-DS queries")


def format_figure12(result: BenchmarkResult) -> str:
    """Fig. 12: Orca/MySQL ratio vs MySQL run time (log-style buckets).

    "Orca is slower only on short queries": the points with ratio > 1
    should cluster at the left (small MySQL run times).
    """
    lines = ["Figure 12 - Orca is slower only on short queries",
             "=" * 48,
             f"{'query':>6} | {'MySQL(s)':>9} | {'Orca/MySQL':>10} |"]
    for timing in sorted(result.timings,
                         key=lambda t: t.mysql_seconds):
        marker = "  <-- Orca slower" if timing.ratio > 1.0 else ""
        lines.append(f"Q{timing.number:>5} | "
                     f"{timing.mysql_seconds:>9.3f} | "
                     f"{timing.ratio:>10.2f} |{marker}")
    slower = [t for t in result.timings if t.ratio > 1.0]
    if slower:
        median_slow = sorted(t.mysql_seconds for t in slower)[
            len(slower) // 2]
        lines.append("")
        lines.append(f"queries where Orca is slower: {len(slower)}; "
                     f"median MySQL time among them: {median_slow:.3f}s")
    return "\n".join(lines)


def format_table1(totals_tpch: Dict[str, float],
                  totals_tpcds: Dict[str, float]) -> str:
    """Table 1: total EXPLAIN times per compiler configuration."""
    lines = ["Table 1 - Orca query compilation overhead (seconds)",
             "=" * 52,
             f"{'Compiler':<28} | {'TPC-H':>8} | {'TPC-DS':>8}"]
    for label in totals_tpch:
        tpch = totals_tpch[label]
        tpcds = totals_tpcds.get(label, float('nan'))
        lines.append(f"{label:<28} | {tpch:>8.2f} | {tpcds:>8.2f}")
    return "\n".join(lines)


#: Optimizer-pipeline stages shown per query in the stage-breakdown
#: table, in pipeline order (``execute`` rides along for contrast).
_BREAKDOWN_STAGES = ("parse_tree_convert", "memo_search", "plan_convert",
                     "refine", "execute")

_BREAKDOWN_HEADERS = ("convert", "search", "plan-conv", "refine",
                      "execute")


def format_stage_breakdown(result: BenchmarkResult) -> str:
    """Per-query optimizer-stage table plus the suite's slowest stages.

    Requires the suite to have run with ``collect_stages=True`` (each
    timing's ``orca_stages`` holds per-span seconds); queries without
    stage data (timed out, or an untraced run) are listed with dashes.
    The trailing "top-3" list ranks *optimizer* stages — ``execute`` is
    excluded — by total seconds across the whole suite.
    """
    title = f"{result.name} - optimizer stage breakdown (ms per query)"
    header = f"{'query':>6} |" + "".join(
        f" {label:>9} |" for label in _BREAKDOWN_HEADERS)
    lines = [title, "=" * len(title), header]
    totals: Dict[str, float] = {}
    for timing in result.timings:
        cells = []
        for stage in _BREAKDOWN_STAGES:
            seconds = timing.orca_stages.get(stage)
            if seconds is None:
                cells.append(f" {'-':>9} |")
            else:
                cells.append(f" {seconds * 1000.0:>9.3f} |")
                totals[stage] = totals.get(stage, 0.0) + seconds
        lines.append(f"Q{timing.number:>5} |" + "".join(cells))
    optimizer_totals = sorted(
        ((stage, seconds) for stage, seconds in totals.items()
         if stage != "execute"),
        key=lambda item: item[1], reverse=True)
    lines.append("")
    if optimizer_totals:
        lines.append("top-3 slowest optimizer stages across the suite:")
        for rank, (stage, seconds) in enumerate(optimizer_totals[:3], 1):
            lines.append(f"  {rank}. {stage:<20} "
                         f"{seconds * 1000.0:9.3f} ms total")
    else:
        lines.append("no stage data recorded "
                     "(run the suite with collect_stages=True)")
    return "\n".join(lines)


def summarize(result: BenchmarkResult) -> Dict[str, object]:
    """Headline numbers used by assertions in the benches and tests."""
    return {
        "total_mysql": result.total_mysql,
        "total_orca": result.total_orca,
        "reduction_percent": result.total_reduction_percent,
        "orca_wins": sum(1 for t in result.timings if t.speedup > 1.0),
        "ten_x_wins": sorted(t.number for t in result.wins(10.0)),
        "hundred_x_wins": sorted(t.number for t in result.wins(100.0)),
        "mismatches": sorted(t.number for t in result.timings
                             if not t.results_match),
        "orca_fallbacks": result.fallback_counts,
    }


def summarize_plan_quality(result: BenchmarkResult) -> Dict[str, object]:
    """JSON-serialisable plan-quality payload for one suite run.

    Requires the suite to have run with ``collect_plan_quality=True``;
    per query it carries both optimizers' root and worst per-node
    Q-error plus the operator kind behind the worst estimate —
    the committed ``BENCH_planquality.json`` artifact.
    """
    queries: Dict[str, Dict[str, object]] = {}
    for timing in result.timings:
        queries[str(timing.number)] = {
            "mysql_root_q": timing.mysql_root_q,
            "mysql_max_q": timing.mysql_max_q,
            "mysql_worst_operator": timing.mysql_worst_operator,
            "orca_root_q": timing.orca_root_q,
            "orca_max_q": timing.orca_max_q,
            "orca_worst_operator": timing.orca_worst_operator,
            "results_match": timing.results_match,
        }
    collected = [t for t in result.timings if t.mysql_root_q > 0.0
                 and t.orca_root_q > 0.0]
    return {
        "suite": result.name,
        "queries": queries,
        "orca_better_or_equal_root": sorted(
            t.number for t in collected
            if t.orca_root_q <= t.mysql_root_q),
        "mysql_better_root": sorted(
            t.number for t in collected
            if t.orca_root_q > t.mysql_root_q),
    }


def format_plan_quality_bench(payload: Dict[str, object]) -> str:
    """Render a :func:`summarize_plan_quality` payload.

    One row per query: each optimizer's root and worst Q-error, and
    the operator kind behind the worst Orca estimate.
    """
    title = f"{payload['suite']}: cardinality estimate accuracy (Q-error)"
    lines = [title, "=" * len(title),
             f"{'query':>6} | {'mysql root q':>12} | {'mysql max q':>11} |"
             f" {'orca root q':>11} | {'orca max q':>10} |"
             f" worst orca operator"]
    queries: Dict[str, Dict[str, object]] = payload["queries"]
    for number in sorted(queries, key=int):
        row = queries[number]
        match = "" if row["results_match"] else "  RESULTS DIFFER"
        lines.append(
            f"Q{number:>5} |"
            f" {row['mysql_root_q']:>12.2f} |"
            f" {row['mysql_max_q']:>11.2f} |"
            f" {row['orca_root_q']:>11.2f} |"
            f" {row['orca_max_q']:>10.2f} |"
            f" {row['orca_worst_operator'] or '-'}{match}")
    lines.append("")
    better = payload["orca_better_or_equal_root"]
    worse = payload["mysql_better_root"]
    lines.append(f"root estimate at least as accurate under orca: "
                 f"{len(better)} queries")
    lines.append(f"root estimate better under mysql: "
                 f"{len(worse)} queries "
                 f"({', '.join(f'Q{n}' for n in worse) or 'none'})")
    return "\n".join(lines)


def format_executor_report(payload: Dict[str, object]) -> str:
    """Render a :func:`repro.bench.harness.run_executor_comparison`
    payload.

    One row per query: execute-stage medians under each engine, the
    speedup, what actually ran, and the batch engine's work counters;
    followed by the per-category median speedups the acceptance gate
    asserts on.
    """
    title = (f"{payload['suite']}: row vs batch executor "
             f"(batch size {payload['batch_size']}, "
             f"optimizer {payload['optimizer']})")
    lines = [title, "=" * len(title),
             f"{'query':>6} | {'row exec(ms)':>12} |"
             f" {'batch exec(ms)':>14} | {'speedup':>7} | {'ran as':>6} |"
             f" {'batches':>7} | {'batch rows':>10} | {'exprs':>5} |"]
    queries: Dict[str, Dict[str, object]] = payload["queries"]
    for number in sorted(queries, key=int):
        row = queries[number]
        match = "" if row["results_match"] else "  RESULTS DIFFER"
        lines.append(
            f"Q{number:>5} |"
            f" {row['row_execute_median_seconds'] * 1000.0:>12.3f} |"
            f" {row['batch_execute_median_seconds'] * 1000.0:>14.3f} |"
            f" {row['speedup']:>6.2f}x |"
            f" {row['ran_as']:>6} |"
            f" {row['batches']:>7} |"
            f" {row['batch_rows']:>10} |"
            f" {row['compiled_exprs']:>5} |{match}")
    categories: Dict[str, Dict[str, object]] = payload.get(
        "categories", {})
    if categories:
        lines.append("")
        for label in sorted(categories):
            entry = categories[label]
            numbers = ", ".join(f"Q{n}" for n in entry["queries"])
            lines.append(f"{label}: median speedup "
                         f"{entry['median_speedup']:.2f}x ({numbers})")
    return "\n".join(lines)


def format_plan_cache_report(payload: Dict[str, object]) -> str:
    """Render a :func:`repro.bench.harness.plan_cache_report` payload.

    One row per query: cold-vs-warm optimize medians (the cache's
    saving) and pruned-vs-unpruned cost-model evaluations (the
    branch-and-bound saving).
    """
    title = f"{payload['suite']}: plan cache and search pruning"
    lines = [title, "=" * len(title),
             f"{'query':>6} | {'cold opt(ms)':>12} | {'warm opt(ms)':>12} |"
             f" {'hits':>5} | {'evals':>11} | {'reduction':>9} |"]
    queries: Dict[str, Dict[str, object]] = payload["queries"]
    for number in sorted(queries, key=int):
        row = queries[number]
        lines.append(
            f"Q{number:>5} |"
            f" {row['cold_optimize_median_seconds'] * 1000.0:>12.3f} |"
            f" {row['warm_optimize_median_seconds'] * 1000.0:>12.3f} |"
            f" {row['warm_hits']:>2}/{row['warm_runs']:<2} |"
            f" {row['cost_evaluations_unpruned']:>4} ->"
            f" {row['cost_evaluations_pruned']:>4} |"
            f" {row['evaluation_reduction_percent']:>8.1f}% |")
    cache = payload["plan_cache"]
    lines.append("")
    lines.append(f"plan cache: {cache['hits']} hits / "
                 f"{cache['misses']} misses "
                 f"({100.0 * cache['hit_ratio']:.1f}%), "
                 f"{cache['evictions']} evictions, "
                 f"{cache['invalidations']} invalidations")
    lines.append(f"pruned candidates total: "
                 f"{payload['pruned_candidates_total']}")
    return "\n".join(lines)


def format_parallel_report(payload: Dict[str, object]) -> str:
    """Render a :func:`repro.bench.harness.run_parallel_scaling`
    payload.

    One row per query: the execute-stage median per worker count and
    each count's speedup over serial, then the zone-map skip line and
    the host core count (the context a speedup gate is conditioned on).
    """
    counts = payload["worker_counts"]
    title = (f"{payload['suite']}: morsel-parallel scaling "
             f"(batch size {payload['batch_size']}, "
             f"backend {payload['parallel_backend']}, "
             f"host cores {payload['host_cores']})")
    header = f"{'query':>6} |"
    for workers in counts:
        header += f" {f'{workers}w exec(ms)':>12} |"
    for workers in counts[1:]:
        header += f" {f'x{workers}w':>6} |"
    header += f" {'morsels':>7} | {'vs heap':>7}"
    lines = [title, "=" * len(title), header]
    queries: Dict[str, Dict[str, object]] = payload["queries"]
    for number in sorted(queries, key=int):
        row = queries[number]
        line = f"Q{number:>5} |"
        for workers in counts:
            value = row["execute_median_seconds"][str(workers)]
            line += f" {value * 1000:>12.2f} |"
        for workers in counts[1:]:
            line += f" {row['speedup_vs_serial'][str(workers)]:>6.2f} |"
        baseline = row.get("serial_vs_baseline")
        line += f" {row['morsels_at_max_workers']:>7} |"
        line += f" {baseline:>7.2f}" if baseline is not None \
            else f" {'-':>7}"
        if not row["results_identical"]:
            line += "  RESULTS DIFFER"
        lines.append(line)
    zone = payload.get("zone_map")
    lines.append("")
    if zone is not None:
        lines.append(f"zone maps: {zone['chunks_skipped']} chunks "
                     f"skipped on `{zone['sql']}` "
                     f"({zone['rows_returned']} rows returned)")
    lines.append("'vs heap' = serial columnstore median / legacy "
                 "heap-scan median (same data, columnstore disabled); "
                 "< 1.00 means the columnar path is faster.")
    return "\n".join(lines)


def format_joinorder_report(payload: Dict[str, object]) -> str:
    """Render a :func:`repro.bench.joinorder.run_joinorder_bench`
    payload.

    Four sections: the per-strategy optimize-time curve (one row per
    topology x width, full DP blank past the selector cutoff), the plan
    cost ratio versus the full-DP reference at DP-feasible widths, the
    tight-budget wide-join runs (optimizer used, degradations — the
    no-fallback-escape evidence), and the forced-DP versus adaptive
    head-to-head at the comparison point.
    """
    title = (f"{payload['suite']}: large-join strategy selection "
             f"(samples {payload['samples']}, scale {payload['scale']})")
    lines = [title, "=" * len(title), ""]

    lines.append("optimize-stage median (ms) per forced strategy:")
    header = f"{'topology':>12} |"
    for name in ("adaptive", "dp", "lindp", "goo", "greedy"):
        header += f" {name:>9} |"
    header += f" {'picked':>7}"
    lines.append(header)
    for entry in payload["curves"]:
        rows: Dict[str, Dict[str, object]] = entry["strategies"]
        line = f"{entry['topology']:>9}{entry['relations']:<3} |"
        for name in ("adaptive", "dp", "lindp", "goo", "greedy"):
            row = rows.get(name)
            line += (f" {row['optimize_median_seconds'] * 1000:>9.1f} |"
                     if row is not None else f" {'-':>9} |")
        picked = rows["adaptive"]["strategy_used"] or "-"
        line += f" {picked:>7}"
        lines.append(line)

    lines.append("")
    lines.append("plan cost ratio vs full DP (1.00 = DP-optimal):")
    header = f"{'topology':>12} |"
    for name in ("lindp", "goo", "greedy"):
        header += f" {name:>7} |"
    lines.append(header)
    for entry in payload["optimality"]:
        line = f"{entry['topology']:>9}{entry['relations']:<3} |"
        for name in ("lindp", "goo", "greedy"):
            line += f" {entry['cost_ratio_vs_dp'][name]:>7.3f} |"
        lines.append(line)

    lines.append("")
    lines.append(f"wide joins under a "
                 f"{payload['budget'][0]['budget_seconds'] * 1000:.0f}ms "
                 f"compile budget (adaptive policy):")
    lines.append(f"{'topology':>12} | {'strategy':>8} | {'opt(ms)':>8} |"
                 f" {'optimizer':>9} | {'degraded':>8}")
    for row in payload["budget"]:
        line = (f"{row['topology']:>9}{row['relations']:<3} |"
                f" {row['strategy_used'] or '-':>8} |"
                f" {row['optimize_median_seconds'] * 1000:>8.1f} |"
                f" {row['optimizer_used']:>9} |"
                f" {row['budget_degradations']:>8}")
        if row["fallback_reason"] is not None:
            line += f"  FALLBACK: {row['fallback_reason']}"
        lines.append(line)

    comp = payload["dp_comparison"]
    lines.append("")
    lines.append(
        f"forced DP vs adaptive at "
        f"{comp['topology']}{comp['relations']} "
        f"({comp['dp_budget_seconds']:.1f}s budget): "
        f"dp optimize {comp['dp_optimize_seconds'] * 1000:.0f}ms "
        f"({comp['dp_budget_degradations']} degradations) vs adaptive "
        f"({comp['adaptive_strategy']}) "
        f"{comp['adaptive_optimize_seconds'] * 1000:.1f}ms -> "
        f"{comp['speedup']:.1f}x faster to optimize; results "
        f"{'identical' if comp['results_identical'] else 'DIFFER'}.")
    return "\n".join(lines)
