"""Fault containment for the Orca detour.

The paper's core operational promise is that the detour is *optional*:
on any bridge abort the system "resorts to the usual MySQL query
optimization" (Section 4.2.1).  This module makes that promise hold for
*every* failure mode, not just the typed aborts the bridge raises on
purpose:

* :class:`FallbackReason` — the taxonomy of why a query ended up on the
  MySQL optimizer after the detour was attempted (or skipped);
* :class:`DetourGuard` — the containment wrapper the router runs the
  detour under: typed aborts, budget overruns, and *unexpected*
  exceptions (``KeyError``, ``RecursionError``, ...) all become a clean
  fallback with the reason and error details captured;
* :class:`CompileBudget` — wall-clock and memo-group caps checked inside
  the Cascades search, so a pathological query aborts the detour instead
  of hanging compilation;
* :class:`CircuitBreaker` — per-statement-fingerprint quarantine: after
  N unexpected-exception fallbacks the fingerprint routes straight to
  MySQL until the breaker decays, mirroring how a production frontend
  isolates optimizer-crashing queries;
* :class:`FallbackLog` — counters by reason, per-statement history, and
  a text report, surfaced through ``Database.resilience_report()`` and
  the benchmark harness;
* :class:`FaultInjector` — deterministic, seedable fault injection at
  named points in the metadata provider, parse-tree converter,
  optimizer, and plan converter, so every fallback path can be tested
  deliberately.
"""

from __future__ import annotations

import enum
import functools
import hashlib
import re
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.errors import (
    BudgetExceededError,
    DeadlineExceededError,
    ExecutionError,
    GovernorError,
    OrcaError,
    ReproError,
    ResourceExhaustedError,
    SkeletonInvalidError,
    StatementCancelledError,
)


class FallbackReason(enum.Enum):
    """Why a query fell back to (or stayed on) the MySQL optimizer."""

    #: The bridge aborted on purpose with an ``OrcaError`` /
    #: ``OrcaFallbackError`` (unsupported construct, changed block
    #: structure, ...) — the paper's Section 4.2.1 path.
    TYPED_ABORT = "typed_abort"
    #: A non-Orca exception escaped the detour (a genuine bug); it was
    #: contained instead of crashing the query.
    UNEXPECTED_EXCEPTION = "unexpected_exception"
    #: The compile budget (wall clock or memo group cap) was exhausted.
    BUDGET_EXCEEDED = "budget_exceeded"
    #: The circuit breaker is open for this statement fingerprint; the
    #: detour was never entered.
    CIRCUIT_OPEN = "circuit_open"
    #: The plan converter produced best-position arrays that do not
    #: describe the query block (structure changed / coverage broken).
    SKELETON_INVALID = "skeleton_invalid"
    #: The vectorized batch executor cannot run this plan (correlated
    #: materialisation, window frames, subquery expressions, ...); the
    #: statement degraded to the row-at-a-time engine.
    EXEC_BATCH_UNSUPPORTED = "exec_batch_unsupported"
    #: The statement overran its wall-clock deadline and was aborted at
    #: a governor checkpoint (execution-stage; the optimize-stage
    #: analogue is BUDGET_EXCEEDED).
    DEADLINE_EXCEEDED = "deadline_exceeded"
    #: The statement's CancelToken was set (``db.cancel()``) and the
    #: abort surfaced at the next cooperative checkpoint.
    STATEMENT_CANCELLED = "statement_cancelled"
    #: A pipeline-breaking operator charged past the statement memory
    #: cap and no degradation path could absorb the breach.
    RESOURCE_EXHAUSTED = "resource_exhausted"
    #: Execution failed with a runtime error (injected scan I/O fault,
    #: storage error, contained executor bug) — aborted cleanly, typed.
    EXEC_RUNTIME_ERROR = "exec_runtime_error"
    #: Parallel execution was requested (``executor_workers > 1``) but
    #: no operator in the plan had a parallel-safe shape, so the whole
    #: statement ran serial on the batch engine.
    EXEC_NOT_PARALLEL_SAFE = "exec_not_parallel_safe"


# -- statement fingerprinting ------------------------------------------------------

_STRING_LITERAL = re.compile(r"'(?:[^']|'')*'")
_NUMBER_LITERAL = re.compile(r"\b\d+(?:\.\d+)?\b")
_WHITESPACE = re.compile(r"\s+")


@functools.lru_cache(maxsize=1024)
def statement_fingerprint(sql: str) -> str:
    """A stable digest of a statement with literals normalised away.

    Memoized on the raw SQL text (pure function, bounded cache): the
    facade fingerprints each statement several times per execution —
    fallback log, workload repository, flight recorder — and a warm
    workload repeats the same text, so the regex+sha1 work runs once.

    ``WHERE o_totalprice > 100`` and ``WHERE o_totalprice > 250`` share a
    fingerprint, so the circuit breaker quarantines the statement *shape*
    that crashes the optimizer, not one literal binding of it.

    Deliberately NOT the plan-cache key: a cached plan has its literals
    compiled into the executor, so the cache keys on
    :func:`repro.plan_cache.statement_cache_key`, which preserves them.
    One fingerprint therefore maps to many cache entries — which is why
    a quarantined fingerprint must never be served from the cache (the
    facade refuses to store any plan whose compilation fell back).
    """
    text = _STRING_LITERAL.sub("?", sql)
    text = _NUMBER_LITERAL.sub("?", text)
    text = _WHITESPACE.sub(" ", text).strip().lower()
    return hashlib.sha1(text.encode("utf-8")).hexdigest()[:12]


# -- compile budgets ---------------------------------------------------------------


class CompileBudget:
    """Wall-clock and memo-size caps for one Orca compilation.

    The Cascades search calls :meth:`check` as it expands memo groups;
    once either cap is hit a :class:`BudgetExceededError` aborts the
    detour (a typed error, so containment maps it to
    ``FallbackReason.BUDGET_EXCEEDED``) — unless the join search already
    holds a complete incumbent plan, in which case it calls
    :meth:`degrade` and finishes with that plan: every later check
    becomes a no-op so the wrap-up (plan conversion, refinement) runs to
    completion instead of tripping over the same exhausted budget.
    """

    def __init__(self, seconds: Optional[float] = None,
                 max_memo_groups: Optional[int] = None,
                 clock: Callable[[], float] = time.perf_counter) -> None:
        self.seconds = seconds
        self.max_memo_groups = max_memo_groups
        self._clock = clock
        self.started_at = clock()
        #: Set by :meth:`degrade` when the search settled for its best
        #: incumbent; from then on :meth:`check` never raises.
        self.degraded = False

    @classmethod
    def from_config(cls, config) -> "CompileBudget":
        return cls(
            seconds=getattr(config, "orca_compile_budget_seconds", None),
            max_memo_groups=getattr(config, "orca_memo_group_budget", None),
        )

    @property
    def unlimited(self) -> bool:
        return self.seconds is None and self.max_memo_groups is None

    def elapsed(self) -> float:
        return self._clock() - self.started_at

    def remaining_seconds(self) -> Optional[float]:
        """Wall-clock left before :meth:`check` raises.

        ``None`` means no time cap; a degraded budget reports ``0.0`` so
        the strategy selector picks the cheapest (greedy) search for any
        components still to come.
        """
        if self.degraded:
            return 0.0
        if self.seconds is None:
            return None
        return max(0.0, self.seconds - self.elapsed())

    def degrade(self) -> None:
        """Accept the best incumbent: silence all further checks."""
        self.degraded = True

    def check(self, memo_groups: int = 0) -> None:
        """Raise :class:`BudgetExceededError` when a cap is exhausted."""
        if self.degraded:
            return
        if self.seconds is not None:
            elapsed = self.elapsed()
            if elapsed > self.seconds:
                raise BudgetExceededError(
                    f"compile budget exceeded: {elapsed:.3f}s elapsed "
                    f"(budget {self.seconds:.3f}s)")
        if self.max_memo_groups is not None \
                and memo_groups > self.max_memo_groups:
            raise BudgetExceededError(
                f"compile budget exceeded: {memo_groups} memo groups "
                f"(budget {self.max_memo_groups})")


# -- the containment guard ----------------------------------------------------------


@dataclass
class DetourOutcome:
    """What one guarded detour attempt produced."""

    skeleton: Optional[object] = None
    reason: Optional[FallbackReason] = None
    error_type: Optional[str] = None
    error_message: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.skeleton is not None


def classify_exception(exc: BaseException) -> FallbackReason:
    """Map an exception that escaped the detour onto the taxonomy."""
    if isinstance(exc, BudgetExceededError):
        return FallbackReason.BUDGET_EXCEEDED
    if isinstance(exc, SkeletonInvalidError):
        return FallbackReason.SKELETON_INVALID
    if isinstance(exc, OrcaError):
        return FallbackReason.TYPED_ABORT
    return FallbackReason.UNEXPECTED_EXCEPTION


def classify_execution_exception(exc: BaseException) -> FallbackReason:
    """Map an execution-stage abort onto the taxonomy.

    The governor's typed errors each have a dedicated member; anything
    else that escaped execution (storage faults, injected crashes
    wrapped by the facade) is an ``EXEC_RUNTIME_ERROR``.
    """
    if isinstance(exc, DeadlineExceededError):
        return FallbackReason.DEADLINE_EXCEEDED
    if isinstance(exc, StatementCancelledError):
        return FallbackReason.STATEMENT_CANCELLED
    if isinstance(exc, ResourceExhaustedError):
        return FallbackReason.RESOURCE_EXHAUSTED
    return FallbackReason.EXEC_RUNTIME_ERROR


class DetourGuard:
    """Runs the detour and contains everything it throws.

    With ``contain_unexpected=False`` (a debugging aid) only the typed
    aborts fall back and genuine bugs surface to the caller — the
    pre-containment behaviour.
    """

    def __init__(self, contain_unexpected: bool = True) -> None:
        self.contain_unexpected = contain_unexpected

    def run(self, detour: Callable[[], object]) -> DetourOutcome:
        try:
            return DetourOutcome(skeleton=detour())
        except GovernorError:
            # Statement-level bounds (cancellation, deadline) are not
            # detour failures: containment here would turn a cancel into
            # a silent MySQL fallback and feed the circuit breaker.
            # They propagate and abort the whole statement.
            raise
        except Exception as exc:  # noqa: BLE001 — containment is the point
            reason = classify_exception(exc)
            if reason is FallbackReason.UNEXPECTED_EXCEPTION \
                    and not self.contain_unexpected:
                raise
            return DetourOutcome(
                skeleton=None,
                reason=reason,
                error_type=type(exc).__name__,
                error_message=str(exc),
            )


# -- circuit breaker -----------------------------------------------------------------


class CircuitBreaker:
    """Per-fingerprint quarantine for optimizer-crashing statements.

    After ``threshold`` *unexpected-exception* fallbacks for one
    fingerprint, :meth:`allow` answers False and the facade routes the
    statement straight to MySQL without re-entering the detour.  Once
    ``reset_seconds`` pass since the last failure the breaker half-opens:
    one trial detour is allowed, and a success closes it again.
    """

    def __init__(self, threshold: int = 3, reset_seconds: float = 60.0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if threshold < 1:
            raise ReproError("circuit breaker threshold must be >= 1")
        self.threshold = threshold
        self.reset_seconds = reset_seconds
        self._clock = clock
        #: fingerprint -> (consecutive failures, last failure time)
        self._failures: Dict[str, Tuple[int, float]] = {}

    def record_failure(self, fingerprint: str) -> None:
        count, __ = self._failures.get(fingerprint, (0, 0.0))
        self._failures[fingerprint] = (count + 1, self._clock())

    def record_success(self, fingerprint: str) -> None:
        self._failures.pop(fingerprint, None)

    def failures(self, fingerprint: str) -> int:
        return self._failures.get(fingerprint, (0, 0.0))[0]

    def is_open(self, fingerprint: str) -> bool:
        return not self.allow(fingerprint, probe=True)

    def allow(self, fingerprint: str, probe: bool = False) -> bool:
        """Whether the detour may be entered for this fingerprint.

        With ``probe=True`` the breaker is only inspected: a decayed
        entry is not half-opened (no state change).
        """
        entry = self._failures.get(fingerprint)
        if entry is None:
            return True
        count, last_failure = entry
        if count < self.threshold:
            return True
        if self._clock() - last_failure >= self.reset_seconds:
            if not probe:
                # Half-open: allow one trial; a success closes the
                # breaker, another failure re-opens it immediately.
                self._failures[fingerprint] = (self.threshold - 1,
                                               last_failure)
            return True
        return False

    @property
    def open_fingerprints(self) -> List[str]:
        return sorted(fp for fp in self._failures
                      if not self.allow(fp, probe=True))


# -- fallback telemetry ---------------------------------------------------------------


@dataclass
class FallbackEvent:
    """One recorded fallback, with enough detail to debug it later."""

    fingerprint: str
    reason: FallbackReason
    error_type: Optional[str] = None
    error_message: Optional[str] = None
    sql: Optional[str] = None


class FallbackLog:
    """Counters by reason plus a bounded per-statement history.

    With a ``metrics`` sink (a :class:`repro.observability.MetricsRegistry`)
    every event is mirrored into the process-wide registry — the
    ``detour.entered`` / ``detour.succeeded`` / ``fallback.<reason>``
    counters — so one metrics report covers resilience too.
    """

    def __init__(self, max_events: int = 256, metrics=None) -> None:
        self.counters: Dict[FallbackReason, int] = {
            reason: 0 for reason in FallbackReason}
        self.events: Deque[FallbackEvent] = deque(maxlen=max_events)
        self.per_statement: Dict[str, List[FallbackEvent]] = {}
        self.detours_entered = 0
        self.detours_succeeded = 0
        self.last_event: Optional[FallbackEvent] = None
        self.metrics = metrics

    def record_detour_entry(self) -> None:
        self.detours_entered += 1
        if self.metrics is not None:
            self.metrics.inc("detour.entered")

    def record_detour_success(self) -> None:
        self.detours_succeeded += 1
        if self.metrics is not None:
            self.metrics.inc("detour.succeeded")

    def record_fallback(self, event: FallbackEvent) -> None:
        self.counters[event.reason] += 1
        self.events.append(event)
        self.per_statement.setdefault(event.fingerprint, []).append(event)
        self.last_event = event
        if self.metrics is not None:
            self.metrics.inc("detour.fallbacks")
            self.metrics.inc(f"fallback.{event.reason.value}")

    def count(self, reason: FallbackReason) -> int:
        return self.counters[reason]

    @property
    def total_fallbacks(self) -> int:
        return sum(self.counters.values())

    def history(self, fingerprint: str) -> List[FallbackEvent]:
        return list(self.per_statement.get(fingerprint, []))

    def report(self) -> str:
        lines = ["Resilience report", "=" * 17,
                 f"detours entered:   {self.detours_entered}",
                 f"detours succeeded: {self.detours_succeeded}",
                 f"fallbacks:         {self.total_fallbacks}"]
        for reason in FallbackReason:
            count = self.counters[reason]
            if count:
                lines.append(f"  {reason.value + ':':<22} {count}")
        if self.last_event is not None:
            event = self.last_event
            detail = event.reason.value
            if event.error_type:
                detail = (f"{event.error_type}: {event.error_message} "
                          f"({detail})")
            lines.append(f"last fallback:     {detail} "
                         f"[fingerprint {event.fingerprint}]")
        return "\n".join(lines)


# -- fault injection -------------------------------------------------------------------

#: Injection points wired into the bridge (optimize-stage) components.
BRIDGE_INJECTION_SITES = (
    "metadata_provider",
    "parse_tree_converter",
    "optimizer",
    "plan_converter",
)

#: Execution-stage injection points: leaf scans (``scan_io``), the
#: batch accounting hook (``mid_batch``), and the memory accountant's
#: charge path (``alloc_spike`` — fires through :meth:`fire_spike`,
#: inflating a charge instead of raising).
EXECUTION_INJECTION_SITES = (
    "scan_io",
    "mid_batch",
    "alloc_spike",
)

#: All named injection points.
INJECTION_SITES = BRIDGE_INJECTION_SITES + EXECUTION_INJECTION_SITES

#: Supported fault actions at each site.
INJECTION_ACTIONS = ("typed", "crash", "sleep", "spike")


@dataclass
class _ArmedFault:
    action: str
    times: int
    sleep_seconds: float
    probability: float
    spike_bytes: int = 0


class FaultInjector:
    """Deterministic, seedable fault injection for the detour.

    Arm a site with an action; when the component reaches its injection
    point it calls :meth:`fire`, and the armed fault happens:

    * ``"typed"`` — raise the stage's deliberate abort: an
      :class:`OrcaError` at bridge sites, an :class:`ExecutionError`
      (an injected I/O fault) at execution sites;
    * ``"crash"`` — raise ``KeyError`` (an unexpected, non-typed bug);
    * ``"sleep"`` — sleep ``sleep_seconds`` so a compile budget or a
      statement deadline trips;
    * ``"spike"`` — only at ``alloc_spike``: inflate the next memory
      charge by ``spike_bytes`` so a memory cap breaches on demand.

    ``times`` bounds how often the fault fires (-1 = every time) and
    ``probability`` (checked against a seeded PRNG) makes chaos runs
    reproducible.  Only installed via ``DatabaseConfig.fault_injector``;
    a ``None`` injector costs nothing.
    """

    SITES = INJECTION_SITES

    def __init__(self, seed: int = 0) -> None:
        import random

        self._rng = random.Random(seed)
        self._armed: Dict[str, _ArmedFault] = {}
        self.fired: Dict[str, int] = {site: 0 for site in INJECTION_SITES}
        self.reached: Dict[str, int] = {site: 0 for site in INJECTION_SITES}

    def arm(self, site: str, action: str = "typed", times: int = -1,
            sleep_seconds: float = 0.05,
            probability: float = 1.0,
            spike_bytes: int = 64 * 1024 * 1024) -> "FaultInjector":
        if site not in INJECTION_SITES:
            raise ReproError(
                f"unknown injection site {site!r}; valid sites: "
                f"{', '.join(INJECTION_SITES)}")
        if action not in INJECTION_ACTIONS:
            raise ReproError(
                f"unknown injection action {action!r}; valid actions: "
                f"{', '.join(INJECTION_ACTIONS)}")
        if (action == "spike") != (site == "alloc_spike"):
            raise ReproError(
                "the 'spike' action and the 'alloc_spike' site go "
                "together: arm('alloc_spike', 'spike', spike_bytes=...)")
        self._armed[site] = _ArmedFault(action, times, sleep_seconds,
                                        probability, spike_bytes)
        return self

    def disarm(self, site: Optional[str] = None) -> None:
        if site is None:
            self._armed.clear()
        else:
            self._armed.pop(site, None)

    def reseed(self, seed: int) -> "FaultInjector":
        """Re-seed the probability PRNG and zero the site counters.

        The bench harness calls this when a suite is run with an
        explicit ``seed`` so probabilistic faults fire on the same
        statements run-to-run regardless of what executed before the
        suite started.  Armed faults stay armed.
        """
        import random

        self._rng = random.Random(seed)
        self.fired = {site: 0 for site in INJECTION_SITES}
        self.reached = {site: 0 for site in INJECTION_SITES}
        return self

    def _draw(self, site: str) -> Optional[_ArmedFault]:
        """Shared gating: armed, times remaining, probability draw."""
        self.reached[site] = self.reached.get(site, 0) + 1
        fault = self._armed.get(site)
        if fault is None or fault.times == 0:
            return None
        if fault.probability < 1.0 \
                and self._rng.random() >= fault.probability:
            return None
        if fault.times > 0:
            fault.times -= 1
        self.fired[site] = self.fired.get(site, 0) + 1
        return fault

    def fire(self, site: str) -> None:
        """Called by a component at its injection point."""
        fault = self._draw(site)
        if fault is None or fault.action == "spike":
            return
        if fault.action == "typed":
            if site in EXECUTION_INJECTION_SITES:
                raise ExecutionError(f"injected I/O fault at {site}")
            raise OrcaError(f"injected typed abort at {site}")
        if fault.action == "crash":
            raise KeyError(f"injected crash at {site}")
        time.sleep(fault.sleep_seconds)

    def fire_spike(self, site: str = "alloc_spike") -> int:
        """Bytes to add to the next memory charge (0 when unarmed).

        Called by :meth:`repro.governor.ExecutionGovernor.charge`; a
        non-spike fault armed at the site is ignored here (spikes never
        raise — they inflate the accountant so the *governor* raises).
        """
        fault = self._draw(site)
        if fault is None or fault.action != "spike":
            return 0
        return fault.spike_bytes
