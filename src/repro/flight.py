"""Flight recorder: a bounded time-series memory for the engine.

The metrics registry (PR 2) answers "what happened since process
start", and the workload repository (PR 7) answers "what does this
statement shape usually do" — but neither can answer "what was the
engine doing *right before* things went bad".  The flight recorder is
that missing surface: a bounded ring buffer of one
:class:`FlightRecord` per finished statement (successful or aborted)
plus periodic whole-registry snapshots, cheap enough to leave on in
production (an append into a ``deque(maxlen=N)`` and a handful of
attribute copies per statement).

Three consumers:

* ``db.flight_report()`` / :func:`format_flight_report` — the recent
  history, latest first, with per-statement stage splits and abort
  reasons;
* ``export_jsonl()`` — the post-mortem artifact: the whole buffer as
  JSONL for offline tooling;
* :meth:`FlightRecorder.watchdog_check` — an online p95 regression
  watchdog: for each statement fingerprint it compares the trailing
  window's execute-latency p95 against the window before it and flags
  fingerprints that got ``watchdog_factor`` × slower.  The Database
  feeds confirmed findings into the
  :class:`repro.workload.WorkloadRepository` as
  ``PlanRegression``-style entries, so the existing Advisor surfaces
  them (and ``advisor.apply`` remediates via plan-cache purge) with no
  new machinery.

``db.top()`` (:func:`format_top_report`) is the live counterpart: the
operational one-pager the upcoming multi-session server front-end will
expose — in-flight statements from the governor registry, the hottest
fingerprints from the workload repository, and per-worker utilization
from the parallel-execution telemetry.
"""

from __future__ import annotations

import datetime
import json
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = [
    "FlightRecord",
    "FlightRecorder",
    "WatchdogFinding",
    "format_flight_report",
    "format_top_report",
]


@dataclass
class FlightRecord:
    """One statement's telemetry, as recorded at completion or abort."""

    seq: int
    statement_id: int
    fingerprint: str
    sql: str
    optimizer: Optional[str] = None
    executor_mode: Optional[str] = None
    workers: int = 1
    plan_hash: Optional[str] = None
    plan_cache_hit: bool = False
    rows: int = 0
    compile_seconds: float = 0.0
    execute_seconds: float = 0.0
    #: Per-stage trace seconds (empty when the statement ran untraced).
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    root_q: Optional[float] = None
    max_q: Optional[float] = None
    fallback_reason: Optional[str] = None
    aborted: bool = False
    abort_reason: Optional[str] = None
    governor_checkpoints: Optional[int] = None
    governor_peak_bytes: Optional[int] = None
    low_memory_retry: bool = False
    #: Wall-clock timestamp (ISO 8601); informational only — every
    #: comparison in this module uses record order, never the clock.
    ts: str = ""

    @property
    def total_seconds(self) -> float:
        return self.compile_seconds + self.execute_seconds

    def to_dict(self) -> dict:
        return {
            "seq": self.seq,
            "ts": self.ts,
            "statement_id": self.statement_id,
            "fingerprint": self.fingerprint,
            "sql": self.sql,
            "optimizer": self.optimizer,
            "executor_mode": self.executor_mode,
            "workers": self.workers,
            "plan_hash": self.plan_hash,
            "plan_cache_hit": self.plan_cache_hit,
            "rows": self.rows,
            "compile_seconds": self.compile_seconds,
            "execute_seconds": self.execute_seconds,
            "total_seconds": self.total_seconds,
            "stage_seconds": dict(self.stage_seconds),
            "root_q": self.root_q,
            "max_q": self.max_q,
            "fallback_reason": self.fallback_reason,
            "aborted": self.aborted,
            "abort_reason": self.abort_reason,
            "governor_checkpoints": self.governor_checkpoints,
            "governor_peak_bytes": self.governor_peak_bytes,
            "low_memory_retry": self.low_memory_retry,
        }


@dataclass
class WatchdogFinding:
    """One fingerprint whose trailing-window p95 regressed."""

    fingerprint: str
    sql: str
    plan_hash: Optional[str]
    before_p95: float
    after_p95: float
    factor: float
    samples_before: int
    samples_after: int

    def to_dict(self) -> dict:
        return {
            "fingerprint": self.fingerprint,
            "sql": self.sql,
            "plan_hash": self.plan_hash,
            "before_p95_seconds": self.before_p95,
            "after_p95_seconds": self.after_p95,
            "factor": self.factor,
            "samples_before": self.samples_before,
            "samples_after": self.samples_after,
        }


def _exact_p95(values: List[float]) -> float:
    """Exact interpolated p95 over a small window (not a reservoir —
    windows are bounded by the watchdog config, so exactness is free)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    position = 0.95 * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    fraction = position - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


class FlightRecorder:
    """Bounded ring buffer of statement telemetry + registry snapshots.

    ``capacity`` bounds the record ring; every ``snapshot_interval``
    records a whole-registry snapshot (``MetricsRegistry.to_dict``) is
    appended to its own small ring, so a post-mortem export carries the
    counter trajectory, not just the endpoint.

    The watchdog is stateless between calls except for
    ``_flagged`` — (fingerprint, window-end seq) pairs already
    reported, so one regression is surfaced once, not on every
    subsequent statement while it remains in the window.
    """

    #: Registry snapshots kept (small: each is a full counter dump).
    SNAPSHOT_RING = 16

    def __init__(self, capacity: int = 512,
                 snapshot_interval: int = 64,
                 watchdog_window: int = 8,
                 watchdog_factor: float = 2.0,
                 watchdog_min_samples: int = 4,
                 metrics=None) -> None:
        if capacity < 1:
            raise ValueError("flight capacity must be >= 1")
        if snapshot_interval < 1:
            raise ValueError("snapshot_interval must be >= 1")
        if watchdog_window < 1:
            raise ValueError("watchdog_window must be >= 1")
        if watchdog_factor <= 1.0:
            raise ValueError("watchdog_factor must be > 1.0")
        if watchdog_min_samples < 1:
            raise ValueError("watchdog_min_samples must be >= 1")
        self.capacity = capacity
        self.snapshot_interval = snapshot_interval
        self.watchdog_window = watchdog_window
        self.watchdog_factor = watchdog_factor
        self.watchdog_min_samples = watchdog_min_samples
        self.metrics = metrics
        self._records: "deque[FlightRecord]" = deque(maxlen=capacity)
        self._snapshots: "deque[dict]" = deque(maxlen=self.SNAPSHOT_RING)
        self._seq = 0
        #: (fingerprint, last record seq of the flagged window) pairs —
        #: dedupe so a regression is reported once per occurrence.
        self._flagged: set = set()

    def __len__(self) -> int:
        return len(self._records)

    @property
    def recorded(self) -> int:
        """Total records ever appended (>= len once the ring wraps)."""
        return self._seq

    # -- recording ---------------------------------------------------------------

    def record(self, record: FlightRecord) -> FlightRecord:
        """Append one statement record (and maybe a registry snapshot)."""
        self._seq += 1
        record.seq = self._seq
        if not record.ts:
            record.ts = datetime.datetime.now().isoformat()
        self._records.append(record)
        if self.metrics is not None:
            self.metrics.inc("flight.records")
            if self._seq % self.snapshot_interval == 0:
                self._snapshots.append({
                    "seq": self._seq,
                    "ts": record.ts,
                    "registry": self.metrics.to_dict(),
                })
                self.metrics.inc("flight.snapshots")
        return record

    # -- watchdog ----------------------------------------------------------------

    def watchdog_check(self) -> List[WatchdogFinding]:
        """Compare trailing-window p95 per fingerprint against the
        window before it; return freshly-flagged regressions.

        Aborted records are excluded (their latency is the bound, not
        the statement).  Both windows must hold at least
        ``watchdog_min_samples`` executions of the fingerprint — a
        regression needs evidence on *both* sides.
        """
        window = self.watchdog_window
        # Only the last 2*window non-aborted records can matter; walk
        # the ring backwards and stop there, so the per-statement cost
        # is bounded by the watchdog config, not the ring capacity.
        usable: List[FlightRecord] = []
        for record in reversed(self._records):
            if not record.aborted:
                usable.append(record)
                if len(usable) == 2 * window:
                    break
        usable.reverse()
        if len(usable) < 2 * self.watchdog_min_samples:
            return []
        trailing = usable[-window:]
        prior = usable[-2 * window:-window]
        by_fp_trailing: Dict[str, List[FlightRecord]] = {}
        for record in trailing:
            by_fp_trailing.setdefault(record.fingerprint, []).append(record)
        by_fp_prior: Dict[str, List[float]] = {}
        for record in prior:
            by_fp_prior.setdefault(record.fingerprint, []).append(
                record.execute_seconds)
        findings: List[WatchdogFinding] = []
        for fingerprint in sorted(by_fp_trailing):
            recent = by_fp_trailing[fingerprint]
            before_samples = by_fp_prior.get(fingerprint, [])
            if len(recent) < self.watchdog_min_samples \
                    or len(before_samples) < self.watchdog_min_samples:
                continue
            key = (fingerprint, recent[-1].seq)
            if key in self._flagged:
                continue
            before = _exact_p95(before_samples)
            after = _exact_p95([r.execute_seconds for r in recent])
            if before <= 0.0 or after <= self.watchdog_factor * before:
                continue
            self._flagged.add(key)
            findings.append(WatchdogFinding(
                fingerprint=fingerprint,
                sql=recent[-1].sql,
                plan_hash=recent[-1].plan_hash,
                before_p95=before,
                after_p95=after,
                factor=after / before,
                samples_before=len(before_samples),
                samples_after=len(recent),
            ))
            if self.metrics is not None:
                self.metrics.inc("flight.watchdog_findings")
        return findings

    # -- export ------------------------------------------------------------------

    def records(self, limit: Optional[int] = None) -> List[FlightRecord]:
        """Most recent records, latest first."""
        out = list(self._records)
        out.reverse()
        return out if limit is None else out[:limit]

    def snapshots(self) -> List[dict]:
        return list(self._snapshots)

    def report(self, limit: int = 20) -> dict:
        """JSON-ready flight report: buffer stats + recent records."""
        return {
            "stats": {
                "capacity": self.capacity,
                "size": len(self._records),
                "recorded": self._seq,
                "snapshots": len(self._snapshots),
                "watchdog_window": self.watchdog_window,
                "watchdog_factor": self.watchdog_factor,
            },
            "records": [r.to_dict() for r in self.records(limit)],
        }

    def export_jsonl(self, path: str) -> int:
        """Write the whole buffer (oldest first) plus snapshots as
        JSONL; returns the number of lines written."""
        lines = 0
        with open(path, "w", encoding="utf-8") as handle:
            for record in self._records:
                handle.write(json.dumps(
                    {"kind": "statement", **record.to_dict()},
                    default=str) + "\n")
                lines += 1
            for snapshot in self._snapshots:
                handle.write(json.dumps(
                    {"kind": "snapshot", **snapshot},
                    default=str) + "\n")
                lines += 1
        return lines


def _short_sql(sql: str, width: int = 48) -> str:
    flat = " ".join(sql.split())
    return flat if len(flat) <= width else flat[:width - 3] + "..."


def format_flight_report(payload: dict) -> str:
    """Render ``FlightRecorder.report()`` as plain text, latest first."""
    stats = payload["stats"]
    lines = ["Flight recorder", "=" * 15,
             f"records: {stats['size']}/{stats['capacity']} buffered "
             f"({stats['recorded']} recorded, "
             f"{stats['snapshots']} registry snapshots)"]
    records = payload["records"]
    if not records:
        lines.append("(no statements recorded)")
        return "\n".join(lines)
    lines.append(f"{'seq':>5}  {'total ms':>9}  {'exec ms':>8}  "
                 f"{'opt':<5} {'mode':<5} {'wrk':>3}  statement")
    for record in records:
        if record["aborted"]:
            status = f"ABORTED ({record['abort_reason']})"
        elif record["fallback_reason"]:
            status = f"fallback ({record['fallback_reason']})"
        else:
            status = ""
        suffix = f"  [{status}]" if status else ""
        lines.append(
            f"{record['seq']:>5}  "
            f"{record['total_seconds'] * 1000.0:>9.3f}  "
            f"{record['execute_seconds'] * 1000.0:>8.3f}  "
            f"{(record['optimizer'] or '-'):<5} "
            f"{(record['executor_mode'] or '-'):<5} "
            f"{record['workers']:>3}  "
            f"{_short_sql(record['sql'])}{suffix}")
    return "\n".join(lines)


def format_top_report(payload: dict) -> str:
    """Render ``db.top_data()`` as the live one-pager.

    Three sections mirroring an OS ``top``: in-flight statements (with
    elapsed seconds and last governor stage), the hottest statement
    fingerprints by recorded executions, and per-worker parallel
    utilization from the most recent parallel statement.
    """
    lines = ["engine top", "=" * 10,
             f"statements: {payload['statements_total']} total, "
             f"{payload['statements_aborted']} aborted, "
             f"{payload['active_count']} in flight"]
    active = payload["active"]
    lines.append("active statements:" if active
                 else "active statements: (none)")
    for item in active:
        stage = item.get("last_stage") or "-"
        lines.append(
            f"  #{item['statement_id']:<5} "
            f"{item['elapsed_seconds'] * 1000.0:>9.3f} ms  "
            f"stage {stage:<10} {_short_sql(item['sql'])}")
    hottest = payload["hottest"]
    lines.append("hottest fingerprints (by executions):" if hottest
                 else "hottest fingerprints: (none recorded)")
    for item in hottest:
        lines.append(
            f"  x{item['executions']:<6} "
            f"p95 {item['p95_seconds'] * 1000.0:>9.3f} ms  "
            f"{_short_sql(item['sql'])}")
    workers = payload["workers"]
    lines.append("parallel workers (last parallel statement):" if workers
                 else "parallel workers: (no parallel statement yet)")
    for item in workers:
        lines.append(
            f"  worker {item['worker']:<3} {item['morsels']:>5} morsels  "
            f"{item['rows']:>8} rows  "
            f"{item['seconds'] * 1000.0:>9.3f} ms busy")
    skew = payload.get("worker_skew")
    if skew:
        lines.append(
            f"  skew: min {skew['min_morsels']} / "
            f"max {skew['max_morsels']} / "
            f"stddev {skew['stddev_morsels']:.2f} morsels per worker")
    return "\n".join(lines)
