"""Plan-quality feedback: close the loop from estimates to actuals.

The paper copies Orca's cost and cardinality estimates into MySQL's
EXPLAIN (Section 6) and ships the histograms those estimates come from
(Section 5.5) — but never checks them against reality.  This module is
that check.  Every executed statement yields per-node ``(estimated,
actual)`` pairs from the always-on counters the executor maintains
(:attr:`repro.executor.plan.PlanNode.actual_rows`); here they become:

* **Q-error** per node — ``max(est/act, act/est)``, the standard
  multiplicative cardinality-accuracy measure (>= 1, 1 is perfect),
  with +1 smoothing applied to both sides when either is zero so
  empty results stay finite and symmetric;
* a per-statement :class:`StatementQuality` aggregate (root and max
  Q-error, the worst node and its operator kind);
* a bounded-LRU :class:`MisestimationLedger` keyed like the plan cache,
  tracking breach streaks per statement and deciding when a cached plan
  has earned invalidation (K consecutive executions above threshold);
* a per-table staleness estimate comparing live heap cardinality with
  ANALYZE-time statistics, feeding a re-ANALYZE recommendation list.

The Database facade wires these into ``planq.*`` metrics, the
``execute`` span, ``plan_quality_report()``, and the slow-query log.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = [
    "LedgerEntry",
    "MisestimationLedger",
    "NodeQuality",
    "StatementQuality",
    "TableStaleness",
    "format_plan_quality_report",
    "per_loop_q",
    "q_error",
    "stats_staleness",
    "statement_quality",
]


def q_error(estimated: float, actual: float) -> float:
    """The Q-error of one cardinality estimate.

    ``max(est/act, act/est)`` — always >= 1.0, with 1.0 meaning a
    perfect estimate.  When either side is zero the standard +1
    smoothing is applied to *both* (keeping the measure symmetric), so
    an estimate of 0 against an actual of 0 scores a perfect 1.0 and an
    estimate of 0 against an actual of 99 scores 100.  Negative inputs
    (never produced by the engine) clamp to zero.
    """
    est = float(estimated)
    act = float(actual)
    if est < 0.0:
        est = 0.0
    if act < 0.0:
        act = 0.0
    if est == 0.0 or act == 0.0:
        est += 1.0
        act += 1.0
    return est / act if est >= act else act / est


def per_loop_q(estimated: float, actual: float, loops: int) -> float:
    """Q-error of a per-loop estimate against accumulated actuals.

    The optimizer's ``rows`` is an estimate for *one* invocation of the
    node, but the always-on counters accumulate across every restart —
    the inner side of a nested-loop join rebinds once per outer row.
    Dividing the actual total by the loop count restores MySQL's
    ``(rows=N loops=M)`` semantics, so a perfectly-estimated lookup
    probed 1000 times still scores q = 1.  A node that never started
    (``loops == 0``) left its estimate untested and scores a neutral
    1.0.
    """
    if loops <= 0:
        return 1.0
    return q_error(estimated, actual / loops)


def operator_kind(node) -> str:
    """Stable operator-kind label for aggregation ("TableScan",
    "HashJoin", ...): the node class name without the Node suffix."""
    name = type(node).__name__
    return name[:-4] if name.endswith("Node") else name


@dataclass
class NodeQuality:
    """One plan node's estimated-vs-actual comparison."""

    operator: str
    label: str
    estimated: float
    actual: int
    #: How many times the node (re)started this execution; the Q-error
    #: compares ``estimated`` against ``actual / loops``.
    loops: int
    q: float


@dataclass
class StatementQuality:
    """Per-statement aggregate of every node's Q-error."""

    nodes: List[NodeQuality] = field(default_factory=list)
    #: Q-error of the top plan's root node (the statement's output
    #: cardinality estimate); 1.0 for plans without a node tree.
    root_q: float = 1.0
    #: Worst Q-error across all nodes (1.0 when there are none).
    max_q: float = 1.0
    #: The node behind ``max_q``; None for node-less plans.
    worst: Optional[NodeQuality] = None

    @property
    def worst_operator(self) -> str:
        return self.worst.operator if self.worst is not None else ""

    def to_dict(self) -> dict:
        return {
            "root_q": self.root_q,
            "max_q": self.max_q,
            "worst_operator": self.worst_operator,
            "nodes": [{
                "operator": n.operator,
                "label": n.label,
                "estimated": n.estimated,
                "actual": n.actual,
                "loops": n.loops,
                "q": n.q,
            } for n in self.nodes],
        }


def statement_quality(executor) -> StatementQuality:
    """Snapshot one executed statement's per-node quality.

    Reads the executor's always-on counters (valid until the next
    execution resets them) against each node's optimizer estimate.
    Values are copied out, so the snapshot survives plan-cache reuse of
    the executor.
    """
    quality = StatementQuality()
    top_root = executor.top_plan.root if executor.top_plan else None
    for node in executor.iter_plan_nodes():
        record = NodeQuality(
            operator=operator_kind(node),
            label=node.label(),
            estimated=float(node.rows),
            actual=node.actual_rows,
            loops=node.actual_loops,
            q=per_loop_q(node.rows, node.actual_rows, node.actual_loops),
        )
        quality.nodes.append(record)
        if record.q > quality.max_q or quality.worst is None:
            quality.max_q = record.q
            quality.worst = record
        if node is top_root:
            quality.root_q = record.q
    return quality


# ---------------------------------------------------------------------------
# Misestimation ledger
# ---------------------------------------------------------------------------

@dataclass
class LedgerEntry:
    """Per-statement-fingerprint misestimation history."""

    cache_key: str
    fingerprint: str
    sql: str
    executions: int = 0
    breaches: int = 0
    consecutive_breaches: int = 0
    plan_invalidations: int = 0
    max_q: float = 1.0
    last_q: float = 1.0
    last_root_q: float = 1.0
    worst_operator: str = ""
    last_optimizer: str = ""

    def to_dict(self) -> dict:
        return {
            "cache_key": self.cache_key,
            "fingerprint": self.fingerprint,
            "sql": self.sql,
            "executions": self.executions,
            "breaches": self.breaches,
            "consecutive_breaches": self.consecutive_breaches,
            "plan_invalidations": self.plan_invalidations,
            "max_q": self.max_q,
            "last_q": self.last_q,
            "last_root_q": self.last_root_q,
            "worst_operator": self.worst_operator,
            "last_optimizer": self.last_optimizer,
        }


class MisestimationLedger:
    """Bounded-LRU record of per-statement estimate accuracy.

    Keyed by the plan-cache key (literal-preserving, so the feedback
    action can invalidate exactly the cached plan that misestimates);
    each entry also carries the literal-normalised resilience
    fingerprint for correlation with the fallback log.

    The feedback rule: an execution whose max Q-error exceeds
    ``q_threshold`` is a *breach*; ``consecutive_threshold`` breaches in
    a row earn a plan-cache invalidation (and reset the streak, so a
    plan that keeps misestimating is re-invalidated only after another
    full streak — no per-execution thrash).  Only executions served
    from the plan cache advance or reset the streak: the invalidation
    evicts a *cached* plan, so the evidence must come from runs of that
    cached plan — a cold run already re-optimizes and needs no
    feedback action (breach totals still count every execution).
    """

    def __init__(self, capacity: int = 256, q_threshold: float = 16.0,
                 consecutive_threshold: int = 3) -> None:
        if capacity < 1:
            raise ValueError("ledger capacity must be >= 1")
        if q_threshold < 1.0:
            raise ValueError("q_threshold must be >= 1.0 (perfect)")
        if consecutive_threshold < 1:
            raise ValueError("consecutive_threshold must be >= 1")
        self.capacity = capacity
        self.q_threshold = q_threshold
        self.consecutive_threshold = consecutive_threshold
        self._entries: "OrderedDict[str, LedgerEntry]" = OrderedDict()
        #: Per-operator-kind aggregates across every recorded node.
        self._operators: Dict[str, Dict[str, float]] = {}
        self.evictions = 0
        self.total_breaches = 0
        self.total_invalidations = 0
        self.total_aborted = 0

    def __len__(self) -> int:
        return len(self._entries)

    def entry(self, cache_key: str) -> Optional[LedgerEntry]:
        return self._entries.get(cache_key)

    def record(self, cache_key: str, fingerprint: str, sql: str,
               quality: StatementQuality, optimizer_used: str,
               cached: bool = True) -> Tuple[LedgerEntry, bool]:
        """Fold one execution in; returns ``(entry, invalidate_plan)``.

        ``invalidate_plan`` is True when this execution completed a
        breach streak and the statement's cached plan should be dropped.
        ``cached`` says whether the execution was served from the plan
        cache: only cached runs advance (or reset) the breach streak —
        a freshly compiled plan that misestimates still counts toward
        the breach totals but triggers no invalidation, since there is
        no stale cached plan to evict.
        """
        entry = self._entries.get(cache_key)
        if entry is None:
            entry = LedgerEntry(cache_key=cache_key,
                                fingerprint=fingerprint, sql=sql)
            self._entries[cache_key] = entry
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
        else:
            self._entries.move_to_end(cache_key)
        entry.executions += 1
        entry.last_q = quality.max_q
        entry.last_root_q = quality.root_q
        entry.last_optimizer = optimizer_used
        if quality.max_q > entry.max_q:
            entry.max_q = quality.max_q
            entry.worst_operator = quality.worst_operator
        for node in quality.nodes:
            stats = self._operators.get(node.operator)
            if stats is None:
                stats = {"observations": 0, "breaches": 0, "max_q": 1.0}
                self._operators[node.operator] = stats
            stats["observations"] += 1
            if node.q > stats["max_q"]:
                stats["max_q"] = node.q
            if node.q > self.q_threshold:
                stats["breaches"] += 1
        breach = quality.max_q > self.q_threshold
        if breach:
            entry.breaches += 1
            self.total_breaches += 1
        if cached:
            if breach:
                entry.consecutive_breaches += 1
            else:
                entry.consecutive_breaches = 0
        invalidate = cached and breach and \
            entry.consecutive_breaches >= self.consecutive_threshold
        if invalidate:
            entry.plan_invalidations += 1
            entry.consecutive_breaches = 0
            self.total_invalidations += 1
        return entry, invalidate

    def worst_fingerprints(self, limit: int = 10) -> List[LedgerEntry]:
        """Entries ranked by worst-ever Q-error, descending."""
        ranked = sorted(self._entries.values(),
                        key=lambda e: e.max_q, reverse=True)
        return ranked[:limit]

    def worst_operators(self, limit: int = 10) -> List[dict]:
        """Operator kinds ranked by worst observed Q-error."""
        ranked = sorted(self._operators.items(),
                        key=lambda item: item[1]["max_q"], reverse=True)
        return [{"operator": name, **stats}
                for name, stats in ranked[:limit]]

    def note_aborted(self) -> None:
        """Count a statement aborted mid-execution (deadline, cancel,
        memory breach, runtime error).

        An aborted execution produces no trustworthy actual row counts
        — its operators stopped early — so it must NOT advance or reset
        any entry's breach streak, and it is deliberately not recorded
        per-statement; only the total is kept for the report.
        """
        self.total_aborted += 1

    def stats(self) -> dict:
        return {
            "size": len(self._entries),
            "capacity": self.capacity,
            "q_threshold": self.q_threshold,
            "consecutive_threshold": self.consecutive_threshold,
            "evictions": self.evictions,
            "breaches": self.total_breaches,
            "invalidations": self.total_invalidations,
            "aborted": self.total_aborted,
        }


# ---------------------------------------------------------------------------
# Statistics staleness
# ---------------------------------------------------------------------------

@dataclass
class TableStaleness:
    """Live-vs-ANALYZE-time cardinality drift for one table."""

    table: str
    analyzed: bool
    stats_rows: int
    live_rows: int
    #: ``|live - stats| / max(1, stats)`` — 0.0 means statistics match
    #: the heap exactly.
    staleness: float
    recommend_analyze: bool

    def to_dict(self) -> dict:
        return {
            "table": self.table,
            "analyzed": self.analyzed,
            "stats_rows": self.stats_rows,
            "live_rows": self.live_rows,
            "staleness": self.staleness,
            "recommend_analyze": self.recommend_analyze,
        }


def stats_staleness(catalog, storage,
                    threshold: float = 0.2) -> List[TableStaleness]:
    """Per-table staleness, worst first.

    A table earns a re-ANALYZE recommendation when it holds rows but was
    never analyzed, or when its live heap cardinality has drifted from
    the ANALYZE-time row count by more than ``threshold`` (fractional).
    """
    report: List[TableStaleness] = []
    for schema in catalog.tables():
        statistics = catalog.statistics(schema.name)
        live = storage.heap(schema.name).row_count
        known = statistics.row_count
        analyzed = statistics.analyzed
        if analyzed:
            staleness = abs(live - known) / max(1, known)
        else:
            # Unanalyzed statistics are all-default: fully stale as soon
            # as the table holds anything.
            staleness = 1.0 if live else 0.0
        report.append(TableStaleness(
            table=schema.name,
            analyzed=analyzed,
            stats_rows=known,
            live_rows=live,
            staleness=staleness,
            recommend_analyze=staleness > threshold,
        ))
    report.sort(key=lambda t: t.staleness, reverse=True)
    return report


# ---------------------------------------------------------------------------
# Report formatting
# ---------------------------------------------------------------------------

def format_plan_quality_report(payload: dict) -> str:
    """Render a :meth:`repro.database.Database.plan_quality_report`
    payload as plain text (same style as the other reports)."""
    ledger = payload["ledger"]
    lines = ["Plan quality", "=" * 12,
             f"statements recorded: {ledger['size']} "
             f"(threshold q > {ledger['q_threshold']:g}, "
             f"{ledger['consecutive_threshold']} consecutive breaches "
             f"invalidate)",
             f"breaches: {ledger['breaches']}   "
             f"plan invalidations: {ledger['invalidations']}"]
    worst = payload["worst_fingerprints"]
    lines.append("worst statements (by max q):"
                 if worst else "worst statements: (none recorded)")
    for entry in worst:
        sql = entry["sql"]
        if len(sql) > 60:
            sql = sql[:57] + "..."
        lines.append(
            f"  q={entry['max_q']:>8.2f} x{entry['executions']:<4} "
            f"{entry['worst_operator'] or '-':<12} {sql}")
    operators = payload["worst_operators"]
    if operators:
        lines.append("worst operators (by max q):")
        for op in operators:
            lines.append(
                f"  {op['operator']:<18} max q {op['max_q']:>8.2f}  "
                f"({op['breaches']}/{op['observations']} breaches)")
    lines.append("statistics staleness:")
    for table in payload["stats_staleness"]:
        flag = "  REANALYZE" if table["recommend_analyze"] else ""
        analyzed = "analyzed" if table["analyzed"] else "never analyzed"
        lines.append(
            f"  {table['table']:<16} stats {table['stats_rows']:>8} "
            f"live {table['live_rows']:>8}  "
            f"drift {100.0 * table['staleness']:>6.1f}%  "
            f"({analyzed}){flag}")
    recommended = payload["reanalyze_recommendations"]
    lines.append(f"re-ANALYZE recommended: "
                 f"{', '.join(recommended) if recommended else '(none)'}")
    return "\n".join(lines)
