"""Abstract syntax tree nodes produced by the parser.

The node set covers the SQL dialect the workloads use: SELECT blocks with
explicit and comma joins, subqueries (scalar / IN / EXISTS, correlated or
not), derived tables, non-recursive CTEs, aggregation with HAVING, window
functions, CASE, LIKE/BETWEEN/IN, set operations, ORDER BY and LIMIT.

Expression nodes double as the *resolved* representation: the resolver
annotates :class:`ColumnRef` nodes in place with the table-list entry they
bind to, mirroring how MySQL keeps enriching one tree through its phases
(Section 4.1: "the MySQL way is to continue making such gradual changes by
attaching more data structures to the AST").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.mysql_types import Interval


class Expr:
    """Base class for expression nodes."""

    def children(self) -> Sequence["Expr"]:
        return ()

    def walk(self):
        """Yield this node and every descendant expression, pre-order."""
        yield self
        for child in self.children():
            if child is not None:
                yield from child.walk()


@dataclass(eq=False)
class Literal(Expr):
    """A constant: number, string, date, boolean, or NULL."""

    value: object


@dataclass(eq=False)
class IntervalLiteral(Expr):
    """``INTERVAL 'n' DAY|MONTH|YEAR`` used in date arithmetic."""

    interval: Interval


@dataclass(eq=False)
class ColumnRef(Expr):
    """A possibly-qualified column reference.

    ``entry_id`` and ``position`` are filled by the resolver; ``entry_id``
    identifies the table-list entry (the paper's ``TABLE_LIST`` analog) the
    reference binds to.
    """

    table: Optional[str]
    column: str
    entry_id: Optional[int] = None
    position: Optional[int] = None

    @property
    def display(self) -> str:
        return f"{self.table}.{self.column}" if self.table else self.column


@dataclass(eq=False)
class Star(Expr):
    """``*`` or ``alias.*`` in a select list or COUNT(*)."""

    table: Optional[str] = None


class BinOp(enum.Enum):
    """Binary operators with SQL semantics."""

    ADD = "+"
    SUB = "-"
    MUL = "*"
    DIV = "/"
    MOD = "%"
    EQ = "="
    NE = "<>"
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    AND = "AND"
    OR = "OR"


COMPARISON_OPS = frozenset({BinOp.EQ, BinOp.NE, BinOp.LT, BinOp.LE,
                            BinOp.GT, BinOp.GE})
ARITHMETIC_OPS = frozenset({BinOp.ADD, BinOp.SUB, BinOp.MUL, BinOp.DIV,
                            BinOp.MOD})

#: op -> commuted op for comparisons (Section 5.3): a < b  <=>  b > a.
COMMUTED_COMPARISON = {
    BinOp.EQ: BinOp.EQ,
    BinOp.NE: BinOp.NE,
    BinOp.LT: BinOp.GT,
    BinOp.LE: BinOp.GE,
    BinOp.GT: BinOp.LT,
    BinOp.GE: BinOp.LE,
}

#: op -> inverse op (Section 5.3): NOT (a < b)  <=>  a >= b.
INVERSE_COMPARISON = {
    BinOp.EQ: BinOp.NE,
    BinOp.NE: BinOp.EQ,
    BinOp.LT: BinOp.GE,
    BinOp.LE: BinOp.GT,
    BinOp.GT: BinOp.LE,
    BinOp.GE: BinOp.LT,
}


@dataclass(eq=False)
class BinaryExpr(Expr):
    op: BinOp
    left: Expr
    right: Expr

    def children(self):
        return (self.left, self.right)


@dataclass(eq=False)
class NotExpr(Expr):
    operand: Expr

    def children(self):
        return (self.operand,)


@dataclass(eq=False)
class NegExpr(Expr):
    """Unary minus."""

    operand: Expr

    def children(self):
        return (self.operand,)


@dataclass(eq=False)
class IsNullExpr(Expr):
    operand: Expr
    negated: bool = False

    def children(self):
        return (self.operand,)


@dataclass(eq=False)
class BetweenExpr(Expr):
    operand: Expr
    low: Expr
    high: Expr
    negated: bool = False

    def children(self):
        return (self.operand, self.low, self.high)


@dataclass(eq=False)
class LikeExpr(Expr):
    operand: Expr
    pattern: Expr
    negated: bool = False

    def children(self):
        return (self.operand, self.pattern)


@dataclass(eq=False)
class InListExpr(Expr):
    operand: Expr
    items: List[Expr]
    negated: bool = False

    def children(self):
        return (self.operand, *self.items)


@dataclass(eq=False)
class InSubqueryExpr(Expr):
    operand: Expr
    subquery: "SelectStmt"
    negated: bool = False
    #: Filled by the resolver when the subquery is *not* converted to a
    #: semi-join and must be evaluated as an expression.
    block: object = None

    def children(self):
        return (self.operand,)


@dataclass(eq=False)
class ExistsExpr(Expr):
    subquery: "SelectStmt"
    negated: bool = False
    block: object = None


@dataclass(eq=False)
class ScalarSubquery(Expr):
    subquery: "SelectStmt"
    #: Filled by the resolver: the resolved block for the subquery.
    block: object = None


@dataclass(eq=False)
class FuncCall(Expr):
    """A regular (non-aggregate) SQL function: SUBSTRING, EXTRACT, etc."""

    name: str
    args: List[Expr]

    def children(self):
        return tuple(self.args)


class AggFunc(enum.Enum):
    """The six standard SQL aggregates the paper enumerates (Section 5.2)."""

    COUNT = "COUNT"
    SUM = "SUM"
    AVG = "AVG"
    MIN = "MIN"
    MAX = "MAX"
    STDDEV = "STDDEV"


@dataclass(eq=False)
class AggCall(Expr):
    """An aggregate function call.

    ``star`` marks COUNT(*); ``distinct`` marks COUNT(DISTINCT expr) and
    friends.  The STAR/ANY pseudo type categories of Section 5.2 correspond
    to ``star=True`` and COUNT over any expression respectively.
    """

    func: AggFunc
    arg: Optional[Expr] = None
    distinct: bool = False
    star: bool = False

    def children(self):
        return (self.arg,) if self.arg is not None else ()


@dataclass(eq=False)
class CaseExpr(Expr):
    """Searched CASE: WHEN cond THEN value ... [ELSE value] END."""

    whens: List[Tuple[Expr, Expr]]
    else_value: Optional[Expr] = None

    def children(self):
        flat: List[Expr] = []
        for condition, value in self.whens:
            flat.append(condition)
            flat.append(value)
        if self.else_value is not None:
            flat.append(self.else_value)
        return tuple(flat)


@dataclass(eq=False)
class WindowCall(Expr):
    """``func(args) OVER (PARTITION BY ... ORDER BY ...)`` without frames."""

    func: str
    args: List[Expr]
    partition_by: List[Expr] = field(default_factory=list)
    order_by: List["OrderItem"] = field(default_factory=list)

    def children(self):
        flat = list(self.args) + list(self.partition_by)
        flat.extend(item.expr for item in self.order_by)
        return tuple(flat)


@dataclass(eq=False)
class GroupingCall(Expr):
    """``GROUPING(column)``.

    Orca does not support GROUPING functions; the paper implemented
    single-column versions only (Section 4.1), and so do we — the parser
    rejects multi-column GROUPING.
    """

    arg: Expr

    def children(self):
        return (self.arg,)


# ---------------------------------------------------------------------------
# Statement-level nodes
# ---------------------------------------------------------------------------

class JoinType(enum.Enum):
    INNER = "INNER"
    LEFT = "LEFT"
    CROSS = "CROSS"
    #: Produced by the prepare phase, never by the parser:
    SEMI = "SEMI"
    ANTI = "ANTI"


@dataclass(eq=False)
class TableRef:
    """Base class for items in the FROM clause."""


@dataclass(eq=False)
class BaseTableRef(TableRef):
    name: str
    alias: Optional[str] = None

    @property
    def effective_alias(self) -> str:
        return self.alias or self.name


@dataclass(eq=False)
class DerivedTableRef(TableRef):
    subquery: "SelectStmt"
    alias: str
    #: Explicit column list: (SELECT ...) AS d (c1, c2)
    column_names: Optional[List[str]] = None


@dataclass(eq=False)
class JoinRef(TableRef):
    left: TableRef
    right: TableRef
    join_type: JoinType
    condition: Optional[Expr] = None


@dataclass(eq=False)
class SelectItem:
    expr: Expr
    alias: Optional[str] = None


@dataclass(eq=False)
class OrderItem:
    expr: Expr
    descending: bool = False


class SetOp(enum.Enum):
    UNION = "UNION"
    UNION_ALL = "UNION ALL"


@dataclass(eq=False)
class CteDef:
    name: str
    subquery: "SelectStmt"
    column_names: Optional[List[str]] = None


@dataclass(eq=False)
class SelectStmt:
    """One SELECT statement (possibly with CTEs and set operations).

    ``set_ops`` chains further SELECTs combined with UNION [ALL]; ORDER BY
    and LIMIT on a set operation apply to the combined result.
    """

    items: List[SelectItem] = field(default_factory=list)
    from_tables: List[TableRef] = field(default_factory=list)
    where: Optional[Expr] = None
    group_by: List[Expr] = field(default_factory=list)
    having: Optional[Expr] = None
    order_by: List[OrderItem] = field(default_factory=list)
    limit: Optional[int] = None
    offset: Optional[int] = None
    distinct: bool = False
    ctes: List[CteDef] = field(default_factory=list)
    set_ops: List[Tuple[SetOp, "SelectStmt"]] = field(default_factory=list)

    def table_reference_count(self) -> int:
        """Count table references, the paper's query-complexity measure.

        "Query complexity is defined to be the total number of table
        references in a query" (Section 4.1) — base tables and CTE
        references anywhere in the statement, including subqueries.
        """
        count = 0
        stack: List[object] = [self]
        while stack:
            node = stack.pop()
            if isinstance(node, SelectStmt):
                stack.extend(node.from_tables)
                for cte in node.ctes:
                    stack.append(cte.subquery)
                for __, stmt in node.set_ops:
                    stack.append(stmt)
                for expr in _statement_expressions(node):
                    stack.append(expr)
            elif isinstance(node, JoinRef):
                stack.append(node.left)
                stack.append(node.right)
                if node.condition is not None:
                    stack.append(node.condition)
            elif isinstance(node, BaseTableRef):
                count += 1
            elif isinstance(node, DerivedTableRef):
                stack.append(node.subquery)
            elif isinstance(node, Expr):
                for sub in node.walk():
                    if isinstance(sub, (InSubqueryExpr, ExistsExpr,
                                        ScalarSubquery)):
                        stack.append(sub.subquery)
        return count


def _statement_expressions(stmt: SelectStmt) -> List[Expr]:
    """Every expression hanging off a statement (for tree walks)."""
    exprs: List[Expr] = [item.expr for item in stmt.items]
    if stmt.where is not None:
        exprs.append(stmt.where)
    exprs.extend(stmt.group_by)
    if stmt.having is not None:
        exprs.append(stmt.having)
    exprs.extend(item.expr for item in stmt.order_by)
    return exprs


# ---------------------------------------------------------------------------
# DML statements — never routed to Orca (Section 4.1: "INSERT, UPDATE, and
# DELETE statements ... are not sent").
# ---------------------------------------------------------------------------

@dataclass(eq=False)
class InsertStmt:
    """``INSERT INTO t [(cols)] VALUES (...), (...)``."""

    table: str
    column_names: Optional[List[str]]
    rows: List[List[Expr]]


@dataclass(eq=False)
class DeleteStmt:
    """``DELETE FROM t [WHERE ...]``."""

    table: str
    where: Optional[Expr] = None


@dataclass(eq=False)
class UpdateStmt:
    """``UPDATE t SET col = expr [, ...] [WHERE ...]``."""

    table: str
    assignments: List[Tuple[str, Expr]] = field(default_factory=list)
    where: Optional[Expr] = None


def conjuncts_of(expr: Optional[Expr]) -> List[Expr]:
    """Flatten a predicate into its top-level AND-ed conjuncts."""
    if expr is None:
        return []
    if isinstance(expr, BinaryExpr) and expr.op is BinOp.AND:
        return conjuncts_of(expr.left) + conjuncts_of(expr.right)
    return [expr]


def make_conjunction(conjuncts: Sequence[Expr]) -> Optional[Expr]:
    """Rebuild a predicate from conjuncts; None for an empty list."""
    result: Optional[Expr] = None
    for conjunct in conjuncts:
        if result is None:
            result = conjunct
        else:
            result = BinaryExpr(BinOp.AND, result, conjunct)
    return result


def disjuncts_of(expr: Optional[Expr]) -> List[Expr]:
    """Flatten a predicate into its top-level OR-ed disjuncts."""
    if expr is None:
        return []
    if isinstance(expr, BinaryExpr) and expr.op is BinOp.OR:
        return disjuncts_of(expr.left) + disjuncts_of(expr.right)
    return [expr]


def make_disjunction(disjuncts: Sequence[Expr]) -> Optional[Expr]:
    result: Optional[Expr] = None
    for disjunct in disjuncts:
        if result is None:
            result = disjunct
        else:
            result = BinaryExpr(BinOp.OR, result, disjunct)
    return result
