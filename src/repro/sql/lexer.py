"""A hand-written SQL lexer.

Produces a flat token list the recursive-descent parser consumes.  Keywords
are case-insensitive; identifiers keep their original case but compare
case-insensitively downstream (MySQL's default on most platforms).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

from repro.errors import LexerError


class TokenType(enum.Enum):
    KEYWORD = "KEYWORD"
    IDENT = "IDENT"
    NUMBER = "NUMBER"
    STRING = "STRING"
    OPERATOR = "OPERATOR"
    PUNCT = "PUNCT"
    EOF = "EOF"


KEYWORDS = frozenset("""
    SELECT FROM WHERE GROUP BY HAVING ORDER LIMIT OFFSET AS ON AND OR NOT
    JOIN INNER LEFT RIGHT FULL OUTER CROSS IN EXISTS BETWEEN LIKE IS NULL
    DISTINCT CASE WHEN THEN ELSE END UNION ALL INTERSECT EXCEPT WITH ASC
    DESC DATE INTERVAL DAY MONTH YEAR CAST EXTRACT TRUE FALSE OVER PARTITION
    ROWS SEMI ANTI GROUPING RECURSIVE
""".split())

_OPERATORS = ("<=", ">=", "<>", "!=", "=", "<", ">", "+", "-", "*", "/", "%",
              "||")
_PUNCT = "(),."


@dataclass
class Token:
    type: TokenType
    value: str
    position: int

    def is_keyword(self, word: str) -> bool:
        return self.type is TokenType.KEYWORD and self.value == word

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.type.name}, {self.value!r})"


def tokenize(text: str) -> List[Token]:
    """Lex ``text`` into tokens, ending with a single EOF token."""
    tokens: List[Token] = []
    i = 0
    length = len(text)
    while i < length:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "-" and text.startswith("--", i):
            end = text.find("\n", i)
            i = length if end == -1 else end + 1
            continue
        if ch == "/" and text.startswith("/*", i):
            end = text.find("*/", i + 2)
            if end == -1:
                raise LexerError("unterminated comment", i)
            i = end + 2
            continue
        if ch == "'":
            value, i = _lex_string(text, i)
            tokens.append(Token(TokenType.STRING, value, i))
            continue
        if ch.isdigit() or (ch == "." and i + 1 < length
                            and text[i + 1].isdigit()):
            start = i
            i += 1
            while i < length and (text[i].isdigit() or text[i] == "."):
                i += 1
            if i < length and text[i] in "eE":
                i += 1
                if i < length and text[i] in "+-":
                    i += 1
                while i < length and text[i].isdigit():
                    i += 1
            tokens.append(Token(TokenType.NUMBER, text[start:i], start))
            continue
        if ch.isalpha() or ch == "_":
            start = i
            i += 1
            while i < length and (text[i].isalnum() or text[i] == "_"):
                i += 1
            word = text[start:i]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, upper, start))
            else:
                tokens.append(Token(TokenType.IDENT, word, start))
            continue
        if ch == "`" or ch == '"':
            quote = ch
            end = text.find(quote, i + 1)
            if end == -1:
                raise LexerError("unterminated quoted identifier", i)
            tokens.append(Token(TokenType.IDENT, text[i + 1:end], i))
            i = end + 1
            continue
        matched = _match_operator(text, i)
        if matched is not None:
            tokens.append(Token(TokenType.OPERATOR, matched, i))
            i += len(matched)
            continue
        if ch in _PUNCT:
            tokens.append(Token(TokenType.PUNCT, ch, i))
            i += 1
            continue
        if ch == ";":
            i += 1
            continue
        raise LexerError(f"unexpected character {ch!r}", i)
    tokens.append(Token(TokenType.EOF, "", length))
    return tokens


def _lex_string(text: str, start: int):
    """Lex a single-quoted string with '' as the escaped quote."""
    i = start + 1
    parts: List[str] = []
    while i < len(text):
        ch = text[i]
        if ch == "'":
            if i + 1 < len(text) and text[i + 1] == "'":
                parts.append("'")
                i += 2
                continue
            return "".join(parts), i + 1
        parts.append(ch)
        i += 1
    raise LexerError("unterminated string literal", start)


def _match_operator(text: str, i: int) -> Optional[str]:
    for operator in _OPERATORS:
        if text.startswith(operator, i):
            return operator
    return None
