"""The MySQL prepare phase: logical rewrites on resolved query blocks.

Implements the transformations Section 2.2 lists for MySQL's Prepare
phase:

* constant folding (including ``DATE '...' + INTERVAL`` arithmetic),
* conversion of IN / EXISTS subqueries into semi-joins and NOT IN /
  NOT EXISTS into anti-joins (nullability permitting — Section 4.1),
* merging of simple derived tables into their parent block,
* simplification of LEFT OUTER joins to inner joins when a WHERE conjunct
  rejects NULLs of the inner side, and
* predicate pushdown into non-merged derived tables, including below
  GROUP BY when the predicate only uses grouping columns (the capability
  MySQL has for derived tables but *not* for subqueries — weakness (5) in
  the introduction).

The deliberate *non*-transformations matter just as much for reproducing
the paper: no OR refactoring (weakness 3), no aggregation pushdown
(weakness 4), and no CTE predicate pushdown (Section 7, lesson 3) — those
are Orca capabilities exercised on the Orca path only.
"""

from __future__ import annotations

import datetime
from typing import List, Optional, Set, Tuple

from repro.mysql_types import Interval
from repro.sql import ast
from repro.sql.blocks import (
    EntryKind,
    NestKind,
    QueryBlock,
    SemiJoinNest,
    TableEntry,
    referenced_entries,
)
from repro.sql.rewrite import map_expr, substitute_entry_columns


def prepare(block: QueryBlock) -> QueryBlock:
    """Apply all prepare-phase rewrites to a block tree, bottom-up."""
    for sub in _direct_sub_blocks(block):
        prepare(sub)
    _fold_constants(block)
    _convert_subqueries_to_semijoins(block)
    _merge_derived_tables(block)
    _simplify_outer_joins(block)
    _push_predicates_into_derived(block)
    return block


def _direct_sub_blocks(block: QueryBlock) -> List[QueryBlock]:
    subs: List[QueryBlock] = []
    for binding in block.cte_bindings:
        subs.append(binding.block)
    for entry in block.entries:
        if entry.kind is EntryKind.DERIVED and entry.sub_block is not None:
            subs.append(entry.sub_block)
    subs.extend(block.all_subquery_blocks())
    for __, side in block.set_ops:
        subs.append(side)
    return subs


# ---------------------------------------------------------------------------
# Constant folding
# ---------------------------------------------------------------------------

def _fold_constants(block: QueryBlock) -> None:
    def fold(expr: ast.Expr) -> Optional[ast.Expr]:
        if isinstance(expr, ast.BinaryExpr):
            left, right = expr.left, expr.right
            if isinstance(left, ast.Literal) and \
                    isinstance(right, ast.IntervalLiteral):
                return _fold_date_interval(left, right.interval, expr.op)
            if isinstance(left, ast.Literal) and isinstance(right, ast.Literal) \
                    and expr.op in ast.ARITHMETIC_OPS:
                return _fold_arithmetic(expr.op, left.value, right.value)
        if isinstance(expr, ast.FuncCall) and expr.name.startswith("CAST_") \
                and len(expr.args) == 1 and isinstance(expr.args[0],
                                                       ast.Literal):
            return _fold_cast(expr.name[5:], expr.args[0].value)
        return None

    _rewrite_block_expressions(block, fold)


def _fold_date_interval(literal: ast.Literal, interval: Interval,
                        op: ast.BinOp) -> Optional[ast.Expr]:
    if not isinstance(literal.value, datetime.date):
        return None
    if op is ast.BinOp.ADD:
        return ast.Literal(interval.add_to(literal.value))
    if op is ast.BinOp.SUB:
        return ast.Literal(interval.negate().add_to(literal.value))
    return None


def _fold_arithmetic(op: ast.BinOp, left, right) -> Optional[ast.Expr]:
    if left is None or right is None:
        return ast.Literal(None)
    try:
        if op is ast.BinOp.ADD:
            return ast.Literal(left + right)
        if op is ast.BinOp.SUB:
            return ast.Literal(left - right)
        if op is ast.BinOp.MUL:
            return ast.Literal(left * right)
        if op is ast.BinOp.DIV:
            return ast.Literal(None) if right == 0 else \
                ast.Literal(left / right)
        if op is ast.BinOp.MOD:
            return ast.Literal(None) if right == 0 else \
                ast.Literal(left % right)
    except TypeError:
        return None
    return None


def _fold_cast(target: str, value) -> Optional[ast.Expr]:
    if value is None:
        return ast.Literal(None)
    try:
        if target == "DATE":
            if isinstance(value, datetime.datetime):
                return ast.Literal(value.date())
            if isinstance(value, datetime.date):
                return ast.Literal(value)
            return ast.Literal(datetime.date.fromisoformat(str(value)))
        if target in ("SIGNED", "UNSIGNED", "INTEGER", "INT"):
            return ast.Literal(int(value))
        if target in ("DOUBLE", "FLOAT", "DECIMAL"):
            return ast.Literal(float(value))
        if target in ("CHAR", "VARCHAR"):
            return ast.Literal(str(value))
    except (ValueError, TypeError):
        return None
    return None


def _rewrite_block_expressions(block: QueryBlock, fn) -> None:
    block.where_conjuncts = [map_expr(c, fn) for c in block.where_conjuncts]
    block.select_items = [ast.SelectItem(map_expr(item.expr, fn), item.alias)
                          for item in block.select_items]
    block.group_by = [map_expr(g, fn) for g in block.group_by]
    block.having_conjuncts = [map_expr(c, fn)
                              for c in block.having_conjuncts]
    block.order_by = [ast.OrderItem(map_expr(o.expr, fn), o.descending)
                      for o in block.order_by]
    for entry in block.entries:
        if entry.outer_join_conjuncts is not None:
            entry.outer_join_conjuncts = [
                map_expr(c, fn) for c in entry.outer_join_conjuncts]
    # Window specs reference the (possibly rebuilt) select items; refresh.
    _refresh_windows(block)


def _refresh_windows(block: QueryBlock) -> None:
    if not block.windows:
        return
    from repro.sql.blocks import WindowSpec

    block.windows = []
    slot = 0
    for item in block.select_items:
        for node in item.expr.walk():
            if isinstance(node, ast.WindowCall):
                block.windows.append(WindowSpec(node, slot))
                slot += 1


# ---------------------------------------------------------------------------
# IN / EXISTS -> semi-join conversion
# ---------------------------------------------------------------------------

def _convert_subqueries_to_semijoins(block: QueryBlock) -> None:
    new_pool: List[ast.Expr] = []
    for conjunct in block.where_conjuncts:
        added = _try_semijoin_conversion(block, conjunct)
        if added is None:
            new_pool.append(conjunct)
        else:
            new_pool.extend(added)
    block.where_conjuncts = new_pool


def _try_semijoin_conversion(block: QueryBlock, conjunct: ast.Expr
                             ) -> Optional[List[ast.Expr]]:
    """Convert one conjunct to a semi/anti join; None when not eligible."""
    kind: Optional[NestKind] = None
    expr = conjunct
    if isinstance(expr, ast.NotExpr):
        inner = expr.operand
        if isinstance(inner, (ast.InSubqueryExpr, ast.ExistsExpr)):
            kind = NestKind.ANTI
            expr = inner
    if isinstance(expr, (ast.InSubqueryExpr, ast.ExistsExpr)):
        if kind is None:
            kind = NestKind.ANTI if expr.negated else NestKind.SEMI
        elif expr.negated:
            kind = NestKind.SEMI  # NOT (x NOT IN ...) double negation
    else:
        return None

    sub = expr.block
    if not isinstance(sub, QueryBlock) or not _semijoin_eligible(sub):
        return None

    equality: Optional[ast.Expr] = None
    if isinstance(expr, ast.InSubqueryExpr):
        if len(sub.select_items) != 1:
            return None
        item_expr = sub.select_items[0].expr
        if kind is NestKind.ANTI:
            # NOT IN is only anti-join convertible when neither side can be
            # NULL — "depending on column nullability" (Section 4.1).
            if _maybe_nullable(expr.operand) or _maybe_nullable(item_expr):
                return None
        equality = ast.BinaryExpr(ast.BinOp.EQ, expr.operand, item_expr)

    nest = SemiJoinNest(block.context.new_nest_id(), kind,
                        [entry.entry_id for entry in sub.entries])
    for entry in sub.entries:
        entry.block = block
        entry.semijoin_nest = nest.nest_id
        block.entries.append(entry)
    block.semijoin_nests.append(nest)

    # Correlated references of the subquery that point beyond this block
    # stay outer references of this block.
    local_ids = {entry.entry_id for entry in block.entries}
    for ref_id in sub.outer_references:
        if ref_id not in local_ids and ref_id not in block.outer_references:
            block.outer_references.append(ref_id)

    added = list(sub.where_conjuncts)
    if equality is not None:
        added.append(equality)
    return added


def _semijoin_eligible(sub: QueryBlock) -> bool:
    return (not sub.aggregated
            and not sub.windows
            and sub.limit is None
            and sub.offset is None
            and not sub.set_ops
            and not sub.cte_bindings
            and not sub.semijoin_nests
            and bool(sub.entries)
            and not any(entry.is_outer_joined for entry in sub.entries)
            and not any(entry.kind is not EntryKind.BASE
                        for entry in sub.entries))


def _maybe_nullable(expr: ast.Expr) -> bool:
    for node in expr.walk():
        if isinstance(node, ast.ColumnRef):
            if getattr(node, "resolved_nullable", True):
                return True
        elif isinstance(node, ast.Literal):
            if node.value is None:
                return True
        elif isinstance(node, (ast.AggCall, ast.ScalarSubquery,
                               ast.CaseExpr)):
            return True
    return False


# ---------------------------------------------------------------------------
# Derived table merge
# ---------------------------------------------------------------------------

def _merge_derived_tables(block: QueryBlock) -> None:
    for entry in list(block.entries):
        if entry.kind is not EntryKind.DERIVED:
            continue
        if entry.is_outer_joined:
            continue
        sub = entry.sub_block
        if sub is None or not _merge_eligible(sub):
            continue
        if _referenced_by_sub_blocks(block, entry.entry_id):
            continue
        _merge_one_derived(block, entry, sub)


def _merge_eligible(sub: QueryBlock) -> bool:
    return (not sub.aggregated
            and not sub.windows
            and sub.limit is None
            and sub.offset is None
            and not sub.distinct
            and not sub.set_ops
            and not sub.cte_bindings
            and not sub.semijoin_nests
            and not sub.is_correlated
            and bool(sub.entries))


def _referenced_by_sub_blocks(block: QueryBlock, entry_id: int) -> bool:
    """Whether any subquery block (at any depth) references ``entry_id``."""
    pending = block.all_subquery_blocks()
    seen: Set[int] = set()
    while pending:
        sub = pending.pop()
        if sub.block_id in seen:
            continue
        seen.add(sub.block_id)
        if entry_id in sub.outer_references:
            return True
        pending.extend(sub.all_subquery_blocks())
        for entry in sub.entries:
            if entry.sub_block is not None:
                pending.append(entry.sub_block)
    return False


def _merge_one_derived(block: QueryBlock, entry: TableEntry,
                       sub: QueryBlock) -> None:
    replacements = [item.expr for item in sub.select_items]

    def fn(node: ast.Expr) -> Optional[ast.Expr]:
        if isinstance(node, ast.ColumnRef) and node.entry_id == entry.entry_id:
            return replacements[node.position]
        return None

    _rewrite_block_expressions(block, fn)

    position = block.entries.index(entry)
    for offset, sub_entry in enumerate(sub.entries):
        sub_entry.block = block
        block.entries.insert(position + offset, sub_entry)
    block.entries.remove(entry)
    block.where_conjuncts.extend(sub.where_conjuncts)

    local_ids = {e.entry_id for e in block.entries}
    for ref_id in sub.outer_references:
        if ref_id not in local_ids and ref_id not in block.outer_references:
            block.outer_references.append(ref_id)
    if entry.entry_id in block.outer_references:
        block.outer_references.remove(entry.entry_id)


# ---------------------------------------------------------------------------
# Outer join simplification
# ---------------------------------------------------------------------------

def _simplify_outer_joins(block: QueryBlock) -> None:
    for entry in block.entries:
        if not entry.is_outer_joined:
            continue
        if any(_null_rejects(conjunct, entry.entry_id)
               for conjunct in block.where_conjuncts):
            block.where_conjuncts.extend(entry.outer_join_conjuncts or [])
            entry.outer_join_conjuncts = None


def _null_rejects(conjunct: ast.Expr, entry_id: int) -> bool:
    """Whether the conjunct filters out rows where the entry is all-NULL."""
    if entry_id not in referenced_entries(conjunct):
        return False
    if isinstance(conjunct, ast.BinaryExpr) and \
            conjunct.op in ast.COMPARISON_OPS:
        return True
    if isinstance(conjunct, ast.IsNullExpr):
        return conjunct.negated
    if isinstance(conjunct, (ast.BetweenExpr, ast.LikeExpr, ast.InListExpr)):
        return not conjunct.negated
    return False


# ---------------------------------------------------------------------------
# Predicate pushdown into derived tables
# ---------------------------------------------------------------------------

def _push_predicates_into_derived(block: QueryBlock) -> None:
    derived_entries = {entry.entry_id: entry for entry in block.entries
                       if entry.kind is EntryKind.DERIVED
                       and not entry.is_outer_joined
                       and entry.sub_block is not None}
    if not derived_entries:
        return
    remaining: List[ast.Expr] = []
    for conjunct in block.where_conjuncts:
        refs = referenced_entries(conjunct)
        if len(refs) == 1:
            (entry_id,) = refs
            entry = derived_entries.get(entry_id)
            if entry is not None and _pushdown_allowed(conjunct, entry):
                sub = entry.sub_block
                pushed = substitute_entry_columns(
                    conjunct, entry_id,
                    [item.expr for item in sub.select_items])
                sub.where_conjuncts.append(pushed)
                continue
        remaining.append(conjunct)
    block.where_conjuncts = remaining


def _pushdown_allowed(conjunct: ast.Expr, entry: TableEntry) -> bool:
    sub = entry.sub_block
    if sub.limit is not None or sub.offset is not None or sub.windows \
            or sub.set_ops:
        return False
    positions = [node.position for node in conjunct.walk()
                 if isinstance(node, ast.ColumnRef)
                 and node.entry_id == entry.entry_id]
    if not sub.aggregated:
        return True
    # Below GROUP BY only when every referenced output column is a
    # grouping column (Section 7, lesson 6 describes the HAVING analog).
    group_exprs = {id(g) for g in sub.group_by}
    for position in positions:
        item_expr = sub.select_items[position].expr
        if not _is_grouping_column(item_expr, sub):
            return False
    return True


def _is_grouping_column(expr: ast.Expr, sub: QueryBlock) -> bool:
    if not isinstance(expr, ast.ColumnRef):
        return False
    for group in sub.group_by:
        if isinstance(group, ast.ColumnRef) and \
                group.entry_id == expr.entry_id and \
                group.position == expr.position:
            return True
    return False
