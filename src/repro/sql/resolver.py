"""Name resolution: parse trees to resolved query blocks.

The resolver performs what MySQL's Parser/Resolver layers do (Section 2.2):
it binds every column reference to a table-list entry, expands ``*``,
resolves select aliases in GROUP BY / HAVING / ORDER BY, builds the
table-list entries with back-pointers to their containing block, and
resolves subqueries and CTEs into sub-blocks.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.catalog.catalog import Catalog
from repro.errors import ResolutionError, UnsupportedSqlError
from repro.mysql_types import TypeInstance
from repro.sql import ast
from repro.sql.blocks import (
    CteBinding,
    EntryKind,
    OutputColumn,
    QueryBlock,
    StatementContext,
    TableEntry,
    WindowSpec,
)


class _Scope:
    """Visible table entries during resolution, linked to outer scopes."""

    def __init__(self, block: QueryBlock,
                 parent: Optional["_Scope"] = None) -> None:
        self.block = block
        self.parent = parent
        self._by_alias: Dict[str, TableEntry] = {}

    def add(self, entry: TableEntry) -> None:
        key = entry.alias.lower()
        if key in self._by_alias:
            raise ResolutionError(f"duplicate table alias {entry.alias!r}")
        self._by_alias[key] = entry

    def entries(self) -> List[TableEntry]:
        return list(self._by_alias.values())

    def find(self, table: Optional[str], column: str
             ) -> Tuple[TableEntry, int, bool]:
        """Locate a column; returns (entry, position, is_outer_reference)."""
        scope: Optional[_Scope] = self
        outer = False
        while scope is not None:
            found = scope._find_local(table, column)
            if found is not None:
                return found[0], found[1], outer
            scope = scope.parent
            outer = True
        where = f"{table}.{column}" if table else column
        raise ResolutionError(f"unknown column {where!r}")

    def _find_local(self, table: Optional[str], column: str
                    ) -> Optional[Tuple[TableEntry, int]]:
        if table is not None:
            entry = self._by_alias.get(table.lower())
            if entry is None:
                return None
            position = entry.column_position(column)
            if position is None:
                raise ResolutionError(
                    f"unknown column {column!r} in table {entry.alias!r}")
            return entry, position
        matches: List[Tuple[TableEntry, int]] = []
        for entry in self._by_alias.values():
            position = entry.column_position(column)
            if position is not None:
                matches.append((entry, position))
        if not matches:
            return None
        if len(matches) > 1:
            raise ResolutionError(f"ambiguous column {column!r}")
        return matches[0]


class Resolver:
    """Resolves a parsed statement against a catalog."""

    def __init__(self, catalog: Catalog) -> None:
        self.catalog = catalog

    def resolve(self, stmt: ast.SelectStmt
                ) -> Tuple[QueryBlock, StatementContext]:
        """Resolve a statement; returns (top block, statement context)."""
        context = StatementContext()
        block = self._resolve_stmt(stmt, context, parent_scope=None,
                                   cte_env={})
        return block, context

    # -- statements ------------------------------------------------------------

    def _resolve_stmt(self, stmt: ast.SelectStmt, context: StatementContext,
                      parent_scope: Optional[_Scope],
                      cte_env: Dict[str, CteBinding]) -> QueryBlock:
        block = context.new_block()
        if parent_scope is not None:
            block.parent = parent_scope.block

        visible_ctes = dict(cte_env)
        for cte in stmt.ctes:
            binding = self._resolve_cte(cte, context, visible_ctes)
            visible_ctes[cte.name.lower()] = binding
            block.cte_bindings.append(binding)

        scope = _Scope(block, parent_scope)
        for table_ref in stmt.from_tables:
            self._add_table_ref(table_ref, block, scope, visible_ctes)

        if stmt.where is not None:
            where = self._resolve_expr(stmt.where, scope, context,
                                       visible_ctes)
            # Extend, not assign: inner-join ON conditions were already
            # pooled here while resolving the FROM clause.
            block.where_conjuncts.extend(ast.conjuncts_of(where))

        block.select_items = self._resolve_select_items(
            stmt.items, scope, context, visible_ctes)

        alias_map = {item.alias.lower(): item.expr
                     for item in block.select_items if item.alias}

        for expr in stmt.group_by:
            block.group_by.append(self._resolve_expr(
                expr, scope, context, visible_ctes, alias_map=alias_map))
        if stmt.having is not None:
            having = self._resolve_expr(stmt.having, scope, context,
                                        visible_ctes, alias_map=alias_map)
            block.having_conjuncts = ast.conjuncts_of(having)
        for order in stmt.order_by:
            resolved = self._resolve_expr(order.expr, scope, context,
                                          visible_ctes, alias_map=alias_map,
                                          prefer_alias=True)
            block.order_by.append(ast.OrderItem(resolved, order.descending))

        block.limit = stmt.limit
        block.offset = stmt.offset
        block.distinct = stmt.distinct

        for op, side in stmt.set_ops:
            side_block = self._resolve_stmt(side, context, parent_scope=None,
                                            cte_env=visible_ctes)
            if len(side_block.select_items) != len(block.select_items):
                raise ResolutionError(
                    "UNION sides must have the same number of columns")
            block.set_ops.append((op, side_block))

        self._collect_windows(block)
        return block

    def _resolve_cte(self, cte: ast.CteDef, context: StatementContext,
                     cte_env: Dict[str, CteBinding]) -> CteBinding:
        sub_block = self._resolve_stmt(cte.subquery, context,
                                       parent_scope=None, cte_env=cte_env)
        columns = sub_block.output_columns()
        if cte.column_names is not None:
            if len(cte.column_names) != len(columns):
                raise ResolutionError(
                    f"CTE {cte.name!r} column list does not match its query")
            columns = [OutputColumn(name, column.type, column.nullable)
                       for name, column in zip(cte.column_names, columns)]
        return CteBinding(context.new_cte_id(), cte.name, sub_block, columns)

    # -- FROM clause ------------------------------------------------------------

    def _add_table_ref(self, ref: ast.TableRef, block: QueryBlock,
                       scope: _Scope, cte_env: Dict[str, CteBinding],
                       outer_joined: bool = False) -> TableEntry:
        if isinstance(ref, ast.BaseTableRef):
            return self._add_base_table(ref, block, scope, cte_env,
                                        outer_joined)
        if isinstance(ref, ast.DerivedTableRef):
            return self._add_derived_table(ref, block, scope, cte_env,
                                           outer_joined)
        if isinstance(ref, ast.JoinRef):
            return self._add_join(ref, block, scope, cte_env)
        raise ResolutionError(f"unsupported FROM item {ref!r}")

    def _add_base_table(self, ref: ast.BaseTableRef, block: QueryBlock,
                        scope: _Scope, cte_env: Dict[str, CteBinding],
                        outer_joined: bool) -> TableEntry:
        binding = cte_env.get(ref.name.lower())
        if binding is not None:
            entry = block.context.new_entry(EntryKind.CTE, binding.name,
                                            ref.effective_alias, block)
            entry.cte = binding
            entry.sub_block = binding.block
            entry.set_columns([
                OutputColumn(col.name, col.type, True if outer_joined
                             else col.nullable)
                for col in binding.columns])
        else:
            schema = self.catalog.table(ref.name)
            entry = block.context.new_entry(EntryKind.BASE, schema.name,
                                            ref.effective_alias, block)
            entry.table_schema = schema
            entry.set_columns([
                OutputColumn(column.name, column.type,
                             True if outer_joined else column.nullable)
                for column in schema.columns])
        block.entries.append(entry)
        scope.add(entry)
        return entry

    def _add_derived_table(self, ref: ast.DerivedTableRef, block: QueryBlock,
                           scope: _Scope, cte_env: Dict[str, CteBinding],
                           outer_joined: bool) -> TableEntry:
        sub_block = self._resolve_stmt(ref.subquery, block.context,
                                       parent_scope=None, cte_env=cte_env)
        entry = block.context.new_entry(EntryKind.DERIVED, ref.alias,
                                        ref.alias, block)
        entry.sub_block = sub_block
        columns = sub_block.output_columns()
        if ref.column_names is not None:
            if len(ref.column_names) != len(columns):
                raise ResolutionError(
                    f"derived table {ref.alias!r} column list mismatch")
            columns = [OutputColumn(name, column.type, column.nullable)
                       for name, column in zip(ref.column_names, columns)]
        if outer_joined:
            columns = [OutputColumn(c.name, c.type, True) for c in columns]
        entry.set_columns(columns)
        block.entries.append(entry)
        scope.add(entry)
        return entry

    def _add_join(self, ref: ast.JoinRef, block: QueryBlock, scope: _Scope,
                  cte_env: Dict[str, CteBinding]) -> TableEntry:
        self._add_table_ref(ref.left, block, scope, cte_env)
        if ref.join_type is ast.JoinType.LEFT:
            if isinstance(ref.right, ast.JoinRef):
                raise UnsupportedSqlError(
                    "LEFT JOIN with a join nest on the inner side "
                    "is not supported")
            entry = self._add_table_ref(ref.right, block, scope, cte_env,
                                        outer_joined=True)
            condition = self._resolve_expr(ref.condition, scope,
                                           block.context, cte_env)
            entry.outer_join_conjuncts = ast.conjuncts_of(condition)
            return entry
        entry = self._add_table_ref(ref.right, block, scope, cte_env)
        if ref.condition is not None:
            condition = self._resolve_expr(ref.condition, scope,
                                           block.context, cte_env)
            # MySQL pools inner-join ON conditions into the WHERE clause
            # during prepare (visible in the paper's Listing 3).
            block.where_conjuncts.extend(ast.conjuncts_of(condition))
        return entry

    # -- select items -------------------------------------------------------------

    def _resolve_select_items(self, items: List[ast.SelectItem],
                              scope: _Scope, context: StatementContext,
                              cte_env: Dict[str, CteBinding]
                              ) -> List[ast.SelectItem]:
        resolved: List[ast.SelectItem] = []
        for item in items:
            if isinstance(item.expr, ast.Star):
                resolved.extend(self._expand_star(item.expr, scope))
                continue
            expr = self._resolve_expr(item.expr, scope, context, cte_env)
            resolved.append(ast.SelectItem(expr, item.alias))
        return resolved

    def _expand_star(self, star: ast.Star,
                     scope: _Scope) -> List[ast.SelectItem]:
        entries = scope.entries()
        if star.table is not None:
            entries = [entry for entry in entries
                       if entry.alias.lower() == star.table.lower()]
            if not entries:
                raise ResolutionError(f"unknown table {star.table!r} in *")
        items: List[ast.SelectItem] = []
        for entry in entries:
            for position, column in enumerate(entry.columns):
                ref = ast.ColumnRef(entry.alias, column.name,
                                    entry.entry_id, position)
                ref.resolved_type = column.type
                items.append(ast.SelectItem(ref, None))
        return items

    # -- expressions ----------------------------------------------------------------

    def _resolve_expr(self, expr: ast.Expr, scope: _Scope,
                      context: StatementContext,
                      cte_env: Dict[str, CteBinding],
                      alias_map: Optional[Dict[str, ast.Expr]] = None,
                      prefer_alias: bool = False) -> ast.Expr:
        if isinstance(expr, ast.ColumnRef):
            return self._resolve_column(expr, scope, alias_map, prefer_alias)
        if isinstance(expr, ast.ScalarSubquery):
            expr.block = self._resolve_stmt(expr.subquery, context,
                                            parent_scope=scope,
                                            cte_env=cte_env)
            return expr
        if isinstance(expr, ast.InSubqueryExpr):
            expr.operand = self._resolve_expr(expr.operand, scope, context,
                                              cte_env, alias_map)
            expr.block = self._resolve_stmt(expr.subquery, context,
                                            parent_scope=scope,
                                            cte_env=cte_env)
            return expr
        if isinstance(expr, ast.ExistsExpr):
            expr.block = self._resolve_stmt(expr.subquery, context,
                                            parent_scope=scope,
                                            cte_env=cte_env)
            return expr
        # Generic recursion over child expressions, rebuilding in place.
        self._resolve_children(expr, scope, context, cte_env, alias_map)
        return expr

    def _resolve_children(self, expr: ast.Expr, scope: _Scope,
                          context: StatementContext,
                          cte_env: Dict[str, CteBinding],
                          alias_map: Optional[Dict[str, ast.Expr]]) -> None:
        def fix(child: ast.Expr) -> ast.Expr:
            return self._resolve_expr(child, scope, context, cte_env,
                                      alias_map)

        if isinstance(expr, ast.BinaryExpr):
            expr.left = fix(expr.left)
            expr.right = fix(expr.right)
        elif isinstance(expr, (ast.NotExpr, ast.NegExpr)):
            expr.operand = fix(expr.operand)
        elif isinstance(expr, ast.IsNullExpr):
            expr.operand = fix(expr.operand)
        elif isinstance(expr, ast.BetweenExpr):
            expr.operand = fix(expr.operand)
            expr.low = fix(expr.low)
            expr.high = fix(expr.high)
        elif isinstance(expr, ast.LikeExpr):
            expr.operand = fix(expr.operand)
            expr.pattern = fix(expr.pattern)
        elif isinstance(expr, ast.InListExpr):
            expr.operand = fix(expr.operand)
            expr.items = [fix(item) for item in expr.items]
        elif isinstance(expr, ast.FuncCall):
            expr.args = [fix(arg) for arg in expr.args]
        elif isinstance(expr, ast.AggCall):
            if expr.arg is not None:
                expr.arg = fix(expr.arg)
        elif isinstance(expr, ast.CaseExpr):
            expr.whens = [(fix(cond), fix(val)) for cond, val in expr.whens]
            if expr.else_value is not None:
                expr.else_value = fix(expr.else_value)
        elif isinstance(expr, ast.WindowCall):
            expr.args = [fix(arg) for arg in expr.args]
            expr.partition_by = [fix(part) for part in expr.partition_by]
            expr.order_by = [ast.OrderItem(fix(order.expr), order.descending)
                             for order in expr.order_by]
        elif isinstance(expr, ast.GroupingCall):
            expr.arg = fix(expr.arg)

    def _resolve_column(self, ref: ast.ColumnRef, scope: _Scope,
                        alias_map: Optional[Dict[str, ast.Expr]],
                        prefer_alias: bool) -> ast.Expr:
        if ref.entry_id is not None:
            return ref  # already resolved (shared alias expression)
        key = ref.column.lower()
        if prefer_alias and alias_map and ref.table is None \
                and key in alias_map:
            return alias_map[key]
        try:
            entry, position, outer = scope.find(ref.table, ref.column)
        except ResolutionError:
            if alias_map and ref.table is None and key in alias_map:
                return alias_map[key]
            raise
        ref.entry_id = entry.entry_id
        ref.position = position
        ref.resolved_type = entry.columns[position].type
        ref.resolved_nullable = entry.columns[position].nullable
        if outer:
            block = scope.block
            if entry.entry_id not in block.outer_references:
                block.outer_references.append(entry.entry_id)
        return ref

    # -- windows ----------------------------------------------------------------------

    def _collect_windows(self, block: QueryBlock) -> None:
        slot = 0
        for item in block.select_items:
            for node in item.expr.walk():
                if isinstance(node, ast.WindowCall):
                    block.windows.append(WindowSpec(node, slot))
                    slot += 1
