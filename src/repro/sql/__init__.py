"""SQL frontend: lexer, parser, resolver, and the MySQL prepare phase."""

from repro.sql.parser import parse_select, parse_statement
from repro.sql.resolver import Resolver
from repro.sql.prepare import prepare

__all__ = ["Resolver", "parse_select", "parse_statement", "prepare"]
