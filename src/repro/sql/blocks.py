"""Resolved query representation: table-list entries and query blocks.

:class:`TableEntry` is this reproduction's analog of MySQL's ``TABLE_LIST``
structure — the paper leans on it heavily: every leaf of an Orca plan
carries a ``TABLE_LIST`` pointer, and "each leaf node contains a TABLE_LIST
object which contains — among other things — a link to the leaf's
containing query block" (Section 4.2.1).  Here each entry has a global id,
a back-pointer to its containing :class:`QueryBlock`, and, for derived
tables and CTEs, a pointer to the sub-block that produces its rows.

A :class:`StatementContext` owns every block and entry of one statement;
entry ids index directly into the executor's runtime context array.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.catalog.schema import TableSchema
from repro.errors import ResolutionError
from repro.mysql_types import MySQLType, TypeInstance
from repro.sql import ast


class EntryKind(enum.Enum):
    BASE = "BASE"
    DERIVED = "DERIVED"
    CTE = "CTE"
    #: Plan-refinement pseudo entries: aggregation and window outputs.
    PSEUDO = "PSEUDO"


@dataclass
class OutputColumn:
    """One output column of a table entry."""

    name: str
    type: TypeInstance
    nullable: bool = True


@dataclass
class CteBinding:
    """A resolved WITH definition shared by all of its references.

    MySQL compiles one producer plan per consumer but executes only one
    (Section 4.2.3); the binding's id is what consumers share.
    """

    cte_id: int
    name: str
    block: "QueryBlock"
    columns: List[OutputColumn]


class TableEntry:
    """One table reference in a query block (the TABLE_LIST analog)."""

    def __init__(self, entry_id: int, kind: EntryKind, name: str, alias: str,
                 block: "QueryBlock") -> None:
        self.entry_id = entry_id
        self.kind = kind
        self.name = name
        self.alias = alias
        #: Back-pointer to the containing query block (Section 4.2.1).
        self.block = block
        self.table_schema: Optional[TableSchema] = None
        self.sub_block: Optional["QueryBlock"] = None
        self.cte: Optional[CteBinding] = None
        self.columns: List[OutputColumn] = []
        #: Index of the semi-join nest this entry belongs to, if any.
        self.semijoin_nest: Optional[int] = None
        #: Set when this entry is the inner side of a LEFT OUTER JOIN.
        self.outer_join_conjuncts: Optional[List[ast.Expr]] = None
        self._column_positions: Dict[str, int] = {}

    def set_columns(self, columns: Sequence[OutputColumn]) -> None:
        self.columns = list(columns)
        self._column_positions = {
            column.name.lower(): position
            for position, column in enumerate(self.columns)}

    def column_position(self, name: str) -> Optional[int]:
        return self._column_positions.get(name.lower())

    @property
    def is_outer_joined(self) -> bool:
        return self.outer_join_conjuncts is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TableEntry(#{self.entry_id} {self.alias} {self.kind.value})"


class NestKind(enum.Enum):
    SEMI = "SEMI"
    ANTI = "ANTI"


@dataclass
class SemiJoinNest:
    """A group of entries that came from an IN/EXISTS subquery.

    After the prepare phase converts a subquery to a semi-join, its tables
    live in the outer block but carry nest membership; the outer row
    qualifies on the first (semi) or no (anti) match of the nest's tables.
    """

    nest_id: int
    kind: NestKind
    entry_ids: List[int]


@dataclass
class WindowSpec:
    """A resolved window function occurrence within a block."""

    call: ast.WindowCall
    #: Output slot in the block's window pseudo-entry.
    slot: int = 0


class QueryBlock:
    """One resolved SELECT block.

    The WHERE clause is kept as a pool of conjuncts, as in MySQL after the
    prepare phase (Listing 3 of the paper shows exactly this shape: semi
    join in FROM, all conditions pooled in WHERE).
    """

    def __init__(self, block_id: int, context: "StatementContext") -> None:
        self.block_id = block_id
        self.context = context
        self.entries: List[TableEntry] = []
        self.where_conjuncts: List[ast.Expr] = []
        self.semijoin_nests: List[SemiJoinNest] = []
        self.select_items: List[ast.SelectItem] = []
        self.group_by: List[ast.Expr] = []
        self.having_conjuncts: List[ast.Expr] = []
        self.order_by: List[ast.OrderItem] = []
        self.limit: Optional[int] = None
        self.offset: Optional[int] = None
        self.distinct: bool = False
        self.windows: List[WindowSpec] = []
        #: Blocks combined with this one by UNION / UNION ALL.
        self.set_ops: List[Tuple[ast.SetOp, "QueryBlock"]] = []
        #: Entry ids of *outer* blocks referenced by correlated columns.
        self.outer_references: List[int] = []
        self.parent: Optional["QueryBlock"] = None
        #: Pseudo entry holding (group keys + aggregates) after aggregation.
        self.agg_entry: Optional[TableEntry] = None
        #: Pseudo entry holding window-function outputs.
        self.window_entry: Optional[TableEntry] = None
        self.cte_bindings: List[CteBinding] = []

    # -- structure helpers ------------------------------------------------------

    @property
    def aggregated(self) -> bool:
        if self.group_by:
            return True
        for item in self.select_items:
            if _contains_aggregate(item.expr):
                return True
        if any(_contains_aggregate(conjunct)
               for conjunct in self.having_conjuncts):
            return True
        return any(_contains_aggregate(order.expr) for order in self.order_by)

    @property
    def is_correlated(self) -> bool:
        return bool(self.outer_references)

    def entry(self, entry_id: int) -> TableEntry:
        return self.context.entry(entry_id)

    def local_entry_ids(self) -> List[int]:
        return [entry.entry_id for entry in self.entries]

    def nest(self, nest_id: int) -> SemiJoinNest:
        for nest in self.semijoin_nests:
            if nest.nest_id == nest_id:
                return nest
        raise ResolutionError(f"unknown semi-join nest {nest_id}")

    def output_columns(self) -> List[OutputColumn]:
        """Output schema of the block, derived from its select items."""
        columns = []
        for position, item in enumerate(self.select_items):
            name = item.alias or _default_column_name(item.expr, position)
            columns.append(OutputColumn(name, infer_type(item.expr)))
        return columns

    def all_subquery_blocks(self) -> List["QueryBlock"]:
        """Every block reachable through expressions of this block."""
        blocks: List[QueryBlock] = []
        for expr in self.all_expressions():
            for node in expr.walk():
                block = getattr(node, "block", None)
                if isinstance(block, QueryBlock):
                    blocks.append(block)
        return blocks

    def all_expressions(self) -> List[ast.Expr]:
        exprs: List[ast.Expr] = [item.expr for item in self.select_items]
        exprs.extend(self.where_conjuncts)
        exprs.extend(self.group_by)
        exprs.extend(self.having_conjuncts)
        exprs.extend(order.expr for order in self.order_by)
        for entry in self.entries:
            if entry.outer_join_conjuncts:
                exprs.extend(entry.outer_join_conjuncts)
        return exprs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tables = ", ".join(entry.alias for entry in self.entries)
        return f"QueryBlock(#{self.block_id}: {tables})"


class StatementContext:
    """Allocator and registry for every block/entry of one statement."""

    def __init__(self) -> None:
        self._entries: List[TableEntry] = []
        self._blocks: List[QueryBlock] = []
        self._cte_count = 0
        self._nest_count = 0

    def new_block(self) -> QueryBlock:
        block = QueryBlock(len(self._blocks), self)
        self._blocks.append(block)
        return block

    def new_entry(self, kind: EntryKind, name: str, alias: str,
                  block: QueryBlock) -> TableEntry:
        entry = TableEntry(len(self._entries), kind, name, alias, block)
        self._entries.append(entry)
        return entry

    def new_cte_id(self) -> int:
        self._cte_count += 1
        return self._cte_count - 1

    def new_nest_id(self) -> int:
        self._nest_count += 1
        return self._nest_count - 1

    def entry(self, entry_id: int) -> TableEntry:
        return self._entries[entry_id]

    @property
    def entry_count(self) -> int:
        return len(self._entries)

    @property
    def blocks(self) -> List[QueryBlock]:
        return list(self._blocks)


# ---------------------------------------------------------------------------
# Expression analysis helpers shared by both optimizers and the bridge
# ---------------------------------------------------------------------------

def _contains_aggregate(expr: ast.Expr) -> bool:
    return any(isinstance(node, ast.AggCall) for node in expr.walk())


def contains_aggregate(expr: ast.Expr) -> bool:
    """Public wrapper: whether an expression contains an aggregate call."""
    return _contains_aggregate(expr)


def contains_subquery(expr: ast.Expr) -> bool:
    return any(isinstance(node, (ast.ScalarSubquery, ast.InSubqueryExpr,
                                 ast.ExistsExpr))
               for node in expr.walk())


def referenced_entries(expr: ast.Expr) -> frozenset:
    """Entry ids referenced by an expression (excluding inside subqueries).

    Subquery expressions contribute their blocks' *outer* references, since
    those are the bindings that matter for predicate placement.
    """
    ids = set()
    for node in expr.walk():
        if isinstance(node, ast.ColumnRef) and node.entry_id is not None:
            ids.add(node.entry_id)
        block = getattr(node, "block", None)
        if isinstance(block, QueryBlock):
            ids.update(block.outer_references)
    return frozenset(ids)


def correlation_sources(block: QueryBlock) -> List[int]:
    """Entry ids outside ``block``'s closure that its expressions read.

    The closure includes the block itself, its derived/CTE sub-blocks, its
    subquery blocks, and set-operation sides, recursively.  The result is
    the correlation signature used for subquery-result caching and for the
    executor's materialize-invalidation ("invalidate on row from ..." in
    the paper's Listing 7).
    """
    local: set = set()
    refs: set = set()

    def visit(current: QueryBlock, seen: set) -> None:
        if current.block_id in seen:
            return
        seen.add(current.block_id)
        for entry in current.entries:
            local.add(entry.entry_id)
            if entry.sub_block is not None:
                visit(entry.sub_block, seen)
        if current.agg_entry is not None:
            local.add(current.agg_entry.entry_id)
        if current.window_entry is not None:
            local.add(current.window_entry.entry_id)
        for binding in current.cte_bindings:
            visit(binding.block, seen)
        for expr in current.all_expressions():
            for node in expr.walk():
                if isinstance(node, ast.ColumnRef) and \
                        node.entry_id is not None:
                    refs.add(node.entry_id)
                sub = getattr(node, "block", None)
                if isinstance(sub, QueryBlock):
                    visit(sub, seen)
        for __, side in current.set_ops:
            visit(side, seen)

    visit(block, set())
    return sorted(refs - local)


def _default_column_name(expr: ast.Expr, position: int) -> str:
    if isinstance(expr, ast.ColumnRef):
        return expr.column
    # MySQL names anonymous expressions Name_exp_<n> when materialising
    # derived tables — visible in the paper's Listing 7.
    return f"Name_exp_{position + 1}"


def default_column_name(expr: ast.Expr, position: int) -> str:
    return _default_column_name(expr, position)


# ---------------------------------------------------------------------------
# Type inference
# ---------------------------------------------------------------------------

_LONGLONG = TypeInstance(MySQLType.LONGLONG)
_DOUBLE = TypeInstance(MySQLType.DOUBLE)
_VARCHAR = TypeInstance(MySQLType.VARCHAR, 64)
_DATE = TypeInstance(MySQLType.DATE)
_DATETIME = TypeInstance(MySQLType.DATETIME)
_BOOL = TypeInstance(MySQLType.BOOL)


def infer_type(expr: ast.Expr) -> TypeInstance:
    """Best-effort static type of a resolved expression.

    Used for derived-table output schemas and for the metadata provider's
    expression-OID computation (which needs operand type categories).
    """
    import datetime as _dt

    if isinstance(expr, ast.Literal):
        value = expr.value
        if isinstance(value, bool):
            return _BOOL
        if isinstance(value, int):
            return _LONGLONG
        if isinstance(value, float):
            return _DOUBLE
        if isinstance(value, _dt.datetime):
            return _DATETIME
        if isinstance(value, _dt.date):
            return _DATE
        return _VARCHAR
    if isinstance(expr, ast.ColumnRef):
        entry_type = getattr(expr, "resolved_type", None)
        if entry_type is not None:
            return entry_type
        return _DOUBLE
    if isinstance(expr, ast.BinaryExpr):
        if expr.op in ast.COMPARISON_OPS or expr.op in (ast.BinOp.AND,
                                                        ast.BinOp.OR):
            return _BOOL
        left = infer_type(expr.left)
        right = infer_type(expr.right)
        if left.base in (MySQLType.DATE, MySQLType.DATETIME):
            return left
        if right.base in (MySQLType.DATE, MySQLType.DATETIME):
            return right
        if expr.op is ast.BinOp.DIV:
            return _DOUBLE
        if left.base is MySQLType.DOUBLE or right.base is MySQLType.DOUBLE:
            return _DOUBLE
        if left.category.value.startswith("INT") and \
                right.category.value.startswith("INT"):
            return _LONGLONG
        return _DOUBLE
    if isinstance(expr, (ast.NotExpr, ast.IsNullExpr, ast.BetweenExpr,
                         ast.LikeExpr, ast.InListExpr, ast.InSubqueryExpr,
                         ast.ExistsExpr)):
        return _BOOL
    if isinstance(expr, ast.NegExpr):
        return infer_type(expr.operand)
    if isinstance(expr, ast.AggCall):
        if expr.func is ast.AggFunc.COUNT:
            return _LONGLONG
        if expr.func in (ast.AggFunc.AVG, ast.AggFunc.STDDEV):
            return _DOUBLE
        if expr.arg is not None:
            return infer_type(expr.arg)
        return _DOUBLE
    if isinstance(expr, ast.CaseExpr):
        for __, value in expr.whens:
            if not (isinstance(value, ast.Literal) and value.value is None):
                return infer_type(value)
        if expr.else_value is not None:
            return infer_type(expr.else_value)
        return _DOUBLE
    if isinstance(expr, ast.ScalarSubquery):
        block = expr.block
        if isinstance(block, QueryBlock) and block.select_items:
            return infer_type(block.select_items[0].expr)
        return _DOUBLE
    if isinstance(expr, ast.FuncCall):
        name = expr.name
        if name.startswith("CAST_"):
            return _cast_target_type(name[5:])
        if name.startswith("EXTRACT_") or name in ("ABS", "ROUND", "FLOOR",
                                                   "CEIL", "MOD", "LENGTH",
                                                   "DAYOFWEEK", "YEAR",
                                                   "MONTH"):
            return _LONGLONG
        if name in ("CONCAT", "SUBSTRING", "SUBSTR", "UPPER", "LOWER",
                    "TRIM", "LTRIM", "RTRIM", "COALESCE", "IFNULL"):
            if name in ("COALESCE", "IFNULL") and expr.args:
                return infer_type(expr.args[0])
            return _VARCHAR
        return _DOUBLE
    if isinstance(expr, ast.WindowCall):
        if expr.func in ("RANK", "DENSE_RANK", "ROW_NUMBER", "NTILE", "COUNT"):
            return _LONGLONG
        if expr.args:
            return infer_type(expr.args[0])
        return _DOUBLE
    if isinstance(expr, ast.GroupingCall):
        return _LONGLONG
    if isinstance(expr, ast.IntervalLiteral):
        return _LONGLONG
    return _DOUBLE


def _cast_target_type(name: str) -> TypeInstance:
    mapping = {
        "DATE": _DATE,
        "DATETIME": _DATETIME,
        "CHAR": _VARCHAR,
        "VARCHAR": _VARCHAR,
        "SIGNED": _LONGLONG,
        "UNSIGNED": _LONGLONG,
        "INTEGER": _LONGLONG,
        "INT": _LONGLONG,
        "DECIMAL": _DOUBLE,
        "DOUBLE": _DOUBLE,
        "FLOAT": _DOUBLE,
    }
    return mapping.get(name, _DOUBLE)
