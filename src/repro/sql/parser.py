"""Recursive-descent SQL parser producing :mod:`repro.sql.ast` trees.

The dialect mirrors what the paper's workloads need.  As in MySQL,
INTERSECT / EXCEPT (and their ALL forms) are rejected with
:class:`~repro.errors.UnsupportedSqlError` — the paper had to rewrite the
TPC-DS queries that used them (Section 6.2) — and recursive CTEs are
rejected because the integration only allows non-recursive ones
(Section 4.1).
"""

from __future__ import annotations

import datetime
from typing import List, Optional, Tuple

from repro.errors import ParseError, UnsupportedSqlError
from repro.mysql_types import Interval
from repro.sql import ast
from repro.sql.lexer import Token, TokenType, tokenize

#: Function names recognised as aggregates.
_AGGREGATES = {
    "COUNT": ast.AggFunc.COUNT,
    "SUM": ast.AggFunc.SUM,
    "AVG": ast.AggFunc.AVG,
    "MIN": ast.AggFunc.MIN,
    "MAX": ast.AggFunc.MAX,
    "STDDEV": ast.AggFunc.STDDEV,
    "STDDEV_SAMP": ast.AggFunc.STDDEV,
}

#: Pure window functions (aggregates may also be windowed via OVER).
_WINDOW_FUNCS = frozenset({"RANK", "DENSE_RANK", "ROW_NUMBER", "NTILE"})

_COMPARISONS = {
    "=": ast.BinOp.EQ,
    "<>": ast.BinOp.NE,
    "!=": ast.BinOp.NE,
    "<": ast.BinOp.LT,
    "<=": ast.BinOp.LE,
    ">": ast.BinOp.GT,
    ">=": ast.BinOp.GE,
}


def parse_statement(sql: str):
    """Parse one SQL statement: SELECT (with CTEs) or INSERT/DELETE/UPDATE."""
    return _Parser(tokenize(sql)).parse()


def parse_select(sql: str) -> ast.SelectStmt:
    """Alias of :func:`parse_statement` kept for API clarity."""
    return parse_statement(sql)


class _Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._index = 0

    # -- token utilities -----------------------------------------------------

    @property
    def _current(self) -> Token:
        return self._tokens[self._index]

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._index + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._current
        if token.type is not TokenType.EOF:
            self._index += 1
        return token

    def _accept_keyword(self, word: str) -> bool:
        if self._current.is_keyword(word):
            self._advance()
            return True
        return False

    def _expect_keyword(self, word: str) -> None:
        if not self._accept_keyword(word):
            raise ParseError(
                f"expected {word}, found {self._current.value!r} "
                f"at position {self._current.position}")

    def _accept_punct(self, symbol: str) -> bool:
        token = self._current
        if token.type is TokenType.PUNCT and token.value == symbol:
            self._advance()
            return True
        return False

    def _expect_punct(self, symbol: str) -> None:
        if not self._accept_punct(symbol):
            raise ParseError(
                f"expected {symbol!r}, found {self._current.value!r} "
                f"at position {self._current.position}")

    def _accept_operator(self, symbol: str) -> bool:
        token = self._current
        if token.type is TokenType.OPERATOR and token.value == symbol:
            self._advance()
            return True
        return False

    def _expect_ident(self) -> str:
        token = self._current
        if token.type is TokenType.IDENT:
            self._advance()
            return token.value
        # Some keywords double as identifiers in practice (e.g. YEAR, DATE
        # as column names never occur in our workloads, but unit keywords
        # may appear as aliases).
        raise ParseError(
            f"expected identifier, found {token.value!r} "
            f"at position {token.position}")

    # -- entry point -----------------------------------------------------------

    def parse(self):
        first = self._current
        if first.type is TokenType.IDENT and \
                first.value.upper() in ("INSERT", "DELETE", "UPDATE"):
            stmt = self._parse_dml(first.value.upper())
        else:
            stmt = self._parse_select_stmt()
        if self._current.type is not TokenType.EOF:
            raise ParseError(
                f"unexpected trailing input {self._current.value!r} "
                f"at position {self._current.position}")
        return stmt

    # -- DML ----------------------------------------------------------------------

    def _parse_dml(self, verb: str):
        self._advance()  # consume the verb (lexed as an identifier)
        if verb == "INSERT":
            return self._parse_insert()
        if verb == "DELETE":
            return self._parse_delete()
        return self._parse_update()

    def _expect_word(self, word: str) -> None:
        token = self._current
        if token.type is TokenType.IDENT and token.value.upper() == word:
            self._advance()
            return
        raise ParseError(
            f"expected {word}, found {token.value!r} "
            f"at position {token.position}")

    def _parse_insert(self) -> ast.InsertStmt:
        self._expect_word("INTO")
        table = self._expect_ident()
        column_names = None
        if self._accept_punct("("):
            column_names = [self._expect_ident()]
            while self._accept_punct(","):
                column_names.append(self._expect_ident())
            self._expect_punct(")")
        self._expect_word("VALUES")
        rows = [self._parse_value_row()]
        while self._accept_punct(","):
            rows.append(self._parse_value_row())
        return ast.InsertStmt(table, column_names, rows)

    def _parse_value_row(self) -> list:
        self._expect_punct("(")
        values = [self._parse_expr()]
        while self._accept_punct(","):
            values.append(self._parse_expr())
        self._expect_punct(")")
        return values

    def _parse_delete(self) -> ast.DeleteStmt:
        self._expect_keyword("FROM")
        table = self._expect_ident()
        where = self._parse_expr() if self._accept_keyword("WHERE") else None
        return ast.DeleteStmt(table, where)

    def _parse_update(self) -> ast.UpdateStmt:
        table = self._expect_ident()
        self._expect_word("SET")
        assignments = [self._parse_assignment()]
        while self._accept_punct(","):
            assignments.append(self._parse_assignment())
        where = self._parse_expr() if self._accept_keyword("WHERE") else None
        return ast.UpdateStmt(table, assignments, where)

    def _parse_assignment(self):
        column = self._expect_ident()
        if not self._accept_operator("="):
            raise ParseError(
                f"expected = in SET at position {self._current.position}")
        return (column, self._parse_expr())

    # -- statements --------------------------------------------------------------

    def _parse_select_stmt(self) -> ast.SelectStmt:
        ctes: List[ast.CteDef] = []
        if self._accept_keyword("WITH"):
            if self._accept_keyword("RECURSIVE"):
                raise UnsupportedSqlError(
                    "recursive CTEs are not supported by the Orca "
                    "integration (Section 4.1)")
            ctes.append(self._parse_cte())
            while self._accept_punct(","):
                ctes.append(self._parse_cte())
        stmt = self._parse_select_core()
        stmt.ctes = ctes
        while True:
            if self._current.is_keyword("UNION"):
                self._advance()
                all_flag = self._accept_keyword("ALL")
                op = ast.SetOp.UNION_ALL if all_flag else ast.SetOp.UNION
                stmt.set_ops.append((op, self._parse_select_core()))
            elif self._current.is_keyword("INTERSECT") or \
                    self._current.is_keyword("EXCEPT"):
                raise UnsupportedSqlError(
                    f"MySQL does not support {self._current.value} "
                    "(Section 6.2); rewrite the query")
            else:
                break
        self._parse_order_limit(stmt)
        return stmt

    def _parse_cte(self) -> ast.CteDef:
        name = self._expect_ident()
        column_names: Optional[List[str]] = None
        if self._accept_punct("("):
            column_names = [self._expect_ident()]
            while self._accept_punct(","):
                column_names.append(self._expect_ident())
            self._expect_punct(")")
        self._expect_keyword("AS")
        self._expect_punct("(")
        subquery = self._parse_select_stmt()
        self._expect_punct(")")
        return ast.CteDef(name, subquery, column_names)

    def _parse_select_core(self) -> ast.SelectStmt:
        self._expect_keyword("SELECT")
        stmt = ast.SelectStmt()
        stmt.distinct = self._accept_keyword("DISTINCT")
        if self._accept_keyword("ALL"):
            pass  # SELECT ALL is the default
        stmt.items = [self._parse_select_item()]
        while self._accept_punct(","):
            stmt.items.append(self._parse_select_item())
        if self._accept_keyword("FROM"):
            stmt.from_tables = self._parse_from_list()
        if self._accept_keyword("WHERE"):
            stmt.where = self._parse_expr()
        if self._accept_keyword("GROUP"):
            self._expect_keyword("BY")
            stmt.group_by = [self._parse_expr()]
            while self._accept_punct(","):
                stmt.group_by.append(self._parse_expr())
        if self._accept_keyword("HAVING"):
            stmt.having = self._parse_expr()
        return stmt

    def _parse_order_limit(self, stmt: ast.SelectStmt) -> None:
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            stmt.order_by = [self._parse_order_item()]
            while self._accept_punct(","):
                stmt.order_by.append(self._parse_order_item())
        if self._accept_keyword("LIMIT"):
            stmt.limit = self._parse_integer()
            if self._accept_punct(","):
                stmt.offset = stmt.limit
                stmt.limit = self._parse_integer()
            elif self._accept_keyword("OFFSET"):
                stmt.offset = self._parse_integer()

    def _parse_integer(self) -> int:
        token = self._current
        if token.type is not TokenType.NUMBER:
            raise ParseError(
                f"expected integer, found {token.value!r} "
                f"at position {token.position}")
        self._advance()
        return int(token.value)

    def _parse_order_item(self) -> ast.OrderItem:
        expr = self._parse_expr()
        descending = False
        if self._accept_keyword("DESC"):
            descending = True
        else:
            self._accept_keyword("ASC")
        return ast.OrderItem(expr, descending)

    def _parse_select_item(self) -> ast.SelectItem:
        if self._current.type is TokenType.OPERATOR and \
                self._current.value == "*":
            self._advance()
            return ast.SelectItem(ast.Star())
        expr = self._parse_expr()
        alias: Optional[str] = None
        if self._accept_keyword("AS"):
            alias = self._expect_ident()
        elif self._current.type is TokenType.IDENT:
            alias = self._advance().value
        return ast.SelectItem(expr, alias)

    # -- FROM clause ----------------------------------------------------------------

    def _parse_from_list(self) -> List[ast.TableRef]:
        refs = [self._parse_join_tree()]
        while self._accept_punct(","):
            refs.append(self._parse_join_tree())
        return refs

    def _parse_join_tree(self) -> ast.TableRef:
        left = self._parse_table_factor()
        while True:
            join_type = self._parse_join_type()
            if join_type is None:
                return left
            right = self._parse_table_factor()
            condition: Optional[ast.Expr] = None
            if self._accept_keyword("ON"):
                condition = self._parse_expr()
            elif join_type is not ast.JoinType.CROSS:
                raise ParseError(
                    f"JOIN without ON near position {self._current.position}")
            left = ast.JoinRef(left, right, join_type, condition)

    def _parse_join_type(self) -> Optional[ast.JoinType]:
        if self._accept_keyword("JOIN"):
            return ast.JoinType.INNER
        if self._current.is_keyword("INNER") and self._peek(1).is_keyword("JOIN"):
            self._advance()
            self._advance()
            return ast.JoinType.INNER
        if self._current.is_keyword("LEFT"):
            self._advance()
            self._accept_keyword("OUTER")
            self._expect_keyword("JOIN")
            return ast.JoinType.LEFT
        if self._current.is_keyword("RIGHT") or self._current.is_keyword("FULL"):
            raise UnsupportedSqlError(
                f"{self._current.value} joins are not supported; "
                "rewrite with LEFT JOIN")
        if self._current.is_keyword("CROSS"):
            self._advance()
            self._expect_keyword("JOIN")
            return ast.JoinType.CROSS
        return None

    def _parse_table_factor(self) -> ast.TableRef:
        if self._accept_punct("("):
            if self._current.is_keyword("SELECT") or \
                    self._current.is_keyword("WITH"):
                subquery = self._parse_select_stmt()
                self._expect_punct(")")
                self._accept_keyword("AS")
                alias = self._expect_ident()
                column_names: Optional[List[str]] = None
                if self._accept_punct("("):
                    column_names = [self._expect_ident()]
                    while self._accept_punct(","):
                        column_names.append(self._expect_ident())
                    self._expect_punct(")")
                return ast.DerivedTableRef(subquery, alias, column_names)
            # Parenthesised join tree.
            inner = self._parse_join_tree()
            self._expect_punct(")")
            return inner
        name = self._expect_ident()
        if self._accept_punct("."):
            # schema-qualified name: keep only the table part.
            name = self._expect_ident()
        alias: Optional[str] = None
        if self._accept_keyword("AS"):
            alias = self._expect_ident()
        elif self._current.type is TokenType.IDENT:
            alias = self._advance().value
        return ast.BaseTableRef(name, alias)

    # -- expressions -----------------------------------------------------------------

    def _parse_expr(self) -> ast.Expr:
        return self._parse_or()

    def _parse_or(self) -> ast.Expr:
        left = self._parse_and()
        while self._accept_keyword("OR"):
            left = ast.BinaryExpr(ast.BinOp.OR, left, self._parse_and())
        return left

    def _parse_and(self) -> ast.Expr:
        left = self._parse_not()
        while self._accept_keyword("AND"):
            left = ast.BinaryExpr(ast.BinOp.AND, left, self._parse_not())
        return left

    def _parse_not(self) -> ast.Expr:
        if self._accept_keyword("NOT"):
            return ast.NotExpr(self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self) -> ast.Expr:
        left = self._parse_additive()
        while True:
            token = self._current
            if token.type is TokenType.OPERATOR and \
                    token.value in _COMPARISONS:
                self._advance()
                right = self._parse_additive()
                left = ast.BinaryExpr(_COMPARISONS[token.value], left, right)
                continue
            negated = False
            lookahead = 0
            if token.is_keyword("NOT"):
                negated = True
                lookahead = 1
            follower = self._peek(lookahead)
            if follower.is_keyword("BETWEEN"):
                self._index += lookahead + 1
                low = self._parse_additive()
                self._expect_keyword("AND")
                high = self._parse_additive()
                left = ast.BetweenExpr(left, low, high, negated)
                continue
            if follower.is_keyword("LIKE"):
                self._index += lookahead + 1
                pattern = self._parse_additive()
                left = ast.LikeExpr(left, pattern, negated)
                continue
            if follower.is_keyword("IN"):
                self._index += lookahead + 1
                left = self._parse_in_tail(left, negated)
                continue
            if follower.is_keyword("IS") and not negated:
                self._advance()
                is_negated = self._accept_keyword("NOT")
                self._expect_keyword("NULL")
                left = ast.IsNullExpr(left, is_negated)
                continue
            return left

    def _parse_in_tail(self, operand: ast.Expr, negated: bool) -> ast.Expr:
        self._expect_punct("(")
        if self._current.is_keyword("SELECT") or self._current.is_keyword("WITH"):
            subquery = self._parse_select_stmt()
            self._expect_punct(")")
            return ast.InSubqueryExpr(operand, subquery, negated)
        items = [self._parse_expr()]
        while self._accept_punct(","):
            items.append(self._parse_expr())
        self._expect_punct(")")
        return ast.InListExpr(operand, items, negated)

    def _parse_additive(self) -> ast.Expr:
        left = self._parse_multiplicative()
        while True:
            if self._accept_operator("+"):
                left = ast.BinaryExpr(ast.BinOp.ADD, left,
                                      self._parse_multiplicative())
            elif self._accept_operator("-"):
                left = ast.BinaryExpr(ast.BinOp.SUB, left,
                                      self._parse_multiplicative())
            elif self._accept_operator("||"):
                left = ast.FuncCall("CONCAT",
                                    [left, self._parse_multiplicative()])
            else:
                return left

    def _parse_multiplicative(self) -> ast.Expr:
        left = self._parse_unary()
        while True:
            if self._accept_operator("*"):
                left = ast.BinaryExpr(ast.BinOp.MUL, left, self._parse_unary())
            elif self._accept_operator("/"):
                left = ast.BinaryExpr(ast.BinOp.DIV, left, self._parse_unary())
            elif self._accept_operator("%"):
                left = ast.BinaryExpr(ast.BinOp.MOD, left, self._parse_unary())
            else:
                return left

    def _parse_unary(self) -> ast.Expr:
        if self._accept_operator("-"):
            return ast.NegExpr(self._parse_unary())
        if self._accept_operator("+"):
            return self._parse_unary()
        return self._parse_primary()

    # -- primary expressions ------------------------------------------------------------

    def _parse_primary(self) -> ast.Expr:
        token = self._current
        if token.type is TokenType.NUMBER:
            self._advance()
            text = token.value
            value = float(text) if ("." in text or "e" in text or "E" in text) \
                else int(text)
            return ast.Literal(value)
        if token.type is TokenType.STRING:
            self._advance()
            return ast.Literal(token.value)
        if token.is_keyword("NULL"):
            self._advance()
            return ast.Literal(None)
        if token.is_keyword("TRUE"):
            self._advance()
            return ast.Literal(True)
        if token.is_keyword("FALSE"):
            self._advance()
            return ast.Literal(False)
        if token.is_keyword("DATE"):
            self._advance()
            literal = self._current
            if literal.type is not TokenType.STRING:
                raise ParseError(
                    f"expected date string at position {literal.position}")
            self._advance()
            return ast.Literal(datetime.date.fromisoformat(literal.value))
        if token.is_keyword("INTERVAL"):
            self._advance()
            return self._parse_interval()
        if token.is_keyword("CASE"):
            self._advance()
            return self._parse_case()
        if token.is_keyword("CAST"):
            self._advance()
            return self._parse_cast()
        if token.is_keyword("EXTRACT"):
            self._advance()
            return self._parse_extract()
        if token.is_keyword("EXISTS"):
            self._advance()
            self._expect_punct("(")
            subquery = self._parse_select_stmt()
            self._expect_punct(")")
            return ast.ExistsExpr(subquery)
        if token.is_keyword("GROUPING"):
            self._advance()
            self._expect_punct("(")
            args = [self._parse_expr()]
            while self._accept_punct(","):
                args.append(self._parse_expr())
            self._expect_punct(")")
            if len(args) != 1:
                raise UnsupportedSqlError(
                    "GROUPING functions can only have one column "
                    "(Section 4.1)")
            return ast.GroupingCall(args[0])
        if token.type is TokenType.PUNCT and token.value == "(":
            self._advance()
            if self._current.is_keyword("SELECT") or \
                    self._current.is_keyword("WITH"):
                subquery = self._parse_select_stmt()
                self._expect_punct(")")
                return ast.ScalarSubquery(subquery)
            expr = self._parse_expr()
            self._expect_punct(")")
            return expr
        if token.type is TokenType.IDENT:
            return self._parse_identifier_expr()
        raise ParseError(
            f"unexpected token {token.value!r} at position {token.position}")

    def _parse_interval(self) -> ast.Expr:
        token = self._current
        if token.type is TokenType.STRING:
            quantity = int(token.value)
            self._advance()
        elif token.type is TokenType.NUMBER:
            quantity = int(token.value)
            self._advance()
        else:
            raise ParseError(
                f"expected interval quantity at position {token.position}")
        unit = self._current
        self._advance()
        if unit.is_keyword("DAY"):
            return ast.IntervalLiteral(Interval(days=quantity))
        if unit.is_keyword("MONTH"):
            return ast.IntervalLiteral(Interval(months=quantity))
        if unit.is_keyword("YEAR"):
            return ast.IntervalLiteral(Interval(months=12 * quantity))
        raise ParseError(
            f"unsupported interval unit {unit.value!r} "
            f"at position {unit.position}")

    def _parse_case(self) -> ast.Expr:
        # Simple CASE (CASE expr WHEN value ...) is normalised into a
        # searched CASE with equality conditions.
        operand: Optional[ast.Expr] = None
        if not self._current.is_keyword("WHEN"):
            operand = self._parse_expr()
        whens: List[Tuple[ast.Expr, ast.Expr]] = []
        while self._accept_keyword("WHEN"):
            condition = self._parse_expr()
            if operand is not None:
                condition = ast.BinaryExpr(ast.BinOp.EQ, operand, condition)
            self._expect_keyword("THEN")
            value = self._parse_expr()
            whens.append((condition, value))
        else_value: Optional[ast.Expr] = None
        if self._accept_keyword("ELSE"):
            else_value = self._parse_expr()
        self._expect_keyword("END")
        if not whens:
            raise ParseError("CASE requires at least one WHEN clause")
        return ast.CaseExpr(whens, else_value)

    def _parse_cast(self) -> ast.Expr:
        self._expect_punct("(")
        operand = self._parse_expr()
        self._expect_keyword("AS")
        token = self._advance()
        type_name = token.value.upper()
        # Optional (length) or (precision, scale) after the type name.
        if self._accept_punct("("):
            self._parse_integer()
            if self._accept_punct(","):
                self._parse_integer()
            self._expect_punct(")")
        self._expect_punct(")")
        return ast.FuncCall("CAST_" + type_name, [operand])

    def _parse_extract(self) -> ast.Expr:
        self._expect_punct("(")
        unit = self._advance().value.upper()
        self._expect_keyword("FROM")
        operand = self._parse_expr()
        self._expect_punct(")")
        return ast.FuncCall("EXTRACT_" + unit, [operand])

    def _parse_identifier_expr(self) -> ast.Expr:
        name = self._expect_ident()
        # Qualified reference: table.column or table.*
        if self._accept_punct("."):
            if self._current.type is TokenType.OPERATOR and \
                    self._current.value == "*":
                self._advance()
                return ast.Star(table=name)
            column = self._expect_ident()
            return ast.ColumnRef(name, column)
        if not (self._current.type is TokenType.PUNCT
                and self._current.value == "("):
            return ast.ColumnRef(None, name)
        # Function call.
        upper = name.upper()
        self._expect_punct("(")
        if upper in _AGGREGATES:
            agg = self._parse_aggregate_call(upper)
            return self._maybe_window(upper, agg)
        args: List[ast.Expr] = []
        if not self._accept_punct(")"):
            if self._current.type is TokenType.OPERATOR and \
                    self._current.value == "*":
                self._advance()
                args.append(ast.Star())
            else:
                args.append(self._parse_expr())
            while self._accept_punct(","):
                args.append(self._parse_expr())
            self._expect_punct(")")
        if upper in _WINDOW_FUNCS:
            return self._parse_over(upper, args)
        call = ast.FuncCall(upper, args)
        return self._maybe_window(upper, call)

    def _parse_aggregate_call(self, name: str) -> ast.Expr:
        func = _AGGREGATES[name]
        distinct = self._accept_keyword("DISTINCT")
        if self._current.type is TokenType.OPERATOR and \
                self._current.value == "*":
            self._advance()
            self._expect_punct(")")
            return ast.AggCall(func, star=True)
        arg = self._parse_expr()
        self._expect_punct(")")
        return ast.AggCall(func, arg, distinct=distinct)

    def _maybe_window(self, name: str, call: ast.Expr) -> ast.Expr:
        if not self._current.is_keyword("OVER"):
            return call
        if isinstance(call, ast.AggCall):
            args = [call.arg] if call.arg is not None else []
            return self._parse_over(name, args)
        if isinstance(call, ast.FuncCall):
            return self._parse_over(call.name, call.args)
        return call

    def _parse_over(self, func: str, args: List[ast.Expr]) -> ast.WindowCall:
        self._expect_keyword("OVER")
        self._expect_punct("(")
        partition_by: List[ast.Expr] = []
        order_by: List[ast.OrderItem] = []
        if self._accept_keyword("PARTITION"):
            self._expect_keyword("BY")
            partition_by.append(self._parse_expr())
            while self._accept_punct(","):
                partition_by.append(self._parse_expr())
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            order_by.append(self._parse_order_item())
            while self._accept_punct(","):
                order_by.append(self._parse_order_item())
        self._expect_punct(")")
        return ast.WindowCall(func.upper(), [a for a in args if a is not None],
                              partition_by, order_by)
