"""Expression rewriting utilities shared by prepare, Orca, and the bridge.

:func:`map_expr` rebuilds an expression bottom-up through a mapping
function, creating new nodes only where something changed, so shared
subtrees (e.g. select-alias substitutions) are never mutated in place.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.sql import ast

MapFn = Callable[[ast.Expr], Optional[ast.Expr]]


def map_expr(expr: ast.Expr, fn: MapFn) -> ast.Expr:
    """Rebuild ``expr`` bottom-up, replacing nodes where ``fn`` returns one.

    ``fn`` receives each node *after* its children were processed; it
    returns a replacement node or ``None`` to keep the node.  Subquery
    blocks are not entered — only the expression tree itself is rewritten.
    """
    rebuilt = _rebuild_children(expr, fn)
    replacement = fn(rebuilt)
    return replacement if replacement is not None else rebuilt


def _rebuild_children(expr: ast.Expr, fn: MapFn) -> ast.Expr:
    if isinstance(expr, ast.BinaryExpr):
        left = map_expr(expr.left, fn)
        right = map_expr(expr.right, fn)
        if left is expr.left and right is expr.right:
            return expr
        return ast.BinaryExpr(expr.op, left, right)
    if isinstance(expr, ast.NotExpr):
        operand = map_expr(expr.operand, fn)
        return expr if operand is expr.operand else ast.NotExpr(operand)
    if isinstance(expr, ast.NegExpr):
        operand = map_expr(expr.operand, fn)
        return expr if operand is expr.operand else ast.NegExpr(operand)
    if isinstance(expr, ast.IsNullExpr):
        operand = map_expr(expr.operand, fn)
        if operand is expr.operand:
            return expr
        return ast.IsNullExpr(operand, expr.negated)
    if isinstance(expr, ast.BetweenExpr):
        operand = map_expr(expr.operand, fn)
        low = map_expr(expr.low, fn)
        high = map_expr(expr.high, fn)
        if operand is expr.operand and low is expr.low and high is expr.high:
            return expr
        return ast.BetweenExpr(operand, low, high, expr.negated)
    if isinstance(expr, ast.LikeExpr):
        operand = map_expr(expr.operand, fn)
        pattern = map_expr(expr.pattern, fn)
        if operand is expr.operand and pattern is expr.pattern:
            return expr
        return ast.LikeExpr(operand, pattern, expr.negated)
    if isinstance(expr, ast.InListExpr):
        operand = map_expr(expr.operand, fn)
        items = [map_expr(item, fn) for item in expr.items]
        if operand is expr.operand and all(new is old for new, old
                                           in zip(items, expr.items)):
            return expr
        return ast.InListExpr(operand, items, expr.negated)
    if isinstance(expr, ast.InSubqueryExpr):
        operand = map_expr(expr.operand, fn)
        if operand is expr.operand:
            return expr
        clone = ast.InSubqueryExpr(operand, expr.subquery, expr.negated)
        clone.block = expr.block
        return clone
    if isinstance(expr, ast.FuncCall):
        args = [map_expr(arg, fn) for arg in expr.args]
        if all(new is old for new, old in zip(args, expr.args)):
            return expr
        return ast.FuncCall(expr.name, args)
    if isinstance(expr, ast.AggCall):
        if expr.arg is None:
            return expr
        arg = map_expr(expr.arg, fn)
        if arg is expr.arg:
            return expr
        return ast.AggCall(expr.func, arg, expr.distinct, expr.star)
    if isinstance(expr, ast.CaseExpr):
        whens = [(map_expr(cond, fn), map_expr(val, fn))
                 for cond, val in expr.whens]
        else_value = (map_expr(expr.else_value, fn)
                      if expr.else_value is not None else None)
        unchanged = (else_value is expr.else_value and all(
            new_c is old_c and new_v is old_v
            for (new_c, new_v), (old_c, old_v) in zip(whens, expr.whens)))
        if unchanged:
            return expr
        return ast.CaseExpr(whens, else_value)
    if isinstance(expr, ast.WindowCall):
        args = [map_expr(arg, fn) for arg in expr.args]
        partition = [map_expr(part, fn) for part in expr.partition_by]
        orders = [ast.OrderItem(map_expr(order.expr, fn), order.descending)
                  for order in expr.order_by]
        return ast.WindowCall(expr.func, args, partition, orders)
    if isinstance(expr, ast.GroupingCall):
        arg = map_expr(expr.arg, fn)
        return expr if arg is expr.arg else ast.GroupingCall(arg)
    # Literals, column refs, intervals, subquery markers: leaves here.
    return expr


def substitute_entry_columns(expr: ast.Expr, entry_id: int,
                             replacements: List[ast.Expr]) -> ast.Expr:
    """Replace refs to ``entry_id``'s columns with the given expressions.

    Used when merging a derived table into its parent block: references to
    the derived table's output columns become the underlying select-item
    expressions.
    """

    def fn(node: ast.Expr) -> Optional[ast.Expr]:
        if isinstance(node, ast.ColumnRef) and node.entry_id == entry_id:
            return replacements[node.position]
        return None

    return map_expr(expr, fn)


def expr_key(expr: ast.Expr) -> tuple:
    """A hashable structural key for expression equality.

    Two expressions with the same key are structurally identical (same
    operators, same resolved column bindings, same literal values).  Used
    for matching GROUP BY expressions during post-aggregation rewriting and
    for common-subexpression detection in the Orca preprocessing rules.
    """
    if isinstance(expr, ast.Literal):
        return ("lit", expr.value)
    if isinstance(expr, ast.ColumnRef):
        return ("col", expr.entry_id, expr.position)
    if isinstance(expr, ast.BinaryExpr):
        return ("bin", expr.op.value, expr_key(expr.left),
                expr_key(expr.right))
    if isinstance(expr, ast.NotExpr):
        return ("not", expr_key(expr.operand))
    if isinstance(expr, ast.NegExpr):
        return ("neg", expr_key(expr.operand))
    if isinstance(expr, ast.IsNullExpr):
        return ("isnull", expr.negated, expr_key(expr.operand))
    if isinstance(expr, ast.BetweenExpr):
        return ("between", expr.negated, expr_key(expr.operand),
                expr_key(expr.low), expr_key(expr.high))
    if isinstance(expr, ast.LikeExpr):
        return ("like", expr.negated, expr_key(expr.operand),
                expr_key(expr.pattern))
    if isinstance(expr, ast.InListExpr):
        return ("inlist", expr.negated, expr_key(expr.operand),
                tuple(expr_key(item) for item in expr.items))
    if isinstance(expr, ast.FuncCall):
        return ("func", expr.name,
                tuple(expr_key(arg) for arg in expr.args))
    if isinstance(expr, ast.AggCall):
        return ("agg", expr.func.value, expr.distinct, expr.star,
                expr_key(expr.arg) if expr.arg is not None else None)
    if isinstance(expr, ast.CaseExpr):
        return ("case",
                tuple((expr_key(c), expr_key(v)) for c, v in expr.whens),
                expr_key(expr.else_value)
                if expr.else_value is not None else None)
    if isinstance(expr, ast.WindowCall):
        return ("window", expr.func,
                tuple(expr_key(arg) for arg in expr.args),
                tuple(expr_key(part) for part in expr.partition_by),
                tuple((expr_key(item.expr), item.descending)
                      for item in expr.order_by))
    if isinstance(expr, ast.GroupingCall):
        return ("grouping", expr_key(expr.arg))
    if isinstance(expr, ast.IntervalLiteral):
        return ("interval", expr.interval.months, expr.interval.days)
    if isinstance(expr, (ast.ScalarSubquery, ast.InSubqueryExpr,
                         ast.ExistsExpr)):
        block = getattr(expr, "block", None)
        block_id = block.block_id if block is not None else id(expr)
        return (type(expr).__name__, block_id,
                getattr(expr, "negated", False))
    if isinstance(expr, ast.Star):
        return ("star", expr.table)
    return ("other", id(expr))


def references_only(expr: ast.Expr, allowed: frozenset) -> bool:
    """Whether every column reference in ``expr`` binds inside ``allowed``."""
    from repro.sql.blocks import referenced_entries

    return referenced_entries(expr).issubset(allowed)
