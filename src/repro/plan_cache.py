"""The statement plan cache: skip re-optimization of repeated statements.

"Query Optimization in the Wild" names plan caching as one of the two
levers industrial optimizers actually pull (the other — search-space
pruning — lives in :mod:`repro.orca.joinorder`).  This module implements
the first: an LRU cache mapping a statement's text to the refined
executable plan the optimizer produced for it, so a repeated statement
skips parse-tree conversion, the memo search, and plan conversion
entirely and goes straight to execution.

Keying and correctness
----------------------

The cache key is a digest of the statement text with whitespace and
letter case normalised but **literals preserved** —
:func:`statement_cache_key`.  This is deliberately different from
:func:`repro.resilience.statement_fingerprint`, which normalises
literals away: the circuit breaker quarantines a statement *shape*,
but a cached plan has the literals compiled into its predicates, so
``WHERE o_totalprice > 100`` and ``WHERE o_totalprice > 250`` must
never share an entry.  The requested optimizer (``auto`` / ``mysql`` /
``orca``) is part of the key too, since it changes routing and thus the
plan.

Every entry records the catalog version it was compiled against
(:attr:`repro.catalog.catalog.Catalog.version`).  DDL, ANALYZE, and DML
all bump that counter, so a lookup that finds an entry compiled against
an older version drops it and counts an *invalidation* — the plan may
reference dropped tables, stale statistics, or pre-DML row counts.

Failed detours are never cached: the Database facade only stores a plan
when compilation finished without a fallback, so circuit-broken
fingerprints, budget overruns, and contained crashes always re-enter
the normal (guarded) compilation path.

The store is also *deferred past execution*: the facade inserts an
entry only after the statement ran to completion.  A statement aborted
by the execution governor (deadline, cancellation, memory breach) or by
a runtime error therefore never enters the cache — an abort must leave
the Database exactly as if the statement never ran — and the degraded
plan of a reduced-memory streaming retry is likewise never cached
(the forced shape is a one-off degradation, not the optimizer's
choice).

Observability
-------------

The cache keeps its own ``hits`` / ``misses`` / ``evictions`` /
``invalidations`` counters (:meth:`PlanCache.stats`) and mirrors them
into a :class:`repro.observability.MetricsRegistry` when one is
attached (``plan_cache.hits`` and friends), so ``metrics_report()``
answers cache effectiveness alongside detour rate and mdcache ratio.
"""

from __future__ import annotations

import hashlib
import re
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional

#: Default number of cached statements; each entry holds one executor
#: tree, so a few hundred is plenty for a benchmark-sized workload.
DEFAULT_CAPACITY = 128

_WHITESPACE = re.compile(r"\s+")


def statement_cache_key(sql: str, optimizer: str = "auto") -> str:
    """Digest of the statement text with literals preserved.

    Whitespace runs collapse and the text is lower-cased so trivially
    reformatted statements share an entry, but literals stay (see the
    module docstring for why this must differ from the resilience
    fingerprint).
    """
    text = _WHITESPACE.sub(" ", sql).strip().lower()
    return hashlib.sha1(
        f"{optimizer}\x00{text}".encode("utf-8")).hexdigest()[:16]


@dataclass
class PlanCacheEntry:
    """One cached statement plan."""

    #: The refined executable plan — re-executable as-is (each execution
    #: creates a fresh runtime and re-reads current storage).
    executor: object
    #: The optimizer skeleton the executor was refined from, kept so
    #: diagnostics can re-render or re-refine without a full recompile.
    skeleton: object
    #: Which optimizer produced the plan ("orca" or "mysql").
    optimizer_used: str
    #: Catalog version the plan was compiled against; a lookup under a
    #: newer version invalidates the entry.
    catalog_version: int
    #: The resilience fingerprint of the statement (literal-normalised),
    #: kept so reports can correlate cache entries with fallback history.
    fingerprint: Optional[str] = None
    #: How many times this entry has been served.
    hits: int = 0


class PlanCache:
    """An LRU statement plan cache with version-based invalidation."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 metrics=None) -> None:
        if capacity < 1:
            raise ValueError("plan cache capacity must be >= 1")
        self.capacity = capacity
        self.metrics = metrics
        self._entries: "OrderedDict[str, PlanCacheEntry]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    # -- counters ---------------------------------------------------------------

    def _count(self, event: str) -> None:
        setattr(self, event, getattr(self, event) + 1)
        if self.metrics is not None:
            self.metrics.inc(f"plan_cache.{event}")

    # -- cache protocol ---------------------------------------------------------

    def lookup(self, key: str,
               catalog_version: int) -> Optional[PlanCacheEntry]:
        """The entry for ``key``, or None on a miss.

        An entry compiled against an older catalog version is dropped
        (counted as an invalidation *and* a miss — the statement will
        recompile and re-store).
        """
        entry = self._entries.get(key)
        if entry is not None and entry.catalog_version != catalog_version:
            del self._entries[key]
            self._count("invalidations")
            entry = None
        if entry is None:
            self._count("misses")
            return None
        self._entries.move_to_end(key)
        entry.hits += 1
        self._count("hits")
        return entry

    def store(self, key: str, entry: PlanCacheEntry) -> None:
        """Insert (or replace) an entry, evicting the LRU tail if full."""
        if key in self._entries:
            del self._entries[key]
        self._entries[key] = entry
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self._count("evictions")

    def invalidate(self, key: str) -> bool:
        """Drop one entry (counted as an invalidation) if present.

        The plan-quality feedback loop calls this when a statement's
        Q-error stays above threshold for a full breach streak: the
        cached plan was built from estimates that reality keeps
        contradicting, so the next execution must re-optimize.
        """
        if key not in self._entries:
            return False
        del self._entries[key]
        self._count("invalidations")
        return True

    def invalidate_fingerprint(self, fingerprint: str) -> int:
        """Drop every entry whose resilience fingerprint matches.

        A fingerprint covers every literal variant of a statement shape,
        so when the workload advisor confirms a plan regression for a
        shape it must purge all of that shape's cached plans, not just
        the one cache key that happened to trip the detector.
        """
        keys = [key for key, entry in self._entries.items()
                if entry.fingerprint == fingerprint]
        for key in keys:
            del self._entries[key]
            self._count("invalidations")
        return len(keys)

    def invalidate_all(self) -> int:
        """Drop every entry (counted as invalidations); returns how many."""
        dropped = len(self._entries)
        for __ in range(dropped):
            self._entries.popitem(last=False)
            self._count("invalidations")
        return dropped

    # -- introspection ----------------------------------------------------------

    @property
    def hit_ratio(self) -> float:
        requests = self.hits + self.misses
        return self.hits / requests if requests else 0.0

    def stats(self) -> Dict[str, object]:
        """Counter snapshot plus current size and capacity."""
        return {
            "size": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "hit_ratio": self.hit_ratio,
        }
