"""Synthetic join topologies for large-join search benchmarking.

TPC-H tops out at 8-way joins; the large-join strategies
(:mod:`repro.orca.largejoin`) only earn their keep at 10-50 relations.
This module generates the four classic join-graph shapes at any width:

* **chain** — ``t0 - t1 - ... - t(n-1)``: the linearized-DP best case
  (its connected subsets are exactly the intervals);
* **star** — a fact hub with ``n - 1`` dimension tables: IKKBZ territory
  (every linearization starts at the hub);
* **clique** — every pair joined through a shared key: the DP worst case
  (every subset is connected — keep n modest);
* **snowflake** — hub → dimensions → sub-dimensions: the realistic
  data-warehouse shape mixing star and chain structure.

All integer columns — ``SUM`` over any join order folds exactly, so
result sets compare bit-identically across strategies and executors.
Table sizes cycle through a wide spread (20-200 base rows before
``scale``) so join order genuinely matters, and every column name is
prefixed with its table name, keeping unqualified references unambiguous
no matter how many topologies share one database.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.catalog.schema import Column, Index, TableSchema
from repro.mysql_types import MySQLType as T

TOPOLOGY_KINDS = ("chain", "star", "clique", "snowflake")

#: Base row counts cycled across a topology's tables: a deliberate
#: 10x spread so greedy/IKKBZ orderings have real choices to make.
_SIZE_CYCLE = (60, 180, 35, 140, 20, 90, 200, 50)

#: Join-key domain compression: child fk values cover this fraction of
#: the parent pk domain, so joins filter instead of exploding.
_FK_COVERAGE = 0.8


@dataclass(frozen=True)
class JoinTopology:
    """One generated workload: schemas, rows, and the n-way join query."""

    kind: str
    relations: int
    tables: List[TableSchema]
    rows: Dict[str, List[Tuple]]
    query: str


def _table_name(kind: str, relations: int, index: int) -> str:
    return f"{kind}{relations}_t{index}"


def _sizes(relations: int, scale: float) -> List[int]:
    return [max(4, int(_SIZE_CYCLE[index % len(_SIZE_CYCLE)] * scale))
            for index in range(relations)]


def _schema(name: str, fk_names: List[str]) -> TableSchema:
    columns = [Column.of(f"{name}_pk", T.LONG, nullable=False)]
    columns += [Column.of(fk, T.LONG, nullable=False) for fk in fk_names]
    columns.append(Column.of(f"{name}_val", T.LONG, nullable=False))
    indexes = [Index("PRIMARY", (f"{name}_pk",), primary=True)]
    indexes += [Index(f"{name}_fk{pos}", (fk,))
                for pos, fk in enumerate(fk_names)]
    return TableSchema(name, columns, indexes, schema="joins")


def _rows(rng: random.Random, size: int,
          fk_domains: List[int]) -> List[Tuple]:
    rows = []
    for pk in range(size):
        fks = [rng.randrange(max(1, int(domain * _FK_COVERAGE)))
               for domain in fk_domains]
        rows.append(tuple([pk] + fks + [rng.randrange(1000)]))
    return rows


def _query(names: List[str], conjuncts: List[str]) -> str:
    first, last = names[0], names[-1]
    select = (f"SELECT COUNT(*), SUM({first}_val), SUM({last}_val), "
              f"MIN({first}_pk), MAX({last}_pk)")
    sql = f"{select}\nFROM {', '.join(names)}"
    if conjuncts:
        sql += "\nWHERE " + "\n  AND ".join(conjuncts)
    return sql


def make_topology(kind: str, relations: int, seed: int = 1234,
                  scale: float = 1.0) -> JoinTopology:
    """Build one deterministic topology of ``relations`` tables."""
    if kind not in TOPOLOGY_KINDS:
        raise ValueError(f"unknown topology kind {kind!r}; "
                         f"valid: {', '.join(TOPOLOGY_KINDS)}")
    if relations < 2:
        raise ValueError("a join topology needs at least 2 relations")
    rng = random.Random((seed, kind, relations).__repr__())
    names = [_table_name(kind, relations, index)
             for index in range(relations)]
    sizes = _sizes(relations, scale)
    # parents[i] = tables whose pk table i's fk columns reference.
    parents: List[List[int]] = [[] for __ in range(relations)]
    conjuncts: List[str] = []

    if kind == "chain":
        for index in range(relations - 1):
            parents[index].append(index + 1)
    elif kind == "star":
        parents[0] = list(range(1, relations))
    elif kind == "snowflake":
        # Hub -> dimensions -> sub-dimensions, round-robin: dimension
        # count ~ (n-1)/3 so each dimension carries ~2 sub-dimensions.
        dims = max(1, (relations - 1 + 2) // 3)
        dims = min(dims, relations - 1)
        parents[0] = list(range(1, dims + 1))
        for offset, index in enumerate(range(dims + 1, relations)):
            parents[1 + offset % dims].append(index)
    # clique: no fk edges — all tables share one key domain (below).

    if kind == "clique":
        # One shared join column per table; every pair equi-joined.
        # Per-key multiplicity ~1.2, so the n-way equi-clique result
        # stays at ~domain * 1.2^n rows (hundreds, non-empty) instead
        # of exploding multiplicatively.
        domain = max(6, int(40 * scale))
        sizes = [max(domain + 2, int(domain * 1.2))] * relations
        tables = []
        rows: Dict[str, List[Tuple]] = {}
        for index, name in enumerate(names):
            key_col = f"{name}_jk"
            columns = [Column.of(f"{name}_pk", T.LONG, nullable=False),
                       Column.of(key_col, T.LONG, nullable=False),
                       Column.of(f"{name}_val", T.LONG, nullable=False)]
            indexes = [Index("PRIMARY", (f"{name}_pk",), primary=True),
                       Index(f"{name}_jk_idx", (key_col,))]
            tables.append(TableSchema(name, columns, indexes,
                                      schema="joins"))
            rows[name] = [(pk, rng.randrange(domain),
                           rng.randrange(1000))
                          for pk in range(sizes[index])]
        for left in range(relations):
            for right in range(left + 1, relations):
                conjuncts.append(f"{names[left]}_jk = {names[right]}_jk")
        return JoinTopology(kind, relations, tables, rows,
                            _query(names, conjuncts))

    tables = []
    rows = {}
    for index, name in enumerate(names):
        fk_names = [f"{name}_fk{parent}" for parent in parents[index]]
        tables.append(_schema(name, fk_names))
        rows[name] = _rows(rng, sizes[index],
                           [sizes[parent] for parent in parents[index]])
        for parent in parents[index]:
            conjuncts.append(
                f"{name}_fk{parent} = {names[parent]}_pk")
    return JoinTopology(kind, relations, tables, rows,
                        _query(names, conjuncts))


def load_topology(db, topology: JoinTopology,
                  analyze: bool = True) -> None:
    """Create, populate, and ANALYZE one topology's tables."""
    for schema in topology.tables:
        db.create_table(schema)
    for schema in topology.tables:
        db.load(schema.name, topology.rows[schema.name])
    if analyze:
        db.analyze()
