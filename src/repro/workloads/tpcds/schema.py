"""A 17-table TPC-DS snowflake schema.

Covers the three sales channels (store / catalog / web) with their return
tables, the inventory fact, and the dimensions the 99-query suite touches.
Dimension tables carry primary keys; fact tables carry composite primary
keys plus the item-key secondary indexes commonly created on MySQL — the
index landscape that produces the paper's Fig. 4 MySQL plan (drive the
fact, index-NLJ into dimensions) while Orca can cost bushy hash plans.
"""

from __future__ import annotations

from typing import Dict, List

from repro.catalog.schema import Column, Index, TableSchema
from repro.mysql_types import MySQLType as T


def _table(name: str, columns, indexes) -> TableSchema:
    return TableSchema(name, columns, indexes, schema="tpcds")


def build_tpcds_schema() -> List[TableSchema]:
    return [
        _table("date_dim", [
            Column.of("d_date_sk", T.LONGLONG, nullable=False),
            Column.of("d_date", T.DATE, nullable=False),
            Column.of("d_year", T.LONG, nullable=False),
            Column.of("d_moy", T.LONG, nullable=False),
            Column.of("d_dom", T.LONG, nullable=False),
            Column.of("d_qoy", T.LONG, nullable=False),
            Column.of("d_week_seq", T.LONG, nullable=False),
            Column.of("d_day_name", T.STRING, 9, nullable=False),
        ], [Index("PRIMARY", ("d_date_sk",), primary=True),
            Index("d_date_idx", ("d_date",)),
            Index("d_year_idx", ("d_year", "d_moy"))]),
        _table("item", [
            Column.of("i_item_sk", T.LONGLONG, nullable=False),
            Column.of("i_item_id", T.STRING, 16, nullable=False),
            Column.of("i_item_desc", T.VARCHAR, 100, nullable=False),
            Column.of("i_current_price", T.DOUBLE, nullable=False),
            Column.of("i_category", T.STRING, 20, nullable=False),
            Column.of("i_class", T.STRING, 20, nullable=False),
            Column.of("i_brand", T.STRING, 30, nullable=False),
            Column.of("i_manufact_id", T.LONG, nullable=False),
            Column.of("i_manufact", T.STRING, 30, nullable=False),
            Column.of("i_color", T.STRING, 12, nullable=False),
            Column.of("i_size", T.STRING, 10, nullable=False),
            Column.of("i_units", T.STRING, 10, nullable=False),
        ], [Index("PRIMARY", ("i_item_sk",), primary=True)]),
        _table("customer", [
            Column.of("c_customer_sk", T.LONGLONG, nullable=False),
            Column.of("c_customer_id", T.STRING, 16, nullable=False),
            Column.of("c_first_name", T.STRING, 20, nullable=False),
            Column.of("c_last_name", T.STRING, 30, nullable=False),
            Column.of("c_current_addr_sk", T.LONGLONG, nullable=False),
            Column.of("c_current_cdemo_sk", T.LONGLONG, nullable=False),
            Column.of("c_current_hdemo_sk", T.LONGLONG, nullable=False),
            Column.of("c_birth_year", T.LONG, nullable=False),
            Column.of("c_preferred_cust_flag", T.STRING, 1, nullable=False),
        ], [Index("PRIMARY", ("c_customer_sk",), primary=True),
            Index("c_addr_idx", ("c_current_addr_sk",))]),
        _table("customer_address", [
            Column.of("ca_address_sk", T.LONGLONG, nullable=False),
            Column.of("ca_state", T.STRING, 2, nullable=False),
            Column.of("ca_city", T.STRING, 30, nullable=False),
            Column.of("ca_county", T.STRING, 30, nullable=False),
            Column.of("ca_zip", T.STRING, 10, nullable=False),
            Column.of("ca_country", T.STRING, 20, nullable=False),
            Column.of("ca_gmt_offset", T.LONG, nullable=False),
        ], [Index("PRIMARY", ("ca_address_sk",), primary=True)]),
        _table("customer_demographics", [
            Column.of("cd_demo_sk", T.LONGLONG, nullable=False),
            Column.of("cd_gender", T.STRING, 1, nullable=False),
            Column.of("cd_marital_status", T.STRING, 1, nullable=False),
            Column.of("cd_education_status", T.STRING, 20, nullable=False),
            Column.of("cd_purchase_estimate", T.LONG, nullable=False),
            Column.of("cd_credit_rating", T.STRING, 10, nullable=False),
            Column.of("cd_dep_count", T.LONG, nullable=False),
        ], [Index("PRIMARY", ("cd_demo_sk",), primary=True)]),
        _table("household_demographics", [
            Column.of("hd_demo_sk", T.LONGLONG, nullable=False),
            Column.of("hd_income_band_sk", T.LONGLONG, nullable=False),
            Column.of("hd_buy_potential", T.STRING, 15, nullable=False),
            Column.of("hd_dep_count", T.LONG, nullable=False),
            Column.of("hd_vehicle_count", T.LONG, nullable=False),
        ], [Index("PRIMARY", ("hd_demo_sk",), primary=True)]),
        _table("income_band", [
            Column.of("ib_income_band_sk", T.LONGLONG, nullable=False),
            Column.of("ib_lower_bound", T.LONG, nullable=False),
            Column.of("ib_upper_bound", T.LONG, nullable=False),
        ], [Index("PRIMARY", ("ib_income_band_sk",), primary=True)]),
        _table("warehouse", [
            Column.of("w_warehouse_sk", T.LONGLONG, nullable=False),
            Column.of("w_warehouse_name", T.VARCHAR, 20, nullable=False),
            Column.of("w_state", T.STRING, 2, nullable=False),
        ], [Index("PRIMARY", ("w_warehouse_sk",), primary=True)]),
        _table("store", [
            Column.of("s_store_sk", T.LONGLONG, nullable=False),
            Column.of("s_store_name", T.VARCHAR, 20, nullable=False),
            Column.of("s_state", T.STRING, 2, nullable=False),
            Column.of("s_county", T.STRING, 30, nullable=False),
            Column.of("s_number_employees", T.LONG, nullable=False),
        ], [Index("PRIMARY", ("s_store_sk",), primary=True)]),
        _table("promotion", [
            Column.of("p_promo_sk", T.LONGLONG, nullable=False),
            Column.of("p_promo_name", T.STRING, 20, nullable=False),
            Column.of("p_channel_email", T.STRING, 1, nullable=False),
            Column.of("p_channel_tv", T.STRING, 1, nullable=False),
        ], [Index("PRIMARY", ("p_promo_sk",), primary=True)]),
        _table("store_sales", [
            Column.of("ss_sold_date_sk", T.LONGLONG, nullable=False),
            Column.of("ss_item_sk", T.LONGLONG, nullable=False),
            Column.of("ss_customer_sk", T.LONGLONG, nullable=False),
            Column.of("ss_cdemo_sk", T.LONGLONG, nullable=False),
            Column.of("ss_hdemo_sk", T.LONGLONG, nullable=False),
            Column.of("ss_addr_sk", T.LONGLONG, nullable=False),
            Column.of("ss_store_sk", T.LONGLONG, nullable=False),
            Column.of("ss_promo_sk", T.LONGLONG),
            Column.of("ss_ticket_number", T.LONGLONG, nullable=False),
            Column.of("ss_quantity", T.LONG, nullable=False),
            Column.of("ss_sales_price", T.DOUBLE, nullable=False),
            Column.of("ss_ext_sales_price", T.DOUBLE, nullable=False),
            Column.of("ss_net_profit", T.DOUBLE, nullable=False),
            Column.of("ss_wholesale_cost", T.DOUBLE, nullable=False),
        ], [Index("PRIMARY", ("ss_ticket_number", "ss_item_sk"),
                  primary=True),
            Index("ss_item_idx", ("ss_item_sk",)),
            Index("ss_date_idx", ("ss_sold_date_sk",))]),
        _table("store_returns", [
            Column.of("sr_returned_date_sk", T.LONGLONG, nullable=False),
            Column.of("sr_item_sk", T.LONGLONG, nullable=False),
            Column.of("sr_customer_sk", T.LONGLONG, nullable=False),
            Column.of("sr_store_sk", T.LONGLONG, nullable=False),
            Column.of("sr_ticket_number", T.LONGLONG, nullable=False),
            Column.of("sr_return_quantity", T.LONG, nullable=False),
            Column.of("sr_return_amt", T.DOUBLE, nullable=False),
            Column.of("sr_net_loss", T.DOUBLE, nullable=False),
        ], [Index("PRIMARY", ("sr_ticket_number", "sr_item_sk"),
                  primary=True),
            Index("sr_item_idx", ("sr_item_sk",)),
            Index("sr_customer_idx", ("sr_customer_sk",))]),
        _table("catalog_sales", [
            Column.of("cs_sold_date_sk", T.LONGLONG, nullable=False),
            Column.of("cs_ship_date_sk", T.LONGLONG, nullable=False),
            Column.of("cs_bill_customer_sk", T.LONGLONG, nullable=False),
            Column.of("cs_bill_cdemo_sk", T.LONGLONG, nullable=False),
            Column.of("cs_bill_hdemo_sk", T.LONGLONG, nullable=False),
            Column.of("cs_item_sk", T.LONGLONG, nullable=False),
            Column.of("cs_promo_sk", T.LONGLONG),
            Column.of("cs_order_number", T.LONGLONG, nullable=False),
            Column.of("cs_quantity", T.LONG, nullable=False),
            Column.of("cs_list_price", T.DOUBLE, nullable=False),
            Column.of("cs_sales_price", T.DOUBLE, nullable=False),
            Column.of("cs_ext_sales_price", T.DOUBLE, nullable=False),
            Column.of("cs_net_profit", T.DOUBLE, nullable=False),
            Column.of("cs_wholesale_cost", T.DOUBLE, nullable=False),
        ], [Index("PRIMARY", ("cs_order_number", "cs_item_sk"),
                  primary=True),
            Index("cs_item_idx", ("cs_item_sk",)),
            Index("cs_date_idx", ("cs_sold_date_sk",))]),
        _table("catalog_returns", [
            Column.of("cr_returned_date_sk", T.LONGLONG, nullable=False),
            Column.of("cr_item_sk", T.LONGLONG, nullable=False),
            Column.of("cr_returning_customer_sk", T.LONGLONG,
                      nullable=False),
            Column.of("cr_order_number", T.LONGLONG, nullable=False),
            Column.of("cr_return_quantity", T.LONG, nullable=False),
            Column.of("cr_return_amount", T.DOUBLE, nullable=False),
            Column.of("cr_net_loss", T.DOUBLE, nullable=False),
        ], [Index("PRIMARY", ("cr_order_number", "cr_item_sk"),
                  primary=True),
            Index("cr_item_idx", ("cr_item_sk",))]),
        _table("web_sales", [
            Column.of("ws_sold_date_sk", T.LONGLONG, nullable=False),
            Column.of("ws_item_sk", T.LONGLONG, nullable=False),
            Column.of("ws_bill_customer_sk", T.LONGLONG, nullable=False),
            Column.of("ws_order_number", T.LONGLONG, nullable=False),
            Column.of("ws_warehouse_sk", T.LONGLONG, nullable=False),
            Column.of("ws_quantity", T.LONG, nullable=False),
            Column.of("ws_sales_price", T.DOUBLE, nullable=False),
            Column.of("ws_ext_sales_price", T.DOUBLE, nullable=False),
            Column.of("ws_net_profit", T.DOUBLE, nullable=False),
        ], [Index("PRIMARY", ("ws_order_number", "ws_item_sk"),
                  primary=True),
            Index("ws_item_idx", ("ws_item_sk",)),
            Index("ws_date_idx", ("ws_sold_date_sk",))]),
        _table("web_returns", [
            Column.of("wr_returned_date_sk", T.LONGLONG, nullable=False),
            Column.of("wr_item_sk", T.LONGLONG, nullable=False),
            Column.of("wr_refunded_customer_sk", T.LONGLONG,
                      nullable=False),
            Column.of("wr_order_number", T.LONGLONG, nullable=False),
            Column.of("wr_return_quantity", T.LONG, nullable=False),
            Column.of("wr_return_amt", T.DOUBLE, nullable=False),
            Column.of("wr_net_loss", T.DOUBLE, nullable=False),
        ], [Index("PRIMARY", ("wr_order_number", "wr_item_sk"),
                  primary=True),
            Index("wr_item_idx", ("wr_item_sk",))]),
        _table("inventory", [
            Column.of("inv_date_sk", T.LONGLONG, nullable=False),
            Column.of("inv_item_sk", T.LONGLONG, nullable=False),
            Column.of("inv_warehouse_sk", T.LONGLONG, nullable=False),
            Column.of("inv_quantity_on_hand", T.LONG, nullable=False),
        ], [Index("PRIMARY",
                  ("inv_date_sk", "inv_item_sk", "inv_warehouse_sk"),
                  primary=True),
            Index("inv_item_idx", ("inv_item_sk",))]),
    ]


TPCDS_TABLES: Dict[str, TableSchema] = {
    schema.name: schema for schema in build_tpcds_schema()}


def create_tpcds_tables(db) -> None:
    for schema in build_tpcds_schema():
        db.create_table(schema)
