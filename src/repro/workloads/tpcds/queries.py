"""The 99-query TPC-DS-style suite.

The queries the paper's evaluation singles out are hand-written with their
original structure (adapted to this schema and the engine's dialect):

* **Q1 / Q81** — CTE + correlated average comparison (the ≥100X hash-join
  wins of Section 6.2);
* **Q6** — correlated per-category average;
* **Q9** — the bucketed CASE-with-subqueries of Listing 6;
* **Q14 / Q64** — CTE-heavy multi-way joins, the EXHAUSTIVE2 compile-time
  outliers of Section 6.3 (Q14's INTERSECT is pre-rewritten as joins, as
  the paper had to do);
* **Q17 / Q24 / Q31 / Q58** — multi-channel / multi-quarter joins;
* **Q32 / Q92** — "excess discount" correlated averages;
* **Q41** — the OR-factorization showcase (item self-join over
  ``i_manufact``);
* **Q72** — Listing 1's snowflake: catalog_sales against 10 dimensions
  with two LEFT OUTER JOINs.

The remaining numbers are filled by twelve parameterized families that
keep the suite's complexity mix: wide snowflakes, mid-size star joins,
derived-table rollups, semi/anti joins between channels, CTE pairs,
window rankings, and deliberately *short* queries — the population on
which Orca's compile overhead makes it slower (Fig. 12).  Parameters
derive deterministically from the query number.
"""

from __future__ import annotations

from typing import Dict

TPCDS_QUERIES: Dict[int, str] = {}

# ---------------------------------------------------------------------------
# Hand-written flagship queries
# ---------------------------------------------------------------------------

TPCDS_QUERIES[1] = """
WITH customer_total_return AS (
    SELECT sr_customer_sk AS ctr_customer_sk,
           sr_store_sk AS ctr_store_sk,
           SUM(sr_return_amt) AS ctr_total_return
    FROM store_returns, date_dim
    WHERE sr_returned_date_sk = d_date_sk AND d_year = 1998
    GROUP BY sr_customer_sk, sr_store_sk)
SELECT c_customer_id
FROM customer_total_return ctr1, store, customer
WHERE ctr1.ctr_total_return > (
      SELECT AVG(ctr_total_return) * 1.2
      FROM customer_total_return ctr2
      WHERE ctr1.ctr_store_sk = ctr2.ctr_store_sk)
  AND s_store_sk = ctr1.ctr_store_sk
  AND s_state = 'TX'
  AND ctr1.ctr_customer_sk = c_customer_sk
ORDER BY c_customer_id
LIMIT 100
"""

TPCDS_QUERIES[6] = """
SELECT a.ca_state AS state, COUNT(*) AS cnt
FROM customer_address a, customer c, store_sales s, date_dim d, item i
WHERE a.ca_address_sk = c.c_current_addr_sk
  AND c.c_customer_sk = s.ss_customer_sk
  AND s.ss_sold_date_sk = d.d_date_sk
  AND s.ss_item_sk = i.i_item_sk
  AND d.d_year = 1998 AND d.d_moy = 5
  AND i.i_current_price > 1.2 * (
      SELECT AVG(j.i_current_price)
      FROM item j
      WHERE j.i_category = i.i_category)
GROUP BY a.ca_state
HAVING COUNT(*) >= 3
ORDER BY cnt, state
LIMIT 100
"""

TPCDS_QUERIES[9] = """
SELECT CASE WHEN (SELECT COUNT(*) FROM store_sales
                  WHERE ss_quantity BETWEEN 1 AND 20) > 1500
            THEN (SELECT AVG(ss_ext_sales_price) FROM store_sales
                  WHERE ss_quantity BETWEEN 1 AND 20)
            ELSE (SELECT AVG(ss_net_profit) FROM store_sales
                  WHERE ss_quantity BETWEEN 1 AND 20) END AS bucket1,
       CASE WHEN (SELECT COUNT(*) FROM store_sales
                  WHERE ss_quantity BETWEEN 21 AND 40) > 1500
            THEN (SELECT AVG(ss_ext_sales_price) FROM store_sales
                  WHERE ss_quantity BETWEEN 21 AND 40)
            ELSE (SELECT AVG(ss_net_profit) FROM store_sales
                  WHERE ss_quantity BETWEEN 21 AND 40) END AS bucket2,
       CASE WHEN (SELECT COUNT(*) FROM store_sales
                  WHERE ss_quantity BETWEEN 41 AND 60) > 1500
            THEN (SELECT AVG(ss_ext_sales_price) FROM store_sales
                  WHERE ss_quantity BETWEEN 41 AND 60)
            ELSE (SELECT AVG(ss_net_profit) FROM store_sales
                  WHERE ss_quantity BETWEEN 41 AND 60) END AS bucket3,
       CASE WHEN (SELECT COUNT(*) FROM store_sales
                  WHERE ss_quantity BETWEEN 61 AND 80) > 1500
            THEN (SELECT AVG(ss_ext_sales_price) FROM store_sales
                  WHERE ss_quantity BETWEEN 61 AND 80)
            ELSE (SELECT AVG(ss_net_profit) FROM store_sales
                  WHERE ss_quantity BETWEEN 61 AND 80) END AS bucket4,
       CASE WHEN (SELECT COUNT(*) FROM store_sales
                  WHERE ss_quantity BETWEEN 81 AND 100) > 1500
            THEN (SELECT AVG(ss_ext_sales_price) FROM store_sales
                  WHERE ss_quantity BETWEEN 81 AND 100)
            ELSE (SELECT AVG(ss_net_profit) FROM store_sales
                  WHERE ss_quantity BETWEEN 81 AND 100) END AS bucket5
FROM promotion
WHERE p_promo_sk = 1
"""

TPCDS_QUERIES[14] = """
WITH cross_items AS (
    SELECT i_item_sk AS ci_item_sk
    FROM item,
         (SELECT DISTINCT ss_item_sk AS sold_item_sk
          FROM store_sales, date_dim
          WHERE ss_sold_date_sk = d_date_sk AND d_year = 1998) ss,
         (SELECT DISTINCT cs_item_sk AS c_sold_item_sk
          FROM catalog_sales, date_dim
          WHERE cs_sold_date_sk = d_date_sk AND d_year = 1998) cs,
         (SELECT DISTINCT ws_item_sk AS w_sold_item_sk
          FROM web_sales, date_dim
          WHERE ws_sold_date_sk = d_date_sk AND d_year = 1998) ws
    WHERE i_item_sk = ss.sold_item_sk
      AND i_item_sk = cs.c_sold_item_sk
      AND i_item_sk = ws.w_sold_item_sk),
avg_sales AS (
    SELECT AVG(quantity * list_price) AS average_sales
    FROM (SELECT ss_quantity AS quantity,
                 ss_sales_price AS list_price
          FROM store_sales, date_dim
          WHERE ss_sold_date_sk = d_date_sk AND d_year = 1998
          UNION ALL
          SELECT cs_quantity AS quantity, cs_list_price AS list_price
          FROM catalog_sales, date_dim
          WHERE cs_sold_date_sk = d_date_sk AND d_year = 1998
          UNION ALL
          SELECT ws_quantity AS quantity, ws_sales_price AS list_price
          FROM web_sales, date_dim
          WHERE ws_sold_date_sk = d_date_sk AND d_year = 1998) x)
SELECT channel, i_brand, SUM(sales) AS sum_sales
FROM (SELECT 'store' AS channel, i_brand,
             SUM(ss_quantity * ss_sales_price) AS sales
      FROM store_sales, item, date_dim, cross_items
      WHERE ss_item_sk = i_item_sk AND ss_sold_date_sk = d_date_sk
        AND ss_item_sk = ci_item_sk
        AND d_year = 1998 AND d_moy = 11
      GROUP BY i_brand
      HAVING SUM(ss_quantity * ss_sales_price) >
             (SELECT average_sales FROM avg_sales)
      UNION ALL
      SELECT 'catalog' AS channel, i_brand,
             SUM(cs_quantity * cs_list_price) AS sales
      FROM catalog_sales, item, date_dim, cross_items
      WHERE cs_item_sk = i_item_sk AND cs_sold_date_sk = d_date_sk
        AND cs_item_sk = ci_item_sk
        AND d_year = 1998 AND d_moy = 11
      GROUP BY i_brand
      HAVING SUM(cs_quantity * cs_list_price) >
             (SELECT average_sales FROM avg_sales)
      UNION ALL
      SELECT 'web' AS channel, i_brand,
             SUM(ws_quantity * ws_sales_price) AS sales
      FROM web_sales, item, date_dim, cross_items
      WHERE ws_item_sk = i_item_sk AND ws_sold_date_sk = d_date_sk
        AND ws_item_sk = ci_item_sk
        AND d_year = 1998 AND d_moy = 11
      GROUP BY i_brand
      HAVING SUM(ws_quantity * ws_sales_price) >
             (SELECT average_sales FROM avg_sales)) y
GROUP BY channel, i_brand
ORDER BY channel, i_brand
LIMIT 100
"""

TPCDS_QUERIES[17] = """
SELECT i_item_id, i_item_desc, s_state,
       COUNT(ss_quantity) AS store_sales_quantitycount,
       AVG(ss_quantity) AS store_sales_quantityave,
       COUNT(sr_return_quantity) AS store_returns_quantitycount,
       AVG(sr_return_quantity) AS store_returns_quantityave,
       COUNT(cs_quantity) AS catalog_sales_quantitycount,
       AVG(cs_quantity) AS catalog_sales_quantityave
FROM store_sales, store_returns, catalog_sales,
     date_dim d1, date_dim d2, date_dim d3, store, item
WHERE d1.d_qoy = 1 AND d1.d_year = 1998
  AND d1.d_date_sk = ss_sold_date_sk
  AND i_item_sk = ss_item_sk
  AND s_store_sk = ss_store_sk
  AND ss_customer_sk = sr_customer_sk
  AND ss_item_sk = sr_item_sk
  AND ss_ticket_number = sr_ticket_number
  AND sr_returned_date_sk = d2.d_date_sk
  AND d2.d_qoy BETWEEN 1 AND 3 AND d2.d_year = 1998
  AND sr_customer_sk = cs_bill_customer_sk
  AND sr_item_sk = cs_item_sk
  AND cs_sold_date_sk = d3.d_date_sk
  AND d3.d_qoy BETWEEN 1 AND 3 AND d3.d_year = 1998
GROUP BY i_item_id, i_item_desc, s_state
ORDER BY i_item_id, i_item_desc, s_state
LIMIT 100
"""

TPCDS_QUERIES[24] = """
WITH ssales AS (
    SELECT c_last_name, c_first_name, s_store_name, ca_state,
           i_color, i_current_price, i_manufact_id,
           SUM(ss_sales_price) AS netpaid
    FROM store_sales, store_returns, store, item, customer,
         customer_address
    WHERE ss_ticket_number = sr_ticket_number
      AND ss_item_sk = sr_item_sk
      AND ss_customer_sk = c_customer_sk
      AND ss_item_sk = i_item_sk
      AND ss_store_sk = s_store_sk
      AND c_current_addr_sk = ca_address_sk
      AND s_state = ca_state
    GROUP BY c_last_name, c_first_name, s_store_name, ca_state,
             i_color, i_current_price, i_manufact_id)
SELECT c_last_name, c_first_name, s_store_name, SUM(netpaid) AS paid
FROM ssales
WHERE i_color = 'red'
GROUP BY c_last_name, c_first_name, s_store_name
HAVING SUM(netpaid) > (SELECT 0.05 * AVG(netpaid) FROM ssales)
ORDER BY c_last_name, c_first_name, s_store_name
"""

TPCDS_QUERIES[31] = """
WITH ss AS (
    SELECT ca_county, d_qoy, d_year,
           SUM(ss_ext_sales_price) AS store_sales
    FROM store_sales, date_dim, customer_address
    WHERE ss_sold_date_sk = d_date_sk AND ss_addr_sk = ca_address_sk
    GROUP BY ca_county, d_qoy, d_year),
ws AS (
    SELECT ca_county, d_qoy, d_year,
           SUM(ws_ext_sales_price) AS web_sales
    FROM web_sales, date_dim, customer, customer_address
    WHERE ws_sold_date_sk = d_date_sk
      AND ws_bill_customer_sk = c_customer_sk
      AND c_current_addr_sk = ca_address_sk
    GROUP BY ca_county, d_qoy, d_year)
SELECT ss1.ca_county, ss1.d_year,
       ws2.web_sales / ws1.web_sales AS web_q1_q2_increase,
       ss2.store_sales / ss1.store_sales AS store_q1_q2_increase
FROM ss ss1, ss ss2, ss ss3, ws ws1, ws ws2, ws ws3
WHERE ss1.d_qoy = 1 AND ss1.d_year = 1998
  AND ss1.ca_county = ss2.ca_county
  AND ss2.d_qoy = 2 AND ss2.d_year = 1998
  AND ss2.ca_county = ss3.ca_county
  AND ss3.d_qoy = 3 AND ss3.d_year = 1998
  AND ss1.ca_county = ws1.ca_county
  AND ws1.d_qoy = 1 AND ws1.d_year = 1998
  AND ws1.ca_county = ws2.ca_county
  AND ws2.d_qoy = 2 AND ws2.d_year = 1998
  AND ws1.ca_county = ws3.ca_county
  AND ws3.d_qoy = 3 AND ws3.d_year = 1998
  AND ws1.web_sales > 0 AND ss1.store_sales > 0
  AND ws2.web_sales / ws1.web_sales >
      ss2.store_sales / ss1.store_sales
ORDER BY ss1.ca_county
"""

TPCDS_QUERIES[32] = """
SELECT SUM(cs_ext_sales_price) AS excess_discount_amount
FROM catalog_sales, item, date_dim
WHERE i_manufact_id = 9
  AND i_item_sk = cs_item_sk
  AND d_date BETWEEN DATE '1998-03-01'
      AND DATE '1998-03-01' + INTERVAL '90' DAY
  AND d_date_sk = cs_sold_date_sk
  AND cs_ext_sales_price > 1.3 * (
      SELECT AVG(cs_ext_sales_price)
      FROM catalog_sales
      WHERE cs_item_sk = i_item_sk)
LIMIT 100
"""

TPCDS_QUERIES[41] = """
SELECT DISTINCT i_item_desc
FROM item i1
WHERE i_manufact_id BETWEEN 1 AND 47
  AND (SELECT COUNT(*) AS item_cnt
       FROM item
       WHERE (item.i_manufact = i1.i_manufact
              AND item.i_category = 'Electronics'
              AND item.i_color = 'blue'
              AND item.i_units = 'Dozen'
              AND item.i_size = 'medium')
          OR (item.i_manufact = i1.i_manufact
              AND item.i_category = 'Home'
              AND item.i_color = 'green'
              AND item.i_units = 'Case'
              AND item.i_size = 'large')
          OR (item.i_manufact = i1.i_manufact
              AND item.i_category = 'Jewelry'
              AND item.i_color = 'yellow'
              AND item.i_units = 'Pound'
              AND item.i_size = 'extra large')
          OR (item.i_manufact = i1.i_manufact
              AND item.i_category = 'Men'
              AND item.i_color = 'white'
              AND item.i_units = 'Box'
              AND item.i_size = 'petite')) > 0
ORDER BY i_item_desc
LIMIT 100
"""

TPCDS_QUERIES[58] = """
WITH ss_items AS (
    SELECT i_item_id AS item_id, SUM(ss_ext_sales_price) AS ss_item_rev
    FROM store_sales, item, date_dim
    WHERE ss_item_sk = i_item_sk AND ss_sold_date_sk = d_date_sk
      AND d_year = 1998 AND d_moy = 6
    GROUP BY i_item_id),
cs_items AS (
    SELECT i_item_id AS item_id, SUM(cs_ext_sales_price) AS cs_item_rev
    FROM catalog_sales, item, date_dim
    WHERE cs_item_sk = i_item_sk AND cs_sold_date_sk = d_date_sk
      AND d_year = 1998 AND d_moy = 6
    GROUP BY i_item_id),
ws_items AS (
    SELECT i_item_id AS item_id, SUM(ws_ext_sales_price) AS ws_item_rev
    FROM web_sales, item, date_dim
    WHERE ws_item_sk = i_item_sk AND ws_sold_date_sk = d_date_sk
      AND d_year = 1998 AND d_moy = 6
    GROUP BY i_item_id)
SELECT ss_items.item_id, ss_item_rev, cs_item_rev, ws_item_rev,
       (ss_item_rev + cs_item_rev + ws_item_rev) / 3 AS average
FROM ss_items, cs_items, ws_items
WHERE ss_items.item_id = cs_items.item_id
  AND ss_items.item_id = ws_items.item_id
  AND ss_item_rev BETWEEN 0.5 * cs_item_rev AND 1.5 * cs_item_rev
  AND ss_item_rev BETWEEN 0.5 * ws_item_rev AND 1.5 * ws_item_rev
ORDER BY ss_items.item_id, ss_item_rev
LIMIT 100
"""

TPCDS_QUERIES[64] = """
WITH cs_ui AS (
    SELECT cs_item_sk,
           SUM(cs_ext_sales_price) AS sale,
           SUM(cr_return_amount) AS refund
    FROM catalog_sales, catalog_returns
    WHERE cs_item_sk = cr_item_sk
      AND cs_order_number = cr_order_number
    GROUP BY cs_item_sk
    HAVING SUM(cs_ext_sales_price) > 2 * SUM(cr_return_amount)),
cross_sales AS (
    SELECT i_item_desc AS product_name, i_item_sk AS item_sk,
           s_store_name AS store_name, ca1.ca_zip AS b_zip,
           ca2.ca_zip AS c_zip, d1.d_year AS syear,
           COUNT(*) AS cnt,
           SUM(ss_wholesale_cost) AS s1,
           SUM(ss_sales_price) AS s2
    FROM store_sales, store_returns, cs_ui,
         date_dim d1, date_dim d2, store, customer,
         customer_demographics cd1, customer_demographics cd2,
         household_demographics hd1,
         customer_address ca1, customer_address ca2,
         income_band ib1, item
    WHERE ss_store_sk = s_store_sk
      AND ss_sold_date_sk = d1.d_date_sk
      AND ss_customer_sk = c_customer_sk
      AND ss_cdemo_sk = cd1.cd_demo_sk
      AND ss_hdemo_sk = hd1.hd_demo_sk
      AND ss_addr_sk = ca1.ca_address_sk
      AND ss_item_sk = i_item_sk
      AND ss_item_sk = sr_item_sk
      AND ss_ticket_number = sr_ticket_number
      AND ss_item_sk = cs_ui.cs_item_sk
      AND c_current_cdemo_sk = cd2.cd_demo_sk
      AND c_current_addr_sk = ca2.ca_address_sk
      AND sr_returned_date_sk = d2.d_date_sk
      AND hd1.hd_income_band_sk = ib1.ib_income_band_sk
      AND cd1.cd_marital_status <> cd2.cd_marital_status
      AND i_current_price BETWEEN 10 AND 70
      AND i_color IN ('red', 'blue', 'green', 'white')
    GROUP BY i_item_desc, i_item_sk, s_store_name, ca1.ca_zip,
             ca2.ca_zip, d1.d_year)
SELECT cs1.product_name, cs1.store_name, cs1.syear,
       cs1.cnt, cs1.s1, cs1.s2, cs2.syear, cs2.cnt
FROM cross_sales cs1, cross_sales cs2
WHERE cs1.item_sk = cs2.item_sk
  AND cs1.syear = 1998
  AND cs2.syear = 1999
  AND cs2.cnt <= cs1.cnt
  AND cs1.store_name = cs2.store_name
ORDER BY cs1.product_name, cs1.store_name, cs2.cnt
LIMIT 100
"""

TPCDS_QUERIES[72] = """
SELECT i_item_desc, w_warehouse_name, d1.d_week_seq,
       SUM(CASE WHEN p_promo_sk IS NULL THEN 1 ELSE 0 END) AS no_promo,
       SUM(CASE WHEN p_promo_sk IS NOT NULL THEN 1 ELSE 0 END) AS promo,
       COUNT(*) AS total_cnt
FROM catalog_sales
JOIN inventory ON (cs_item_sk = inv_item_sk)
JOIN warehouse ON (w_warehouse_sk = inv_warehouse_sk)
JOIN item ON (i_item_sk = cs_item_sk)
JOIN customer_demographics ON (cs_bill_cdemo_sk = cd_demo_sk)
JOIN household_demographics ON (cs_bill_hdemo_sk = hd_demo_sk)
JOIN date_dim d1 ON (cs_sold_date_sk = d1.d_date_sk)
JOIN date_dim d2 ON (inv_date_sk = d2.d_date_sk)
JOIN date_dim d3 ON (cs_ship_date_sk = d3.d_date_sk)
LEFT OUTER JOIN promotion ON (cs_promo_sk = p_promo_sk)
LEFT OUTER JOIN catalog_returns ON
     (cr_item_sk = cs_item_sk AND cr_order_number = cs_order_number)
WHERE d1.d_week_seq = d2.d_week_seq
  AND inv_quantity_on_hand < cs_quantity
  AND d3.d_date > CAST(d1.d_date AS DATE) + INTERVAL '5' DAY
  AND hd_buy_potential = '501-1000'
  AND d1.d_year = 1998
  AND cd_marital_status = 'D'
GROUP BY i_item_desc, w_warehouse_name, d1.d_week_seq
ORDER BY total_cnt DESC, i_item_desc, w_warehouse_name, d1.d_week_seq
LIMIT 100
"""

TPCDS_QUERIES[81] = """
WITH customer_total_return AS (
    SELECT cr_returning_customer_sk AS ctr_customer_sk,
           ca_state AS ctr_state,
           SUM(cr_return_amount) AS ctr_total_return
    FROM catalog_returns, date_dim, customer, customer_address
    WHERE cr_returned_date_sk = d_date_sk AND d_year = 1998
      AND cr_returning_customer_sk = c_customer_sk
      AND c_current_addr_sk = ca_address_sk
    GROUP BY cr_returning_customer_sk, ca_state)
SELECT c_customer_id, c_first_name, c_last_name, ctr_total_return
FROM customer_total_return ctr1, customer, customer_address
WHERE ctr1.ctr_total_return > (
      SELECT AVG(ctr_total_return) * 1.2
      FROM customer_total_return ctr2
      WHERE ctr1.ctr_state = ctr2.ctr_state)
  AND ctr1.ctr_customer_sk = c_customer_sk
  AND ca_address_sk = c_current_addr_sk
  AND ca_state = 'CA'
ORDER BY c_customer_id, c_first_name, c_last_name, ctr_total_return
LIMIT 100
"""

TPCDS_QUERIES[92] = """
SELECT SUM(ws_ext_sales_price) AS excess_discount_amount
FROM web_sales, item, date_dim
WHERE i_manufact_id = 14
  AND i_item_sk = ws_item_sk
  AND d_date BETWEEN DATE '1998-05-01'
      AND DATE '1998-05-01' + INTERVAL '90' DAY
  AND d_date_sk = ws_sold_date_sk
  AND ws_ext_sales_price > 1.3 * (
      SELECT AVG(ws_ext_sales_price)
      FROM web_sales
      WHERE ws_item_sk = i_item_sk)
ORDER BY excess_discount_amount
LIMIT 100
"""


# ---------------------------------------------------------------------------
# Template families for the remaining query numbers
# ---------------------------------------------------------------------------

_FACTS = [
    # (fact, item fk, date fk, customer fk, qty, price, ext price)
    ("store_sales", "ss_item_sk", "ss_sold_date_sk", "ss_customer_sk",
     "ss_quantity", "ss_sales_price", "ss_ext_sales_price"),
    ("catalog_sales", "cs_item_sk", "cs_sold_date_sk",
     "cs_bill_customer_sk", "cs_quantity", "cs_sales_price",
     "cs_ext_sales_price"),
    ("web_sales", "ws_item_sk", "ws_sold_date_sk", "ws_bill_customer_sk",
     "ws_quantity", "ws_sales_price", "ws_ext_sales_price"),
]

_RETURNS = [
    ("store_returns", "sr_item_sk", "sr_ticket_number", "sr_return_amt"),
    ("catalog_returns", "cr_item_sk", "cr_order_number",
     "cr_return_amount"),
    ("web_returns", "wr_item_sk", "wr_order_number", "wr_return_amt"),
]

_CATEGORIES = ["Books", "Electronics", "Home", "Jewelry", "Men", "Music",
               "Shoes", "Sports", "Toys", "Women"]
_STATES = ["CA", "TX", "NY", "FL", "WA", "IL", "GA", "OH", "MI", "NC"]


def _family_star_agg(n: int) -> str:
    """Mid-size star join with dimension filters and aggregation."""
    fact, item_fk, date_fk, __, qty, price, __ = _FACTS[n % 3]
    category = _CATEGORIES[n % len(_CATEGORIES)]
    moy = n % 12 + 1
    return f"""
SELECT i_brand, d_moy, SUM({qty} * {price}) AS revenue, COUNT(*) AS cnt
FROM {fact}, item, date_dim
WHERE {item_fk} = i_item_sk
  AND {date_fk} = d_date_sk
  AND i_category = '{category}'
  AND d_year = 1998 AND d_moy = {moy}
GROUP BY i_brand, d_moy
ORDER BY revenue DESC, i_brand
LIMIT 100
"""


def _family_snowflake(n: int) -> str:
    """Wide snowflake: fact + customer chain + item + date (7-way)."""
    fact, item_fk, date_fk, cust_fk, qty, price, __ = _FACTS[n % 3]
    state = _STATES[n % len(_STATES)]
    gender = "MF"[n % 2]
    return f"""
SELECT i_category, ca_state, cd_gender,
       SUM({qty}) AS total_quantity, AVG({price}) AS avg_price
FROM {fact}, item, date_dim, customer, customer_address,
     customer_demographics
WHERE {item_fk} = i_item_sk
  AND {date_fk} = d_date_sk
  AND {cust_fk} = c_customer_sk
  AND c_current_addr_sk = ca_address_sk
  AND c_current_cdemo_sk = cd_demo_sk
  AND ca_state = '{state}'
  AND cd_gender = '{gender}'
  AND d_year = {1998 + n % 2}
GROUP BY i_category, ca_state, cd_gender
ORDER BY total_quantity DESC, i_category
LIMIT 100
"""


def _family_returns_join(n: int) -> str:
    """Sales joined to returns (composite-key join) with store rollup."""
    ret, ret_item, ret_order, ret_amt = _RETURNS[n % 3]
    fact, item_fk, date_fk, __, qty, __, ext = _FACTS[n % 3]
    order_col = {"store_sales": "ss_ticket_number",
                 "catalog_sales": "cs_order_number",
                 "web_sales": "ws_order_number"}[fact]
    return f"""
SELECT i_item_id, SUM({ext}) AS sales, SUM({ret_amt}) AS returns_amt
FROM {fact}, {ret}, item, date_dim
WHERE {item_fk} = {ret_item}
  AND {order_col} = {ret_order}
  AND {item_fk} = i_item_sk
  AND {date_fk} = d_date_sk
  AND d_year = {1998 + n % 2}
GROUP BY i_item_id
HAVING SUM({ret_amt}) > 0
ORDER BY returns_amt DESC, i_item_id
LIMIT 100
"""


def _family_exists(n: int) -> str:
    """Customers active in one channel but screened by EXISTS on another."""
    fact_a = _FACTS[n % 3]
    fact_b = _FACTS[(n + 1) % 3]
    negate = "NOT " if n % 2 == 0 else ""
    return f"""
SELECT c_last_name, c_first_name, COUNT(*) AS cnt
FROM customer, {fact_a[0]}, date_dim
WHERE c_customer_sk = {fact_a[3]}
  AND {fact_a[2]} = d_date_sk
  AND d_year = 1998 AND d_qoy = {n % 4 + 1}
  AND {negate}EXISTS (
      SELECT * FROM {fact_b[0]}
      WHERE {fact_b[3]} = c_customer_sk)
GROUP BY c_last_name, c_first_name
ORDER BY cnt DESC, c_last_name, c_first_name
LIMIT 100
"""


def _family_in_subquery(n: int) -> str:
    """IN over a filtered item subquery (semi-join conversion)."""
    fact, item_fk, date_fk, __, qty, price, __ = _FACTS[n % 3]
    color = ["red", "blue", "green", "yellow", "white",
             "black"][n % 6]
    return f"""
SELECT d_moy, COUNT(*) AS cnt, SUM({qty} * {price}) AS revenue
FROM {fact}, date_dim
WHERE {date_fk} = d_date_sk
  AND d_year = {1998 + n % 2}
  AND {item_fk} IN (SELECT i_item_sk FROM item
                    WHERE i_color = '{color}')
GROUP BY d_moy
ORDER BY d_moy
"""


def _family_derived_rollup(n: int) -> str:
    """Two-level aggregation through a derived table (Q13-ish shape)."""
    fact, item_fk, date_fk, cust_fk, qty, __, ext = _FACTS[n % 3]
    return f"""
SELECT buckets.spend_band, COUNT(*) AS customers
FROM (SELECT {cust_fk} AS cust, FLOOR(SUM({ext}) / 1000) AS spend_band
      FROM {fact}, date_dim
      WHERE {date_fk} = d_date_sk AND d_year = {1998 + n % 2}
      GROUP BY {cust_fk}) AS buckets
GROUP BY buckets.spend_band
ORDER BY customers DESC, buckets.spend_band
LIMIT 100
"""


def _family_correlated_avg(n: int) -> str:
    """Per-item excess comparison (Q32/Q92 family)."""
    fact, item_fk, date_fk, __, qty, price, ext = _FACTS[n % 3]
    manufact = n % 60 + 1
    return f"""
SELECT SUM({ext}) AS excess_amount
FROM {fact}, item, date_dim
WHERE i_manufact_id = {manufact}
  AND i_item_sk = {item_fk}
  AND d_date_sk = {date_fk}
  AND d_year = 1998
  AND {ext} > 1.2 * (
      SELECT AVG({ext}) FROM {fact}
      WHERE {item_fk} = i_item_sk)
LIMIT 100
"""


def _family_cte_pair(n: int) -> str:
    """Two channel CTEs joined on item (Q58 family, narrower)."""
    fact_a = _FACTS[n % 3]
    fact_b = _FACTS[(n + 1) % 3]
    moy = n % 12 + 1
    return f"""
WITH rev_a AS (
    SELECT i_item_id AS item_id, SUM({fact_a[6]}) AS rev
    FROM {fact_a[0]}, item, date_dim
    WHERE {fact_a[1]} = i_item_sk AND {fact_a[2]} = d_date_sk
      AND d_year = 1998 AND d_moy = {moy}
    GROUP BY i_item_id),
rev_b AS (
    SELECT i_item_id AS item_id, SUM({fact_b[6]}) AS rev
    FROM {fact_b[0]}, item, date_dim
    WHERE {fact_b[1]} = i_item_sk AND {fact_b[2]} = d_date_sk
      AND d_year = 1998 AND d_moy = {moy}
    GROUP BY i_item_id)
SELECT rev_a.item_id, rev_a.rev AS rev_a, rev_b.rev AS rev_b
FROM rev_a, rev_b
WHERE rev_a.item_id = rev_b.item_id
  AND rev_a.rev > 0.5 * rev_b.rev
ORDER BY rev_a.item_id
LIMIT 100
"""


def _family_window(n: int) -> str:
    """Ranking by revenue within a category via a window function."""
    fact, item_fk, date_fk, __, qty, price, ext = _FACTS[n % 3]
    return f"""
SELECT category, brand, revenue, rk
FROM (SELECT i_category AS category, i_brand AS brand,
             SUM({ext}) AS revenue,
             RANK() OVER (PARTITION BY i_category
                          ORDER BY SUM({ext}) DESC) AS rk
      FROM {fact}, item, date_dim
      WHERE {item_fk} = i_item_sk AND {date_fk} = d_date_sk
        AND d_year = {1998 + n % 2}
      GROUP BY i_category, i_brand) ranked
WHERE rk <= {n % 3 + 2}
ORDER BY category, rk, brand
LIMIT 100
"""


def _family_inventory(n: int) -> str:
    """Inventory coverage: fact joined with inventory and warehouse."""
    qoy = n % 4 + 1
    return f"""
SELECT w_warehouse_name, i_category,
       SUM(inv_quantity_on_hand) AS stock, COUNT(*) AS snapshots
FROM inventory, warehouse, item, date_dim
WHERE inv_warehouse_sk = w_warehouse_sk
  AND inv_item_sk = i_item_sk
  AND inv_date_sk = d_date_sk
  AND d_year = 1998 AND d_qoy = {qoy}
GROUP BY w_warehouse_name, i_category
ORDER BY stock DESC, w_warehouse_name, i_category
LIMIT 100
"""


def _family_union(n: int) -> str:
    """Cross-channel UNION ALL rollup."""
    moy = n % 12 + 1
    return f"""
SELECT channel, d_moy, SUM(revenue) AS total
FROM (SELECT 'store' AS channel, d_moy, ss_ext_sales_price AS revenue
      FROM store_sales, date_dim
      WHERE ss_sold_date_sk = d_date_sk
        AND d_year = 1998 AND d_moy = {moy}
      UNION ALL
      SELECT 'catalog' AS channel, d_moy, cs_ext_sales_price AS revenue
      FROM catalog_sales, date_dim
      WHERE cs_sold_date_sk = d_date_sk
        AND d_year = 1998 AND d_moy = {moy}
      UNION ALL
      SELECT 'web' AS channel, d_moy, ws_ext_sales_price AS revenue
      FROM web_sales, date_dim
      WHERE ws_sold_date_sk = d_date_sk
        AND d_year = 1998 AND d_moy = {moy}) channels
GROUP BY channel, d_moy
ORDER BY total DESC, channel
"""


def _family_short(n: int) -> str:
    """Deliberately short queries: 2-3 tables, cheap plans.

    These give the suite the population of fast queries on which Orca's
    compile overhead is visible (Fig. 12: "Orca is slower only on short
    queries").
    """
    variant = n % 4
    if variant == 0:
        fact, item_fk, date_fk, __, qty, price, ext = _FACTS[n % 3]
        return f"""
SELECT d_moy, COUNT(*) AS cnt
FROM {fact}, date_dim
WHERE {date_fk} = d_date_sk AND d_year = {1998 + n % 2}
GROUP BY d_moy
ORDER BY d_moy
"""
    if variant == 1:
        return f"""
SELECT i_category, COUNT(*) AS items, AVG(i_current_price) AS avg_price
FROM item, promotion
WHERE i_item_sk = p_promo_sk + {n % 40}
GROUP BY i_category
ORDER BY items DESC, i_category
"""
    if variant == 2:
        state = _STATES[n % len(_STATES)]
        return f"""
SELECT ca_city, COUNT(*) AS customers
FROM customer, customer_address
WHERE c_current_addr_sk = ca_address_sk AND ca_state = '{state}'
GROUP BY ca_city
ORDER BY customers DESC, ca_city
LIMIT 20
"""
    return f"""
SELECT hd_buy_potential, AVG(ib_upper_bound) AS avg_upper
FROM household_demographics, income_band
WHERE hd_income_band_sk = ib_income_band_sk
  AND hd_vehicle_count > {n % 3}
GROUP BY hd_buy_potential
ORDER BY hd_buy_potential
"""


_FAMILIES = [
    _family_star_agg,
    _family_snowflake,
    _family_returns_join,
    _family_exists,
    _family_in_subquery,
    _family_derived_rollup,
    _family_correlated_avg,
    _family_cte_pair,
    _family_window,
    _family_inventory,
    _family_union,
    _family_short,
    _family_short,  # doubled: short queries are common in the suite
]


def _fill_remaining() -> None:
    slot = 0
    for number in range(1, 100):
        if number in TPCDS_QUERIES:
            continue
        family = _FAMILIES[slot % len(_FAMILIES)]
        TPCDS_QUERIES[number] = family(number)
        slot += 1


_fill_remaining()


def tpcds_query(number: int) -> str:
    """The text of TPC-DS query ``number`` (1-99)."""
    return TPCDS_QUERIES[number]
