"""A TPC-DS-style workload: snowflake schema, generator, and 99 queries."""

from repro.workloads.tpcds.schema import TPCDS_TABLES, create_tpcds_tables
from repro.workloads.tpcds.datagen import load_tpcds
from repro.workloads.tpcds.queries import TPCDS_QUERIES, tpcds_query

__all__ = [
    "TPCDS_QUERIES",
    "TPCDS_TABLES",
    "create_tpcds_tables",
    "load_tpcds",
    "tpcds_query",
]
