"""Synthetic TPC-DS data generator.

Two calendar years (1998-1999) of dated facts across the three channels,
plus monthly inventory snapshots.  Dimension domains follow the official
small value sets where the query suite depends on them: ``hd_buy_potential``
includes the '501-1000' band Q72 filters on; ``cd_marital_status`` includes
'D'; item has ~1/3 as many distinct ``i_manufact`` values as items, which
is the skew behind the paper's Q41 analysis ("the item table has 28000
rows, but only 999 distinct i_manufact values").
"""

from __future__ import annotations

import datetime
import random
from typing import Dict, List

_CATEGORIES = ["Books", "Electronics", "Home", "Jewelry", "Men", "Music",
               "Shoes", "Sports", "Toys", "Women"]
_CLASSES = ["accent", "bedding", "classical", "dresses", "fishing",
            "mens watch", "pants", "portable", "romance", "scanners"]
_COLORS = ["red", "blue", "green", "yellow", "white", "black", "purple",
           "orange", "pink", "brown", "gray", "ivory"]
_SIZES = ["small", "medium", "large", "extra large", "petite", "N/A"]
_UNITS = ["Each", "Dozen", "Case", "Pound", "Box", "Carton"]
_STATES = ["CA", "TX", "NY", "FL", "WA", "IL", "GA", "OH", "MI", "NC"]
_COUNTIES = [f"County {i}" for i in range(10)]
_BUY_POTENTIAL = ["0-500", "501-1000", "1001-5000", "5001-10000",
                  ">10000", "Unknown"]
_EDUCATION = ["Primary", "Secondary", "College", "2 yr Degree",
              "4 yr Degree", "Advanced Degree", "Unknown"]
_CREDIT = ["Low Risk", "Good", "High Risk", "Unknown"]
_DAY_NAMES = ["Monday", "Tuesday", "Wednesday", "Thursday", "Friday",
              "Saturday", "Sunday"]

#: Base row counts at scale=1.0.
BASE_ROWS = {
    "item": 300,
    "customer": 500,
    "customer_address": 250,
    "customer_demographics": 240,
    "household_demographics": 60,
    "income_band": 20,
    "warehouse": 6,
    "store": 12,
    "promotion": 35,
    "store_sales": 8000,
    "catalog_sales": 6000,
    "web_sales": 3000,
}

_FIRST_DAY = datetime.date(1998, 1, 1)
_N_DAYS = 730


def generate_tpcds(scale: float = 1.0, seed: int = 7
                   ) -> Dict[str, List[tuple]]:
    rng = random.Random(seed)
    counts = {name: max(4, int(base * scale))
              for name, base in BASE_ROWS.items()}
    data: Dict[str, List[tuple]] = {}

    # -- date_dim: two full years, skeys 1..730 -------------------------------
    dates = []
    for offset in range(_N_DAYS):
        day = _FIRST_DAY + datetime.timedelta(days=offset)
        dates.append((
            offset + 1, day, day.year, day.month, day.day,
            (day.month - 1) // 3 + 1, offset // 7 + 1,
            _DAY_NAMES[day.weekday()]))
    data["date_dim"] = dates

    # -- dimensions ------------------------------------------------------------
    n_item = counts["item"]
    n_manufact = max(3, n_item // 3)  # the Q41 skew
    items = []
    for sk in range(1, n_item + 1):
        manufact_id = sk % n_manufact + 1
        items.append((
            sk, f"ITEM{sk:012d}", f"item description {sk % 97} no {sk}",
            round(0.5 + (sk % 100) * 0.9, 2),
            _CATEGORIES[sk % len(_CATEGORIES)],
            _CLASSES[sk % len(_CLASSES)],
            f"brand{sk % 25 + 1}",
            manufact_id, f"manufact{manufact_id}",
            _COLORS[sk % len(_COLORS)], _SIZES[sk % len(_SIZES)],
            _UNITS[sk % len(_UNITS)]))
    data["item"] = items

    n_addr = counts["customer_address"]
    data["customer_address"] = [
        (sk, _STATES[sk % len(_STATES)], f"City {sk % 40}",
         _COUNTIES[sk % len(_COUNTIES)], f"{10000 + sk % 900:05d}",
         "United States", -(5 + sk % 3))
        for sk in range(1, n_addr + 1)]

    n_cdemo = counts["customer_demographics"]
    data["customer_demographics"] = [
        (sk, "MF"[sk % 2], "MSDWU"[sk % 5],
         _EDUCATION[sk % len(_EDUCATION)], 500 * (sk % 20 + 1),
         _CREDIT[sk % len(_CREDIT)], sk % 7)
        for sk in range(1, n_cdemo + 1)]

    data["income_band"] = [
        (sk, (sk - 1) * 10000, sk * 10000 - 1)
        for sk in range(1, counts["income_band"] + 1)]

    n_hdemo = counts["household_demographics"]
    data["household_demographics"] = [
        (sk, sk % counts["income_band"] + 1,
         _BUY_POTENTIAL[sk % len(_BUY_POTENTIAL)], sk % 10, sk % 5)
        for sk in range(1, n_hdemo + 1)]

    n_customer = counts["customer"]
    data["customer"] = [
        (sk, f"CUST{sk:012d}", f"First{sk % 60}", f"Last{sk % 120}",
         sk % n_addr + 1, sk % n_cdemo + 1, sk % n_hdemo + 1,
         1930 + sk % 65, "YN"[sk % 2])
        for sk in range(1, n_customer + 1)]

    data["warehouse"] = [
        (sk, f"Warehouse {sk}", _STATES[sk % len(_STATES)])
        for sk in range(1, counts["warehouse"] + 1)]
    data["store"] = [
        (sk, f"Store {sk}", _STATES[sk % len(_STATES)],
         _COUNTIES[sk % len(_COUNTIES)], 50 + sk * 13 % 250)
        for sk in range(1, counts["store"] + 1)]
    data["promotion"] = [
        (sk, f"promo{sk}", "YN"[sk % 2], "NY"[sk % 3 == 0])
        for sk in range(1, counts["promotion"] + 1)]

    # -- sales facts -------------------------------------------------------------
    def sale_amounts():
        quantity = rng.randrange(1, 100)
        wholesale = round(rng.uniform(1.0, 70.0), 2)
        price = round(wholesale * rng.uniform(1.0, 2.2), 2)
        ext = round(price * quantity, 2)
        profit = round((price - wholesale) * quantity, 2)
        return quantity, price, ext, profit, wholesale

    n_store = counts["store_sales"]
    store_sales = []
    store_returns = []
    for ticket in range(1, n_store + 1):
        quantity, price, ext, profit, wholesale = sale_amounts()
        item_sk = rng.randrange(1, n_item + 1)
        row = (
            rng.randrange(1, _N_DAYS + 1), item_sk,
            rng.randrange(1, n_customer + 1),
            rng.randrange(1, n_cdemo + 1), rng.randrange(1, n_hdemo + 1),
            rng.randrange(1, n_addr + 1),
            rng.randrange(1, counts["store"] + 1),
            rng.randrange(1, counts["promotion"] + 1)
            if rng.random() < 0.5 else None,
            ticket, quantity, price, ext, profit, wholesale)
        store_sales.append(row)
        if rng.random() < 0.10:
            return_qty = rng.randrange(1, quantity + 1)
            store_returns.append((
                min(_N_DAYS, row[0] + rng.randrange(1, 60)), item_sk,
                row[2], row[6], ticket, return_qty,
                round(price * return_qty, 2),
                round(price * return_qty * 0.5, 2)))
    data["store_sales"] = store_sales
    data["store_returns"] = store_returns

    n_catalog = counts["catalog_sales"]
    catalog_sales = []
    catalog_returns = []
    for order in range(1, n_catalog + 1):
        quantity, price, ext, profit, wholesale = sale_amounts()
        item_sk = rng.randrange(1, n_item + 1)
        sold = rng.randrange(1, _N_DAYS - 60)
        row = (
            sold, min(_N_DAYS, sold + rng.randrange(2, 60)),
            rng.randrange(1, n_customer + 1),
            rng.randrange(1, n_cdemo + 1), rng.randrange(1, n_hdemo + 1),
            item_sk,
            rng.randrange(1, counts["promotion"] + 1)
            if rng.random() < 0.5 else None,
            order, quantity, round(price * 1.2, 2), price, ext, profit,
            wholesale)
        catalog_sales.append(row)
        if rng.random() < 0.10:
            return_qty = rng.randrange(1, quantity + 1)
            catalog_returns.append((
                min(_N_DAYS, sold + rng.randrange(5, 90)), item_sk,
                row[2], order, return_qty,
                round(price * return_qty, 2),
                round(price * return_qty * 0.5, 2)))
    data["catalog_sales"] = catalog_sales
    data["catalog_returns"] = catalog_returns

    n_web = counts["web_sales"]
    web_sales = []
    web_returns = []
    for order in range(1, n_web + 1):
        quantity, price, ext, profit, wholesale = sale_amounts()
        item_sk = rng.randrange(1, n_item + 1)
        row = (
            rng.randrange(1, _N_DAYS + 1), item_sk,
            rng.randrange(1, n_customer + 1), order,
            rng.randrange(1, counts["warehouse"] + 1),
            quantity, price, ext, profit)
        web_sales.append(row)
        if rng.random() < 0.10:
            return_qty = rng.randrange(1, quantity + 1)
            web_returns.append((
                min(_N_DAYS, row[0] + rng.randrange(1, 60)), item_sk,
                row[2], order, return_qty,
                round(price * return_qty, 2),
                round(price * return_qty * 0.5, 2)))
    data["web_sales"] = web_sales
    data["web_returns"] = web_returns

    # -- inventory: monthly snapshots per (item, warehouse) ---------------------
    inventory = []
    month_firsts = [sk for sk, __, __, __, dom, __, __, __ in dates
                    if dom == 1]
    warehouses = range(1, counts["warehouse"] + 1)
    for date_sk in month_firsts:
        for item_sk in range(1, n_item + 1):
            for warehouse_sk in warehouses:
                if (item_sk + warehouse_sk + date_sk) % 2 == 0:
                    continue  # thin the snapshot for engine-friendliness
                inventory.append((date_sk, item_sk, warehouse_sk,
                                  rng.randrange(0, 1000)))
    data["inventory"] = inventory
    return data


def load_tpcds(db, scale: float = 1.0, seed: int = 7,
               analyze: bool = True) -> None:
    """Create, populate, and analyze the TPC-DS tables in a Database."""
    from repro.workloads.tpcds.schema import create_tpcds_tables

    create_tpcds_tables(db)
    for name, rows in generate_tpcds(scale, seed).items():
        db.load(name, rows)
    if analyze:
        db.analyze()
