"""Benchmark workloads: TPC-H / TPC-DS style schemas, data, and queries,
plus synthetic wide-join topologies (:mod:`repro.workloads.joins`)."""
