"""Benchmark workloads: TPC-H and TPC-DS style schemas, data, and queries."""
