"""A TPC-H-style workload: 8-table schema, generator, and the 22 queries."""

from repro.workloads.tpch.schema import TPCH_TABLES, create_tpch_tables
from repro.workloads.tpch.datagen import load_tpch
from repro.workloads.tpch.queries import TPCH_QUERIES, tpch_query

__all__ = [
    "TPCH_QUERIES",
    "TPCH_TABLES",
    "create_tpch_tables",
    "load_tpch",
    "tpch_query",
]
