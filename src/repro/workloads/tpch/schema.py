"""The TPC-H schema (8 tables) with MySQL-style indexing.

Primary keys and foreign-key indexes follow the usual MySQL TPC-H setup;
``lineitem_fk2`` (on ``l_partkey``) is the index the paper's Listing 7
plan probes.  Fact tables carry FK indexes — which is precisely what lets
the MySQL optimizer chase index nested-loop plans everywhere while Orca
costs hash joins against them.
"""

from __future__ import annotations

from typing import Dict, List

from repro.catalog.schema import Column, Index, TableSchema
from repro.mysql_types import MySQLType as T


def _table(name: str, columns, indexes) -> TableSchema:
    return TableSchema(name, columns, indexes, schema="tpch")


def build_tpch_schema() -> List[TableSchema]:
    """The eight TPC-H table schemas."""
    return [
        _table("region", [
            Column.of("r_regionkey", T.LONG, nullable=False),
            Column.of("r_name", T.STRING, 25, nullable=False),
            Column.of("r_comment", T.VARCHAR, 152),
        ], [Index("PRIMARY", ("r_regionkey",), primary=True)]),
        _table("nation", [
            Column.of("n_nationkey", T.LONG, nullable=False),
            Column.of("n_name", T.STRING, 25, nullable=False),
            Column.of("n_regionkey", T.LONG, nullable=False),
            Column.of("n_comment", T.VARCHAR, 152),
        ], [Index("PRIMARY", ("n_nationkey",), primary=True),
            Index("nation_fk1", ("n_regionkey",))]),
        _table("supplier", [
            Column.of("s_suppkey", T.LONGLONG, nullable=False),
            Column.of("s_name", T.STRING, 25, nullable=False),
            Column.of("s_address", T.VARCHAR, 40, nullable=False),
            Column.of("s_nationkey", T.LONG, nullable=False),
            Column.of("s_phone", T.STRING, 15, nullable=False),
            Column.of("s_acctbal", T.DOUBLE, nullable=False),
            Column.of("s_comment", T.VARCHAR, 101, nullable=False),
        ], [Index("PRIMARY", ("s_suppkey",), primary=True),
            Index("supplier_fk1", ("s_nationkey",))]),
        _table("customer", [
            Column.of("c_custkey", T.LONGLONG, nullable=False),
            Column.of("c_name", T.VARCHAR, 25, nullable=False),
            Column.of("c_address", T.VARCHAR, 40, nullable=False),
            Column.of("c_nationkey", T.LONG, nullable=False),
            Column.of("c_phone", T.STRING, 15, nullable=False),
            Column.of("c_acctbal", T.DOUBLE, nullable=False),
            Column.of("c_mktsegment", T.STRING, 10, nullable=False),
            Column.of("c_comment", T.VARCHAR, 117, nullable=False),
        ], [Index("PRIMARY", ("c_custkey",), primary=True),
            Index("customer_fk1", ("c_nationkey",))]),
        _table("part", [
            Column.of("p_partkey", T.LONGLONG, nullable=False),
            Column.of("p_name", T.VARCHAR, 55, nullable=False),
            Column.of("p_mfgr", T.STRING, 25, nullable=False),
            Column.of("p_brand", T.STRING, 10, nullable=False),
            Column.of("p_type", T.VARCHAR, 25, nullable=False),
            Column.of("p_size", T.LONG, nullable=False),
            Column.of("p_container", T.STRING, 10, nullable=False),
            Column.of("p_retailprice", T.DOUBLE, nullable=False),
            Column.of("p_comment", T.VARCHAR, 23, nullable=False),
        ], [Index("PRIMARY", ("p_partkey",), primary=True)]),
        _table("partsupp", [
            Column.of("ps_partkey", T.LONGLONG, nullable=False),
            Column.of("ps_suppkey", T.LONGLONG, nullable=False),
            Column.of("ps_availqty", T.LONG, nullable=False),
            Column.of("ps_supplycost", T.DOUBLE, nullable=False),
            Column.of("ps_comment", T.VARCHAR, 199, nullable=False),
        ], [Index("PRIMARY", ("ps_partkey", "ps_suppkey"), primary=True),
            Index("partsupp_fk2", ("ps_suppkey",))]),
        _table("orders", [
            Column.of("o_orderkey", T.LONGLONG, nullable=False),
            Column.of("o_custkey", T.LONGLONG, nullable=False),
            Column.of("o_orderstatus", T.STRING, 1, nullable=False),
            Column.of("o_totalprice", T.DOUBLE, nullable=False),
            Column.of("o_orderdate", T.DATE, nullable=False),
            Column.of("o_orderpriority", T.STRING, 15, nullable=False),
            Column.of("o_clerk", T.STRING, 15, nullable=False),
            Column.of("o_shippriority", T.LONG, nullable=False),
            Column.of("o_comment", T.VARCHAR, 79, nullable=False),
        ], [Index("PRIMARY", ("o_orderkey",), primary=True),
            Index("orders_fk1", ("o_custkey",)),
            Index("orders_dt", ("o_orderdate",))]),
        _table("lineitem", [
            Column.of("l_orderkey", T.LONGLONG, nullable=False),
            Column.of("l_partkey", T.LONGLONG, nullable=False),
            Column.of("l_suppkey", T.LONGLONG, nullable=False),
            Column.of("l_linenumber", T.LONG, nullable=False),
            Column.of("l_quantity", T.DOUBLE, nullable=False),
            Column.of("l_extendedprice", T.DOUBLE, nullable=False),
            Column.of("l_discount", T.DOUBLE, nullable=False),
            Column.of("l_tax", T.DOUBLE, nullable=False),
            Column.of("l_returnflag", T.STRING, 1, nullable=False),
            Column.of("l_linestatus", T.STRING, 1, nullable=False),
            Column.of("l_shipdate", T.DATE, nullable=False),
            Column.of("l_commitdate", T.DATE, nullable=False),
            Column.of("l_receiptdate", T.DATE, nullable=False),
            Column.of("l_shipinstruct", T.STRING, 25, nullable=False),
            Column.of("l_shipmode", T.STRING, 10, nullable=False),
            Column.of("l_comment", T.VARCHAR, 44, nullable=False),
        ], [Index("PRIMARY", ("l_orderkey", "l_linenumber"), primary=True),
            Index("lineitem_fk2", ("l_partkey",)),
            Index("lineitem_fk3", ("l_suppkey",)),
            Index("lineitem_sd", ("l_shipdate",))]),
    ]


TPCH_TABLES: Dict[str, TableSchema] = {
    schema.name: schema for schema in build_tpch_schema()}


def create_tpch_tables(db) -> None:
    """Create all TPC-H tables in a :class:`repro.database.Database`."""
    for schema in build_tpch_schema():
        db.create_table(schema)
