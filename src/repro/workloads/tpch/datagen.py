"""Synthetic TPC-H data generator.

Row counts follow the official per-scale-factor ratios, scaled down so the
pure-Python engine can execute the full 22-query suite in minutes (the
paper used SF 20 on a 4-node cluster; we keep the join-graph and
selectivity *structure* rather than the volume — see DESIGN.md).

Value distributions mirror dbgen where a query depends on them: dates span
1992-1998; priorities, segments, brands, containers, ship modes and
return flags cycle through the official small domains; ~1% of supplier
comments contain the "Customer...Complaints" pattern Q16 filters on.
"""

from __future__ import annotations

import datetime
import random
from typing import Dict, List

_REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]
_NATIONS = [
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1),
    ("EGYPT", 4), ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3),
    ("INDIA", 2), ("INDONESIA", 2), ("IRAN", 4), ("IRAQ", 4),
    ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0), ("MOROCCO", 0),
    ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3),
    ("UNITED KINGDOM", 3), ("UNITED STATES", 1),
]
_SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY",
             "HOUSEHOLD"]
_PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED",
               "5-LOW"]
_SHIP_MODES = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"]
_INSTRUCTIONS = ["DELIVER IN PERSON", "COLLECT COD", "NONE",
                 "TAKE BACK RETURN"]
_TYPES_1 = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"]
_TYPES_2 = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"]
_TYPES_3 = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"]
_CONTAINERS_1 = ["SM", "LG", "MED", "JUMBO", "WRAP"]
_CONTAINERS_2 = ["CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN",
                 "DRUM"]

_START = datetime.date(1992, 1, 1)
_DAYS = 2400  # through late 1998, like dbgen

#: Base row counts at scale=1.0 (our mini scale; official ratios kept).
BASE_ROWS = {
    "region": 5,
    "nation": 25,
    "supplier": 40,
    "customer": 300,
    "part": 400,
    "partsupp": 1600,
    "orders": 3000,
    "lineitem": 12000,
}


def generate_tpch(scale: float = 1.0, seed: int = 42
                  ) -> Dict[str, List[tuple]]:
    """Generate all eight tables; returns table name -> row list."""
    rng = random.Random(seed)
    counts = {name: max(1, int(base * scale)) if name not in
              ("region", "nation") else base
              for name, base in BASE_ROWS.items()}

    data: Dict[str, List[tuple]] = {}
    data["region"] = [(i, _REGIONS[i], f"region comment {i}")
                      for i in range(5)]
    data["nation"] = [(i, name, region, f"nation comment {i}")
                      for i, (name, region) in enumerate(_NATIONS)]

    n_supplier = counts["supplier"]
    suppliers = []
    for key in range(1, n_supplier + 1):
        comment = f"supplier comment {key}"
        # Deterministic ~3% "Customer ... Complaints" comments so TPC-H
        # Q16's NOT IN subquery is never vacuous at any scale.
        if key % 29 == 3:
            comment = f"blah Customer stuff Complaints blah {key}"
        elif key % 31 == 5:
            comment = f"blah Customer good Recommends blah {key}"
        suppliers.append((
            key, f"Supplier#{key:09d}", f"addr {key}",
            rng.randrange(25), f"{rng.randrange(10, 35)}-555-{key:04d}",
            round(rng.uniform(-999.99, 9999.99), 2), comment))
    data["supplier"] = suppliers

    n_customer = counts["customer"]
    customers = []
    for key in range(1, n_customer + 1):
        phone_country = rng.randrange(10, 35)
        customers.append((
            key, f"Customer#{key:09d}", f"addr {key}",
            rng.randrange(25), f"{phone_country}-555-{key:04d}",
            round(rng.uniform(-999.99, 9999.99), 2),
            _SEGMENTS[key % len(_SEGMENTS)], f"customer comment {key}"))
    data["customer"] = customers

    n_part = counts["part"]
    parts = []
    for key in range(1, n_part + 1):
        brand = f"Brand#{rng.randrange(1, 6)}{rng.randrange(1, 6)}"
        type_name = " ".join((rng.choice(_TYPES_1), rng.choice(_TYPES_2),
                              rng.choice(_TYPES_3)))
        container = " ".join((rng.choice(_CONTAINERS_1),
                              rng.choice(_CONTAINERS_2)))
        parts.append((
            key, f"part name {key % 50} {key}", f"Manufacturer#{key % 5 + 1}",
            brand, type_name, rng.randrange(1, 51), container,
            round(900 + (key % 200) + key / 10.0, 2),
            f"part comment {key}"))
    data["part"] = parts

    partsupp = []
    per_part = max(1, counts["partsupp"] // n_part)
    for part_key in range(1, n_part + 1):
        for i in range(per_part):
            supp_key = (part_key + i * (n_supplier // per_part + 1)) \
                % n_supplier + 1
            partsupp.append((
                part_key, supp_key, rng.randrange(1, 10000),
                round(rng.uniform(1.0, 1000.0), 2),
                f"partsupp comment {part_key}-{supp_key}"))
    data["partsupp"] = partsupp
    ps_pairs = [(row[0], row[1]) for row in partsupp]

    n_orders = counts["orders"]
    orders = []
    order_dates: Dict[int, datetime.date] = {}
    for key in range(1, n_orders + 1):
        order_date = _START + datetime.timedelta(days=rng.randrange(_DAYS))
        order_dates[key] = order_date
        orders.append((
            key, rng.randrange(1, n_customer + 1),
            rng.choice("OFP"), 0.0, order_date,
            _PRIORITIES[key % len(_PRIORITIES)],
            f"Clerk#{key % 100:09d}", 0, f"order comment {key}"))
    data["orders"] = orders

    n_lineitem = counts["lineitem"]
    lineitems = []
    per_order = max(1, n_lineitem // n_orders)
    line_counter = 0
    order_totals: Dict[int, float] = {}
    for order_key in range(1, n_orders + 1):
        lines = 1 + rng.randrange(per_order * 2 - 1) \
            if per_order > 1 else 1
        for line_number in range(1, lines + 1):
            line_counter += 1
            part_key, supp_key = ps_pairs[rng.randrange(len(ps_pairs))]
            quantity = float(rng.randrange(1, 51))
            extended = round(quantity * (900 + part_key % 200), 2)
            discount = round(rng.randrange(0, 11) / 100.0, 2)
            tax = round(rng.randrange(0, 9) / 100.0, 2)
            order_date = order_dates[order_key]
            ship_date = order_date + datetime.timedelta(
                days=rng.randrange(1, 122))
            commit_date = order_date + datetime.timedelta(
                days=rng.randrange(30, 91))
            receipt_date = ship_date + datetime.timedelta(
                days=rng.randrange(1, 31))
            return_flag = "R" if receipt_date <= datetime.date(1995, 6, 17) \
                and rng.random() < 0.5 else ("A" if rng.random() < 0.25
                                             else "N")
            line_status = "O" if ship_date > datetime.date(1995, 6, 17) \
                else "F"
            lineitems.append((
                order_key, part_key, supp_key, line_number, quantity,
                extended, discount, tax, return_flag, line_status,
                ship_date, commit_date, receipt_date,
                rng.choice(_INSTRUCTIONS), rng.choice(_SHIP_MODES),
                f"line comment {line_counter}"))
            order_totals[order_key] = order_totals.get(order_key, 0.0) \
                + extended * (1 - discount) * (1 + tax)
    data["lineitem"] = lineitems
    data["orders"] = [
        (row[0], row[1], row[2], round(order_totals.get(row[0], 0.0), 2),
         row[4], row[5], row[6], row[7], row[8])
        for row in orders]
    return data


def load_tpch(db, scale: float = 1.0, seed: int = 42,
              analyze: bool = True) -> None:
    """Create, populate, and analyze the TPC-H tables in a Database."""
    from repro.workloads.tpch.schema import create_tpch_tables

    create_tpch_tables(db)
    for name, rows in generate_tpch(scale, seed).items():
        db.load(name, rows)
    if analyze:
        db.analyze()
