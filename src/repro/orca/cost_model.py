"""Orca's cost model.

Duck-type compatible with :class:`repro.mysql_optimizer.cost.MySQLCostModel`
for the access-path helpers, plus join/aggregate formulas the MySQL side
deliberately lacks.  Two calibration points come straight from the paper:

* hash joins are *costed* (the whole point of delegating to Orca), and
* index lookups and hash joins carry "relatively high" unit costs
  (Section 9 notes Orca's cost model "— for example, relatively high index
  lookup and hash join costs — needs fine-tuning"), which is why Orca
  occasionally keeps a conservative index plan where MySQL's riskier
  materialisation pays off (Q16, Section 6.1).
"""

from __future__ import annotations

import math

from repro.storage.engine import ROWS_PER_PAGE

#: CPU cost of processing one row.
ROW_EVAL = 0.1
#: Sequentially prefetched page read.
SEQ_PAGE = 0.25
#: B-tree descent for one lookup — higher than MySQL's (see module doc),
#: and calibrated to the storage engine's simulated random-access cost
#: (~25 row evaluations per descent).
LOOKUP_BASE = 2.5
#: Per-row cost through an index.
INDEX_ROW = 0.5
#: Hash-table build cost per row.
HASH_BUILD_ROW = 0.18
#: Hash-table probe cost per row.
HASH_PROBE_ROW = 0.12
#: Per-comparison sort factor.
SORT_FACTOR = 0.015


class OrcaCostModel:
    """Cost formulas for the Cascades search.

    ``evaluations`` counts every formula application — the optimizer
    reports the per-block delta as the ``cost_evaluations`` span
    attribute and the ``orca.cost_evaluations`` histogram, one measure
    of search effort alongside memo groups and alternatives.
    """

    def __init__(self) -> None:
        self.evaluations = 0

    # -- access paths (same protocol as MySQLCostModel) -----------------------

    def table_scan_cost(self, rows: float) -> float:
        self.evaluations += 1
        pages = max(1.0, rows / ROWS_PER_PAGE)
        return pages * SEQ_PAGE + rows * ROW_EVAL

    def index_range_cost(self, matched_rows: float) -> float:
        self.evaluations += 1
        return LOOKUP_BASE + matched_rows * (INDEX_ROW + ROW_EVAL)

    def index_lookup_cost(self, matched_rows: float) -> float:
        self.evaluations += 1
        return LOOKUP_BASE + matched_rows * (INDEX_ROW + ROW_EVAL)

    def rescan_cost(self, inner_scan_cost: float) -> float:
        self.evaluations += 1
        return inner_scan_cost

    # -- joins ------------------------------------------------------------------

    def hash_join_cost(self, build_rows: float, probe_rows: float,
                       output_rows: float) -> float:
        self.evaluations += 1
        return (build_rows * (ROW_EVAL + HASH_BUILD_ROW)
                + probe_rows * (ROW_EVAL + HASH_PROBE_ROW)
                + output_rows * ROW_EVAL * 0.25)

    def index_nljoin_cost(self, outer_rows: float,
                          per_lookup_cost: float) -> float:
        self.evaluations += 1
        return outer_rows * per_lookup_cost

    # -- branch-and-bound floors ---------------------------------------------------
    #
    # Same formulas as the join costs above but *not* counted as
    # evaluations: the join search uses them as admissible lower bounds
    # to rule out candidate pairs without costing them.

    def hash_join_floor(self, build_rows: float, probe_rows: float,
                        output_rows: float) -> float:
        """Exactly ``hash_join_cost`` without the evaluation count."""
        return (build_rows * (ROW_EVAL + HASH_BUILD_ROW)
                + probe_rows * (ROW_EVAL + HASH_PROBE_ROW)
                + output_rows * ROW_EVAL * 0.25)

    def index_nljoin_floor(self, outer_rows: float) -> float:
        """No index lookup can cost less than ``LOOKUP_BASE``."""
        return outer_rows * LOOKUP_BASE

    def nljoin_rescan_cost(self, outer_rows: float,
                           inner_cost: float) -> float:
        self.evaluations += 1
        return outer_rows * inner_cost

    # -- aggregation / sort --------------------------------------------------------

    def sort_cost(self, rows: float) -> float:
        self.evaluations += 1
        if rows <= 1:
            return 0.0
        return rows * math.log2(rows) * SORT_FACTOR

    def stream_agg_cost(self, rows: float) -> float:
        self.evaluations += 1
        return rows * ROW_EVAL * 0.4

    def hash_agg_cost(self, rows: float, groups: float) -> float:
        self.evaluations += 1
        return rows * ROW_EVAL * 0.6 + groups * ROW_EVAL * 0.2

    def materialize_cost(self, rows: float) -> float:
        self.evaluations += 1
        return rows * ROW_EVAL * 0.5
