"""The Orca-style Cascades optimizer (memo, rules, cost-based search)."""

from repro.orca.operators import (
    LogicalGbAgg,
    LogicalGet,
    LogicalLimit,
    LogicalNAryJoin,
    LogicalOuterJoinSpec,
    LogicalSelect,
    LogicalSemiJoinSpec,
    OrcaLogicalBlock,
    PhysicalOp,
    TableDescriptor,
)
from repro.orca.optimizer import OrcaConfig, OrcaOptimizer

__all__ = [
    "LogicalGbAgg",
    "LogicalGet",
    "LogicalLimit",
    "LogicalNAryJoin",
    "LogicalOuterJoinSpec",
    "LogicalSelect",
    "LogicalSemiJoinSpec",
    "OrcaConfig",
    "OrcaLogicalBlock",
    "OrcaOptimizer",
    "PhysicalOp",
    "TableDescriptor",
]
