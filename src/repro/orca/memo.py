"""The memo: groups of equivalent expressions with their best plans.

A faithful-in-spirit Cascades memo (Section 8 traces the lineage to
Volcano/Cascades): each group represents the set of plans producing the
same logical result — here keyed by the set of join units covered — and
records the cheapest physical expression found for it.  Group ids appear
in physical operators, which is how the paper's Fig. 6 annotates Orca's
Q17 plan ("the numbers after the physical operator names are the 'memo'
group IDs").

The join-order searches populate the memo; `stats` caches per-group
cardinalities so exploration work is shared across alternatives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional

from repro.orca.operators import PhysicalOp


@dataclass
class Group:
    """One memo group: the plans covering a fixed set of join units."""

    group_id: int
    key: FrozenSet[int]
    best_cost: float = float("inf")
    best_plan: Optional[PhysicalOp] = None
    rows: float = 0.0
    #: How many alternative expressions were *costed* for this group — a
    #: measure of exploration effort (used by compile-time accounting).
    #: Re-offers of already-costed plans (``costed=False``) don't count
    #: here, so compile-budget accounting isn't double-counted.
    alternatives: int = 0
    #: Every ``offer()`` call, including re-offers of known plans.
    offered: int = 0
    #: Candidates the search skipped because their cost lower bound
    #: already exceeded this group's best complete plan (branch-and-bound
    #: pruning); they were never costed or offered.
    pruned: int = 0

    def offer(self, plan: PhysicalOp, cost: float,
              costed: bool = True) -> bool:
        """Record a candidate plan; keep it if it is the cheapest so far.

        ``costed=False`` marks a re-offer of a plan whose cost the caller
        already knew (seed plans, chain re-walks): it still competes for
        ``best_plan`` but doesn't inflate the ``alternatives`` effort
        counter.
        """
        self.offered += 1
        if costed:
            self.alternatives += 1
        if cost < self.best_cost:
            self.best_cost = cost
            self.best_plan = plan
            plan.group_id = self.group_id
            return True
        return False

    def note_pruned(self, count: int = 1) -> None:
        """Record candidates skipped by cost-bound pruning."""
        self.pruned += count


class Memo:
    """Group registry keyed by covered-unit sets."""

    def __init__(self) -> None:
        self._groups: Dict[FrozenSet[int], Group] = {}
        self._next_id = 0

    def group(self, key: FrozenSet[int]) -> Group:
        existing = self._groups.get(key)
        if existing is not None:
            return existing
        group = Group(self._next_id, key)
        self._next_id += 1
        self._groups[key] = group
        return group

    def has_group(self, key: FrozenSet[int]) -> bool:
        return key in self._groups

    @property
    def group_count(self) -> int:
        return len(self._groups)

    @property
    def total_alternatives(self) -> int:
        return sum(group.alternatives for group in self._groups.values())

    @property
    def total_offered(self) -> int:
        return sum(group.offered for group in self._groups.values())

    @property
    def total_pruned(self) -> int:
        return sum(group.pruned for group in self._groups.values())

    def stats(self) -> dict:
        """Search-effort summary for the observability layer."""
        return {
            "groups": self.group_count,
            "alternatives": self.total_alternatives,
            "offered": self.total_offered,
            "pruned": self.total_pruned,
        }
