"""Orca preprocessing rewrites applied before the Cascades search.

Three rewrites the paper credits for Orca's wins, none of which the MySQL
optimizer performs:

* **OR factorization** (Section 7, lesson 4; the Q41 analysis in
  Section 6.2): ``(a = b AND x) OR (a = b AND y)`` becomes
  ``(a = b) AND (x OR y)``, which exposes hash-join keys and halves
  redundant predicate evaluation.

* **Correlated-scalar-subquery conversion to derived tables**
  (Section 4.2.3's first special case, and the apply/join swap rules of
  Section 7 item 1): a ``col < (SELECT agg(...) FROM t WHERE t.k =
  outer.k)`` conjunct becomes a derived table placed in the join order and
  materialised per outer row — the paper's Listing 7 plan, with its
  ``derived_1_2`` temporary and "invalidate on row from part" annotation.

* **CTE predicate pushdown** (Section 7, lesson 3): filters that different
  consumers apply to the same CTE are OR-ed together and pushed into the
  single producer, shrinking the materialisation.  This was functionality
  that "had to be added to MySQL" for the integration.

Rewrites *mutate* the resolved blocks; the MySQL plan refinement that later
consumes the Orca skeleton sees the rewritten predicates, mirroring how
the integration broadened MySQL's factorization scope.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.sql import ast
from repro.sql.blocks import (
    EntryKind,
    OutputColumn,
    QueryBlock,
    TableEntry,
)
from repro.sql.rewrite import expr_key, substitute_entry_columns


def preprocess_block(block: QueryBlock, enable_or_factorization: bool = True,
                     enable_derived_subqueries: bool = True) -> None:
    """Apply Orca preprocessing to one block tree (bottom-up, mutating)."""
    for sub in _sub_blocks(block):
        preprocess_block(sub, enable_or_factorization,
                         enable_derived_subqueries)
    if enable_or_factorization:
        factor_or_predicates(block)
    if enable_derived_subqueries:
        convert_scalar_subqueries_to_derived(block)


def _sub_blocks(block: QueryBlock) -> List[QueryBlock]:
    subs: List[QueryBlock] = []
    for binding in block.cte_bindings:
        subs.append(binding.block)
    for entry in block.entries:
        if entry.sub_block is not None:
            subs.append(entry.sub_block)
    subs.extend(block.all_subquery_blocks())
    for __, side in block.set_ops:
        subs.append(side)
    return subs


# ---------------------------------------------------------------------------
# OR factorization
# ---------------------------------------------------------------------------

def factor_or_predicates(block: QueryBlock) -> int:
    """Factor common conjuncts out of OR predicates in the WHERE pool.

    Returns the number of predicates factored (used by tests and the
    ablation bench).
    """
    factored = 0
    new_pool: List[ast.Expr] = []
    for conjunct in block.where_conjuncts:
        pieces = factor_one_or(conjunct)
        if pieces is None:
            new_pool.append(conjunct)
        else:
            factored += 1
            new_pool.extend(pieces)
    block.where_conjuncts = new_pool
    return factored


def factor_one_or(conjunct: ast.Expr) -> Optional[List[ast.Expr]]:
    """Factor one OR predicate; None when nothing can be factored."""
    disjuncts = ast.disjuncts_of(conjunct)
    if len(disjuncts) < 2:
        return None
    conjunct_lists = [ast.conjuncts_of(d) for d in disjuncts]
    first_by_key = {}
    for piece in conjunct_lists[0]:
        first_by_key.setdefault(expr_key(piece), piece)
    common_keys = set(first_by_key)
    for pieces in conjunct_lists[1:]:
        common_keys &= {expr_key(piece) for piece in pieces}
    if not common_keys:
        return None
    # Preserve the original left-to-right order of the common factors.
    common = [piece for piece in conjunct_lists[0]
              if expr_key(piece) in common_keys]
    common_once = []
    seen = set()
    for piece in common:
        key = expr_key(piece)
        if key not in seen:
            seen.add(key)
            common_once.append(piece)
    remainders = []
    for pieces in conjunct_lists:
        rest = [piece for piece in pieces
                if expr_key(piece) not in common_keys]
        remainder = ast.make_conjunction(rest)
        if remainder is None:
            # (common AND x) OR common  ==  common
            return common_once
        remainders.append(remainder)
    return common_once + [ast.make_disjunction(remainders)]


# ---------------------------------------------------------------------------
# Scalar subquery -> derived table (the Q17 path)
# ---------------------------------------------------------------------------

def convert_scalar_subqueries_to_derived(block: QueryBlock) -> int:
    """Convert comparable scalar subqueries into derived-table joins.

    Only *top-level comparison conjuncts* are converted; subqueries inside
    CASE expressions stay as subqueries — the converter override of
    Section 4.2.3 (TPC-DS Q9) that avoids redundant bucket evaluation.

    The derived table keeps its correlation; the join order will place it
    after its sources and the executor re-materialises it per outer row
    ("invalidate on row from ..."), matching Listing 7.
    """
    converted = 0
    new_pool: List[ast.Expr] = []
    for conjunct in block.where_conjuncts:
        replacement = _convert_one(block, conjunct)
        if replacement is None:
            new_pool.append(conjunct)
        else:
            converted += 1
            new_pool.extend(replacement)
    block.where_conjuncts = new_pool
    return converted


def _convert_one(block: QueryBlock,
                 conjunct: ast.Expr) -> Optional[List[ast.Expr]]:
    if not (isinstance(conjunct, ast.BinaryExpr)
            and conjunct.op in ast.COMPARISON_OPS):
        return None
    left, right, op = conjunct.left, conjunct.right, conjunct.op
    if isinstance(left, ast.ScalarSubquery) and \
            not isinstance(right, ast.ScalarSubquery):
        left, right = right, left
        op = ast.COMMUTED_COMPARISON[op]
    if not isinstance(right, ast.ScalarSubquery):
        return None
    if any(isinstance(node, ast.ScalarSubquery) for node in left.walk()):
        return None
    sub = right.block
    if not isinstance(sub, QueryBlock) or not _convertible(sub):
        return None

    context = block.context
    alias = f"derived_{block.block_id}_{sub.block_id}"
    entry = context.new_entry(EntryKind.DERIVED, alias, alias, block)
    entry.sub_block = sub
    columns = sub.output_columns()
    # MySQL names the materialised column Name_exp_1 (paper Listing 7).
    entry.set_columns([OutputColumn(f"Name_exp_{i + 1}", col.type, True)
                       for i, col in enumerate(columns)])
    block.entries.append(entry)
    value_ref = ast.ColumnRef(alias, "Name_exp_1", entry.entry_id, 0)
    value_ref.resolved_type = columns[0].type
    return [ast.BinaryExpr(op, left, value_ref)]


def _convertible(sub: QueryBlock) -> bool:
    """A scalar subquery convertible to a (correlated) derived table."""
    return (len(sub.select_items) == 1
            and sub.aggregated
            and not sub.group_by
            and not sub.set_ops
            and not sub.windows
            and sub.limit is None
            and bool(sub.entries))


# ---------------------------------------------------------------------------
# CTE predicate pushdown
# ---------------------------------------------------------------------------

def push_cte_predicates(block: QueryBlock) -> int:
    """OR consumer-side filters together and push them into CTE producers.

    Example from the paper: consumers filtering ``a = 5`` and ``a = 6``
    cause ``a = 5 OR a = 6`` to be pushed into the producer.  The original
    consumer filters stay in place (they still apply per consumer); the
    pushed OR just shrinks the shared materialisation.  Returns the number
    of producers that received a pushed predicate.
    """
    pushed = 0
    for binding in _all_bindings(block):
        consumers = _consumers_of(binding, block)
        if not consumers:
            continue
        per_consumer: List[ast.Expr] = []
        for consumer in consumers:
            conjuncts = _pushable_conjuncts(consumer, binding)
            if not conjuncts:
                per_consumer = []
                break
            per_consumer.append(_materialise(conjuncts, consumer, binding))
        if not per_consumer:
            continue
        combined = ast.make_disjunction(per_consumer)
        binding.block.where_conjuncts.append(combined)
        pushed += 1
    return pushed


def _all_bindings(block: QueryBlock):
    bindings = []
    stack = [block]
    seen = set()
    while stack:
        current = stack.pop()
        if current.block_id in seen:
            continue
        seen.add(current.block_id)
        bindings.extend(current.cte_bindings)
        stack.extend(_sub_blocks(current))
    return bindings


def _consumers_of(binding, block: QueryBlock) -> List[TableEntry]:
    consumers: List[TableEntry] = []
    stack = [block]
    seen = set()
    while stack:
        current = stack.pop()
        if current.block_id in seen:
            continue
        seen.add(current.block_id)
        for entry in current.entries:
            if entry.kind is EntryKind.CTE and entry.cte is binding:
                consumers.append(entry)
        stack.extend(_sub_blocks(current))
    return consumers


def _pushable_conjuncts(consumer: TableEntry, binding) -> List[ast.Expr]:
    from repro.sql.blocks import referenced_entries

    producer = binding.block
    target = frozenset({consumer.entry_id})
    aggregated = producer.aggregated
    group_keys = {expr_key(g) for g in producer.group_by}
    result: List[ast.Expr] = []
    if producer.limit is not None or producer.windows or producer.set_ops:
        return []
    for conjunct in consumer.block.where_conjuncts:
        if referenced_entries(conjunct) != target:
            continue
        if any(isinstance(node, (ast.ScalarSubquery, ast.InSubqueryExpr,
                                 ast.ExistsExpr))
               for node in conjunct.walk()):
            continue
        if aggregated:
            positions = [node.position for node in conjunct.walk()
                         if isinstance(node, ast.ColumnRef)
                         and node.entry_id == consumer.entry_id]
            mapped = [producer.select_items[p].expr for p in positions]
            if not all(expr_key(m) in group_keys for m in mapped):
                continue
        result.append(conjunct)
    return result


def _materialise(conjuncts: List[ast.Expr], consumer: TableEntry,
                 binding) -> ast.Expr:
    producer = binding.block
    replacements = [item.expr for item in producer.select_items]
    rewritten = [substitute_entry_columns(c, consumer.entry_id, replacements)
                 for c in conjuncts]
    return ast.make_conjunction(rewritten)
