"""The Orca optimizer driver: logical block tree to costed physical plan.

Runs the Cascades-style search over one converted query block: the n-ary
inner-join core goes through the configured join-order search; LEFT OUTER
joins, semi/anti nests, correlated derived tables, residual selections,
aggregation, ordering, and limits layer on top with per-alternative
costing.  The conservative integration never moves operators across block
boundaries (Section 9: "being careful to not change the query block
structure").

The rules the paper disabled for the MySQL target are represented as
config flags that default to off:

* ``enable_groupby_below_join`` (Section 7, Orca change 5) — MySQL's
  executor cannot run group-by-below-join plans;
* ``enable_multi_table_semi_build`` (change 6) — semi hash joins whose
  build side contains more than one table are never generated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import OrcaError
from repro.executor.plan import AccessMethod
from repro.mysql_optimizer.access_path import (
    ordered_index_access,
    ref_access,
)
from repro.mysql_optimizer.skeleton import AccessPlan
from repro.orca.cost_model import OrcaCostModel
from repro.orca.joinorder import (
    JoinSearchMode,
    OrcaJoinSearch,
    SubEstimates,
    plan_unit,
)
from repro.orca.memo import Memo
from repro.orca.operators import (
    JoinVariant,
    LogicalGet,
    OrcaLogicalBlock,
    PhysicalGbAgg,
    PhysicalGet,
    PhysicalHashJoin,
    PhysicalLimit,
    PhysicalNLJoin,
    PhysicalOp,
    PhysicalSort,
)
from repro.selectivity import SelectivityEstimator
from repro.sql import ast
from repro.sql.blocks import (
    EntryKind,
    NestKind,
    QueryBlock,
    correlation_sources,
    referenced_entries,
)


@dataclass
class OrcaConfig:
    """Search and rule configuration for the Orca optimizer."""

    search: JoinSearchMode = JoinSearchMode.EXHAUSTIVE2
    enable_or_factorization: bool = True
    enable_derived_subqueries: bool = True
    enable_cte_pushdown: bool = True
    #: Orca rules disabled for the MySQL target (Section 7, items 5-6).
    enable_groupby_below_join: bool = False
    enable_multi_table_semi_build: bool = False
    #: Restrict the search to left-deep trees (ablation A2 only; real Orca
    #: always considers bushy trees).
    left_deep_only: bool = False
    #: Branch-and-bound pruning in the DP join search: candidates whose
    #: input-cost lower bound already reaches the group's best complete
    #: plan are skipped without costing.  Sound (the chosen plan's cost
    #: matches the unpruned search); off only for A/B measurement.
    enable_cost_bound_pruning: bool = True
    #: Per-component strategy selection for the join search
    #: (:mod:`repro.orca.largejoin`): ``adaptive`` picks full DP /
    #: linearized DP / GOO / greedy by component size and remaining
    #: compile budget; any :class:`~repro.orca.largejoin.JoinStrategy`
    #: value forces that strategy.
    join_strategy: str = "adaptive"
    #: Largest component full bushy/zig-zag DP still handles; above it
    #: the adaptive policy switches to DP over the IKKBZ linearization.
    lindp_threshold: int = 12
    #: Largest component linearized DP still handles; above it the
    #: adaptive policy switches to greedy operator ordering (GOO).
    goo_threshold: int = 25


@dataclass
class OrcaBlockPlan:
    """The optimized physical plan for one query block."""

    block: QueryBlock
    root: Optional[PhysicalOp]
    cost: float
    rows: float
    memo: Memo
    agg_streaming: bool = True
    order_satisfied: bool = False


class OrcaOptimizer:
    """Optimizes converted logical blocks bottom-up."""

    def __init__(self, estimator: SelectivityEstimator,
                 config: Optional[OrcaConfig] = None,
                 budget=None, fault_injector=None,
                 tracer=None, metrics=None) -> None:
        self.estimator = estimator
        self.config = config or OrcaConfig()
        self.cost_model = OrcaCostModel()
        #: Optional :class:`repro.resilience.CompileBudget` checked inside
        #: the join search so pathological queries abort, not hang.
        self.budget = budget
        self.fault_injector = fault_injector
        if tracer is None:
            from repro.observability import NOOP_TRACER
            tracer = NOOP_TRACER
        self.tracer = tracer
        self.metrics = metrics

    # -- public API ------------------------------------------------------------------

    def optimize_block(self, logical: OrcaLogicalBlock,
                       sub_estimates: SubEstimates) -> OrcaBlockPlan:
        with self.tracer.span("memo_search",
                              block_id=logical.block.block_id) as span:
            evaluations_before = self.cost_model.evaluations
            block_plan, search = self._optimize_block(logical,
                                                      sub_estimates)
            evaluations = (self.cost_model.evaluations
                           - evaluations_before)
            memo = block_plan.memo
            # The block's dominant (largest) joined component names the
            # strategy reported for the whole block; single-unit blocks
            # never enter the selector.
            strategies = search.strategies if search else []
            join_strategy, join_units = (
                max(strategies, key=lambda item: item[1])
                if strategies else (None, 0))
            degradations = search.budget_degradations if search else 0
            span.set(memo_groups=memo.group_count,
                     memo_alternatives=memo.total_alternatives,
                     memo_offered=memo.total_offered,
                     cost_evaluations=evaluations,
                     dp_expansions=search.expansions if search else 0,
                     chains_costed=search.chains_costed if search else 0,
                     pruned_candidates=(search.pruned_candidates
                                        if search else 0),
                     join_strategy=join_strategy,
                     join_units=join_units,
                     join_budget_degradations=degradations,
                     best_cost=block_plan.cost)
            if self.metrics is not None:
                self.metrics.inc("orca.blocks_optimized")
                self.metrics.observe("orca.memo_groups", memo.group_count)
                self.metrics.observe("orca.memo_alternatives",
                                     memo.total_alternatives)
                self.metrics.observe("orca.cost_evaluations", evaluations)
                self.metrics.inc("orca.pruned_candidates",
                                 search.pruned_candidates
                                 if search else 0)
                for name, __ in strategies:
                    self.metrics.inc(f"orca.join_strategy.{name}")
                if degradations:
                    self.metrics.inc("orca.join_budget_degradations",
                                     degradations)
            return block_plan

    def _optimize_block(self, logical: OrcaLogicalBlock,
                        sub_estimates: SubEstimates
                        ) -> Tuple[OrcaBlockPlan,
                                   Optional["OrcaJoinSearch"]]:
        if self.fault_injector is not None:
            self.fault_injector.fire("optimizer")
        if self.budget is not None:
            self.budget.check()
        block = logical.block
        memo = Memo()
        corr = frozenset(correlation_sources(block))

        plan: Optional[PhysicalOp] = None
        cost = 0.0
        rows = 1.0
        placed_entries: frozenset = frozenset()
        search: Optional[OrcaJoinSearch] = None
        if logical.core.units:
            mode = self.config.search
            if self.config.left_deep_only:
                mode = JoinSearchMode.GREEDY
            search = OrcaJoinSearch(
                logical.core.units, logical.core.conjuncts, block,
                self.estimator, self.cost_model, sub_estimates, corr,
                mode, memo, budget=self.budget,
                enable_pruning=self.config.enable_cost_bound_pruning,
                strategy_policy=self.config.join_strategy,
                lindp_threshold=self.config.lindp_threshold,
                goo_threshold=self.config.goo_threshold)
            plan, cost, rows = search.search()
            placed_entries = frozenset(
                unit.descriptor.entry.entry_id
                for unit in logical.core.units)

        for spec in logical.outer_joins:
            plan, cost, rows, placed_entries = self._attach_outer_join(
                block, plan, cost, rows, placed_entries, spec, corr,
                sub_estimates)
        for spec in logical.semi_joins:
            plan, cost, rows, placed_entries = self._attach_semi_join(
                block, plan, cost, rows, placed_entries, spec, corr,
                sub_estimates)
        for unit, conjuncts in self._dependent_pairs(logical):
            plan, cost, rows, placed_entries = self._attach_dependent(
                block, plan, cost, rows, placed_entries, unit, conjuncts,
                corr, sub_estimates)

        for conjunct in logical.residual.conjuncts:
            rows = max(1e-3, rows * self.estimator.conjunct_selectivity(
                block, conjunct))

        agg_streaming = True
        if logical.agg is not None:
            plan, cost, rows, agg_streaming = self._attach_agg(
                block, logical, plan, cost, rows)

        order_satisfied = False
        if logical.limit.order_items:
            plan, cost, order_satisfied = self._attach_order(
                block, logical, plan, cost, rows, agg_streaming)
        if logical.limit.limit is not None:
            plan = self._wrap(PhysicalLimit(plan, logical.limit.limit,
                                            logical.limit.offset),
                              cost, min(rows, float(logical.limit.limit)))
            rows = min(rows, float(logical.limit.limit))

        if block.distinct:
            rows = max(1.0, rows * 0.5)

        return OrcaBlockPlan(block=block, root=plan, cost=cost,
                             rows=max(1.0, rows), memo=memo,
                             agg_streaming=agg_streaming,
                             order_satisfied=order_satisfied), search

    # -- helpers -----------------------------------------------------------------------

    def _wrap(self, op: PhysicalOp, cost: float, rows: float) -> PhysicalOp:
        op.cost = cost
        op.rows = rows
        return op

    def _dependent_pairs(self, logical: OrcaLogicalBlock
                         ) -> List[Tuple[LogicalGet, List[ast.Expr]]]:
        pairs = []
        for unit in logical.dependent_units:
            own = unit.descriptor.entry.entry_id
            mine = [c for c in logical.dependent_conjuncts
                    if own in referenced_entries(c)]
            pairs.append((unit, mine))
        return pairs

    def _join_fanout(self, block: QueryBlock, conjuncts: List[ast.Expr],
                     inner_rows: float) -> float:
        selectivity = 1.0
        for conjunct in conjuncts:
            selectivity *= self.estimator.join_selectivity(block, conjunct)
        return max(1e-6, inner_rows * selectivity)

    def _attach_outer_join(self, block: QueryBlock, plan: PhysicalOp,
                           cost: float, rows: float,
                           placed: frozenset, spec, corr: frozenset,
                           sub_estimates: SubEstimates):
        if plan is None:
            raise OrcaError("LEFT JOIN without a driving side")
        unit = spec.inner
        entry = unit.descriptor.entry
        access, unit_cost, unit_rows, get = plan_unit(
            unit, block, self.estimator, self.cost_model, sub_estimates)
        fanout = self._join_fanout(block, spec.on_conjuncts, unit_rows)
        out_rows = max(rows, rows * fanout)

        # Hash left join: probe = preserved side, build = inner.
        best_cost = (cost + unit_cost + self.cost_model.hash_join_cost(
            unit_rows, rows, out_rows))
        best = PhysicalHashJoin(plan, get, JoinVariant.LEFT,
                                list(spec.on_conjuncts))
        # Index NL left join.
        if entry.kind is EntryKind.BASE:
            ref = ref_access(block, entry, list(spec.on_conjuncts),
                             placed | corr, self.estimator, self.cost_model)
            if ref is not None:
                nl_cost = cost + self.cost_model.index_nljoin_cost(
                    rows, ref.est_cost)
                if nl_cost < best_cost:
                    inner = PhysicalGet(unit.descriptor, ref,
                                        list(unit.conjuncts))
                    inner.cost, inner.rows = ref.est_cost, ref.est_rows
                    best = PhysicalNLJoin(plan, inner, JoinVariant.LEFT,
                                          list(spec.on_conjuncts),
                                          index_inner=True)
                    best_cost = nl_cost
        # NLJ rescan.
        rescan_cost = cost + self.cost_model.nljoin_rescan_cost(
            rows, unit_cost)
        if rescan_cost < best_cost:
            best = PhysicalNLJoin(plan, get, JoinVariant.LEFT,
                                  list(spec.on_conjuncts))
            best_cost = rescan_cost
        self._wrap(best, best_cost, out_rows)
        return best, best_cost, out_rows, placed | {entry.entry_id}

    def _attach_semi_join(self, block: QueryBlock, plan: PhysicalOp,
                          cost: float, rows: float, placed: frozenset,
                          spec, corr: frozenset,
                          sub_estimates: SubEstimates):
        if plan is None:
            raise OrcaError("semi-join without a driving side")
        variant = JoinVariant.SEMI if spec.kind is NestKind.SEMI \
            else JoinVariant.ANTI
        inner_entries = frozenset(unit.descriptor.entry.entry_id
                                  for unit in spec.inners)

        # Per-probe inner fanout for the match probability.
        inner_rows = 1.0
        for unit in spec.inners:
            __, __, unit_rows, __ = plan_unit(
                unit, block, self.estimator, self.cost_model, sub_estimates)
            inner_rows *= unit_rows
        fanout = self._join_fanout(block, spec.conjuncts, inner_rows)
        match_prob = min(1.0, fanout)
        if variant is JoinVariant.SEMI:
            out_rows = max(0.5, rows * max(match_prob, 1e-3))
        else:
            out_rows = max(0.5, rows * max(0.02, 1.0 - match_prob))

        candidates: List[Tuple[float, PhysicalOp]] = []
        # Index NL semi/anti: single inner with a usable index.
        if len(spec.inners) == 1:
            unit = spec.inners[0]
            entry = unit.descriptor.entry
            if entry.kind is EntryKind.BASE:
                ref = ref_access(block, entry,
                                 unit.conjuncts + spec.conjuncts,
                                 placed | corr, self.estimator,
                                 self.cost_model)
                if ref is not None:
                    nl_cost = cost + self.cost_model.index_nljoin_cost(
                        rows, ref.est_cost)
                    inner = PhysicalGet(unit.descriptor, ref,
                                        list(unit.conjuncts))
                    inner.cost, inner.rows = ref.est_cost, ref.est_rows
                    join = PhysicalNLJoin(plan, inner, variant,
                                          list(spec.conjuncts),
                                          index_inner=True)
                    candidates.append((nl_cost, join))
        # Hash semi/anti: build side must be a single table unless the
        # multi-table rule is enabled (it is disabled for MySQL, lesson 6).
        allow_hash = (len(spec.inners) == 1
                      or self.config.enable_multi_table_semi_build)
        if allow_hash and self._equi_bridge(spec.conjuncts, placed | corr,
                                            inner_entries):
            build_plan, build_cost, build_rows = self._standalone_inner(
                block, spec, corr, sub_estimates)
            hash_cost = (cost + build_cost
                         + self.cost_model.hash_join_cost(
                             build_rows, rows, out_rows))
            join = PhysicalHashJoin(plan, build_plan, variant,
                                    list(spec.conjuncts))
            candidates.append((hash_cost, join))
        # NLJ rescan fallback.
        rescan_plan, rescan_unit_cost, __ = self._standalone_inner(
            block, spec, corr, sub_estimates)
        rescan_cost = cost + self.cost_model.nljoin_rescan_cost(
            rows, rescan_unit_cost)
        candidates.append((rescan_cost,
                           PhysicalNLJoin(plan, rescan_plan, variant,
                                          list(spec.conjuncts))))
        best_cost, best = min(candidates, key=lambda item: item[0])
        self._wrap(best, best_cost, out_rows)
        return best, best_cost, out_rows, placed | inner_entries

    def _standalone_inner(self, block: QueryBlock, spec, corr: frozenset,
                          sub_estimates: SubEstimates
                          ) -> Tuple[PhysicalOp, float, float]:
        """Plan the nest's inner side without outer bindings."""
        internal = [c for c in spec.conjuncts
                    if (referenced_entries(c) - corr).issubset(
                        frozenset(unit.descriptor.entry.entry_id
                                  for unit in spec.inners))]
        memo = Memo()
        search = OrcaJoinSearch(spec.inners, internal, block,
                                self.estimator, self.cost_model,
                                sub_estimates, corr,
                                JoinSearchMode.GREEDY, memo,
                                budget=self.budget,
                                enable_pruning=self.config
                                .enable_cost_bound_pruning)
        return search.search()

    def _equi_bridge(self, conjuncts: List[ast.Expr], outer: frozenset,
                     inner: frozenset) -> bool:
        for conjunct in conjuncts:
            if isinstance(conjunct, ast.BinaryExpr) and \
                    conjunct.op is ast.BinOp.EQ:
                left = referenced_entries(conjunct.left)
                right = referenced_entries(conjunct.right)
                if not left or not right:
                    continue
                if (left.issubset(outer) and right.issubset(inner)) or \
                        (left.issubset(inner) and right.issubset(outer)):
                    return True
        return False

    def _attach_dependent(self, block: QueryBlock, plan: PhysicalOp,
                          cost: float, rows: float, placed: frozenset,
                          unit: LogicalGet, conjuncts: List[ast.Expr],
                          corr: frozenset, sub_estimates: SubEstimates):
        if plan is None:
            raise OrcaError("correlated derived table without outer side")
        entry = unit.descriptor.entry
        sub_rows, sub_cost = sub_estimates.get(
            entry.sub_block.block_id if entry.sub_block else -1)
        access = AccessPlan(method=AccessMethod.MATERIALIZE,
                            est_rows=sub_rows, est_cost=sub_cost)
        get = PhysicalGet(unit.descriptor, access, list(unit.conjuncts))
        get.cost, get.rows = sub_cost, sub_rows
        # Rebind per outer row: correlation usually narrows the subquery to
        # an indexed probe, so charge a fraction of the standalone cost.
        per_probe = max(1.0, sub_cost * 0.05)
        join_cost = cost + rows * per_probe
        fanout = self._join_fanout(block, conjuncts, sub_rows)
        out_rows = max(0.5, rows * min(1.0, fanout))
        join = PhysicalNLJoin(plan, get, JoinVariant.INNER, conjuncts)
        self._wrap(join, join_cost, out_rows)
        return join, join_cost, out_rows, placed | {entry.entry_id}

    # -- aggregation and ordering ------------------------------------------------------

    def _attach_agg(self, block: QueryBlock, logical: OrcaLogicalBlock,
                    plan: Optional[PhysicalOp], cost: float, rows: float):
        groups = self._group_estimate(block, logical.agg.group_exprs, rows)
        stream_cost = cost + self.cost_model.sort_cost(rows) \
            + self.cost_model.stream_agg_cost(rows)
        hash_cost = cost + self.cost_model.hash_agg_cost(rows, groups)
        streaming = stream_cost <= hash_cost or not logical.agg.group_exprs
        agg = PhysicalGbAgg(plan, logical.agg.group_exprs,
                            logical.agg.agg_calls, streaming)
        total = min(stream_cost, hash_cost) if logical.agg.group_exprs \
            else cost + self.cost_model.stream_agg_cost(rows)
        self._wrap(agg, total, groups)
        return agg, total, groups, streaming

    def _group_estimate(self, block: QueryBlock,
                        group_exprs: List[ast.Expr],
                        input_rows: float) -> float:
        if not group_exprs:
            return 1.0
        groups = 1.0
        for expr in group_exprs:
            if isinstance(expr, ast.ColumnRef):
                groups *= self.estimator.column_ndv(block, expr)
            else:
                groups *= 10.0
        return max(1.0, min(groups, input_rows * 0.7 + 1.0))

    def _attach_order(self, block: QueryBlock, logical: OrcaLogicalBlock,
                      plan: Optional[PhysicalOp], cost: float, rows: float,
                      agg_streaming: bool):
        order_items = logical.limit.order_items
        # An order-supplying index scan (Section 7, Orca change 4): only
        # when the whole block is a single ordered get.
        if isinstance(plan, PhysicalGet) and \
                plan.access.method is AccessMethod.TABLE_SCAN:
            supplied = ordered_index_access(plan.descriptor.entry,
                                            order_items)
            if supplied is not None:
                index_name, descending = supplied
                plan.access = AccessPlan(
                    method=AccessMethod.INDEX_SCAN, index_name=index_name,
                    descending=descending, est_rows=plan.access.est_rows,
                    est_cost=plan.access.est_cost * 1.3)
                return plan, cost + plan.access.est_cost * 0.3, True
        sort = PhysicalSort(plan, order_items)
        total = cost + self.cost_model.sort_cost(rows)
        self._wrap(sort, total, rows)
        return sort, total, False
