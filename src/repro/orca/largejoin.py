"""Large-join search strategies: IKKBZ, GOO, and linearized DP.

The DP searches in :mod:`repro.orca.joinorder` are exact but
exponential: beyond ``DP_LIMIT`` relations the old code silently fell
back to a left-deep greedy chain plus insertion polish — precisely the
regime (15-, 30-, 50-way joins) where plan quality matters most.  This
module adds the three classic polynomial strategies from the
large-join-ordering literature, all running over the *same* join graph,
memo, and Orca cost model as the DP:

* **IKKBZ** (:func:`ikkbz_order`) — precedence-graph linearization.
  A minimum-selectivity spanning tree of the join graph is rooted and
  linearized with the ASI rank function (``rank = (T - 1) / C``),
  merging child chains by rank and normalizing rank inversions by
  contracting parent/child modules.  O(n² log n); produces a *linear
  order*, not a plan.
* **GOO** (:func:`goo_search`) — greedy operator ordering.  A forest of
  singleton relations is repeatedly contracted by merging the connected
  pair with the smallest estimated join cardinality; every merge offers
  real join alternatives (hash / index-NL / NL-rescan) into the memo, so
  the result is a costed, possibly *bushy* tree.  O(n³) in pair
  scans, O(n) in costed joins.
* **Linearized DP** (:func:`lindp_search`) — dynamic programming
  restricted to intervals of the IKKBZ order (the lindp idea from
  "Adaptive Optimization of Very Large Join Queries").  Only the
  O(n²) contiguous subsequences are considered, each split at O(n)
  points — O(n³) join offers total instead of the exponential subset
  lattice, while still producing bushy trees *within* the linear order.

The :func:`select_strategy` lattice picks one per joined component —
``dp → lindp → goo → greedy`` — by component relation count and by the
*remaining* :class:`repro.resilience.CompileBudget` wall-clock (already
capped to the statement deadline via ``governor.cap_compile_budget``),
downgrading whenever the budget left cannot plausibly pay for the
stronger strategy.

Every strategy seeds a complete incumbent plan into the final memo
group *before* its main loop, so a mid-search budget exhaustion can
degrade to the best incumbent instead of raising into the MySQL
fallback (see ``OrcaJoinSearch._search_component``).
"""

from __future__ import annotations

import enum
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.errors import OrcaError
from repro.orca.operators import PhysicalOp


class JoinStrategy(enum.Enum):
    """One component's join-order search strategy (the selector lattice,
    strongest first)."""

    DP = "dp"
    LINDP = "lindp"
    GOO = "goo"
    GREEDY = "greedy"


#: Valid values for the ``orca_join_strategy`` config knob.
STRATEGY_POLICIES = ("adaptive",) + tuple(s.value for s in JoinStrategy)

#: Default component size above which linearized DP replaces GOO-seeded
#: full DP (the old hard ``DP_LIMIT`` cliff).
DEFAULT_LINDP_THRESHOLD = 12
#: Default component size above which GOO replaces linearized DP.
DEFAULT_GOO_THRESHOLD = 25

#: Downgrade lattice: the next-cheaper strategy when the remaining
#: budget cannot pay for the selected one.
_DOWNGRADE = {
    JoinStrategy.DP: JoinStrategy.LINDP,
    JoinStrategy.LINDP: JoinStrategy.GOO,
    JoinStrategy.GOO: JoinStrategy.GREEDY,
}

#: Budget-floor coefficients (seconds).  Deliberately coarse: they only
#: need to be monotone in n and ordered DP >> LINDP > GOO so the
#: downgrade lattice engages in the right sequence; an exhaustion that
#: slips through anyway is caught by incumbent degradation.
_DP_FLOOR_BASE = 0.01
_DP_FLOOR_GROWTH = 3.0
_DP_FLOOR_FREE_UNITS = 6
_DP_FLOOR_CAP = 30.0
_LINDP_FLOOR_PER_UNIT2 = 2e-4
_GOO_FLOOR_PER_UNIT2 = 5e-5


def budget_floor(strategy: JoinStrategy, n: int) -> float:
    """Seconds a strategy plausibly needs for an ``n``-way component.

    Full bushy DP grows ~3^n (the subset/partition lattice); LINDP and
    GOO are quadratic-ish in the work that dominates them here.  These
    are selection heuristics, not guarantees — the incumbent-degradation
    path backstops underestimates.
    """
    if strategy is JoinStrategy.DP:
        return min(_DP_FLOOR_CAP, _DP_FLOOR_BASE * _DP_FLOOR_GROWTH
                   ** max(0, n - _DP_FLOOR_FREE_UNITS))
    if strategy is JoinStrategy.LINDP:
        return _LINDP_FLOOR_PER_UNIT2 * n * n
    if strategy is JoinStrategy.GOO:
        return _GOO_FLOOR_PER_UNIT2 * n * n
    return 0.0


def select_strategy(n: int, greedy_mode: bool, policy: str,
                    lindp_threshold: int, goo_threshold: int,
                    remaining_seconds: Optional[float]) -> JoinStrategy:
    """Pick the search strategy for one ``n``-relation component.

    ``greedy_mode`` reflects ``JoinSearchMode.GREEDY`` (the paper's
    cheapest setting and the left-deep ablation) and wins outright.  A
    non-``adaptive`` ``policy`` forces that strategy (benchmarking and
    the ``orca_join_strategy`` knob).  Otherwise the component size
    picks a rung — DP up to ``lindp_threshold``, LINDP up to
    ``goo_threshold``, GOO beyond — and the remaining compile budget
    (``None`` = unlimited) downgrades rung by rung while it cannot pay
    the strategy's estimated floor.
    """
    if greedy_mode:
        return JoinStrategy.GREEDY
    if policy != "adaptive":
        return JoinStrategy(policy)
    if n <= lindp_threshold:
        strategy = JoinStrategy.DP
    elif n <= goo_threshold:
        strategy = JoinStrategy.LINDP
    else:
        strategy = JoinStrategy.GOO
    if remaining_seconds is not None:
        while strategy is not JoinStrategy.GREEDY and \
                remaining_seconds < budget_floor(strategy, n):
            strategy = _DOWNGRADE[strategy]
    return strategy


# -- IKKBZ precedence-graph linearization ------------------------------------------


class _Module:
    """A contracted run of relations in an IKKBZ chain.

    ``t`` is the module's multiplicative cardinality effect (the product
    of ``selectivity * rows`` of its members), ``c`` its additive cost
    contribution under the ASI cost function ``C_out``.
    """

    __slots__ = ("units", "t", "c")

    def __init__(self, units: List[int], t: float, c: float) -> None:
        self.units = units
        self.t = t
        self.c = c

    @property
    def rank(self) -> float:
        return (self.t - 1.0) / self.c if self.c > 0 else 0.0


def _combine(first: _Module, second: _Module) -> _Module:
    """Contract two precedence-adjacent modules (ASI combine rule)."""
    return _Module(first.units + second.units,
                   first.t * second.t,
                   first.c + first.t * second.c)


def _merge_chains(chains: List[List[_Module]]) -> List[_Module]:
    """K-way merge of rank-sorted chains into one rank-sorted sequence.

    Intra-chain order is a precedence constraint and is preserved; ties
    break on the smallest leading unit index for determinism.
    """
    merged: List[_Module] = []
    heads = [chain for chain in chains if chain]
    while heads:
        best = min(heads, key=lambda chain: (chain[0].rank,
                                             chain[0].units[0]))
        merged.append(best.pop(0))
        heads = [chain for chain in heads if chain]
    return merged


def ikkbz_order(search, component: FrozenSet[int]) -> List[int]:
    """IKKBZ linearization of one connected component.

    Builds the minimum-selectivity spanning tree of the component's
    join graph (pairs with no join conjunct default to selectivity 1.0,
    so cross products sink to the end), then linearizes the tree from
    several candidate roots with the classic rank/normalize algorithm
    and keeps the order whose ``C_out`` chain cost is smallest.
    """
    members = sorted(component)
    if len(members) <= 2:
        return members
    rows = {index: max(1e-6, search._local[index][2]) for index in members}
    pair_sel = search.pair_selectivities(component)

    def sel(a: int, b: int) -> float:
        return pair_sel.get((a, b) if a < b else (b, a), 1.0)

    # Prim's MST, edge weight = join selectivity (ties: lower index).
    # Missing edges weigh 1.0, which also stitches disconnected pieces.
    start = min(members, key=lambda index: (rows[index], index))
    in_tree = {start}
    parent: Dict[int, int] = {}
    tree_sel: Dict[int, float] = {}
    while len(in_tree) < len(members):
        best: Optional[Tuple[float, int, int]] = None
        for node in members:
            if node in in_tree:
                continue
            for anchor in in_tree:
                weight = sel(node, anchor)
                key = (weight, node, anchor)
                if best is None or key < best:
                    best = key
        weight, node, anchor = best
        in_tree.add(node)
        parent[node] = anchor
        tree_sel[node] = weight
    children: Dict[int, List[int]] = {index: [] for index in members}
    for node, anchor in parent.items():
        children[anchor].append(node)

    def linearize(root: int) -> List[int]:
        # Re-root the MST at ``root`` (BFS), then linearize bottom-up.
        kids: Dict[int, List[int]] = {index: [] for index in members}
        edge_sel: Dict[int, float] = {}
        seen = {root}
        frontier = [root]
        while frontier:
            node = frontier.pop()
            for other in children[node] + ([parent[node]]
                                           if node in parent else []):
                if other not in seen:
                    seen.add(other)
                    kids[node].append(other)
                    edge_sel[other] = sel(node, other)
                    frontier.append(other)
        for node in kids:
            kids[node].sort()

        def chain_of(node: int) -> List[_Module]:
            merged = _merge_chains([chain_of(kid) for kid in kids[node]])
            t = max(1e-9, edge_sel[node] * rows[node])
            head = _Module([node], t, t)
            # Normalize: a successor outranked by its precedence
            # predecessor is contracted into it (the ASI normalization
            # step that makes the chain rank-sorted again).
            while merged and merged[0].rank < head.rank:
                head = _combine(head, merged.pop(0))
            return [head] + merged

        sequence = _merge_chains([chain_of(kid) for kid in kids[root]])
        return [root] + [unit for module in sequence
                         for unit in module.units]

    def chain_cost(order: List[int]) -> float:
        # Exact C_out over the order, applying *every* selectivity
        # between the newcomer and the placed prefix (richer than the
        # tree-only ASI score, and what LINDP will actually optimize).
        size = rows[order[0]]
        cost = 0.0
        for position in range(1, len(order)):
            unit = order[position]
            factor = rows[unit]
            for placed in order[:position]:
                factor *= sel(unit, placed)
            size *= factor
            cost += size
        return cost

    if len(members) <= 16:
        roots = members
    else:
        roots = sorted(members,
                       key=lambda index: (rows[index], index))[:16]
    best_order: Optional[List[int]] = None
    best_cost = float("inf")
    for root in roots:
        order = linearize(root)
        cost = chain_cost(order)
        if cost < best_cost:
            best_cost = cost
            best_order = order
    return best_order


# -- GOO: greedy operator ordering --------------------------------------------------


def goo_search(search, component: FrozenSet[int]
               ) -> Tuple[PhysicalOp, float, float]:
    """Greedy operator ordering over one connected component.

    Maintains a forest of costed subplans (memo groups) and repeatedly
    merges the pair with the smallest estimated join cardinality,
    preferring pairs actually connected by a join conjunct.  Pair
    cardinalities come from a per-pair selectivity matrix updated by
    ``S[A∪B][C] = S[A][C] * S[B][C]`` on merge (conjuncts spanning more
    than two relations are settled exactly by ``subset_rows`` at merge
    time — the matrix only steers *pair selection*).  Every merge offers
    real costed alternatives into the memo, so the final group holds a
    valid bushy plan — and every intermediate group holds an upper
    bound the DP's branch-and-bound pruning can reuse.
    """
    # A left-deep chain seeds the final group first, so budget
    # exhaustion anywhere in the merge loop still degrades to a
    # complete incumbent (with_incumbents=False: GOO *is* the
    # incumbent builder — no recursion).
    search._seed_bounds(component, with_incumbents=False)
    members = sorted(component)
    forest: List[FrozenSet[int]] = []
    rows: Dict[FrozenSet[int], float] = {}
    for index in members:
        key = frozenset({index})
        group = search.ensure_singleton(index)
        forest.append(key)
        rows[key] = group.rows
    neighbors = search.unit_neighbors()
    pair_sel = search.pair_selectivities(component)
    sel: Dict[Tuple[FrozenSet[int], FrozenSet[int]], float] = {}
    for i, left in enumerate(forest):
        for right in forest[i + 1:]:
            value = pair_sel.get((min(left), min(right)), 1.0)
            if value != 1.0:
                sel[(left, right)] = value

    def sel_of(a: FrozenSet[int], b: FrozenSet[int]) -> float:
        return sel.get((a, b), sel.get((b, a), 1.0))

    def connected(a: FrozenSet[int], b: FrozenSet[int]) -> bool:
        return any(neighbors[unit] & b for unit in a)

    while len(forest) > 1:
        search._check_budget()
        best_key = None
        best_pair: Optional[Tuple[FrozenSet[int], FrozenSet[int]]] = None
        for i, left in enumerate(forest):
            for right in forest[i + 1:]:
                estimate = rows[left] * rows[right] * sel_of(left, right)
                key = (0 if connected(left, right) else 1,
                       estimate, min(left), min(right))
                if best_key is None or key < best_key:
                    best_key = key
                    best_pair = (left, right)
        left, right = best_pair
        union = left | right
        group = search.join_groups(union, left, right)
        forest = [entry for entry in forest
                  if entry is not left and entry is not right]
        for other in forest:
            product = sel_of(left, other) * sel_of(right, other)
            if product != 1.0:
                sel[(union, other)] = product
        forest.append(union)
        rows[union] = group.rows
    final = search.memo.group(forest[0])
    if final.best_plan is None:  # pragma: no cover — defensive
        raise OrcaError("GOO produced no plan")
    return final.best_plan, final.best_cost, final.rows


# -- linearized DP ------------------------------------------------------------------


def lindp_search(search, component: FrozenSet[int]
                 ) -> Tuple[PhysicalOp, float, float]:
    """DP over intervals of the IKKBZ order (possibly-bushy trees).

    The IKKBZ chain itself is costed first, which both provides the
    budget-degradation incumbent for the final group and seeds every
    prefix group with an upper bound for branch-and-bound pruning.
    Then each of the O(n²) contiguous intervals is built from its O(n)
    split points; a split whose one side is a singleton always has an
    NL-rescan candidate, so every interval — connected or not — ends up
    with a plan.
    """
    order = ikkbz_order(search, component)
    search._cost_chain(order)
    total = len(order)
    for length in range(2, total + 1):
        for start in range(0, total - length + 1):
            search._check_budget()
            search.expansions += 1
            subset = frozenset(order[start:start + length])
            group = search.memo.group(subset)
            group.rows = search.subset_rows(subset)
            for split in range(start + 1, start + length):
                left = frozenset(order[start:split])
                right = frozenset(order[split:start + length])
                group_a = search.memo.group(left)
                group_b = search.memo.group(right)
                if group_a.best_plan is None or group_b.best_plan is None:
                    continue
                search._offer_joins_bounded(group, group_a, group_b)
                search._offer_joins_bounded(group, group_b, group_a)
    final = search.memo.group(frozenset(component))
    if final.best_plan is None:  # pragma: no cover — defensive
        raise OrcaError("linearized DP produced no plan")
    return final.best_plan, final.best_cost, final.rows
