"""Orca's metadata cache (the MD accessor).

"Orca maintains an internal metadata cache ... and if the required
information pre-exists there, the metadata provider is not queried again"
(Section 5.7).  The accessor is the only way the Orca side ever sees MySQL
metadata: each answer arrives as a DXL document from the provider and is
parsed and memoised here.  It also serves as the statistics source for
Orca's selectivity estimation (it exposes the ``statistics(name)`` /
``table(name)`` protocol the estimator expects), so every cardinality
Orca computes has round-tripped through DXL.

Observability: every hit and miss is counted per request kind
(:meth:`MDAccessor.stats`), mirrored into a
:class:`repro.observability.MetricsRegistry` (``mdcache.hits`` /
``mdcache.misses`` / ``mdcache.evictions``) when one is attached, and
each provider round-trip (a cache miss) is traced as a
``metadata_lookup`` span.

The cache is *bounded*: each kind-specific map is an LRU capped at
``capacity`` entries, so metadata caching cannot grow without limit
across long benchmark runs against wide catalogs.  The default is far
above any workload in this repo (TPC-DS has 24 tables), so behaviour
only changes for deliberately tiny capacities; evictions are counted
per kind.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, Optional

from repro.bridge import dxl
from repro.bridge.metadata_provider import MySQLMetadataProvider
from repro.catalog.schema import TableSchema
from repro.catalog.statistics import TableStatistics
from repro.observability import NOOP_TRACER

#: Default per-kind LRU capacity — generous enough that the seed
#: workloads (a few dozen tables, a handful of types) never evict.
DEFAULT_MDCACHE_CAPACITY = 1024


class _LRUCache:
    """A small LRU map; reports evictions through a callback."""

    def __init__(self, capacity: int,
                 on_evict: Callable[[], None]) -> None:
        self.capacity = capacity
        self._on_evict = on_evict
        self._entries: OrderedDict = OrderedDict()

    def get(self, key):
        value = self._entries.get(key)
        if value is not None:
            self._entries.move_to_end(key)
        return value

    def put(self, key, value) -> None:
        if key in self._entries:
            del self._entries[key]
        self._entries[key] = value
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self._on_evict()

    def __len__(self) -> int:
        return len(self._entries)


class MDAccessor:
    """Caching facade over the metadata provider."""

    def __init__(self, provider: MySQLMetadataProvider,
                 tracer=NOOP_TRACER, metrics=None,
                 capacity: Optional[int] = None) -> None:
        self.provider = provider
        self.tracer = tracer
        self.metrics = metrics
        self.capacity = capacity if capacity is not None \
            else DEFAULT_MDCACHE_CAPACITY
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_evictions = 0
        self._hits_by_kind: Dict[str, int] = {}
        self._misses_by_kind: Dict[str, int] = {}
        self._evictions_by_kind: Dict[str, int] = {}
        self._relation_cache = self._lru("relation")
        self._statistics_cache = self._lru("statistics")
        self._type_cache = self._lru("type")
        self._oid_by_name = self._lru("table_oid")

    def _lru(self, kind: str) -> _LRUCache:
        return _LRUCache(self.capacity,
                         on_evict=lambda: self._evicted(kind))

    # -- hit/miss accounting --------------------------------------------------------

    def _hit(self, kind: str) -> None:
        self.cache_hits += 1
        self._hits_by_kind[kind] = self._hits_by_kind.get(kind, 0) + 1
        if self.metrics is not None:
            self.metrics.inc("mdcache.hits")

    def _miss(self, kind: str) -> None:
        self.cache_misses += 1
        self._misses_by_kind[kind] = self._misses_by_kind.get(kind, 0) + 1
        if self.metrics is not None:
            self.metrics.inc("mdcache.misses")

    def _evicted(self, kind: str) -> None:
        self.cache_evictions += 1
        self._evictions_by_kind[kind] = \
            self._evictions_by_kind.get(kind, 0) + 1
        if self.metrics is not None:
            self.metrics.inc("mdcache.evictions")

    def stats(self) -> dict:
        """Hit/miss/eviction counts, hit ratio, per-kind breakdowns."""
        requests = self.cache_hits + self.cache_misses
        return {
            "hits": self.cache_hits,
            "misses": self.cache_misses,
            "evictions": self.cache_evictions,
            "capacity": self.capacity,
            "hit_ratio": self.cache_hits / requests if requests else 0.0,
            "hits_by_kind": dict(sorted(self._hits_by_kind.items())),
            "misses_by_kind": dict(sorted(self._misses_by_kind.items())),
            "evictions_by_kind": dict(
                sorted(self._evictions_by_kind.items())),
        }

    # -- OID resolution -----------------------------------------------------------

    def table_oid(self, name: str) -> int:
        key = name.lower()
        oid = self._oid_by_name.get(key)
        if oid is not None:
            self._hit("table_oid")
            return oid
        self._miss("table_oid")
        with self.tracer.span("metadata_lookup", kind="table_oid",
                              name=name):
            oid = self.provider.get_table_oid(name)
        self._oid_by_name.put(key, oid)
        return oid

    def synthetic_oid(self, alias: str) -> int:
        return self.provider.get_synthetic_oid(alias)

    # -- relation metadata --------------------------------------------------------

    def relation(self, name: str) -> TableSchema:
        """Relation metadata, parsed from the provider's DXL answer."""
        oid = self.table_oid(name)
        cached = self._relation_cache.get(oid)
        if cached is not None:
            self._hit("relation")
            return cached
        self._miss("relation")
        with self.tracer.span("metadata_lookup", kind="relation",
                              name=name):
            parsed = dxl.relation_from_dxl(
                self.provider.get_relation_dxl(oid))
        self._relation_cache.put(oid, parsed)
        return parsed

    # Alias used by the selectivity estimator protocol.
    def table(self, name: str) -> TableSchema:
        return self.relation(name)

    # -- statistics ----------------------------------------------------------------

    def statistics(self, name: str) -> TableStatistics:
        """Table statistics, parsed from the provider's DXL answer."""
        oid = self.table_oid(name)
        cached = self._statistics_cache.get(oid)
        if cached is not None:
            self._hit("statistics")
            return cached
        self._miss("statistics")
        with self.tracer.span("metadata_lookup", kind="statistics",
                              name=name):
            parsed = dxl.statistics_from_dxl(
                self.provider.get_statistics_dxl(oid))
        self._statistics_cache.put(oid, parsed)
        return parsed

    # -- types -----------------------------------------------------------------------

    def type_info(self, type_oid: int) -> dict:
        cached = self._type_cache.get(type_oid)
        if cached is not None:
            self._hit("type")
            return cached
        self._miss("type")
        with self.tracer.span("metadata_lookup", kind="type"):
            parsed = dxl.type_from_dxl(self.provider.get_type_dxl(type_oid))
        self._type_cache.put(type_oid, parsed)
        return parsed
